#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/log.h"
#include "server/json.h"
#include "storage/table.h"

namespace lazyetl::server {

namespace {

using lazyetl::LogCategory;
using lazyetl::LogOp;

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kBindError:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kDeadlineExceeded:
      return 503;
    default:
      return 500;
  }
}

std::string ErrorJson(const Status& status) {
  std::string out = "{\"code\":";
  AppendJsonString(StatusCodeToString(status.code()), &out);
  out.append(",\"error\":");
  AppendJsonString(status.message(), &out);
  out.push_back('}');
  return out;
}

std::string LowerAscii(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return s;
}

// Maps the admission headers onto QueryOptions; a malformed value fails
// with InvalidArgument (answered as HTTP 400 before admission).
Result<core::QueryOptions> OptionsFromHeaders(const HttpRequest& req) {
  core::QueryOptions opts;
  auto it = req.headers.find("x-lazyetl-priority");
  if (it != req.headers.end() && !it->second.empty()) {
    std::string p = LowerAscii(it->second);
    if (p == "low") {
      opts.priority = common::QueryPriority::kLow;
    } else if (p == "normal") {
      opts.priority = common::QueryPriority::kNormal;
    } else if (p == "high") {
      opts.priority = common::QueryPriority::kHigh;
    } else {
      return Status::InvalidArgument("unknown priority: " + it->second);
    }
  }
  it = req.headers.find("x-lazyetl-client-id");
  if (it != req.headers.end()) opts.client_id = it->second;
  it = req.headers.find("x-lazyetl-queue-timeout-ms");
  if (it != req.headers.end() && !it->second.empty()) {
    char* end = nullptr;
    long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad queue timeout: " + it->second);
    }
    opts.queue_timeout_ms = v;
  }
  return opts;
}

// One wire frame: `payload` as an NDJSON line or a [u32 length][payload]
// binary frame — each sent as one HTTP chunk.
Status WriteFrame(HttpResponseWriter* writer, bool binary_frames,
                  std::string payload) {
  if (!binary_frames) {
    payload.push_back('\n');
    return writer->WriteChunk(payload);
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(len & 0xff),
                    static_cast<char>((len >> 8) & 0xff),
                    static_cast<char>((len >> 16) & 0xff),
                    static_cast<char>((len >> 24) & 0xff)};
  std::string framed(prefix, sizeof(prefix));
  framed.append(payload);
  return writer->WriteChunk(framed);
}

}  // namespace

QueryServer::QueryServer(core::Warehouse* warehouse, ServerOptions options)
    : warehouse_(warehouse), options_(std::move(options)) {}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  if (listen_fd_ >= 0) return Status::InvalidArgument("already started");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    Status s = Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status s =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  LogOp(LogCategory::kQuery, "serverd listening on " + options_.host + ":" +
                                 std::to_string(port_));
  return Status::OK();
}

void QueryServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true);
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(connections_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
}

ServerCounters QueryServer::counters() const {
  ServerCounters c;
  c.connections = connections_total_.load();
  c.queries_ok = queries_ok_.load();
  c.queries_rejected = queries_rejected_.load();
  c.mid_stream_errors = mid_stream_errors_.load();
  c.batches_streamed = batches_streamed_.load();
  c.rows_streamed = rows_streamed_.load();
  return c;
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or fatal) — Stop is in progress
    }
    // Bounded blocking so Stop can always join: idle reads poll every
    // 250 ms (re-checking the stop flag) and a stalled client's stream
    // errors out instead of wedging its connection thread forever.
    timeval rcv_to{0, 250 * 1000};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rcv_to, sizeof(rcv_to));
    timeval snd_to{10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd_to, sizeof(snd_to));
    connections_total_.fetch_add(1);
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.emplace_back([this, fd] {
      ServeConnection(fd);
      ::close(fd);
    });
  }
}

void QueryServer::ServeConnection(int fd) {
  // Sequential keep-alive: one request at a time until the client closes
  // (clean EOF = NotFound from the reader) or a write fails.
  while (!stopping_.load()) {
    auto req = ReadHttpRequest(fd, options_.max_request_bytes);
    if (!req.ok()) {
      if (req.status().IsDeadlineExceeded()) continue;  // idle poll tick
      if (req.status().code() == StatusCode::kInvalidArgument) {
        HttpResponseWriter writer(fd);
        writer.WriteFull(400, "application/json", ErrorJson(req.status()));
      }
      return;
    }
    if (!HandleRequest(*req, fd)) return;
  }
}

bool QueryServer::HandleRequest(const HttpRequest& req, int fd) {
  HttpResponseWriter writer(fd);
  if (req.method == "POST" && req.target == "/query") {
    return HandleQuery(req, &writer);
  }
  if (req.method == "GET" && req.target == "/healthz") {
    return writer.WriteFull(200, "text/plain", "ok\n").ok();
  }
  if (req.method == "GET" && req.target == "/stats") {
    return HandleStats(&writer);
  }
  return writer
      .WriteFull(404, "application/json",
                 ErrorJson(Status::NotFound("no such endpoint: " +
                                            req.target)))
      .ok();
}

bool QueryServer::HandleQuery(const HttpRequest& req,
                              HttpResponseWriter* writer) {
  auto opts = OptionsFromHeaders(req);
  if (!opts.ok()) {
    queries_rejected_.fetch_add(1);
    return writer->WriteFull(400, "application/json", ErrorJson(opts.status()))
        .ok();
  }
  bool binary_frames = false;
  auto fmt = req.headers.find("x-lazyetl-format");
  if (fmt != req.headers.end() && !fmt->second.empty()) {
    std::string f = LowerAscii(fmt->second);
    if (f == "frames") {
      binary_frames = true;
    } else if (f != "ndjson") {
      queries_rejected_.fetch_add(1);
      return writer
          ->WriteFull(400, "application/json",
                      ErrorJson(Status::InvalidArgument("unknown format: " +
                                                        fmt->second)))
          .ok();
    }
  }

  // Pre-stream failures — parse/bind errors, admission timeouts — still
  // have the status line available and map to typed HTTP errors.
  auto cursor = warehouse_->OpenCursor(req.body, *opts);
  if (!cursor.ok()) {
    queries_rejected_.fetch_add(1);
    return writer
        ->WriteFull(HttpStatusForCode(cursor.status().code()),
                    "application/json", ErrorJson(cursor.status()))
        .ok();
  }

  if (!writer
           ->StartChunked(200, binary_frames ? "application/octet-stream"
                                             : "application/x-ndjson")
           .ok()) {
    return false;  // cursor closes via its destructor: nothing leaks
  }

  // Drive the cursor batch-by-batch; each batch leaves the server before
  // the next is pulled, so resident result bytes stay O(batch).
  bool first = true;
  while (true) {
    storage::Table batch;
    auto more = (*cursor)->Next(&batch);
    if (!more.ok()) {
      // The 200 is committed; the typed code travels in an error frame.
      mid_stream_errors_.fetch_add(1);
      std::string payload = "{\"type\":\"error\",\"code\":";
      AppendJsonString(StatusCodeToString(more.status().code()), &payload);
      payload.append(",\"error\":");
      AppendJsonString(more.status().message(), &payload);
      payload.push_back('}');
      if (!WriteFrame(writer, binary_frames, std::move(payload)).ok()) {
        return false;
      }
      return writer->FinishChunked().ok();
    }
    if (!*more) break;
    if (first) {
      first = false;
      std::string payload = "{\"type\":\"schema\",\"columns\":[";
      for (size_t c = 0; c < batch.num_columns(); ++c) {
        if (c > 0) payload.push_back(',');
        payload.append("{\"name\":");
        AppendJsonString(batch.column_name(c), &payload);
        payload.append(",\"type\":");
        AppendJsonString(storage::DataTypeToString(batch.schema()[c].type),
                         &payload);
        payload.push_back('}');
      }
      payload.append("]}");
      if (!WriteFrame(writer, binary_frames, std::move(payload)).ok()) {
        return false;  // client gone: the cursor Close releases everything
      }
    }
    if (batch.num_rows() == 0) continue;
    std::string payload = "{\"type\":\"batch\",\"rows\":[";
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      if (r > 0) payload.push_back(',');
      AppendJsonRow(batch, r, &payload);
    }
    payload.append("]}");
    batches_streamed_.fetch_add(1);
    rows_streamed_.fetch_add(batch.num_rows());
    if (!WriteFrame(writer, binary_frames, std::move(payload)).ok()) {
      return false;
    }
  }

  const engine::ExecutionReport& report = (*cursor)->report();
  char tail[192];
  std::snprintf(tail, sizeof(tail),
                "{\"type\":\"end\",\"rows\":%llu,\"ticket\":%llu,"
                "\"queue_wait_seconds\":%.6f,\"peak_buffered_bytes\":%llu}",
                static_cast<unsigned long long>((*cursor)->rows_streamed()),
                static_cast<unsigned long long>(report.ticket_id),
                report.queue_wait_seconds,
                static_cast<unsigned long long>(
                    (*cursor)->peak_buffered_bytes()));
  queries_ok_.fetch_add(1);
  if (!WriteFrame(writer, binary_frames, tail).ok()) return false;
  return writer->FinishChunked().ok();
}

bool QueryServer::HandleStats(HttpResponseWriter* writer) {
  core::WarehouseStats ws = warehouse_->Stats();
  ServerCounters sc = counters();
  char body[512];
  std::snprintf(
      body, sizeof(body),
      "{\"queries_admitted\":%llu,\"queries_timed_out\":%llu,"
      "\"queries_active\":%zu,\"queries_waiting\":%zu,"
      "\"connections\":%llu,\"queries_ok\":%llu,"
      "\"queries_rejected\":%llu,\"mid_stream_errors\":%llu,"
      "\"batches_streamed\":%llu,\"rows_streamed\":%llu}",
      static_cast<unsigned long long>(ws.queries_admitted),
      static_cast<unsigned long long>(ws.queries_timed_out),
      ws.queries_active, ws.queries_waiting,
      static_cast<unsigned long long>(sc.connections),
      static_cast<unsigned long long>(sc.queries_ok),
      static_cast<unsigned long long>(sc.queries_rejected),
      static_cast<unsigned long long>(sc.mid_stream_errors),
      static_cast<unsigned long long>(sc.batches_streamed),
      static_cast<unsigned long long>(sc.rows_streamed));
  return writer->WriteFull(200, "application/json", body).ok();
}

}  // namespace lazyetl::server
