// Minimal blocking client for the QueryServer wire protocol — the test
// and load-generator counterpart of server.h. Connects, POSTs one query,
// decodes the chunked frame stream, and returns it structurally so tests
// can compare streamed rows byte-for-byte against a materialized run.

#ifndef LAZYETL_SERVER_CLIENT_H_
#define LAZYETL_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace lazyetl::server {

struct ClientOptions {
  std::string priority;        // "" = omit the header
  std::string client_id;       // "" = omit
  int64_t queue_timeout_ms = 0;  // 0 = omit; < 0 = never time out
  bool binary_frames = false;    // X-Lazyetl-Format: frames
};

struct StreamedQueryResult {
  int http_status = 0;
  // Non-200: the JSON error body; 200: empty.
  std::string error_body;
  // Decoded 200-stream, in arrival order.
  std::string schema_json;            // the schema frame's columns array
  std::vector<std::string> rows;      // one "[v,v,...]" JSON text per row
  size_t batch_frames = 0;
  bool saw_end = false;
  uint64_t end_rows = 0;
  uint64_t ticket = 0;
  uint64_t peak_buffered_bytes = 0;
  // Mid-stream error frame ("" = none).
  std::string error_code;
  std::string error_message;
};

// Runs one query over a fresh connection. Transport-level failures
// (connect/recv) fail the Result; HTTP and in-stream errors come back in
// the StreamedQueryResult fields.
Result<StreamedQueryResult> RunStreamedQuery(const std::string& host,
                                             int port, const std::string& sql,
                                             const ClientOptions& options = {});

// GETs `target` (e.g. "/stats") and returns the response body; fails on
// transport errors or a non-200 status.
Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& target);

}  // namespace lazyetl::server

#endif  // LAZYETL_SERVER_CLIENT_H_
