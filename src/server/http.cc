#include "server/http.h"

#include <sys/socket.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lazyetl::server {

namespace {

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return s;
}

std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

}  // namespace

Status SendAll(int fd, std::string_view data) {
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send failed: ") +
                             std::strerror(errno));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<HttpRequest> ReadHttpRequest(int fd, size_t max_bytes) {
  std::string buf;
  size_t head_end = std::string::npos;
  bool first_read = true;
  while (true) {
    head_end = buf.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (buf.size() > max_bytes) {
      return Status::InvalidArgument("request head too large");
    }
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO fired. On an idle keep-alive connection that is a
        // poll tick (the caller re-checks its stop flag and retries); a
        // half-received request is a dead client.
        if (buf.empty()) return Status::DeadlineExceeded("idle connection");
        return Status::IOError("request read timed out");
      }
      return Status::IOError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      // Clean close before any bytes = the peer is done with the
      // connection, not an error worth logging.
      if (first_read && buf.empty()) {
        return Status::NotFound("connection closed");
      }
      return Status::IOError("connection closed mid-request");
    }
    first_read = false;
    buf.append(chunk, static_cast<size_t>(n));
  }

  HttpRequest req;
  std::string_view head(buf.data(), head_end);
  size_t line_end = head.find("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos
                   ? std::string_view::npos
                   : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return Status::InvalidArgument("malformed request line");
  }
  req.method = std::string(request_line.substr(0, sp1));
  req.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));

  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    std::string_view line = head.substr(
        pos, eol == std::string_view::npos ? head.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? head.size() : eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    req.headers[Lower(Trim(line.substr(0, colon)))] =
        Trim(line.substr(colon + 1));
  }

  size_t body_len = 0;
  auto it = req.headers.find("content-length");
  if (it != req.headers.end()) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0' || v > max_bytes) {
      return Status::InvalidArgument("bad content-length");
    }
    body_len = static_cast<size_t>(v);
  }

  req.body = buf.substr(head_end + 4);
  while (req.body.size() < body_len) {
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) return Status::IOError("connection closed mid-body");
    req.body.append(chunk, static_cast<size_t>(n));
  }
  req.body.resize(body_len);
  return req;
}

const char* HttpStatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

Status HttpResponseWriter::WriteFull(int status_code,
                                     const std::string& content_type,
                                     std::string_view body) {
  char head[256];
  int n = std::snprintf(head, sizeof(head),
                        "HTTP/1.1 %d %s\r\n"
                        "Content-Type: %s\r\n"
                        "Content-Length: %zu\r\n"
                        "\r\n",
                        status_code, HttpStatusText(status_code),
                        content_type.c_str(), body.size());
  std::string out(head, static_cast<size_t>(n));
  out.append(body);
  return SendAll(fd_, out);
}

Status HttpResponseWriter::StartChunked(int status_code,
                                        const std::string& content_type) {
  char head[256];
  int n = std::snprintf(head, sizeof(head),
                        "HTTP/1.1 %d %s\r\n"
                        "Content-Type: %s\r\n"
                        "Transfer-Encoding: chunked\r\n"
                        "\r\n",
                        status_code, HttpStatusText(status_code),
                        content_type.c_str());
  return SendAll(fd_, std::string_view(head, static_cast<size_t>(n)));
}

Status HttpResponseWriter::WriteChunk(std::string_view data) {
  if (data.empty()) return Status::OK();  // 0-size means terminator
  char size_line[32];
  int n = std::snprintf(size_line, sizeof(size_line), "%zx\r\n", data.size());
  std::string out(size_line, static_cast<size_t>(n));
  out.append(data);
  out.append("\r\n");
  return SendAll(fd_, out);
}

Status HttpResponseWriter::FinishChunked() {
  return SendAll(fd_, "0\r\n\r\n");
}

}  // namespace lazyetl::server
