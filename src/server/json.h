// JSON encoding of result tables for the wire protocol. Both the server
// (streaming batches) and the parity tests (encoding a materialized
// Query() result as the expected stream) use these helpers, so
// "streamed ≡ materialized" is compared on identical bytes.

#ifndef LAZYETL_SERVER_JSON_H_
#define LAZYETL_SERVER_JSON_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "storage/table.h"

namespace lazyetl::server {

// Appends `s` as a JSON string literal (quotes included).
void AppendJsonString(std::string_view s, std::string* out);

// Appends cell (row, col) as a JSON value: bools as true/false, integers
// and timestamps as decimal integers (timestamps stay nanosecond-exact),
// doubles via %.17g (round-trippable; NaN/Inf become null — JSON has no
// spelling for them), strings as escaped literals.
void AppendJsonValue(const storage::Table& t, size_t row, size_t col,
                     std::string* out);

// Appends row `row` as a JSON array "[v,v,...]".
void AppendJsonRow(const storage::Table& t, size_t row, std::string* out);

// All rows of `t`, one "[v,v,...]" string each, in order.
std::vector<std::string> JsonRows(const storage::Table& t);

// The schema as a JSON array: [{"name":"F.station","type":"string"},...].
std::string JsonSchema(const storage::Table& t);

}  // namespace lazyetl::server

#endif  // LAZYETL_SERVER_JSON_H_
