#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/macros.h"
#include "server/http.h"

namespace lazyetl::server {

namespace {

Result<int> Connect(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  return fd;
}

// Reads the full response: status line, headers, body (chunked or
// Content-Length decoded).
Result<std::pair<int, std::string>> ReadResponse(int fd) {
  std::string buf;
  size_t head_end;
  while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return Status::IOError("connection closed in response head");
    buf.append(chunk, static_cast<size_t>(n));
  }
  std::string head = buf.substr(0, head_end);
  std::string rest = buf.substr(head_end + 4);

  size_t sp = head.find(' ');
  if (sp == std::string::npos) return Status::IOError("bad status line");
  int status = std::atoi(head.c_str() + sp + 1);

  bool chunked = head.find("Transfer-Encoding: chunked") != std::string::npos;
  size_t content_length = 0;
  size_t cl = head.find("Content-Length:");
  if (cl != std::string::npos) {
    content_length = std::strtoull(head.c_str() + cl + 15, nullptr, 10);
  }

  auto fill = [&](size_t want) -> Status {
    while (rest.size() < want) {
      char chunk[4096];
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("recv: ") + std::strerror(errno));
      }
      if (n == 0) return Status::IOError("connection closed in body");
      rest.append(chunk, static_cast<size_t>(n));
    }
    return Status::OK();
  };

  if (!chunked) {
    LAZYETL_RETURN_NOT_OK(fill(content_length));
    return std::make_pair(status, rest.substr(0, content_length));
  }

  // De-chunk: hex size line, payload, trailing CRLF; 0-size terminates.
  std::string body;
  size_t pos = 0;
  while (true) {
    size_t eol;
    while ((eol = rest.find("\r\n", pos)) == std::string::npos) {
      LAZYETL_RETURN_NOT_OK(fill(rest.size() + 1));
    }
    size_t chunk_len = std::strtoull(rest.c_str() + pos, nullptr, 16);
    size_t data_at = eol + 2;
    if (chunk_len == 0) break;
    LAZYETL_RETURN_NOT_OK(fill(data_at + chunk_len + 2));
    body.append(rest, data_at, chunk_len);
    pos = data_at + chunk_len + 2;
  }
  return std::make_pair(status, std::move(body));
}

// Splits the stream body into frame payloads.
std::vector<std::string> SplitFrames(const std::string& body, bool binary) {
  std::vector<std::string> frames;
  if (!binary) {
    size_t pos = 0;
    while (pos < body.size()) {
      size_t nl = body.find('\n', pos);
      if (nl == std::string::npos) nl = body.size();
      if (nl > pos) frames.push_back(body.substr(pos, nl - pos));
      pos = nl + 1;
    }
    return frames;
  }
  size_t pos = 0;
  while (pos + 4 <= body.size()) {
    uint32_t len = static_cast<uint8_t>(body[pos]) |
                   (static_cast<uint8_t>(body[pos + 1]) << 8) |
                   (static_cast<uint8_t>(body[pos + 2]) << 16) |
                   (static_cast<uint8_t>(body[pos + 3]) << 24);
    pos += 4;
    if (pos + len > body.size()) break;  // truncated stream
    frames.push_back(body.substr(pos, len));
    pos += len;
  }
  return frames;
}

// "key":"value" extractor (value must not contain escaped quotes — true
// for the code strings this is used on).
std::string ExtractString(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\":\"";
  size_t at = json.find(needle);
  if (at == std::string::npos) return "";
  size_t begin = at + needle.size();
  std::string out;
  for (size_t i = begin; i < json.size(); ++i) {
    if (json[i] == '\\' && i + 1 < json.size()) {
      out.push_back(json[++i]);
      continue;
    }
    if (json[i] == '"') break;
    out.push_back(json[i]);
  }
  return out;
}

uint64_t ExtractUint(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t at = json.find(needle);
  if (at == std::string::npos) return 0;
  return std::strtoull(json.c_str() + at + needle.size(), nullptr, 10);
}

// Appends the row texts of a batch frame ({"type":"batch","rows":[[..],
// [..]]}) to `rows`: walks the top-level elements of the rows array with
// bracket-depth and in-string tracking, so strings containing brackets
// or commas cannot split a row.
void ExtractRows(const std::string& payload, std::vector<std::string>* rows) {
  size_t at = payload.find("\"rows\":[");
  if (at == std::string::npos) return;
  size_t i = at + 8;  // first char after the array '['
  int depth = 0;
  bool in_string = false;
  size_t row_begin = std::string::npos;
  for (; i < payload.size(); ++i) {
    char c = payload[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '[') {
      if (depth == 0) row_begin = i;
      ++depth;
    } else if (c == ']') {
      if (depth == 0) break;  // end of the rows array
      --depth;
      if (depth == 0) {
        rows->push_back(payload.substr(row_begin, i - row_begin + 1));
      }
    }
  }
}

}  // namespace

Result<StreamedQueryResult> RunStreamedQuery(const std::string& host,
                                             int port, const std::string& sql,
                                             const ClientOptions& options) {
  LAZYETL_ASSIGN_OR_RETURN(int fd, Connect(host, port));

  std::string req = "POST /query HTTP/1.1\r\nHost: " + host + "\r\n";
  if (!options.priority.empty()) {
    req += "X-Lazyetl-Priority: " + options.priority + "\r\n";
  }
  if (!options.client_id.empty()) {
    req += "X-Lazyetl-Client-Id: " + options.client_id + "\r\n";
  }
  if (options.queue_timeout_ms != 0) {
    req += "X-Lazyetl-Queue-Timeout-Ms: " +
           std::to_string(options.queue_timeout_ms) + "\r\n";
  }
  if (options.binary_frames) req += "X-Lazyetl-Format: frames\r\n";
  req += "Content-Length: " + std::to_string(sql.size()) + "\r\n\r\n" + sql;

  Status sent = SendAll(fd, req);
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }
  auto response = ReadResponse(fd);
  ::close(fd);
  LAZYETL_RETURN_NOT_OK(response.status());

  StreamedQueryResult out;
  out.http_status = response->first;
  if (out.http_status != 200) {
    out.error_body = response->second;
    return out;
  }
  for (const std::string& frame :
       SplitFrames(response->second, options.binary_frames)) {
    std::string type = ExtractString(frame, "type");
    if (type == "schema") {
      size_t at = frame.find("\"columns\":");
      if (at != std::string::npos) {
        out.schema_json = frame.substr(at + 10);
        if (!out.schema_json.empty() && out.schema_json.back() == '}') {
          out.schema_json.pop_back();  // the frame's closing brace
        }
      }
    } else if (type == "batch") {
      ++out.batch_frames;
      ExtractRows(frame, &out.rows);
    } else if (type == "end") {
      out.saw_end = true;
      out.end_rows = ExtractUint(frame, "rows");
      out.ticket = ExtractUint(frame, "ticket");
      out.peak_buffered_bytes = ExtractUint(frame, "peak_buffered_bytes");
    } else if (type == "error") {
      out.error_code = ExtractString(frame, "code");
      out.error_message = ExtractString(frame, "error");
    }
  }
  return out;
}

Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& target) {
  LAZYETL_ASSIGN_OR_RETURN(int fd, Connect(host, port));
  std::string req =
      "GET " + target + " HTTP/1.1\r\nHost: " + host + "\r\n\r\n";
  Status sent = SendAll(fd, req);
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }
  auto response = ReadResponse(fd);
  ::close(fd);
  LAZYETL_RETURN_NOT_OK(response.status());
  if (response->first != 200) {
    return Status::IOError("GET " + target + " -> HTTP " +
                           std::to_string(response->first));
  }
  return response->second;
}

}  // namespace lazyetl::server
