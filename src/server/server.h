// QueryServer: the wire-protocol serving front-end over a shared
// Warehouse. Accepts SQL over HTTP and streams the result through a
// Warehouse::QueryCursor, so server-side resident result bytes stay
// O(cursor window × batch) regardless of result size, and a slow client
// back-pressures morsel dispatch instead of buffering the result.
//
// Protocol
//   POST /query        body = the SQL text. Admission headers:
//     X-Lazyetl-Priority          low | normal | high  (default normal)
//     X-Lazyetl-Client-Id         fair-share tenant key (default "")
//     X-Lazyetl-Queue-Timeout-Ms  admission-queue timeout; < 0 = never
//     X-Lazyetl-Format            ndjson (default) | frames
//   A pre-stream failure (parse/bind error, unknown table, admission
//   timeout) is a plain HTTP error with a JSON body {"error","code"}:
//   400 invalid/parse/bind, 404 not-found, 503 deadline-exceeded,
//   500 otherwise. On success the response is a chunked stream of
//   frames; `ndjson` frames are single JSON lines, `frames` are
//   [u32 little-endian payload length][payload] with identical payloads:
//     {"type":"schema","columns":[{"name","type"},...]}   first
//     {"type":"batch","rows":[[...],[...]]}               0 or more
//     {"type":"end","rows":N,"ticket":T,"queue_wait_seconds":W,
//      "peak_buffered_bytes":B}                           success
//     {"type":"error","code":"DEADLINE_EXCEEDED",...}     failure mid-
//   stream (the HTTP 200 is already committed by then — typed status
//   codes travel in the frame instead).
//   GET /stats         warehouse + serving counters as JSON.
//   GET /healthz       200 "ok".
//
// Lifecycle: Start binds/listens and spawns the accept loop;
// connections are served one thread each and joined by Stop, which also
// closes the listener. Every cursor is closed on every exit path
// (clean end, mid-stream error, client disconnect), so an abandoned
// stream releases its admission ticket, budget carve and spill
// directory exactly once.

#ifndef LAZYETL_SERVER_SERVER_H_
#define LAZYETL_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/warehouse.h"
#include "server/http.h"

namespace lazyetl::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = OS-assigned ephemeral port; see port() after Start
  size_t max_request_bytes = 1 << 20;
};

// Racy snapshot of the serving counters.
struct ServerCounters {
  uint64_t connections = 0;
  uint64_t queries_ok = 0;        // streams that reached the end frame
  uint64_t queries_rejected = 0;  // pre-stream failures (HTTP error)
  uint64_t mid_stream_errors = 0; // error frames emitted after the 200
  uint64_t batches_streamed = 0;
  uint64_t rows_streamed = 0;
};

class QueryServer {
 public:
  // `warehouse` must outlive the server and is shared with any direct
  // Query() callers — admission is one scheduler either way.
  explicit QueryServer(core::Warehouse* warehouse, ServerOptions options = {});
  ~QueryServer();  // implies Stop()

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  Status Start();
  void Stop();

  // The bound port (valid after a successful Start).
  int port() const { return port_; }

  ServerCounters counters() const;

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  // Handles one request; returns false when the connection must close
  // (write failure or protocol error).
  bool HandleRequest(const HttpRequest& req, int fd);
  bool HandleQuery(const HttpRequest& req, HttpResponseWriter* writer);
  bool HandleStats(HttpResponseWriter* writer);

  core::Warehouse* warehouse_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;

  std::atomic<uint64_t> connections_total_{0};
  std::atomic<uint64_t> queries_ok_{0};
  std::atomic<uint64_t> queries_rejected_{0};
  std::atomic<uint64_t> mid_stream_errors_{0};
  std::atomic<uint64_t> batches_streamed_{0};
  std::atomic<uint64_t> rows_streamed_{0};
};

}  // namespace lazyetl::server

#endif  // LAZYETL_SERVER_SERVER_H_
