// lazyetl_serverd: stand-alone serving daemon. Opens a warehouse, attaches
// (or generates) an mSEED repository, and serves the wire protocol of
// server.h until SIGINT/SIGTERM, then shuts down cleanly — in-flight
// streams are cut, every cursor releases its ticket/budget/spill state,
// and the process exits 0.
//
// Usage:
//   lazyetl_serverd --attach /data/orfeus-pond [--port 8123] [--host H]
//                   [--strategy lazy|eager|filename] [--max-concurrent N]
//                   [--aging-ms N] [--generate DIR]

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/warehouse.h"
#include "mseed/repository.h"
#include "server/server.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--attach ROOT]... [--generate DIR] [--port P] [--host H]\n"
      "          [--strategy lazy|eager|filename] [--max-concurrent N]\n"
      "          [--aging-ms N]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using lazyetl::core::LoadStrategy;
  using lazyetl::core::Warehouse;
  using lazyetl::core::WarehouseOptions;
  using lazyetl::server::QueryServer;
  using lazyetl::server::ServerOptions;

  WarehouseOptions wh_options;
  ServerOptions srv_options;
  std::vector<std::string> roots;
  std::string generate_dir;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--attach") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      roots.push_back(v);
    } else if (arg == "--generate") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      generate_dir = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      srv_options.port = std::atoi(v);
    } else if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      srv_options.host = v;
    } else if (arg == "--strategy") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::strcmp(v, "lazy") == 0) {
        wh_options.strategy = LoadStrategy::kLazy;
      } else if (std::strcmp(v, "eager") == 0) {
        wh_options.strategy = LoadStrategy::kEager;
      } else if (std::strcmp(v, "filename") == 0) {
        wh_options.strategy = LoadStrategy::kLazyFilenameOnly;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--max-concurrent") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      wh_options.max_concurrent_queries =
          static_cast<size_t>(std::atoll(v));
    } else if (arg == "--aging-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      wh_options.priority_aging_ms = std::atoll(v);
    } else {
      return Usage(argv[0]);
    }
  }
  if (roots.empty() && generate_dir.empty()) return Usage(argv[0]);

  // Block the shutdown signals before any thread exists, so the accept
  // and connection threads inherit the mask and only main sees them.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  if (!generate_dir.empty()) {
    auto repo = lazyetl::mseed::GenerateRepository(
        generate_dir, lazyetl::mseed::DefaultDemoConfig());
    if (!repo.ok()) {
      std::fprintf(stderr, "generate failed: %s\n",
                   repo.status().ToString().c_str());
      return 1;
    }
    roots.push_back(generate_dir);
  }

  wh_options.echo_log = true;
  auto wh = Warehouse::Open(wh_options);
  if (!wh.ok()) {
    std::fprintf(stderr, "open failed: %s\n", wh.status().ToString().c_str());
    return 1;
  }
  for (const std::string& root : roots) {
    auto stats = (*wh)->AttachRepository(root);
    if (!stats.ok()) {
      std::fprintf(stderr, "attach %s failed: %s\n", root.c_str(),
                   stats.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "attached %s: %zu files in %.3fs\n", root.c_str(),
                 stats->files, stats->seconds);
  }

  QueryServer server(wh->get(), srv_options);
  auto started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "serving on %s:%d (SIGINT/SIGTERM to stop)\n",
               srv_options.host.c_str(), server.port());

  int sig = 0;
  sigwait(&sigs, &sig);
  std::fprintf(stderr, "signal %d: shutting down\n", sig);
  server.Stop();
  return 0;
}
