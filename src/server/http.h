// Minimal blocking HTTP/1.1 plumbing for the serving front-end: just
// enough protocol to read one request off a connected socket and answer
// it — either whole (Content-Length) or as a chunked stream, which is how
// query results leave the server batch by batch without ever being
// materialized. No TLS, no pipelining, no multipart; request heads are
// size-capped so a misbehaving client cannot balloon server memory.

#ifndef LAZYETL_SERVER_HTTP_H_
#define LAZYETL_SERVER_HTTP_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace lazyetl::server {

// One parsed request. Header names are lowercased (HTTP headers are
// case-insensitive); values are trimmed of surrounding whitespace.
struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string target;  // origin-form, e.g. "/query"
  std::map<std::string, std::string> headers;
  std::string body;
};

// Reads exactly one request from `fd` (blocking). Fails with NotFound on
// a clean EOF before any bytes (client closed an idle keep-alive
// connection), IOError on socket errors or EOF mid-request, and
// InvalidArgument on malformed framing or a head/body larger than
// `max_bytes`.
Result<HttpRequest> ReadHttpRequest(int fd, size_t max_bytes = 1 << 20);

// Sends the whole buffer (MSG_NOSIGNAL: a dead peer surfaces as IOError,
// never as SIGPIPE).
Status SendAll(int fd, std::string_view data);

const char* HttpStatusText(int code);

// Response writer over a connected socket. Exactly one of WriteFull or
// StartChunked ... WriteChunk* ... FinishChunked per request.
class HttpResponseWriter {
 public:
  explicit HttpResponseWriter(int fd) : fd_(fd) {}

  // Complete response with a Content-Length body.
  Status WriteFull(int status_code, const std::string& content_type,
                   std::string_view body);

  // Response head with Transfer-Encoding: chunked; stream the body with
  // WriteChunk and terminate with FinishChunked.
  Status StartChunked(int status_code, const std::string& content_type);
  Status WriteChunk(std::string_view data);
  Status FinishChunked();

 private:
  int fd_;
};

}  // namespace lazyetl::server

#endif  // LAZYETL_SERVER_HTTP_H_
