#include "server/json.h"

#include <cmath>
#include <cstdio>

#include "storage/column.h"
#include "storage/types.h"

namespace lazyetl::server {

using storage::DataType;
using storage::Table;

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonValue(const Table& t, size_t row, size_t col,
                     std::string* out) {
  const storage::Column& column = t.column(col);
  char buf[32];
  switch (column.type()) {
    case DataType::kBool:
      out->append(column.bool_data()[row] ? "true" : "false");
      break;
    case DataType::kInt32:
      std::snprintf(buf, sizeof(buf), "%d", column.int32_data()[row]);
      out->append(buf);
      break;
    case DataType::kInt64:
    case DataType::kTimestamp:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(column.int64_data()[row]));
      out->append(buf);
      break;
    case DataType::kDouble: {
      double v = column.double_data()[row];
      if (!std::isfinite(v)) {
        out->append("null");
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        out->append(buf);
      }
      break;
    }
    case DataType::kString:
      AppendJsonString(column.StringAt(row), out);
      break;
  }
}

void AppendJsonRow(const Table& t, size_t row, std::string* out) {
  out->push_back('[');
  for (size_t c = 0; c < t.num_columns(); ++c) {
    if (c > 0) out->push_back(',');
    AppendJsonValue(t, row, c, out);
  }
  out->push_back(']');
}

std::vector<std::string> JsonRows(const Table& t) {
  std::vector<std::string> rows;
  rows.reserve(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::string row;
    AppendJsonRow(t, r, &row);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string JsonSchema(const Table& t) {
  std::string out = "[";
  for (size_t c = 0; c < t.num_columns(); ++c) {
    if (c > 0) out.push_back(',');
    out.append("{\"name\":");
    AppendJsonString(t.column_name(c), &out);
    out.append(",\"type\":");
    AppendJsonString(storage::DataTypeToString(t.schema()[c].type), &out);
    out.push_back('}');
  }
  out.push_back(']');
  return out;
}

}  // namespace lazyetl::server
