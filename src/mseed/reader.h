// Reading miniSEED files: header-only metadata scans and selective or full
// waveform decodes.
//
// The asymmetry between ScanMetadata (a few dozen bytes per record, seeking
// over the data areas) and ReadFull (decode every Steim frame) is exactly
// the cost gap the paper's lazy initial loading exploits.

#ifndef LAZYETL_MSEED_READER_H_
#define LAZYETL_MSEED_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/time.h"
#include "mseed/record.h"

namespace lazyetl::mseed {

// Size and modification time of a file (mtime drives cache staleness).
struct FileStatInfo {
  uint64_t size = 0;
  NanoTime mtime = 0;
};

Result<FileStatInfo> StatFile(const std::string& path);

// One record's metadata plus where it lives in the file.
struct RecordInfo {
  RecordHeader header;
  uint64_t file_offset = 0;
};

// Per-file metadata: the paper's F-table row plus one R-table row per record.
struct FileMetadata {
  std::string path;
  uint64_t file_size = 0;
  NanoTime mtime = 0;
  std::vector<RecordInfo> records;

  // Aggregates over records (valid when !records.empty()).
  std::string network;
  std::string station;
  std::string location;
  std::string channel;
  char quality = 'D';
  NanoTime start_time = 0;
  NanoTime end_time = 0;
  double sample_rate = 0.0;
  uint64_t total_samples = 0;

  // Bytes actually read from disk during the scan (cost accounting for the
  // initial-loading experiments).
  uint64_t bytes_read = 0;
};

// Scans record headers only: for each record reads a small prefix, then
// seeks to the next record using the length from blockette 1000.
Result<FileMetadata> ScanMetadata(const std::string& path);

// Decodes the waveform of a single record.
Result<std::vector<int32_t>> ReadRecordSamples(const std::string& path,
                                               const RecordInfo& info);

// Decodes a subset of records in one pass over the file. `record_indexes`
// index into `metadata.records` and must be sorted ascending. Returns one
// sample vector per requested record, in the same order.
Result<std::vector<std::vector<int32_t>>> ReadSelectedRecords(
    const FileMetadata& metadata, const std::vector<size_t>& record_indexes);

// Full eager read: metadata plus every record's samples.
struct FullFile {
  FileMetadata metadata;
  std::vector<std::vector<int32_t>> record_samples;  // parallel to records
};

Result<FullFile> ReadFull(const std::string& path);

}  // namespace lazyetl::mseed

#endif  // LAZYETL_MSEED_READER_H_
