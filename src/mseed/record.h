// miniSEED 2.4 data record structures: fixed data header, BTime, and the
// blockettes this library reads and writes (1000, 100).
//
// A miniSEED record is a fixed-size block (512 or 4096 bytes here) laid out
// big-endian:
//
//   offset  0  fixed section of data header (48 bytes)
//   offset 48  blockette 1000 (8 bytes)   -- encoding, word order, length
//   offset 56  blockette 100 (12 bytes)   -- optional, actual sample rate
//   offset 64  data area (Steim frames or raw integers)
//
// The fixed header's ASCII fields (station, channel, ...) are the record's
// metadata; the paper's lazy ETL loads only these (plus file stat info)
// during initial loading.

#ifndef LAZYETL_MSEED_RECORD_H_
#define LAZYETL_MSEED_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/time.h"

namespace lazyetl::mseed {

inline constexpr size_t kFixedHeaderBytes = 48;
inline constexpr size_t kBlockette1000Bytes = 8;
inline constexpr size_t kBlockette100Bytes = 12;
// Offset where waveform data starts in records written by this library.
inline constexpr size_t kDataOffset = 64;

// SEED BTIME: the on-disk broken-down UTC time (10 bytes).
struct BTime {
  uint16_t year = 1970;     // e.g. 2010
  uint16_t day_of_year = 1; // 1..366
  uint8_t hour = 0;
  uint8_t minute = 0;
  uint8_t second = 0;
  uint16_t fract = 0;       // 0.0001 s units, 0..9999

  // Conversions to/from library nanosecond timestamps. BTime resolution is
  // 100 microseconds; FromNano truncates.
  static BTime FromNano(NanoTime t);
  Result<NanoTime> ToNano() const;
};

// SEED data encoding codes (blockette 1000 field 4) supported here.
enum class DataEncoding : uint8_t {
  kInt16 = 1,   // uncompressed big-endian int16
  kInt32 = 3,   // uncompressed big-endian int32
  kSteim1 = 10,
  kSteim2 = 11,
};

const char* DataEncodingToString(DataEncoding e);
Result<DataEncoding> DataEncodingFromCode(uint8_t code);

// Converts the SEED (factor, multiplier) pair to samples per second.
// factor > 0: samples/second; factor < 0: seconds/sample; multiplier > 0:
// multiplies; < 0: divides. factor == 0 means "no rate" and yields 0.
double SampleRateFromFactors(int16_t factor, int16_t multiplier);

// Finds a (factor, multiplier) pair representing `rate` exactly for
// integral rates and common fractional ones; falls back to the nearest
// integral factor otherwise.
void SampleRateToFactors(double rate, int16_t* factor, int16_t* multiplier);

// Parsed fixed header + blockette 1000/100 contents; everything lazy ETL
// treats as *record metadata*.
struct RecordHeader {
  int32_t sequence_number = 1;        // 6 ASCII digits on disk
  char quality_indicator = 'D';       // D, R, Q, or M
  std::string station;                // <=5 chars
  std::string location;               // <=2 chars
  std::string channel;                // <=3 chars
  std::string network;                // <=2 chars
  BTime start_time;
  uint16_t num_samples = 0;
  int16_t sample_rate_factor = 0;
  int16_t sample_rate_multiplier = 1;
  uint8_t activity_flags = 0;
  uint8_t io_flags = 0;
  uint8_t quality_flags = 0;
  uint8_t num_blockettes = 0;
  int32_t time_correction = 0;        // 0.0001 s units
  uint16_t data_offset = kDataOffset;
  uint16_t first_blockette_offset = kFixedHeaderBytes;

  // From blockette 1000:
  DataEncoding encoding = DataEncoding::kSteim2;
  bool big_endian = true;
  uint32_t record_length = 512;       // 2^power bytes

  // From optional blockette 100 (0 when absent):
  double actual_sample_rate = 0.0;
  bool has_blockette100 = false;

  // Derived helpers.
  double SampleRate() const;
  Result<NanoTime> StartTime() const;   // includes time correction
  // End time = start + (num_samples - 1) / rate (time of the last sample).
  Result<NanoTime> EndTime() const;

  // "NET.STA.LOC.CHAN" source identifier.
  std::string SourceId() const;
};

// Serialises the header + blockette 1000 (+100 when present) into the first
// kDataOffset bytes of `record` (which must hold >= kDataOffset bytes).
Status EncodeRecordHeader(const RecordHeader& header, uint8_t* record);

// Parses a record prefix. `available` must be >= kFixedHeaderBytes; the
// blockette chain is followed as far as `available` allows. Returns the
// parsed header; the caller learns the true record length from it.
Result<RecordHeader> DecodeRecordHeader(const uint8_t* record,
                                        size_t available);

// Decodes the waveform samples of a full record buffer (header + data area
// of `header.record_length` bytes) according to `header.encoding`.
Result<std::vector<int32_t>> DecodeRecordData(const RecordHeader& header,
                                              const uint8_t* record,
                                              size_t record_bytes);

}  // namespace lazyetl::mseed

#endif  // LAZYETL_MSEED_RECORD_H_
