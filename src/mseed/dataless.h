// Dataless SEED: ASCII control headers describing a seismic network's
// stations and channels.
//
// §4 of the paper: "a SEED volume has several ASCII control headers. The
// control headers contain the metadata." Full SEED volumes carry them
// inline; archives usually distribute them as a separate "dataless SEED"
// file next to the waveform repository. This module reads and writes the
// subset needed for a station inventory:
//
//   blockette 010  volume identifier (version, record length, label)
//   blockette 050  station identifier (code, coordinates, site, network)
//   blockette 052  channel identifier (location/channel codes, coordinates,
//                  depth, azimuth, dip, sample rate)
//
// On-disk format follows the SEED control-header conventions: fixed-size
// logical records (4096 bytes here) beginning with a 8-byte sequence header
// ("000001V "), packed with ASCII blockettes of the form TTTLLLL<fields>
// where TTT is the 3-digit blockette type and LLLL the 4-digit total
// length; variable-length fields are '~'-terminated.

#ifndef LAZYETL_MSEED_DATALESS_H_
#define LAZYETL_MSEED_DATALESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/time.h"

namespace lazyetl::mseed {

inline constexpr size_t kControlRecordBytes = 4096;
inline constexpr const char* kDatalessFilename = "dataless.seed";

struct VolumeHeader {
  std::string version = "02.4";
  std::string organization = "lazyetl";
  std::string label;
  NanoTime start_time = 0;
  NanoTime end_time = 0;
};

struct ChannelIdentifier {
  std::string location;  // <=2 chars
  std::string channel;   // <=3 chars
  double latitude = 0;
  double longitude = 0;
  double elevation = 0;      // metres
  double local_depth = 0;    // metres below surface
  double azimuth = 0;        // degrees from north
  double dip = 0;            // degrees from horizontal (-90 = up)
  double sample_rate = 0;    // Hz
};

struct StationIdentifier {
  std::string station;    // <=5 chars
  std::string network;    // <=2 chars
  std::string site_name;  // free text
  double latitude = 0;
  double longitude = 0;
  double elevation = 0;
  std::vector<ChannelIdentifier> channels;
};

struct StationInventory {
  VolumeHeader volume;
  std::vector<StationIdentifier> stations;

  // Finds a station by (network, station); nullptr when absent.
  const StationIdentifier* Find(const std::string& network,
                                const std::string& station) const;
};

// Serialises the inventory into control records at `path`.
Status WriteDataless(const std::string& path,
                     const StationInventory& inventory);

// Parses a dataless SEED file written by WriteDataless (or any file using
// the same blockette subset).
Result<StationInventory> ReadDataless(const std::string& path);

// True if `filename` (basename) looks like a dataless volume.
bool IsDatalessFilename(const std::string& filename);

}  // namespace lazyetl::mseed

#endif  // LAZYETL_MSEED_DATALESS_H_
