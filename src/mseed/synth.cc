#include "mseed/synth.h"

#include <cmath>
#include <random>

namespace lazyetl::mseed {

std::vector<int32_t> GenerateSeismogram(size_t num_samples,
                                        const SynthOptions& opt) {
  std::mt19937_64 rng(opt.seed);
  std::normal_distribution<double> noise(0.0, opt.noise_stddev);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  const double event_prob =
      opt.sample_rate > 0 ? opt.events_per_hour / (3600.0 * opt.sample_rate)
                          : 0.0;
  const double two_pi_f = 2.0 * M_PI * opt.event_frequency_hz;

  std::vector<int32_t> out(num_samples);
  double n = 0.0;  // AR(1) state
  // Active event bursts: (samples since start, amplitude).
  struct Burst {
    double t = 0;       // seconds since burst start
    double amplitude = 0;
  };
  std::vector<Burst> bursts;
  const double dt = opt.sample_rate > 0 ? 1.0 / opt.sample_rate : 0.0;

  for (size_t i = 0; i < num_samples; ++i) {
    n = opt.ar_coefficient * n + noise(rng);
    double v = n + opt.dc_offset;

    if (uni(rng) < event_prob) {
      bursts.push_back({0.0, opt.event_amplitude * (0.5 + uni(rng))});
    }
    for (auto& b : bursts) {
      v += b.amplitude * std::exp(-b.t / opt.event_decay_seconds) *
           std::sin(two_pi_f * b.t);
      b.t += dt;
    }
    // Drop bursts that decayed below one count.
    std::erase_if(bursts, [&](const Burst& b) {
      return b.amplitude * std::exp(-b.t / opt.event_decay_seconds) < 1.0;
    });

    // Clamp to a safe band so Steim-2 differences always fit.
    if (v > 5e8) v = 5e8;
    if (v < -5e8) v = -5e8;
    out[i] = static_cast<int32_t>(std::lround(v));
  }
  return out;
}

uint64_t ChannelDaySeed(const std::string& network, const std::string& station,
                        const std::string& location,
                        const std::string& channel, int year, int day_of_year,
                        uint64_t base_seed) {
  // FNV-1a over the identity fields, mixed with the base seed.
  uint64_t h = 14695981039346656037ULL ^ base_seed;
  auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    h ^= '.';
    h *= 1099511628211ULL;
  };
  mix(network);
  mix(station);
  mix(location);
  mix(channel);
  h ^= static_cast<uint64_t>(year) * 1000003ULL;
  h *= 1099511628211ULL;
  h ^= static_cast<uint64_t>(day_of_year);
  h *= 1099511628211ULL;
  return h;
}

}  // namespace lazyetl::mseed
