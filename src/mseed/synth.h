// Synthetic seismogram generation.
//
// Substitutes the ORFEUS data pond (remote FTP repository of real
// seismograms) with deterministic, realistic-looking waveforms: AR(1)
// coloured microseismic background noise plus occasional seismic "events"
// modelled as exponentially decaying sinusoid bursts. Amplitudes stay in a
// range whose first-order differences comfortably fit Steim-2, matching
// real broadband channel data.

#ifndef LAZYETL_MSEED_SYNTH_H_
#define LAZYETL_MSEED_SYNTH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lazyetl::mseed {

struct SynthOptions {
  double sample_rate = 40.0;
  // Background noise: AR(1) process n[i] = ar * n[i-1] + N(0, stddev).
  double noise_stddev = 35.0;
  double ar_coefficient = 0.97;
  // Events: at each sample an event starts with probability
  // events_per_hour / (3600 * rate); the burst is
  // A * exp(-t/decay) * sin(2*pi*f*t).
  double events_per_hour = 6.0;
  double event_amplitude = 9000.0;
  double event_decay_seconds = 6.0;
  double event_frequency_hz = 1.8;
  // DC offset typical of real digitisers.
  int32_t dc_offset = 0;
  uint64_t seed = 42;
};

// Generates `num_samples` int32 counts.
std::vector<int32_t> GenerateSeismogram(size_t num_samples,
                                        const SynthOptions& options);

// Stable seed derived from a channel identity and a day, so repositories
// regenerate identically file by file.
uint64_t ChannelDaySeed(const std::string& network, const std::string& station,
                        const std::string& location,
                        const std::string& channel, int year, int day_of_year,
                        uint64_t base_seed);

}  // namespace lazyetl::mseed

#endif  // LAZYETL_MSEED_SYNTH_H_
