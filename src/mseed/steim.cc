#include "mseed/steim.h"

#include <cstring>
#include <string>

#include "common/byte_io.h"

namespace lazyetl::mseed {
namespace {

// Two-bit nibble codes stored in word 0 of each frame.
enum Nibble : uint32_t {
  kNibbleSpecial = 0,  // frame header, X0, Xn, or padding word
  kNibbleBytes = 1,    // four 8-bit differences (both Steim-1 and Steim-2)
  kNibble2 = 2,        // Steim-1: two 16-bit; Steim-2: dnib-selected
  kNibble3 = 3,        // Steim-1: one 32-bit; Steim-2: dnib-selected
};

// True iff v fits a `bits`-wide two's-complement field.
inline bool Fits(int64_t v, int bits) {
  const int64_t lo = -(int64_t{1} << (bits - 1));
  const int64_t hi = (int64_t{1} << (bits - 1)) - 1;
  return v >= lo && v <= hi;
}

// Computes the wrapped 32-bit first-order differences of `samples`.
std::vector<int32_t> Differences(const std::vector<int32_t>& samples,
                                 int32_t prev_sample) {
  std::vector<int32_t> diffs(samples.size());
  uint32_t prev = static_cast<uint32_t>(prev_sample);
  for (size_t i = 0; i < samples.size(); ++i) {
    uint32_t cur = static_cast<uint32_t>(samples[i]);
    diffs[i] = static_cast<int32_t>(cur - prev);
    prev = cur;
  }
  return diffs;
}

// Incremental frame writer: appends words with their nibble codes, opening
// new frames as needed, up to max_frames. Frame 0 reserves words 1-2 for the
// integration constants.
class FrameBuilder {
 public:
  explicit FrameBuilder(size_t max_frames) : max_frames_(max_frames) {}

  // Returns false if the frame budget is exhausted.
  bool Append(uint32_t word, uint32_t nibble) {
    if (word_index_ == kWordsPerFrame || frames_.empty()) {
      if (NumFrames() >= max_frames_) return false;
      OpenFrame();
    }
    SetNibble(word_index_, nibble);
    WriteBE32(CurrentFrame() + word_index_ * 4, word);
    ++word_index_;
    return true;
  }

  // True if at least one more data word can be appended.
  bool HasSpace() const {
    return word_index_ < kWordsPerFrame || NumFrames() < max_frames_;
  }

  void PatchIntegrationConstants(int32_t x0, int32_t xn) {
    WriteBE32s(frames_.data() + 4, x0);
    WriteBE32s(frames_.data() + 8, xn);
  }

  std::vector<uint8_t> TakeFrames() { return std::move(frames_); }

  size_t NumFrames() const { return frames_.size() / kSteimFrameBytes; }

 private:
  void OpenFrame() {
    bool first = frames_.empty();
    frames_.resize(frames_.size() + kSteimFrameBytes, 0);
    word_index_ = 1;  // word 0 is the nibble word
    if (first) {
      // Words 1 and 2 of the first frame hold X0/Xn; their nibbles stay 00.
      word_index_ = 3;
    }
  }

  uint8_t* CurrentFrame() {
    return frames_.data() + frames_.size() - kSteimFrameBytes;
  }

  void SetNibble(size_t word, uint32_t nibble) {
    uint8_t* frame = CurrentFrame();
    uint32_t w0 = ReadBE32(frame);
    int shift = 30 - static_cast<int>(word) * 2;
    w0 &= ~(0x3u << shift);
    w0 |= nibble << shift;
    WriteBE32(frame, w0);
  }

  size_t max_frames_;
  std::vector<uint8_t> frames_;
  size_t word_index_ = kWordsPerFrame;  // forces OpenFrame on first Append
};

// Shared greedy encode driver. `choose` inspects diffs[pos..] and returns
// the packing as (count, word, nibble); count==0 signals an unencodable
// difference (Steim-2 >30-bit case).
struct Packing {
  size_t count = 0;
  uint32_t word = 0;
  uint32_t nibble = 0;
};

template <typename ChooseFn>
Result<SteimEncodeResult> EncodeImpl(const std::vector<int32_t>& samples,
                                     size_t max_frames, int32_t prev_sample,
                                     ChooseFn choose) {
  if (max_frames == 0) {
    return Status::InvalidArgument("steim encode: max_frames must be > 0");
  }
  SteimEncodeResult result;
  if (samples.empty()) return result;

  std::vector<int32_t> diffs = Differences(samples, prev_sample);
  FrameBuilder builder(max_frames);
  size_t pos = 0;
  while (pos < diffs.size()) {
    Packing p = choose(diffs, pos);
    if (p.count == 0) {
      return Status::CorruptData(
          "steim2 encode: difference exceeds 30 bits at sample " +
          std::to_string(pos));
    }
    if (!builder.Append(p.word, p.nibble)) break;  // frame budget exhausted
    pos += p.count;
  }
  result.samples_encoded = pos;
  if (pos > 0) {
    builder.PatchIntegrationConstants(samples[0], samples[pos - 1]);
  }
  result.frames = builder.TakeFrames();
  return result;
}

Packing ChooseSteim1(const std::vector<int32_t>& d, size_t pos) {
  size_t left = d.size() - pos;
  auto fit_run = [&](size_t n, int bits) {
    if (left < n) return false;
    for (size_t i = 0; i < n; ++i) {
      if (!Fits(d[pos + i], bits)) return false;
    }
    return true;
  };
  Packing p;
  if (fit_run(4, 8)) {
    p.count = 4;
    p.nibble = kNibbleBytes;
    for (size_t i = 0; i < 4; ++i) {
      p.word |= (static_cast<uint32_t>(d[pos + i]) & 0xFFu) << (24 - 8 * i);
    }
  } else if (fit_run(2, 16)) {
    p.count = 2;
    p.nibble = kNibble2;
    p.word = ((static_cast<uint32_t>(d[pos]) & 0xFFFFu) << 16) |
             (static_cast<uint32_t>(d[pos + 1]) & 0xFFFFu);
  } else {
    p.count = 1;
    p.nibble = kNibble3;
    p.word = static_cast<uint32_t>(d[pos]);
  }
  return p;
}

// Packs `n` values of `bits` width into the low bits of a word, first value
// in the highest field.
uint32_t PackFields(const std::vector<int32_t>& d, size_t pos, size_t n,
                    int bits) {
  uint32_t word = 0;
  uint32_t mask = (bits == 32) ? 0xFFFFFFFFu : ((1u << bits) - 1);
  for (size_t i = 0; i < n; ++i) {
    int shift = static_cast<int>((n - 1 - i)) * bits;
    word |= (static_cast<uint32_t>(d[pos + i]) & mask) << shift;
  }
  return word;
}

Packing ChooseSteim2(const std::vector<int32_t>& d, size_t pos) {
  size_t left = d.size() - pos;
  auto fit_run = [&](size_t n, int bits) {
    if (left < n) return false;
    for (size_t i = 0; i < n; ++i) {
      if (!Fits(d[pos + i], bits)) return false;
    }
    return true;
  };
  Packing p;
  if (fit_run(7, 4)) {
    p.count = 7;
    p.nibble = kNibble3;
    p.word = (0x2u << 30) | PackFields(d, pos, 7, 4);
  } else if (fit_run(6, 5)) {
    p.count = 6;
    p.nibble = kNibble3;
    p.word = (0x1u << 30) | PackFields(d, pos, 6, 5);
  } else if (fit_run(5, 6)) {
    p.count = 5;
    p.nibble = kNibble3;
    p.word = (0x0u << 30) | PackFields(d, pos, 5, 6);
  } else if (fit_run(4, 8)) {
    p.count = 4;
    p.nibble = kNibbleBytes;
    p.word = PackFields(d, pos, 4, 8);
  } else if (fit_run(3, 10)) {
    p.count = 3;
    p.nibble = kNibble2;
    p.word = (0x3u << 30) | PackFields(d, pos, 3, 10);
  } else if (fit_run(2, 15)) {
    p.count = 2;
    p.nibble = kNibble2;
    p.word = (0x2u << 30) | PackFields(d, pos, 2, 15);
  } else if (fit_run(1, 30)) {
    p.count = 1;
    p.nibble = kNibble2;
    p.word = (0x1u << 30) | (static_cast<uint32_t>(d[pos]) & 0x3FFFFFFFu);
  } else {
    p.count = 0;  // difference too large for Steim-2
  }
  return p;
}

// Sign-extends the low `bits` of `v`.
inline int32_t SignExtend(uint32_t v, int bits) {
  uint32_t mask = (bits == 32) ? 0xFFFFFFFFu : ((1u << bits) - 1);
  v &= mask;
  uint32_t sign = 1u << (bits - 1);
  if (v & sign) v |= ~mask;
  return static_cast<int32_t>(v);
}

// Decode driver shared by both codecs. `expand` appends the differences
// encoded in one data word.
template <typename ExpandFn>
Result<std::vector<int32_t>> DecodeImpl(const uint8_t* frames,
                                        size_t num_bytes,
                                        size_t expected_samples,
                                        ExpandFn expand, const char* codec) {
  if (expected_samples == 0) return std::vector<int32_t>{};
  if (frames == nullptr || num_bytes == 0 ||
      num_bytes % kSteimFrameBytes != 0) {
    return Status::CorruptData(std::string(codec) +
                               " decode: data area is not a multiple of 64 "
                               "bytes or empty");
  }
  size_t num_frames = num_bytes / kSteimFrameBytes;
  int32_t x0 = 0;
  int32_t xn = 0;
  std::vector<int32_t> diffs;
  diffs.reserve(expected_samples);

  for (size_t f = 0; f < num_frames && diffs.size() < expected_samples; ++f) {
    const uint8_t* frame = frames + f * kSteimFrameBytes;
    uint32_t w0 = ReadBE32(frame);
    for (size_t w = 1; w < kWordsPerFrame && diffs.size() < expected_samples;
         ++w) {
      uint32_t nibble = (w0 >> (30 - 2 * w)) & 0x3u;
      uint32_t word = ReadBE32(frame + 4 * w);
      if (f == 0 && w == 1) {
        x0 = static_cast<int32_t>(word);
        continue;
      }
      if (f == 0 && w == 2) {
        xn = static_cast<int32_t>(word);
        continue;
      }
      if (nibble == kNibbleSpecial) continue;  // padding
      expand(word, nibble, &diffs);
    }
  }

  if (diffs.size() < expected_samples) {
    return Status::CorruptData(
        std::string(codec) + " decode: expected " +
        std::to_string(expected_samples) + " samples, found " +
        std::to_string(diffs.size()));
  }

  std::vector<int32_t> samples(expected_samples);
  samples[0] = x0;
  uint32_t acc = static_cast<uint32_t>(x0);
  for (size_t i = 1; i < expected_samples; ++i) {
    acc += static_cast<uint32_t>(diffs[i]);
    samples[i] = static_cast<int32_t>(acc);
  }
  if (samples.back() != xn) {
    return Status::CorruptData(
        std::string(codec) +
        " decode: reverse integration constant mismatch (expected " +
        std::to_string(xn) + ", got " + std::to_string(samples.back()) + ")");
  }
  return samples;
}

void ExpandSteim1(uint32_t word, uint32_t nibble, std::vector<int32_t>* out) {
  switch (nibble) {
    case kNibbleBytes:
      for (int i = 0; i < 4; ++i) {
        out->push_back(SignExtend(word >> (24 - 8 * i), 8));
      }
      break;
    case kNibble2:
      out->push_back(SignExtend(word >> 16, 16));
      out->push_back(SignExtend(word, 16));
      break;
    case kNibble3:
      out->push_back(static_cast<int32_t>(word));
      break;
    default:
      break;
  }
}

void ExpandSteim2(uint32_t word, uint32_t nibble, std::vector<int32_t>* out) {
  uint32_t dnib = word >> 30;
  switch (nibble) {
    case kNibbleBytes:
      for (int i = 0; i < 4; ++i) {
        out->push_back(SignExtend(word >> (24 - 8 * i), 8));
      }
      break;
    case kNibble2:
      if (dnib == 0x1) {
        out->push_back(SignExtend(word, 30));
      } else if (dnib == 0x2) {
        out->push_back(SignExtend(word >> 15, 15));
        out->push_back(SignExtend(word, 15));
      } else if (dnib == 0x3) {
        for (int i = 0; i < 3; ++i) {
          out->push_back(SignExtend(word >> (20 - 10 * i), 10));
        }
      }
      break;
    case kNibble3:
      if (dnib == 0x0) {
        for (int i = 0; i < 5; ++i) {
          out->push_back(SignExtend(word >> (24 - 6 * i), 6));
        }
      } else if (dnib == 0x1) {
        for (int i = 0; i < 6; ++i) {
          out->push_back(SignExtend(word >> (25 - 5 * i), 5));
        }
      } else if (dnib == 0x2) {
        for (int i = 0; i < 7; ++i) {
          out->push_back(SignExtend(word >> (24 - 4 * i), 4));
        }
      }
      break;
    default:
      break;
  }
}

}  // namespace

Result<SteimEncodeResult> Steim1Encode(const std::vector<int32_t>& samples,
                                       size_t max_frames,
                                       int32_t prev_sample) {
  return EncodeImpl(samples, max_frames, prev_sample, ChooseSteim1);
}

Result<SteimEncodeResult> Steim2Encode(const std::vector<int32_t>& samples,
                                       size_t max_frames,
                                       int32_t prev_sample) {
  return EncodeImpl(samples, max_frames, prev_sample, ChooseSteim2);
}

Result<std::vector<int32_t>> Steim1Decode(const uint8_t* frames,
                                          size_t num_bytes,
                                          size_t expected_samples) {
  return DecodeImpl(frames, num_bytes, expected_samples, ExpandSteim1,
                    "steim1");
}

Result<std::vector<int32_t>> Steim2Decode(const uint8_t* frames,
                                          size_t num_bytes,
                                          size_t expected_samples) {
  return DecodeImpl(frames, num_bytes, expected_samples, ExpandSteim2,
                    "steim2");
}

bool FitsSteim2(const std::vector<int32_t>& samples, int32_t prev_sample) {
  std::vector<int32_t> diffs = Differences(samples, prev_sample);
  for (int32_t d : diffs) {
    if (!Fits(d, 30)) return false;
  }
  return true;
}

}  // namespace lazyetl::mseed
