#include "mseed/repository.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "common/macros.h"
#include "common/string_util.h"
#include "mseed/dataless.h"
#include "mseed/reader.h"

namespace lazyetl::mseed {

namespace fs = std::filesystem;

std::vector<StationSpec> DefaultDemoStations() {
  return {
      // Dutch national network (Fig. 1, Q2: network 'NL', channel 'BHZ').
      {"NL", "HGN", "02", {"BHZ", "BHN", "BHE"}, 40.0, 50.764, 5.9317, 135.0,
       "HEIMANSGROEVE, NETHERLANDS"},
      {"NL", "WIT", "01", {"BHZ", "BHN", "BHE"}, 40.0, 52.8136, 6.6697, 1.0,
       "WITTEVEEN, NETHERLANDS"},
      {"NL", "OPLO", "01", {"BHZ", "BHN", "BHE"}, 40.0, 51.5888, 5.8121, 27.0,
       "OPLOO, NETHERLANDS"},
      // Kandilli Observatory, Istanbul (Fig. 1, Q1: station 'ISK',
      // channel 'BHE').
      {"KO", "ISK", "", {"BHZ", "BHN", "BHE"}, 40.0, 41.0663, 29.0597, 132.0,
       "ISTANBUL-KANDILLI, TURKEY"},
      // A German GEOFON station for variety.
      {"GE", "APE", "", {"BHZ", "BHN"}, 40.0, 37.0689, 25.5306, 620.0,
       "APEIRANTHOS, NAXOS, GREECE"},
  };
}

// Conventional orientation of a channel from its last letter: Z vertical,
// N north, E east.
static void ChannelOrientation(const std::string& channel, double* azimuth,
                               double* dip) {
  char c = channel.empty() ? 'Z' : channel.back();
  if (c == 'Z') {
    *azimuth = 0.0;
    *dip = -90.0;
  } else if (c == 'N') {
    *azimuth = 0.0;
    *dip = 0.0;
  } else {
    *azimuth = 90.0;
    *dip = 0.0;
  }
}

RepositoryConfig DefaultDemoConfig() {
  RepositoryConfig cfg;
  cfg.stations = DefaultDemoStations();
  cfg.start_year = 2010;
  cfg.start_day_of_year = 10;  // Jan 10; Q1 queries Jan 12 = doy 12
  cfg.num_days = 3;
  cfg.segments_per_day = 1;
  cfg.seconds_per_segment = 120.0;
  return cfg;
}

std::string SdsFilename(const std::string& network, const std::string& station,
                        const std::string& location,
                        const std::string& channel, char quality, int year,
                        int day_of_year, int segment, int segments_per_day) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%c.%04d.%03d", quality, year, day_of_year);
  std::string name =
      network + "." + station + "." + location + "." + channel + "." + buf;
  if (segments_per_day > 1) {
    char seg[8];
    std::snprintf(seg, sizeof(seg), ".%02d", segment);
    name += seg;
  }
  return name;
}

Result<FilenameMetadata> ParseSdsFilename(const std::string& filename) {
  std::vector<std::string> parts = Split(filename, '.');
  // NET.STA.LOC.CHAN.QUAL.YEAR.DOY or with trailing .SEG
  if (parts.size() != 7 && parts.size() != 8) {
    return Status::ParseError("not an SDS filename: " + filename);
  }
  FilenameMetadata md;
  md.network = parts[0];
  md.station = parts[1];
  md.location = parts[2];
  md.channel = parts[3];
  if (parts[4].size() != 1) {
    return Status::ParseError("bad quality field in SDS filename: " + filename);
  }
  md.quality = parts[4][0];
  try {
    md.year = std::stoi(parts[5]);
    md.day_of_year = std::stoi(parts[6]);
    md.segment = parts.size() == 8 ? std::stoi(parts[7]) : 0;
  } catch (...) {
    return Status::ParseError("bad numeric field in SDS filename: " + filename);
  }
  if (md.year < 1900 || md.year > 2200 || md.day_of_year < 1 ||
      md.day_of_year > 366) {
    return Status::ParseError("year/doy out of range in SDS filename: " +
                              filename);
  }
  return md;
}

Result<GeneratedRepository> GenerateRepository(const std::string& root,
                                               const RepositoryConfig& cfg) {
  if (cfg.stations.empty()) {
    return Status::InvalidArgument("repository config has no stations");
  }
  if (cfg.num_days < 1 || cfg.segments_per_day < 1 ||
      cfg.seconds_per_segment <= 0) {
    return Status::InvalidArgument("repository config has empty extent");
  }

  GeneratedRepository repo;
  repo.root = root;

  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return Status::IOError("cannot create repository root " + root + ": " +
                           ec.message());
  }

  if (cfg.write_dataless) {
    StationInventory inventory;
    inventory.volume.label = "lazyetl synthetic repository";
    CivilTime vol_start;
    vol_start.year = cfg.start_year;
    LAZYETL_RETURN_NOT_OK(MonthDayFromDayOfYear(
        cfg.start_year, cfg.start_day_of_year, &vol_start.month,
        &vol_start.day));
    LAZYETL_ASSIGN_OR_RETURN(inventory.volume.start_time,
                             CivilToNano(vol_start));
    inventory.volume.end_time =
        inventory.volume.start_time + cfg.num_days * kNanosPerDay;
    for (const StationSpec& st : cfg.stations) {
      StationIdentifier station;
      station.station = st.station;
      station.network = st.network;
      station.site_name = st.site_name;
      station.latitude = st.latitude;
      station.longitude = st.longitude;
      station.elevation = st.elevation;
      for (const std::string& chan : st.channels) {
        ChannelIdentifier channel;
        channel.location = st.location;
        channel.channel = chan;
        channel.latitude = st.latitude;
        channel.longitude = st.longitude;
        channel.elevation = st.elevation;
        channel.sample_rate = st.sample_rate;
        ChannelOrientation(chan, &channel.azimuth, &channel.dip);
        station.channels.push_back(std::move(channel));
      }
      inventory.stations.push_back(std::move(station));
    }
    fs::path dataless = fs::path(root) / kDatalessFilename;
    LAZYETL_RETURN_NOT_OK(WriteDataless(dataless.string(), inventory));
    repo.dataless_path = dataless.string();
    LAZYETL_ASSIGN_OR_RETURN(FileStatInfo st, StatFile(repo.dataless_path));
    repo.dataless_bytes = st.size;
  }

  for (const StationSpec& st : cfg.stations) {
    for (const std::string& chan : st.channels) {
      for (int d = 0; d < cfg.num_days; ++d) {
        int year = cfg.start_year;
        int doy = cfg.start_day_of_year + d;
        // Normalise day-of-year overflow into the next year(s).
        while (doy > (IsLeapYear(year) ? 366 : 365)) {
          doy -= IsLeapYear(year) ? 366 : 365;
          ++year;
        }
        CivilTime day_start_ct;
        day_start_ct.year = year;
        LAZYETL_RETURN_NOT_OK(MonthDayFromDayOfYear(
            year, doy, &day_start_ct.month, &day_start_ct.day));
        LAZYETL_ASSIGN_OR_RETURN(NanoTime day_start,
                                 CivilToNano(day_start_ct));

        for (int seg = 0; seg < cfg.segments_per_day; ++seg) {
          TimeSeries series;
          series.network = st.network;
          series.station = st.station;
          series.location = st.location;
          series.channel = chan;
          series.sample_rate = st.sample_rate;
          series.start_time =
              day_start + static_cast<int64_t>(std::llround(
                              seg * cfg.seconds_per_segment * 1e9));
          size_t num_samples = static_cast<size_t>(
              std::llround(cfg.seconds_per_segment * st.sample_rate));

          SynthOptions synth = cfg.synth;
          synth.sample_rate = st.sample_rate;
          synth.seed = ChannelDaySeed(st.network, st.station, st.location,
                                      chan, year, doy, cfg.synth.seed) +
                       static_cast<uint64_t>(seg);
          series.samples = GenerateSeismogram(num_samples, synth);

          char yearbuf[8];
          std::snprintf(yearbuf, sizeof(yearbuf), "%04d", year);
          fs::path dir = fs::path(root) / yearbuf / st.network / st.station /
                         (chan + "." + cfg.writer.quality_indicator);
          fs::create_directories(dir, ec);
          if (ec) {
            return Status::IOError("cannot create " + dir.string() + ": " +
                                   ec.message());
          }
          std::string name = SdsFilename(
              st.network, st.station, st.location, chan,
              cfg.writer.quality_indicator, year, doy, seg,
              cfg.segments_per_day);
          fs::path path = dir / name;

          LAZYETL_ASSIGN_OR_RETURN(
              WriteStats stats,
              WriteMseedFile(path.string(), series, cfg.writer));

          GeneratedFile gf;
          gf.path = path.string();
          gf.network = st.network;
          gf.station = st.station;
          gf.location = st.location;
          gf.channel = chan;
          gf.start_time = series.start_time;
          gf.sample_rate = st.sample_rate;
          gf.num_samples = stats.samples_written;
          gf.num_records = stats.num_records;
          gf.bytes = stats.bytes_written;
          repo.total_bytes += stats.bytes_written;
          repo.total_samples += stats.samples_written;
          repo.total_records += stats.num_records;
          repo.files.push_back(std::move(gf));
        }
      }
    }
  }
  return repo;
}

Result<std::vector<ScannedFile>> ScanRepository(const std::string& root) {
  std::error_code ec;
  if (!fs::is_directory(root, ec) || ec) {
    return Status::NotFound("repository root is not a directory: " + root);
  }
  std::vector<ScannedFile> files;
  for (auto it = fs::recursive_directory_iterator(
           root, fs::directory_options::skip_permission_denied, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) {
      return Status::IOError("error scanning " + root + ": " + ec.message());
    }
    if (!it->is_regular_file(ec) || ec) continue;
    ScannedFile f;
    f.path = it->path().string();
    LAZYETL_ASSIGN_OR_RETURN(FileStatInfo st, StatFile(f.path));
    f.size = st.size;
    f.mtime = st.mtime;
    files.push_back(std::move(f));
  }
  std::sort(files.begin(), files.end(),
            [](const ScannedFile& a, const ScannedFile& b) {
              return a.path < b.path;
            });
  return files;
}

}  // namespace lazyetl::mseed
