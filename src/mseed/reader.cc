#include "mseed/reader.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/macros.h"

namespace lazyetl::mseed {
namespace {

// Bytes read per record during a metadata scan: fixed header (48) +
// blockette 1000 (8) + optional blockette 100 (12), rounded up.
constexpr size_t kHeaderProbeBytes = 128;

// Fills the file-level aggregates of `md` from its record list.
Status Summarize(FileMetadata* md) {
  if (md->records.empty()) {
    return Status::CorruptData("mSEED file has no records: " + md->path);
  }
  const RecordHeader& first = md->records.front().header;
  md->network = first.network;
  md->station = first.station;
  md->location = first.location;
  md->channel = first.channel;
  md->quality = first.quality_indicator;
  md->sample_rate = first.SampleRate();
  LAZYETL_ASSIGN_OR_RETURN(md->start_time, first.StartTime());
  LAZYETL_ASSIGN_OR_RETURN(md->end_time, md->records.back().header.EndTime());
  md->total_samples = 0;
  for (const auto& r : md->records) {
    md->total_samples += r.header.num_samples;
    LAZYETL_ASSIGN_OR_RETURN(NanoTime rs, r.header.StartTime());
    LAZYETL_ASSIGN_OR_RETURN(NanoTime re, r.header.EndTime());
    md->start_time = std::min(md->start_time, rs);
    md->end_time = std::max(md->end_time, re);
  }
  return Status::OK();
}

}  // namespace

Result<FileStatInfo> StatFile(const std::string& path) {
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("cannot stat " + path);
  }
  FileStatInfo info;
  info.size = static_cast<uint64_t>(st.st_size);
  info.mtime = static_cast<NanoTime>(st.st_mtim.tv_sec) * kNanosPerSecond +
               st.st_mtim.tv_nsec;
  return info;
}

Result<FileMetadata> ScanMetadata(const std::string& path) {
  LAZYETL_ASSIGN_OR_RETURN(FileStatInfo st, StatFile(path));
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open " + path);
  }

  FileMetadata md;
  md.path = path;
  md.file_size = st.size;
  md.mtime = st.mtime;

  uint64_t offset = 0;
  uint8_t buf[kHeaderProbeBytes];
  while (offset < st.size) {
    size_t want = static_cast<size_t>(
        std::min<uint64_t>(kHeaderProbeBytes, st.size - offset));
    in.seekg(static_cast<std::streamoff>(offset));
    in.read(reinterpret_cast<char*>(buf), static_cast<std::streamsize>(want));
    if (in.gcount() != static_cast<std::streamsize>(want)) {
      return Status::IOError("short read at offset " + std::to_string(offset) +
                             " in " + path);
    }
    md.bytes_read += want;
    auto header = DecodeRecordHeader(buf, want);
    if (!header.ok()) {
      return header.status().WithContext("record at offset " +
                                         std::to_string(offset) + " of " +
                                         path);
    }
    if (offset + header->record_length > st.size) {
      return Status::CorruptData("truncated final record in " + path);
    }
    RecordInfo info;
    info.header = std::move(*header);
    info.file_offset = offset;
    offset += info.header.record_length;
    md.records.push_back(std::move(info));
  }
  LAZYETL_RETURN_NOT_OK(Summarize(&md));
  return md;
}

Result<std::vector<int32_t>> ReadRecordSamples(const std::string& path,
                                               const RecordInfo& info) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open " + path);
  }
  std::vector<uint8_t> buf(info.header.record_length);
  in.seekg(static_cast<std::streamoff>(info.file_offset));
  in.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(buf.size()));
  if (in.gcount() != static_cast<std::streamsize>(buf.size())) {
    return Status::IOError("short read of record at offset " +
                           std::to_string(info.file_offset) + " in " + path);
  }
  return DecodeRecordData(info.header, buf.data(), buf.size());
}

Result<std::vector<std::vector<int32_t>>> ReadSelectedRecords(
    const FileMetadata& metadata, const std::vector<size_t>& record_indexes) {
  std::ifstream in(metadata.path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open " + metadata.path);
  }
  std::vector<std::vector<int32_t>> out;
  out.reserve(record_indexes.size());
  std::vector<uint8_t> buf;
  for (size_t idx : record_indexes) {
    if (idx >= metadata.records.size()) {
      return Status::InvalidArgument("record index " + std::to_string(idx) +
                                     " out of range for " + metadata.path);
    }
    const RecordInfo& info = metadata.records[idx];
    buf.resize(info.header.record_length);
    in.seekg(static_cast<std::streamoff>(info.file_offset));
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    if (in.gcount() != static_cast<std::streamsize>(buf.size())) {
      return Status::IOError("short read of record " + std::to_string(idx) +
                             " in " + metadata.path);
    }
    auto samples = DecodeRecordData(info.header, buf.data(), buf.size());
    if (!samples.ok()) {
      return samples.status().WithContext("record " + std::to_string(idx) +
                                          " of " + metadata.path);
    }
    out.push_back(std::move(*samples));
  }
  return out;
}

Result<FullFile> ReadFull(const std::string& path) {
  LAZYETL_ASSIGN_OR_RETURN(FileStatInfo st, StatFile(path));
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open " + path);
  }
  // Eager path: one sequential read of the whole file, then decode.
  std::vector<uint8_t> data(st.size);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (in.gcount() != static_cast<std::streamsize>(data.size())) {
    return Status::IOError("short read of " + path);
  }

  FullFile full;
  full.metadata.path = path;
  full.metadata.file_size = st.size;
  full.metadata.mtime = st.mtime;
  full.metadata.bytes_read = st.size;

  uint64_t offset = 0;
  while (offset < st.size) {
    auto header = DecodeRecordHeader(data.data() + offset,
                                     static_cast<size_t>(st.size - offset));
    if (!header.ok()) {
      return header.status().WithContext("record at offset " +
                                         std::to_string(offset) + " of " +
                                         path);
    }
    if (offset + header->record_length > st.size) {
      return Status::CorruptData("truncated final record in " + path);
    }
    RecordInfo info;
    info.header = std::move(*header);
    info.file_offset = offset;
    auto samples = DecodeRecordData(info.header, data.data() + offset,
                                    info.header.record_length);
    if (!samples.ok()) {
      return samples.status().WithContext("record at offset " +
                                          std::to_string(offset) + " of " +
                                          path);
    }
    offset += info.header.record_length;
    full.metadata.records.push_back(std::move(info));
    full.record_samples.push_back(std::move(*samples));
  }
  LAZYETL_RETURN_NOT_OK(Summarize(&full.metadata));
  return full;
}

}  // namespace lazyetl::mseed
