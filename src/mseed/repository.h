// Repository generation and scanning.
//
// A "repository" is a directory tree of mSEED files laid out in the
// SeisComP Data Structure (SDS) convention used by ORFEUS-style archives:
//
//   <root>/<YEAR>/<NET>/<STA>/<CHAN>.<QUAL>/NET.STA.LOC.CHAN.QUAL.YEAR.DOY
//
// The filename itself encodes the channel identity and the day — the
// "metadata encoded in the filename" fast path of the paper (§3: "the file
// does not even need to be read"). When a day is split into multiple
// segment files a numeric segment suffix is appended.

#ifndef LAZYETL_MSEED_REPOSITORY_H_
#define LAZYETL_MSEED_REPOSITORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/time.h"
#include "mseed/synth.h"
#include "mseed/writer.h"

namespace lazyetl::mseed {

// One station contributing channels to a generated repository.
struct StationSpec {
  std::string network;
  std::string station;
  std::string location = "02";
  std::vector<std::string> channels = {"BHZ", "BHN", "BHE"};
  double sample_rate = 40.0;
  // Inventory metadata (written to the dataless SEED volume).
  double latitude = 0;
  double longitude = 0;
  double elevation = 0;
  std::string site_name;
};

struct RepositoryConfig {
  std::vector<StationSpec> stations;
  int start_year = 2010;
  int start_day_of_year = 10;  // Jan 10, 2010 (the paper queries Jan 12)
  int num_days = 3;
  // Each (station, channel, day) produces `segments_per_day` files, each
  // covering `seconds_per_segment` of waveform from the start of the day.
  int segments_per_day = 1;
  double seconds_per_segment = 120.0;
  // Also emit a dataless SEED volume (ASCII control headers) describing
  // the stations and channels, as real archives do.
  bool write_dataless = true;
  WriterOptions writer;
  SynthOptions synth;
};

// Returns the station set used by the demo: Dutch NL network stations plus
// the Kandilli Observatory station ISK queried in Fig. 1.
std::vector<StationSpec> DefaultDemoStations();

// The whole demo configuration (small enough for tests; benches scale it).
RepositoryConfig DefaultDemoConfig();

struct GeneratedFile {
  std::string path;
  std::string network, station, location, channel;
  NanoTime start_time = 0;
  double sample_rate = 0;
  size_t num_samples = 0;
  size_t num_records = 0;
  uint64_t bytes = 0;
};

struct GeneratedRepository {
  std::string root;
  std::vector<GeneratedFile> files;  // waveform files only
  uint64_t total_bytes = 0;          // waveform bytes only
  uint64_t total_samples = 0;
  uint64_t total_records = 0;
  std::string dataless_path;  // empty when write_dataless was false
  uint64_t dataless_bytes = 0;
};

// Generates the repository under `root` (created if missing). Deterministic
// for a fixed config (including synth.seed).
Result<GeneratedRepository> GenerateRepository(const std::string& root,
                                               const RepositoryConfig& config);

// Metadata recoverable from an SDS path alone.
struct FilenameMetadata {
  std::string network, station, location, channel;
  char quality = 'D';
  int year = 0;
  int day_of_year = 0;
  int segment = 0;  // 0 when no segment suffix
};

// Parses "NET.STA.LOC.CHAN.QUAL.YEAR.DOY[.SEG]" (basename of an SDS path).
Result<FilenameMetadata> ParseSdsFilename(const std::string& filename);

// Builds the SDS basename for the given identity.
std::string SdsFilename(const std::string& network, const std::string& station,
                        const std::string& location,
                        const std::string& channel, char quality, int year,
                        int day_of_year, int segment, int segments_per_day);

// A file discovered by scanning a repository directory tree.
struct ScannedFile {
  std::string path;
  uint64_t size = 0;
  NanoTime mtime = 0;
};

// Recursively lists regular files under `root`, sorted by path.
Result<std::vector<ScannedFile>> ScanRepository(const std::string& root);

}  // namespace lazyetl::mseed

#endif  // LAZYETL_MSEED_REPOSITORY_H_
