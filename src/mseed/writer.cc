#include "mseed/writer.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/macros.h"
#include "common/byte_io.h"
#include "mseed/steim.h"

namespace lazyetl::mseed {

NanoTime SampleTimeAt(NanoTime start, double rate, size_t index) {
  if (rate <= 0.0) return start;
  return start + static_cast<int64_t>(
                     std::llround(static_cast<double>(index) * 1e9 / rate));
}

namespace {

Result<std::vector<std::vector<uint8_t>>> BuildRecordsImpl(
    const TimeSeries& series, const WriterOptions& options,
    int32_t first_seq) {
  if (series.sample_rate <= 0.0) {
    return Status::InvalidArgument("sample rate must be positive");
  }
  if (options.record_length < 256 ||
      (options.record_length & (options.record_length - 1)) != 0) {
    return Status::InvalidArgument("record length must be a power of two >= 256");
  }

  const uint16_t data_offset =
      options.write_blockette100 ? 128 : static_cast<uint16_t>(kDataOffset);
  const size_t data_bytes = options.record_length - data_offset;
  const size_t max_frames = data_bytes / kSteimFrameBytes;

  std::vector<std::vector<uint8_t>> records;
  size_t pos = 0;
  int32_t seq = first_seq;
  while (pos < series.samples.size()) {
    std::vector<int32_t> remaining(series.samples.begin() + pos,
                                   series.samples.end());
    int32_t prev = pos > 0 ? series.samples[pos - 1] : series.samples[0];

    size_t taken = 0;
    std::vector<uint8_t> payload;
    switch (options.encoding) {
      case DataEncoding::kSteim1: {
        LAZYETL_ASSIGN_OR_RETURN(SteimEncodeResult enc,
                                 Steim1Encode(remaining, max_frames, prev));
        taken = enc.samples_encoded;
        payload = std::move(enc.frames);
        break;
      }
      case DataEncoding::kSteim2: {
        LAZYETL_ASSIGN_OR_RETURN(SteimEncodeResult enc,
                                 Steim2Encode(remaining, max_frames, prev));
        taken = enc.samples_encoded;
        payload = std::move(enc.frames);
        break;
      }
      case DataEncoding::kInt32: {
        taken = std::min(remaining.size(), data_bytes / 4);
        payload.resize(taken * 4);
        for (size_t i = 0; i < taken; ++i) {
          WriteBE32s(payload.data() + 4 * i, remaining[i]);
        }
        break;
      }
      case DataEncoding::kInt16: {
        taken = std::min(remaining.size(), data_bytes / 2);
        payload.resize(taken * 2);
        for (size_t i = 0; i < taken; ++i) {
          int32_t v = remaining[i];
          if (v < -32768 || v > 32767) {
            return Status::InvalidArgument(
                "sample does not fit int16 encoding: " + std::to_string(v));
          }
          WriteBE16s(payload.data() + 2 * i, static_cast<int16_t>(v));
        }
        break;
      }
    }
    if (taken == 0) {
      return Status::Internal("record packing made no progress");
    }
    if (taken > 65535) {
      // num_samples is a 16-bit field; 512/4096-byte records never hit this.
      taken = 65535;
      payload.clear();  // unreachable with supported record lengths
      return Status::NotImplemented("more than 65535 samples per record");
    }

    RecordHeader h;
    h.sequence_number = seq;
    h.quality_indicator = options.quality_indicator;
    h.station = series.station;
    h.location = series.location;
    h.channel = series.channel;
    h.network = series.network;
    h.start_time = BTime::FromNano(
        SampleTimeAt(series.start_time, series.sample_rate, pos));
    h.num_samples = static_cast<uint16_t>(taken);
    SampleRateToFactors(series.sample_rate, &h.sample_rate_factor,
                        &h.sample_rate_multiplier);
    h.encoding = options.encoding;
    h.record_length = options.record_length;
    h.data_offset = data_offset;
    h.has_blockette100 = options.write_blockette100;
    h.actual_sample_rate = options.write_blockette100 ? series.sample_rate : 0;

    std::vector<uint8_t> record(options.record_length, 0);
    LAZYETL_RETURN_NOT_OK(EncodeRecordHeader(h, record.data()));
    if (payload.size() > options.record_length - data_offset) {
      return Status::Internal("payload exceeds record data area");
    }
    std::memcpy(record.data() + data_offset, payload.data(), payload.size());
    records.push_back(std::move(record));

    pos += taken;
    seq = seq == 999999 ? 1 : seq + 1;
  }
  return records;
}

Result<WriteStats> WriteRecordsToStream(
    const std::vector<std::vector<uint8_t>>& records, std::ofstream* out,
    const std::string& path) {
  WriteStats stats;
  for (const auto& rec : records) {
    out->write(reinterpret_cast<const char*>(rec.data()),
               static_cast<std::streamsize>(rec.size()));
    stats.bytes_written += rec.size();
  }
  stats.num_records = records.size();
  out->flush();
  if (!out->good()) {
    return Status::IOError("failed writing mSEED file " + path);
  }
  return stats;
}

}  // namespace

Result<std::vector<std::vector<uint8_t>>> BuildRecords(
    const TimeSeries& series, const WriterOptions& options) {
  return BuildRecordsImpl(series, options, 1);
}

Result<WriteStats> WriteMseedFile(const std::string& path,
                                  const TimeSeries& series,
                                  const WriterOptions& options) {
  LAZYETL_ASSIGN_OR_RETURN(auto records, BuildRecordsImpl(series, options, 1));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  LAZYETL_ASSIGN_OR_RETURN(WriteStats stats,
                           WriteRecordsToStream(records, &out, path));
  stats.samples_written = series.samples.size();
  return stats;
}

Result<WriteStats> AppendToMseedFile(const std::string& path,
                                     const TimeSeries& series,
                                     const WriterOptions& options,
                                     int32_t first_sequence_number) {
  LAZYETL_ASSIGN_OR_RETURN(
      auto records, BuildRecordsImpl(series, options, first_sequence_number));
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out.is_open()) {
    return Status::IOError("cannot open " + path + " for append");
  }
  LAZYETL_ASSIGN_OR_RETURN(WriteStats stats,
                           WriteRecordsToStream(records, &out, path));
  stats.samples_written = series.samples.size();
  return stats;
}

}  // namespace lazyetl::mseed
