// Steim-1 and Steim-2 waveform compression codecs.
//
// SEED data records carry waveforms as first-order differences packed into
// 64-byte "frames" of sixteen 32-bit big-endian words. Word 0 of each frame
// holds sixteen 2-bit nibble codes describing the remaining words; in the
// first frame of a record, words 1 and 2 hold the forward (X0) and reverse
// (Xn) integration constants used to reconstruct and verify the series.
//
// Steim-1 word packings (nibble):
//   00 special (frame header word / X0 / Xn / unused word)
//   01 four 8-bit differences
//   10 two 16-bit differences
//   11 one 32-bit difference
//
// Steim-2 keeps nibbles 00/01 and adds sub-encodings selected by the top
// two bits of the word ("dnib"):
//   nibble 10: dnib 01 -> one 30-bit, 10 -> two 15-bit, 11 -> three 10-bit
//   nibble 11: dnib 00 -> five 6-bit, 01 -> six 5-bit, 10 -> seven 4-bit
//
// Differences are two's complement. Steim-1 differences use full 32-bit
// wrap-around arithmetic, so any int32 series is encodable. Steim-2 caps a
// single difference at 30 bits; series with larger jumps are rejected with
// CorruptData (matching libmseed behaviour).

#ifndef LAZYETL_MSEED_STEIM_H_
#define LAZYETL_MSEED_STEIM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace lazyetl::mseed {

inline constexpr size_t kSteimFrameBytes = 64;
inline constexpr size_t kWordsPerFrame = 16;

// Result of an encode: the packed frames plus how many of the input samples
// were consumed (encoders stop when the frame budget is full).
struct SteimEncodeResult {
  std::vector<uint8_t> frames;  // multiple of kSteimFrameBytes
  size_t samples_encoded = 0;
};

// Encodes up to `samples.size()` samples into at most `max_frames` frames.
// `prev_sample` is the last sample of the preceding record (used for the
// first difference); pass samples[0] (difference 0) for the first record of
// a series. Always emits at least one frame if any sample is encoded.
Result<SteimEncodeResult> Steim1Encode(const std::vector<int32_t>& samples,
                                       size_t max_frames,
                                       int32_t prev_sample);

Result<SteimEncodeResult> Steim2Encode(const std::vector<int32_t>& samples,
                                       size_t max_frames,
                                       int32_t prev_sample);

// Decodes `expected_samples` samples from `frames` (a whole-record data
// area; must be a multiple of 64 bytes). Verifies the reverse integration
// constant and returns CorruptData on mismatch or truncation.
Result<std::vector<int32_t>> Steim1Decode(const uint8_t* frames,
                                          size_t num_bytes,
                                          size_t expected_samples);

Result<std::vector<int32_t>> Steim2Decode(const uint8_t* frames,
                                          size_t num_bytes,
                                          size_t expected_samples);

// True iff every first-order difference of `samples` (with `prev_sample`
// before the first) fits in a 30-bit two's-complement value, i.e. the series
// is Steim-2 encodable.
bool FitsSteim2(const std::vector<int32_t>& samples, int32_t prev_sample);

}  // namespace lazyetl::mseed

#endif  // LAZYETL_MSEED_STEIM_H_
