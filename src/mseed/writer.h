// Packing time series into miniSEED records and files.

#ifndef LAZYETL_MSEED_WRITER_H_
#define LAZYETL_MSEED_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/time.h"
#include "mseed/record.h"

namespace lazyetl::mseed {

// A contiguous waveform segment from one channel of one station.
struct TimeSeries {
  std::string network;   // <=2 chars, e.g. "NL"
  std::string station;   // <=5 chars, e.g. "HGN"
  std::string location;  // <=2 chars, often "02" or ""
  std::string channel;   // <=3 chars, e.g. "BHZ"
  NanoTime start_time = 0;
  double sample_rate = 40.0;  // samples per second
  std::vector<int32_t> samples;
};

struct WriterOptions {
  uint32_t record_length = 512;  // power of two, >= 256
  DataEncoding encoding = DataEncoding::kSteim2;
  char quality_indicator = 'D';
  bool write_blockette100 = false;  // store the exact rate as a float
};

struct WriteStats {
  size_t num_records = 0;
  size_t samples_written = 0;
  uint64_t bytes_written = 0;
};

// Packs `series` into a sequence of fixed-size records. Record start times
// advance by samples_written / rate; sequence numbers start at 1.
Result<std::vector<std::vector<uint8_t>>> BuildRecords(
    const TimeSeries& series, const WriterOptions& options);

// Writes the records of `series` to `path` (creating parent directories is
// the caller's job). Returns write statistics.
Result<WriteStats> WriteMseedFile(const std::string& path,
                                  const TimeSeries& series,
                                  const WriterOptions& options);

// Appends the records of `series` to an existing file (used by the refresh
// experiments to grow a file in place).
Result<WriteStats> AppendToMseedFile(const std::string& path,
                                     const TimeSeries& series,
                                     const WriterOptions& options,
                                     int32_t first_sequence_number);

// Time of sample `index` in a series starting at `start` with `rate`
// samples/second. Centralised so the writer, the eager loader, and the lazy
// extractor produce bit-identical timestamps.
NanoTime SampleTimeAt(NanoTime start, double rate, size_t index);

}  // namespace lazyetl::mseed

#endif  // LAZYETL_MSEED_WRITER_H_
