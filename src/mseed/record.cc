#include "mseed/record.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/macros.h"
#include "common/byte_io.h"
#include "common/string_util.h"
#include "mseed/steim.h"

namespace lazyetl::mseed {

BTime BTime::FromNano(NanoTime t) {
  CivilTime ct = NanoToCivil(t);
  BTime bt;
  bt.year = static_cast<uint16_t>(ct.year);
  bt.day_of_year = static_cast<uint16_t>(DayOfYear(ct.year, ct.month, ct.day));
  bt.hour = static_cast<uint8_t>(ct.hour);
  bt.minute = static_cast<uint8_t>(ct.minute);
  bt.second = static_cast<uint8_t>(ct.second);
  bt.fract = static_cast<uint16_t>(ct.nanos / 100000);  // 0.0001 s units
  return bt;
}

Result<NanoTime> BTime::ToNano() const {
  CivilTime ct;
  ct.year = year;
  LAZYETL_RETURN_NOT_OK(
      MonthDayFromDayOfYear(year, day_of_year, &ct.month, &ct.day));
  ct.hour = hour;
  ct.minute = minute;
  ct.second = second;
  ct.nanos = static_cast<int64_t>(fract) * 100000;
  return CivilToNano(ct);
}

const char* DataEncodingToString(DataEncoding e) {
  switch (e) {
    case DataEncoding::kInt16:
      return "int16";
    case DataEncoding::kInt32:
      return "int32";
    case DataEncoding::kSteim1:
      return "steim1";
    case DataEncoding::kSteim2:
      return "steim2";
  }
  return "unknown";
}

Result<DataEncoding> DataEncodingFromCode(uint8_t code) {
  switch (code) {
    case 1:
      return DataEncoding::kInt16;
    case 3:
      return DataEncoding::kInt32;
    case 10:
      return DataEncoding::kSteim1;
    case 11:
      return DataEncoding::kSteim2;
    default:
      return Status::NotImplemented("unsupported mSEED data encoding code " +
                                    std::to_string(code));
  }
}

double SampleRateFromFactors(int16_t factor, int16_t multiplier) {
  if (factor == 0) return 0.0;
  double rate = factor > 0 ? static_cast<double>(factor)
                           : -1.0 / static_cast<double>(factor);
  if (multiplier > 0) {
    rate *= static_cast<double>(multiplier);
  } else if (multiplier < 0) {
    rate /= -static_cast<double>(multiplier);
  }
  return rate;
}

void SampleRateToFactors(double rate, int16_t* factor, int16_t* multiplier) {
  if (rate <= 0.0) {
    *factor = 0;
    *multiplier = 1;
    return;
  }
  if (rate >= 1.0 && std::floor(rate) == rate && rate <= 32767.0) {
    *factor = static_cast<int16_t>(rate);
    *multiplier = 1;
    return;
  }
  if (rate < 1.0) {
    double period = 1.0 / rate;
    if (std::floor(period) == period && period <= 32767.0) {
      *factor = static_cast<int16_t>(-period);
      *multiplier = 1;
      return;
    }
  }
  // Fractional rate: encode numerator/denominator over 10000.
  *factor = static_cast<int16_t>(std::lround(rate * 100.0));
  *multiplier = -100;
}

double RecordHeader::SampleRate() const {
  if (has_blockette100 && actual_sample_rate > 0.0) return actual_sample_rate;
  return SampleRateFromFactors(sample_rate_factor, sample_rate_multiplier);
}

Result<NanoTime> RecordHeader::StartTime() const {
  LAZYETL_ASSIGN_OR_RETURN(NanoTime t, start_time.ToNano());
  // Time correction is in 0.0001 s; applied unless the "time correction
  // applied" activity flag (bit 1) is set.
  if (!(activity_flags & 0x02)) {
    t += static_cast<int64_t>(time_correction) * 100000;
  }
  return t;
}

Result<NanoTime> RecordHeader::EndTime() const {
  LAZYETL_ASSIGN_OR_RETURN(NanoTime start, StartTime());
  double rate = SampleRate();
  if (rate <= 0.0 || num_samples == 0) return start;
  int64_t span = static_cast<int64_t>(
      std::llround((num_samples - 1) * 1e9 / rate));
  return start + span;
}

std::string RecordHeader::SourceId() const {
  return network + "." + station + "." + location + "." + channel;
}

Status EncodeRecordHeader(const RecordHeader& h, uint8_t* rec) {
  if (h.station.size() > 5 || h.location.size() > 2 || h.channel.size() > 3 ||
      h.network.size() > 2) {
    return Status::InvalidArgument("mSEED header field too long for " +
                                   h.SourceId());
  }
  if (h.sequence_number < 0 || h.sequence_number > 999999) {
    return Status::InvalidArgument("sequence number out of range: " +
                                   std::to_string(h.sequence_number));
  }
  uint32_t rl = h.record_length;
  int power = 0;
  while ((1u << power) < rl) ++power;
  if ((1u << power) != rl || power < 8 || power > 20) {
    return Status::InvalidArgument("record length must be a power of two: " +
                                   std::to_string(rl));
  }

  std::memset(rec, ' ', kFixedHeaderBytes);
  char seq[8];
  std::snprintf(seq, sizeof(seq), "%06d", h.sequence_number);
  std::memcpy(rec, seq, 6);
  rec[6] = static_cast<uint8_t>(h.quality_indicator);
  rec[7] = ' ';
  std::string sta = FixedWidth(h.station, 5);
  std::string loc = FixedWidth(h.location, 2);
  std::string chan = FixedWidth(h.channel, 3);
  std::string net = FixedWidth(h.network, 2);
  std::memcpy(rec + 8, sta.data(), 5);
  std::memcpy(rec + 13, loc.data(), 2);
  std::memcpy(rec + 15, chan.data(), 3);
  std::memcpy(rec + 18, net.data(), 2);
  WriteBE16(rec + 20, h.start_time.year);
  WriteBE16(rec + 22, h.start_time.day_of_year);
  rec[24] = h.start_time.hour;
  rec[25] = h.start_time.minute;
  rec[26] = h.start_time.second;
  rec[27] = 0;  // unused
  WriteBE16(rec + 28, h.start_time.fract);
  WriteBE16(rec + 30, h.num_samples);
  WriteBE16s(rec + 32, h.sample_rate_factor);
  WriteBE16s(rec + 34, h.sample_rate_multiplier);
  rec[36] = h.activity_flags;
  rec[37] = h.io_flags;
  rec[38] = h.quality_flags;
  rec[39] = static_cast<uint8_t>(h.has_blockette100 ? 2 : 1);
  WriteBE32s(rec + 40, h.time_correction);
  WriteBE16(rec + 44, h.data_offset);
  WriteBE16(rec + 46, kFixedHeaderBytes);

  // Blockette 1000 at offset 48.
  uint8_t* b1000 = rec + kFixedHeaderBytes;
  WriteBE16(b1000, 1000);
  WriteBE16(b1000 + 2,
            h.has_blockette100 ? kFixedHeaderBytes + kBlockette1000Bytes : 0);
  b1000[4] = static_cast<uint8_t>(h.encoding);
  b1000[5] = h.big_endian ? 1 : 0;
  b1000[6] = static_cast<uint8_t>(power);
  b1000[7] = 0;

  if (h.has_blockette100) {
    uint8_t* b100 = rec + kFixedHeaderBytes + kBlockette1000Bytes;
    WriteBE16(b100, 100);
    WriteBE16(b100 + 2, 0);
    float rate = static_cast<float>(h.actual_sample_rate);
    uint32_t bits;
    std::memcpy(&bits, &rate, 4);
    WriteBE32(b100 + 4, bits);
    b100[8] = 0;
    b100[9] = b100[10] = b100[11] = 0;
  }
  return Status::OK();
}

Result<RecordHeader> DecodeRecordHeader(const uint8_t* rec, size_t available) {
  if (available < kFixedHeaderBytes) {
    return Status::CorruptData("record shorter than fixed header");
  }
  RecordHeader h;
  // Sequence number: 6 ASCII digits (spaces tolerated).
  int32_t seq = 0;
  for (int i = 0; i < 6; ++i) {
    char c = static_cast<char>(rec[i]);
    if (c >= '0' && c <= '9') {
      seq = seq * 10 + (c - '0');
    } else if (c != ' ') {
      return Status::CorruptData("invalid sequence number in record header");
    }
  }
  h.sequence_number = seq;
  h.quality_indicator = static_cast<char>(rec[6]);
  if (h.quality_indicator != 'D' && h.quality_indicator != 'R' &&
      h.quality_indicator != 'Q' && h.quality_indicator != 'M') {
    return Status::CorruptData(std::string("invalid quality indicator '") +
                               h.quality_indicator + "'");
  }
  auto ascii_field = [&](size_t off, size_t len) {
    return Trim(std::string(reinterpret_cast<const char*>(rec + off), len));
  };
  h.station = ascii_field(8, 5);
  h.location = ascii_field(13, 2);
  h.channel = ascii_field(15, 3);
  h.network = ascii_field(18, 2);
  h.start_time.year = ReadBE16(rec + 20);
  h.start_time.day_of_year = ReadBE16(rec + 22);
  h.start_time.hour = rec[24];
  h.start_time.minute = rec[25];
  h.start_time.second = rec[26];
  h.start_time.fract = ReadBE16(rec + 28);
  h.num_samples = ReadBE16(rec + 30);
  h.sample_rate_factor = ReadBE16s(rec + 32);
  h.sample_rate_multiplier = ReadBE16s(rec + 34);
  h.activity_flags = rec[36];
  h.io_flags = rec[37];
  h.quality_flags = rec[38];
  h.num_blockettes = rec[39];
  h.time_correction = ReadBE32s(rec + 40);
  h.data_offset = ReadBE16(rec + 44);
  h.first_blockette_offset = ReadBE16(rec + 46);

  // Follow the blockette chain; we need blockette 1000 for the encoding and
  // record length.
  bool have_1000 = false;
  uint16_t off = h.first_blockette_offset;
  int hops = 0;
  while (off != 0 && hops++ < 8) {
    if (static_cast<size_t>(off) + 4 > available) break;  // past our prefix
    uint16_t type = ReadBE16(rec + off);
    uint16_t next = ReadBE16(rec + off + 2);
    if (type == 1000 && off + kBlockette1000Bytes <= available) {
      LAZYETL_ASSIGN_OR_RETURN(h.encoding, DataEncodingFromCode(rec[off + 4]));
      h.big_endian = rec[off + 5] != 0;
      uint8_t power = rec[off + 6];
      if (power < 8 || power > 20) {
        return Status::CorruptData("blockette 1000 record length power " +
                                   std::to_string(power) + " out of range");
      }
      h.record_length = 1u << power;
      have_1000 = true;
    } else if (type == 100 && off + kBlockette100Bytes <= available) {
      uint32_t bits = ReadBE32(rec + off + 4);
      float rate;
      std::memcpy(&rate, &bits, 4);
      h.actual_sample_rate = rate;
      h.has_blockette100 = true;
    }
    if (next != 0 && next <= off) {
      return Status::CorruptData("blockette chain does not advance");
    }
    off = next;
  }
  if (!have_1000) {
    return Status::CorruptData("record missing blockette 1000 for " +
                               h.SourceId());
  }
  if (!h.big_endian) {
    return Status::NotImplemented("little-endian mSEED records");
  }
  if (h.data_offset < kFixedHeaderBytes || h.data_offset >= h.record_length) {
    return Status::CorruptData("data offset " + std::to_string(h.data_offset) +
                               " outside record");
  }
  return h;
}

Result<std::vector<int32_t>> DecodeRecordData(const RecordHeader& h,
                                              const uint8_t* record,
                                              size_t record_bytes) {
  if (record_bytes < h.record_length) {
    return Status::CorruptData("record buffer truncated: have " +
                               std::to_string(record_bytes) + ", need " +
                               std::to_string(h.record_length));
  }
  const uint8_t* data = record + h.data_offset;
  size_t data_bytes = h.record_length - h.data_offset;
  size_t n = h.num_samples;
  switch (h.encoding) {
    case DataEncoding::kSteim1:
      return Steim1Decode(data, data_bytes, n);
    case DataEncoding::kSteim2:
      return Steim2Decode(data, data_bytes, n);
    case DataEncoding::kInt32: {
      if (data_bytes < n * 4) {
        return Status::CorruptData("int32 data area too small");
      }
      std::vector<int32_t> out(n);
      for (size_t i = 0; i < n; ++i) out[i] = ReadBE32s(data + 4 * i);
      return out;
    }
    case DataEncoding::kInt16: {
      if (data_bytes < n * 2) {
        return Status::CorruptData("int16 data area too small");
      }
      std::vector<int32_t> out(n);
      for (size_t i = 0; i < n; ++i) out[i] = ReadBE16s(data + 2 * i);
      return out;
    }
  }
  return Status::NotImplemented("encoding not handled");
}

}  // namespace lazyetl::mseed
