#include "mseed/dataless.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace lazyetl::mseed {

const StationIdentifier* StationInventory::Find(
    const std::string& network, const std::string& station) const {
  for (const auto& st : stations) {
    if (st.network == network && st.station == station) return &st;
  }
  return nullptr;
}

bool IsDatalessFilename(const std::string& filename) {
  return filename == kDatalessFilename ||
         EndsWith(filename, ".dataless") ||
         StartsWith(filename, "dataless.");
}

namespace {

// ---- encoding -------------------------------------------------------------

// Appends a fixed-width numeric field (printf-formatted).
void AppendFixed(std::string* out, const char* fmt, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), fmt, v);
  *out += buf;
}

// Appends a '~'-terminated variable field.
void AppendVar(std::string* out, const std::string& v) {
  *out += v;
  *out += '~';
}

// Wraps blockette `body` with its TTTLLLL prefix.
std::string MakeBlockette(int type, const std::string& body) {
  char head[10];
  // Total length includes the 7-byte prefix itself.
  std::snprintf(head, sizeof(head), "%03d%4zu", type, body.size() + 7);
  return std::string(head) + body;
}

std::string EncodeVolume(const VolumeHeader& v) {
  std::string body;
  AppendVar(&body, v.version);
  AppendVar(&body, FormatTimestamp(v.start_time));
  AppendVar(&body, FormatTimestamp(v.end_time));
  AppendVar(&body, v.organization);
  AppendVar(&body, v.label);
  return MakeBlockette(10, body);
}

std::string EncodeStation(const StationIdentifier& st) {
  std::string body;
  AppendVar(&body, st.station);
  AppendFixed(&body, "%010.6f", st.latitude);
  AppendFixed(&body, "%011.6f", st.longitude);
  AppendFixed(&body, "%07.1f", st.elevation);
  AppendVar(&body, st.site_name);
  AppendVar(&body, st.network);
  return MakeBlockette(50, body);
}

std::string EncodeChannel(const ChannelIdentifier& ch) {
  std::string body;
  AppendVar(&body, ch.location);
  AppendVar(&body, ch.channel);
  AppendFixed(&body, "%010.6f", ch.latitude);
  AppendFixed(&body, "%011.6f", ch.longitude);
  AppendFixed(&body, "%07.1f", ch.elevation);
  AppendFixed(&body, "%05.1f", ch.local_depth);
  AppendFixed(&body, "%05.1f", ch.azimuth);
  AppendFixed(&body, "%05.1f", ch.dip);
  AppendFixed(&body, "%010.4f", ch.sample_rate);
  return MakeBlockette(52, body);
}

// ---- decoding -------------------------------------------------------------

// Cursor over the concatenated blockette payload.
class FieldReader {
 public:
  FieldReader(const std::string& data, size_t pos, size_t end)
      : data_(data), pos_(pos), end_(end) {}

  Result<std::string> ReadVar() {
    size_t tilde = data_.find('~', pos_);
    if (tilde == std::string::npos || tilde >= end_) {
      return Status::CorruptData("unterminated variable field in blockette");
    }
    std::string out = data_.substr(pos_, tilde - pos_);
    pos_ = tilde + 1;
    return out;
  }

  Result<double> ReadFixed(size_t width) {
    if (pos_ + width > end_) {
      return Status::CorruptData("truncated fixed field in blockette");
    }
    std::string text = data_.substr(pos_, width);
    pos_ += width;
    char* endp = nullptr;
    double v = std::strtod(text.c_str(), &endp);
    if (endp == text.c_str()) {
      return Status::CorruptData("non-numeric fixed field '" + text + "'");
    }
    return v;
  }

 private:
  const std::string& data_;
  size_t pos_;
  size_t end_;
};

}  // namespace

Status WriteDataless(const std::string& path,
                     const StationInventory& inventory) {
  // Concatenate all blockettes, then split into 4096-byte control records.
  std::string payload = EncodeVolume(inventory.volume);
  for (const auto& st : inventory.stations) {
    if (st.station.size() > 5 || st.network.size() > 2) {
      return Status::InvalidArgument("station/network code too long: " +
                                     st.network + "." + st.station);
    }
    payload += EncodeStation(st);
    for (const auto& ch : st.channels) {
      if (ch.location.size() > 2 || ch.channel.size() > 3) {
        return Status::InvalidArgument("location/channel code too long");
      }
      payload += EncodeChannel(ch);
    }
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const size_t body_per_record = kControlRecordBytes - 8;
  size_t pos = 0;
  int seq = 1;
  char head[16];
  while (pos < payload.size() || seq == 1) {
    std::snprintf(head, sizeof(head), "%06dV ", seq++ % 1000000);
    std::string record(head);
    size_t take = std::min(body_per_record, payload.size() - pos);
    record += payload.substr(pos, take);
    pos += take;
    record.resize(kControlRecordBytes, ' ');  // space padding, per SEED
    out.write(record.data(), static_cast<std::streamsize>(record.size()));
    if (pos >= payload.size()) break;
  }
  out.flush();
  if (!out.good()) return Status::IOError("failed writing " + path);
  return Status::OK();
}

Result<StationInventory> ReadDataless(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open " + path);
  }
  // Reassemble the blockette payload from the control records.
  std::string payload;
  std::vector<char> record(kControlRecordBytes);
  while (in.read(record.data(), static_cast<std::streamsize>(record.size())) ||
         in.gcount() > 0) {
    size_t got = static_cast<size_t>(in.gcount());
    if (got < 8) return Status::CorruptData("short control record in " + path);
    if (record[6] != 'V') {
      return Status::CorruptData("not a volume control record in " + path);
    }
    payload.append(record.data() + 8, got - 8);
    if (got < kControlRecordBytes) break;
  }

  StationInventory inventory;
  bool saw_volume = false;
  size_t pos = 0;
  while (pos + 7 <= payload.size()) {
    // Stop at padding.
    if (payload[pos] == ' ') break;
    std::string type_str = payload.substr(pos, 3);
    std::string len_str = payload.substr(pos + 3, 4);
    int type = std::atoi(type_str.c_str());
    int length = std::atoi(Trim(len_str).c_str());
    if (length < 7 || pos + static_cast<size_t>(length) > payload.size()) {
      return Status::CorruptData("bad blockette length " + len_str + " in " +
                                 path);
    }
    FieldReader fields(payload, pos + 7, pos + length);
    switch (type) {
      case 10: {
        VolumeHeader v;
        LAZYETL_ASSIGN_OR_RETURN(v.version, fields.ReadVar());
        LAZYETL_ASSIGN_OR_RETURN(std::string start, fields.ReadVar());
        LAZYETL_ASSIGN_OR_RETURN(std::string end, fields.ReadVar());
        LAZYETL_ASSIGN_OR_RETURN(v.start_time, ParseTimestamp(start));
        LAZYETL_ASSIGN_OR_RETURN(v.end_time, ParseTimestamp(end));
        LAZYETL_ASSIGN_OR_RETURN(v.organization, fields.ReadVar());
        LAZYETL_ASSIGN_OR_RETURN(v.label, fields.ReadVar());
        inventory.volume = std::move(v);
        saw_volume = true;
        break;
      }
      case 50: {
        StationIdentifier st;
        LAZYETL_ASSIGN_OR_RETURN(st.station, fields.ReadVar());
        LAZYETL_ASSIGN_OR_RETURN(st.latitude, fields.ReadFixed(10));
        LAZYETL_ASSIGN_OR_RETURN(st.longitude, fields.ReadFixed(11));
        LAZYETL_ASSIGN_OR_RETURN(st.elevation, fields.ReadFixed(7));
        LAZYETL_ASSIGN_OR_RETURN(st.site_name, fields.ReadVar());
        LAZYETL_ASSIGN_OR_RETURN(st.network, fields.ReadVar());
        inventory.stations.push_back(std::move(st));
        break;
      }
      case 52: {
        if (inventory.stations.empty()) {
          return Status::CorruptData(
              "channel blockette before any station in " + path);
        }
        ChannelIdentifier ch;
        LAZYETL_ASSIGN_OR_RETURN(ch.location, fields.ReadVar());
        LAZYETL_ASSIGN_OR_RETURN(ch.channel, fields.ReadVar());
        LAZYETL_ASSIGN_OR_RETURN(ch.latitude, fields.ReadFixed(10));
        LAZYETL_ASSIGN_OR_RETURN(ch.longitude, fields.ReadFixed(11));
        LAZYETL_ASSIGN_OR_RETURN(ch.elevation, fields.ReadFixed(7));
        LAZYETL_ASSIGN_OR_RETURN(ch.local_depth, fields.ReadFixed(5));
        LAZYETL_ASSIGN_OR_RETURN(ch.azimuth, fields.ReadFixed(5));
        LAZYETL_ASSIGN_OR_RETURN(ch.dip, fields.ReadFixed(5));
        LAZYETL_ASSIGN_OR_RETURN(ch.sample_rate, fields.ReadFixed(10));
        inventory.stations.back().channels.push_back(std::move(ch));
        break;
      }
      default:
        // Unknown blockette types are skipped via their declared length.
        break;
    }
    pos += static_cast<size_t>(length);
  }
  if (!saw_volume) {
    return Status::CorruptData("dataless volume missing blockette 010 in " +
                               path);
  }
  return inventory;
}

}  // namespace lazyetl::mseed
