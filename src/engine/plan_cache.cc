#include "engine/plan_cache.h"

#include <sstream>

namespace lazyetl::engine {

namespace {

void FingerprintNode(const PlanNode& node, std::ostringstream* os,
                     bool* ok) {
  if (!*ok) return;
  *os << PlanNodeTypeToString(node.type) << '(';
  switch (node.type) {
    case PlanNodeType::kScan:
    case PlanNodeType::kLazyDataScan:
      *os << "t=" << node.table << ";c=";
      for (const auto& sc : node.scan_columns) {
        *os << sc.base_column << '>' << sc.output_name << ',';
      }
      if (node.type == PlanNodeType::kLazyDataScan) {
        *os << ";p=" << node.probe_file_id_column << ','
            << node.probe_seq_no_column;
      }
      break;
    case PlanNodeType::kCachedScan:
      // An already-substituted subtree has no canonical definition.
      *ok = false;
      return;
    case PlanNodeType::kFilter:
      *os << node.predicate->ToString();
      break;
    case PlanNodeType::kHashJoin:
      for (size_t i = 0; i < node.left_keys.size(); ++i) {
        *os << node.left_keys[i] << '=' << node.right_keys[i] << ',';
      }
      break;
    case PlanNodeType::kAggregate:
      *os << "g=";
      for (const auto& g : node.group_exprs) *os << g->ToString() << ',';
      *os << ";a=";
      for (const auto& a : node.aggregates) {
        *os << a.function << ':' << (a.arg ? a.arg->ToString() : "*") << '>'
            << a.display << ',';
      }
      break;
    case PlanNodeType::kProject:
      for (size_t i = 0; i < node.project_exprs.size(); ++i) {
        *os << node.project_exprs[i]->ToString() << '>'
            << node.project_names[i] << ',';
      }
      break;
    case PlanNodeType::kDistinct:
      break;
    case PlanNodeType::kSort:
    case PlanNodeType::kTopK:
      if (node.type == PlanNodeType::kTopK) *os << "k=" << node.limit << ';';
      for (const auto& item : node.order_items) {
        *os << item.expr->ToString() << (item.ascending ? "+" : "-") << ',';
      }
      break;
    case PlanNodeType::kLimit:
      *os << node.limit;
      break;
  }
  *os << ")[";
  for (const auto& child : node.children) {
    FingerprintNode(*child, os, ok);
    *os << '|';
  }
  *os << ']';
}

bool IsBreaker(PlanNodeType t) {
  return t == PlanNodeType::kAggregate || t == PlanNodeType::kDistinct ||
         t == PlanNodeType::kSort || t == PlanNodeType::kTopK;
}

}  // namespace

std::string PlanFingerprint(const PlanNode& node) {
  std::ostringstream os;
  bool ok = true;
  FingerprintNode(node, &os, &ok);
  return ok ? os.str() : std::string();
}

PlanNodePtr* FindCacheableSubPlan(PlanNodePtr* root) {
  PlanNodePtr* slot = root;
  while (*slot != nullptr) {
    PlanNode& node = **slot;
    if (IsBreaker(node.type)) return slot;
    // Only streaming single-child wrappers are walked through; anything
    // else (scans, joins) ends the spine.
    if ((node.type == PlanNodeType::kFilter ||
         node.type == PlanNodeType::kProject ||
         node.type == PlanNodeType::kLimit) &&
        node.children.size() == 1) {
      slot = &node.children[0];
      continue;
    }
    return nullptr;
  }
  return nullptr;
}

PlanCache::PlanCache(uint64_t budget_bytes, common::MemoryPool* pool)
    : budget_bytes_(budget_bytes), pool_(pool) {
  if (pool_ != nullptr) {
    // Yielder takes only mu_ (pool locking protocol); EvictOneLocked
    // releases pool charges, which never re-enters any yielder.
    yielder_id_ = pool_->RegisterYielder([this](uint64_t want) {
      std::lock_guard<std::mutex> lock(mu_);
      uint64_t freed = 0;
      while (freed < want && !lru_.empty()) freed += EvictOneLocked();
      return freed;
    });
  }
}

PlanCache::~PlanCache() {
  if (pool_ != nullptr) {
    pool_->UnregisterYielder(yielder_id_);
    pool_->Release(current_bytes_.load(std::memory_order_relaxed));
  }
}

void PlanCache::Admit(const std::string& fingerprint, CachedSubPlan entry,
                      uint64_t epoch_at_plan) {
  if (entry.table == nullptr) return;
  if (entry.bytes == 0) {
    entry.bytes = entry.table->MemoryBytes() + fingerprint.size() +
                  entry.deps.size() * sizeof(ResultDependency) +
                  sizeof(CachedSubPlan);
  }
  uint64_t bytes = entry.bytes;
  if (bytes > budget_bytes_) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Charge the pool with mu_ NOT held: ChargeWithYield may run the other
  // tiers' yielders (each takes its own lock), excluding our own.
  if (pool_ != nullptr && !pool_->ChargeWithYield(bytes, yielder_id_)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (epoch_.load(std::memory_order_acquire) != epoch_at_plan) {
    // Clear() ran between planning and admission: the entry was computed
    // against a catalog that has since been republished.
    if (pool_ != nullptr) pool_->Release(bytes);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto it = map_.find(fingerprint);
  if (it != map_.end()) EraseLocked(it);
  while (current_bytes_.load(std::memory_order_relaxed) + bytes >
             budget_bytes_ &&
         !lru_.empty()) {
    EvictOneLocked();
  }

  lru_.push_back(fingerprint);
  Node node;
  node.lru_it = std::prev(lru_.end());
  node.entry = std::make_shared<const CachedSubPlan>(std::move(entry));
  current_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  map_[fingerprint] = std::move(node);
  admissions_.fetch_add(1, std::memory_order_relaxed);
  entries_.store(map_.size(), std::memory_order_relaxed);
}

uint64_t PlanCache::EvictOneLocked() {
  auto it = map_.find(lru_.front());
  uint64_t bytes = it->second.entry->bytes;
  current_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  if (pool_ != nullptr) pool_->Release(bytes);
  map_.erase(it);
  lru_.pop_front();
  evictions_.fetch_add(1, std::memory_order_relaxed);
  entries_.store(map_.size(), std::memory_order_relaxed);
  return bytes;
}

void PlanCache::EraseLocked(Map::iterator it) {
  uint64_t bytes = it->second.entry->bytes;
  current_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  if (pool_ != nullptr) pool_->Release(bytes);
  lru_.erase(it->second.lru_it);
  map_.erase(it);
  entries_.store(map_.size(), std::memory_order_relaxed);
}

void PlanCache::InvalidateFile(int64_t file_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    bool depends = false;
    for (const auto& dep : it->second.entry->deps) {
      if (dep.file_id == file_id) {
        depends = true;
        break;
      }
    }
    if (depends) {
      uint64_t bytes = it->second.entry->bytes;
      current_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
      if (pool_ != nullptr) pool_->Release(bytes);
      lru_.erase(it->second.lru_it);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
  entries_.store(map_.size(), std::memory_order_relaxed);
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  if (pool_ != nullptr) {
    pool_->Release(current_bytes_.load(std::memory_order_relaxed));
  }
  current_bytes_.store(0, std::memory_order_relaxed);
  entries_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.admissions = admissions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.current_bytes = current_bytes_.load(std::memory_order_relaxed);
  s.budget_bytes = budget_bytes_;
  s.entries = entries_.load(std::memory_order_relaxed);
  return s;
}

void PlanCache::ResetCounters() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  invalidations_.store(0, std::memory_order_relaxed);
  admissions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
}

}  // namespace lazyetl::engine
