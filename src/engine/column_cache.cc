#include "engine/column_cache.h"

#include <algorithm>

namespace lazyetl::engine {

namespace {

inline uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

ColumnCache::ColumnCache(uint64_t budget_bytes, common::MemoryPool* pool)
    : budget_bytes_(budget_bytes), pool_(pool) {
  if (pool_ != nullptr) {
    // Yielder takes only mu_ (pool locking protocol); EvictOneLocked
    // releases pool charges, which never re-enters any yielder.
    yielder_id_ = pool_->RegisterYielder([this](uint64_t want) {
      std::lock_guard<std::mutex> lock(mu_);
      uint64_t freed = 0;
      while (freed < want && !lru_.empty()) freed += EvictOneLocked();
      return freed;
    });
  }
}

ColumnCache::~ColumnCache() {
  if (pool_ != nullptr) {
    pool_->UnregisterYielder(yielder_id_);
    pool_->Release(current_bytes_.load(std::memory_order_relaxed));
  }
}

uint64_t ColumnCache::HashKey(const std::string& columns_sig,
                              const std::vector<int64_t>& sorted_seqs) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : columns_sig) {
    h = MixHash(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  h = MixHash(h, 0x5EAFULL);  // separator: signature | seq window
  for (int64_t seq : sorted_seqs) {
    h = MixHash(h, static_cast<uint64_t>(seq));
  }
  return h;
}

uint64_t ColumnCache::EntryBytes(const storage::TablePtr& table,
                                 const std::string& columns_sig,
                                 const std::vector<int64_t>& seqs) {
  return table->MemoryBytes() + columns_sig.size() +
         seqs.size() * sizeof(int64_t) + sizeof(Entry);
}

storage::TablePtr ColumnCache::Lookup(int64_t file_id, NanoTime file_mtime,
                                      const std::string& columns_sig,
                                      const std::vector<int64_t>& seqs,
                                      bool* stale) {
  if (stale != nullptr) *stale = false;
  std::vector<int64_t> sorted = seqs;
  std::sort(sorted.begin(), sorted.end());
  Key key{file_id, HashKey(columns_sig, sorted)};

  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Entry& entry = it->second;
  // Exact key-material check: a hash collision is a miss, never a wrong
  // table.
  if (entry.columns_sig != columns_sig || entry.seqs != sorted) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (entry.file_mtime != file_mtime) {
    stale_.fetch_add(1, std::memory_order_relaxed);
    if (stale != nullptr) *stale = true;
    EraseLocked(key);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  lru_.erase(entry.lru_it);
  lru_.push_back(key);
  entry.lru_it = std::prev(lru_.end());
  return entry.table;
}

void ColumnCache::Admit(int64_t file_id, NanoTime file_mtime,
                        const std::string& columns_sig,
                        std::vector<int64_t> seqs, storage::TablePtr table) {
  if (table == nullptr) return;
  std::sort(seqs.begin(), seqs.end());
  uint64_t bytes = EntryBytes(table, columns_sig, seqs);
  if (bytes > budget_bytes_) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;  // larger than the whole tier; not admissible
  }
  // Charge the pool with mu_ NOT held: ChargeWithYield may run the other
  // tiers' yielders (each takes its own lock), excluding our own.
  if (pool_ != nullptr && !pool_->ChargeWithYield(bytes, yielder_id_)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  Key key{file_id, HashKey(columns_sig, seqs)};
  std::lock_guard<std::mutex> lock(mu_);
  EraseLocked(key);  // replace-in-place releases the old charge
  while (current_bytes_.load(std::memory_order_relaxed) + bytes >
             budget_bytes_ &&
         !lru_.empty()) {
    EvictOneLocked();
  }

  lru_.push_back(key);
  Entry entry;
  entry.table = std::move(table);
  entry.file_mtime = file_mtime;
  entry.columns_sig = columns_sig;
  entry.seqs = std::move(seqs);
  entry.bytes = bytes;
  entry.lru_it = std::prev(lru_.end());
  current_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  map_[key] = std::move(entry);
  admissions_.fetch_add(1, std::memory_order_relaxed);
  entries_.store(map_.size(), std::memory_order_relaxed);
}

uint64_t ColumnCache::EvictOneLocked() {
  const Key victim = lru_.front();
  auto it = map_.find(victim);
  uint64_t bytes = it->second.bytes;
  current_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  if (pool_ != nullptr) pool_->Release(bytes);
  map_.erase(it);
  lru_.pop_front();
  evictions_.fetch_add(1, std::memory_order_relaxed);
  entries_.store(map_.size(), std::memory_order_relaxed);
  return bytes;
}

void ColumnCache::EraseLocked(const Key& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  uint64_t bytes = it->second.bytes;
  current_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  if (pool_ != nullptr) pool_->Release(bytes);
  lru_.erase(it->second.lru_it);
  map_.erase(it);
  entries_.store(map_.size(), std::memory_order_relaxed);
}

void ColumnCache::InvalidateFile(int64_t file_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.file_id == file_id) {
      uint64_t bytes = it->second.bytes;
      current_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
      if (pool_ != nullptr) pool_->Release(bytes);
      lru_.erase(it->second.lru_it);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
  entries_.store(map_.size(), std::memory_order_relaxed);
}

void ColumnCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  if (pool_ != nullptr) {
    pool_->Release(current_bytes_.load(std::memory_order_relaxed));
  }
  current_bytes_.store(0, std::memory_order_relaxed);
  entries_.store(0, std::memory_order_relaxed);
}

uint64_t ColumnCache::ResidentBytesForFile(int64_t file_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t bytes = 0;
  for (const auto& [key, entry] : map_) {
    if (key.file_id == file_id) bytes += entry.bytes;
  }
  return bytes;
}

ColumnCacheStats ColumnCache::stats() const {
  ColumnCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stale = stale_.load(std::memory_order_relaxed);
  s.admissions = admissions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.current_bytes = current_bytes_.load(std::memory_order_relaxed);
  s.budget_bytes = budget_bytes_;
  s.entries = entries_.load(std::memory_order_relaxed);
  return s;
}

void ColumnCache::ResetCounters() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  stale_.store(0, std::memory_order_relaxed);
  admissions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
}

}  // namespace lazyetl::engine
