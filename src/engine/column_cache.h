// ColumnCache: the decoded-column tier of the multi-tier cache.
//
// The record Recycler caches raw decoded (time, value) vectors per mSEED
// record; assembling them into publish-encoded output columns (projection,
// dictionary encoding, zone maps) is still repeated per query. This tier
// caches that assembled product: one immutable `storage::Table` per
// (file, column set, extraction window), shared zero-copy across every
// concurrent query that scans the same station/time range with the same
// projection. A hit skips both decoding *and* assembly.
//
// Keying: (file_id, hash(columns signature, seq window)). Hashes only
// route — each entry stores its exact key materials (mtime, columns
// signature, sorted seq list) and a lookup verifies them, so a hash
// collision degrades to a miss, never a wrong result. mtime invalidation
// mirrors the Recycler: an entry admitted under a different mtime is
// erased as stale on lookup, and Warehouse invalidates eagerly on
// refresh/republish.
//
// Memory: every entry charges (table bytes + key-material bytes) to the
// shared cache MemoryPool via ChargeWithYield — the charge happens with
// mu_ NOT held (pool locking protocol), so other tiers' yielders may run;
// this tier's own yielder evicts from the LRU front under mu_ only.
//
// Concurrency: internally locked, handles are shared_ptr<Table> — a hit
// stays valid after eviction, exactly like the Recycler's handles.

#ifndef LAZYETL_ENGINE_COLUMN_CACHE_H_
#define LAZYETL_ENGINE_COLUMN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/memory_pool.h"
#include "common/time.h"
#include "storage/table.h"

namespace lazyetl::engine {

// Value snapshot of the tier counters (the live counters are atomics).
struct ColumnCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t stale = 0;
  uint64_t admissions = 0;
  uint64_t evictions = 0;
  uint64_t rejected = 0;  // admissions refused under pool pressure
  uint64_t current_bytes = 0;
  uint64_t budget_bytes = 0;
  uint64_t entries = 0;
};

class ColumnCache {
 public:
  // `budget_bytes` caps this tier's resident bytes (its own LRU bound);
  // `pool` (may be null) is the shared cache pool every entry is charged
  // to. The pool must outlive the cache; destroy the cache only while no
  // other tier is admitting (its registered yielder runs lock-step with
  // their admissions).
  explicit ColumnCache(uint64_t budget_bytes,
                       common::MemoryPool* pool = nullptr);
  ~ColumnCache();

  ColumnCache(const ColumnCache&) = delete;
  ColumnCache& operator=(const ColumnCache&) = delete;

  // `columns_sig` is the canonical projection signature (the Warehouse
  // builds it from the scan's ScanColumn list); `seqs` identifies the
  // extraction window (record seq_nos, any order — hashed order-insensitively
  // but verified exactly against the stored sorted copy).
  // Returns the shared table (bumped to MRU) or null. A present entry
  // admitted under a different mtime is erased and counted stale.
  storage::TablePtr Lookup(int64_t file_id, NanoTime file_mtime,
                           const std::string& columns_sig,
                           const std::vector<int64_t>& seqs,
                           bool* stale = nullptr);

  // Inserts or replaces the entry for this key. The table is stored as-is
  // (callers pass the immutable assembled output). No-op (counted in
  // `rejected`) when the bytes cannot be charged even after cross-tier
  // yield.
  void Admit(int64_t file_id, NanoTime file_mtime,
             const std::string& columns_sig, std::vector<int64_t> seqs,
             storage::TablePtr table);

  // Drops every entry of a file (refresh, republish, deletion).
  void InvalidateFile(int64_t file_id);

  void Clear();

  // Resident bytes whose source file set intersects `file_id` — used by
  // footprint estimation to discount already-hydrated bytes.
  uint64_t ResidentBytesForFile(int64_t file_id) const;

  ColumnCacheStats stats() const;
  void ResetCounters();

 private:
  struct Key {
    int64_t file_id = 0;
    uint64_t hash = 0;
    bool operator==(const Key& o) const {
      return file_id == o.file_id && hash == o.hash;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = static_cast<uint64_t>(k.file_id) * 0x9E3779B97F4A7C15ULL;
      h ^= k.hash + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  struct Entry {
    storage::TablePtr table;
    NanoTime file_mtime = 0;
    std::string columns_sig;      // exact key material
    std::vector<int64_t> seqs;    // exact key material, sorted
    uint64_t bytes = 0;           // pool charge (table + key material)
    std::list<Key>::iterator lru_it;
  };

  static uint64_t HashKey(const std::string& columns_sig,
                          const std::vector<int64_t>& sorted_seqs);
  static uint64_t EntryBytes(const storage::TablePtr& table,
                             const std::string& columns_sig,
                             const std::vector<int64_t>& seqs);

  // Both require mu_ held; both release the pool charge.
  uint64_t EvictOneLocked();
  void EraseLocked(const Key& key);

  const uint64_t budget_bytes_;
  common::MemoryPool* const pool_;
  common::MemoryPool::YielderId yielder_id_ = -1;

  mutable std::mutex mu_;  // guards map_, lru_
  std::unordered_map<Key, Entry, KeyHash> map_;
  std::list<Key> lru_;  // front = least recently used

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> stale_{0};
  std::atomic<uint64_t> admissions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> current_bytes_{0};
  std::atomic<uint64_t> entries_{0};
};

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_COLUMN_CACHE_H_
