// LazyDataScanOperator: the run-time plan modification of §3.1, as a
// streaming operator.
//
// Open() executes the metadata side of the plan (its own operator
// subtree), derives the qualifying (file_id, seq_no) pairs, and asks the
// LazyDataProvider for a *stream* of exactly those records; the provider
// serves them from the recycler cache or extracts them from the source
// files, file by file. Next() joins each arriving record chunk back to
// the metadata side (hash built once over the metadata table), so peak
// memory is the metadata side plus one file's worth of records — never
// the whole qualifying set.
//
// Parallelism: the record stream itself is stateful (cache admission,
// report counters) and is pulled under a mutex in deterministic stream
// order — each chunk's seq is its position in the stream. The expensive
// per-chunk work (probing the read-only metadata hash, gathering and
// assembling the joined batch) runs outside the lock, so several query
// workers overlap extraction with join work.

#include <atomic>
#include <mutex>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/macros.h"
#include "common/time.h"
#include "engine/operators/internal.h"
#include "engine/operators/join_build.h"
#include "engine/operators/operator.h"

namespace lazyetl::engine {

using storage::Column;
using storage::DataType;
using storage::SelectionVector;
using storage::Table;
using storage::TableSlice;

namespace {

// Extracts a column as int64s (for record-key probing).
Result<std::vector<int64_t>> ColumnAsInt64(const Column& col) {
  bool int_like = col.type() == DataType::kBool ||
                  col.type() == DataType::kInt32 ||
                  col.type() == DataType::kInt64 ||
                  col.type() == DataType::kTimestamp;
  if (!int_like) {
    return Status::ExecutionError("expected an integer key column");
  }
  std::vector<int64_t> out(col.size());
  switch (col.type()) {
    case DataType::kInt32:
      for (size_t i = 0; i < col.size(); ++i) out[i] = col.int32_data()[i];
      break;
    case DataType::kBool:
      for (size_t i = 0; i < col.size(); ++i) out[i] = col.bool_data()[i];
      break;
    default:
      out = col.int64_data();
      break;
  }
  return out;
}

class LazyDataScanOperator : public BatchOperator {
 public:
  LazyDataScanOperator(const PlanNode* node, ExecContext* ctx,
                       BatchOperatorPtr metadata_child)
      : BatchOperator("LazyDataScan(" + node->table + ")"),
        node_(node),
        ctx_(ctx) {
    if (metadata_child) AddChild(std::move(metadata_child));
  }

  bool ParallelSafe() const override { return true; }

 protected:
  Status OpenImpl() override {
    if (ctx_->provider == nullptr) {
      return Status::ExecutionError(
          "plan contains LazyDataScan but no lazy data provider is attached");
    }
    Stopwatch extract_timer;

    if (num_children() == 0) {
      LogOp(LogCategory::kRewrite,
            "run-time rewrite: no metadata side; extracting entire "
            "repository for " + node_->table);
      LAZYETL_ASSIGN_OR_RETURN(
          stream_, ctx_->provider->StreamAllRecords(
                       node_->scan_columns, ctx_->batch_rows, ctx_->report));
      ctx_->report->extract_seconds += extract_timer.ElapsedSeconds();
      return Status::OK();
    }

    // Phase 1: execute the metadata side (its operators were opened by the
    // base-class wrapper). Parallel drain reassembles in seq order, so the
    // metadata table is identical to the serial one.
    LAZYETL_ASSIGN_OR_RETURN(
        meta_, DrainToTableOrdered(child(), ctx_->query_threads));

    // Phase 2 (run-time rewrite): determine the qualifying records.
    LAZYETL_ASSIGN_OR_RETURN(const Column* fid_col,
                             meta_.ColumnByName(node_->probe_file_id_column));
    LAZYETL_ASSIGN_OR_RETURN(const Column* seq_col,
                             meta_.ColumnByName(node_->probe_seq_no_column));
    LAZYETL_ASSIGN_OR_RETURN(std::vector<int64_t> fids,
                             ColumnAsInt64(*fid_col));
    LAZYETL_ASSIGN_OR_RETURN(std::vector<int64_t> seqs,
                             ColumnAsInt64(*seq_col));

    std::vector<RecordKey> keys;
    std::unordered_set<uint64_t> seen;
    keys.reserve(fids.size());
    for (size_t i = 0; i < fids.size(); ++i) {
      uint64_t packed = (static_cast<uint64_t>(fids[i]) << 32) ^
                        static_cast<uint64_t>(static_cast<uint32_t>(seqs[i]));
      if (seen.insert(packed).second) {
        keys.push_back({fids[i], seqs[i]});
      }
    }
    ctx_->report->records_requested += keys.size();
    LogOp(LogCategory::kRewrite,
          "run-time rewrite: metadata phase selected " +
              std::to_string(keys.size()) + " records from " +
              std::to_string(meta_.num_rows()) + " metadata rows");

    // Phase 3: injected operators — cache accesses and file extraction,
    // as a pull stream consumed by Next().
    LAZYETL_ASSIGN_OR_RETURN(
        stream_, ctx_->provider->StreamRecords(keys, node_->scan_columns,
                                               ctx_->batch_rows,
                                               ctx_->report));

    // Phase 4 is streamed: hash the metadata side once; each record chunk
    // probes it on arrival (the hash is read-only from here on, so probes
    // may run concurrently).
    if (node_->left_keys.size() != node_->right_keys.size() ||
        node_->left_keys.empty()) {
      return Status::InvalidArgument("join key arity mismatch");
    }
    Stopwatch join_build_timer;
    LAZYETL_RETURN_NOT_OK(
        build_.Init(&meta_, node_->left_keys, ctx_->query_threads));
    if (build_.vectorized()) RecordJoinVectorized(1);
    RecordJoinBuildSeconds(join_build_timer.ElapsedSeconds());
    RecordStateBytes(meta_.MemoryBytes() + build_.IndexBytes());
    join_ = true;
    ctx_->report->extract_seconds += extract_timer.ElapsedSeconds();
    return Status::OK();
  }

  Result<bool> NextImpl(Batch* out) override {
    while (true) {
      Table chunk;
      uint64_t seq = 0;
      bool more = false;
      {
        // The stream mutates shared state (recycler admissions, report
        // counters): pull one chunk at a time. seq is the stream
        // position — deterministic regardless of which worker pulls.
        std::lock_guard<std::mutex> lock(stream_mu_);
        Stopwatch extract_timer;
        LAZYETL_ASSIGN_OR_RETURN(more, stream_->Next(&chunk));
        ctx_->report->extract_seconds += extract_timer.ElapsedSeconds();
        if (more) seq = next_seq_++;
      }
      if (!more) {
        if (parallel_drive()) return false;
        if (!emitted_.exchange(true)) {
          std::lock_guard<std::mutex> lock(empty_mu_);
          Table empty;
          if (join_) {
            LAZYETL_ASSIGN_OR_RETURN(empty, JoinChunk({}, data_empty_));
          } else {
            empty = std::move(data_empty_);
          }
          *out = Batch::Materialized(std::move(empty));
          return true;
        }
        return false;
      }
      if (!join_) {
        if (chunk.num_rows() == 0) {
          if (!emitted_.load()) {
            std::lock_guard<std::mutex> lock(empty_mu_);
            if (!empty_captured_) {
              data_empty_ = std::move(chunk);
              empty_captured_ = true;
            }
          }
          continue;
        }
        emitted_.store(true);
        *out = Batch::Materialized(std::move(chunk));
        out->seq = seq;
        return true;
      }
      TableSlice probe = chunk.Slice(0, chunk.num_rows());
      SelectionVector build_sel;
      SelectionVector probe_sel;
      Stopwatch probe_timer;
      LAZYETL_RETURN_NOT_OK(
          build_.Probe(probe, node_->right_keys, &build_sel, &probe_sel));
      RecordJoinProbeSeconds(probe_timer.ElapsedSeconds());
      if (probe_sel.empty()) {
        if (!emitted_.load()) {
          std::lock_guard<std::mutex> lock(empty_mu_);
          if (!empty_captured_) {
            data_empty_ = probe.Gather({});
            empty_captured_ = true;
          }
        }
        continue;
      }
      LAZYETL_ASSIGN_OR_RETURN(
          Table joined, JoinChunk(build_sel, probe.Gather(probe_sel)));
      emitted_.store(true);
      *out = Batch::Materialized(std::move(joined));
      out->seq = seq;
      return true;
    }
  }

 private:
  Result<Table> JoinChunk(const SelectionVector& build_sel,
                          const Table& data_rows) {
    Table out = meta_.Gather(build_sel);
    for (size_t i = 0; i < data_rows.num_columns(); ++i) {
      LAZYETL_RETURN_NOT_OK(
          out.AddColumn(data_rows.column_name(i), data_rows.column(i)));
    }
    return out;
  }

  const PlanNode* node_;
  ExecContext* ctx_;
  Table meta_;
  JoinBuild build_;
  bool join_ = false;
  std::unique_ptr<RecordStream> stream_;
  std::mutex stream_mu_;
  uint64_t next_seq_ = 0;     // guarded by stream_mu_
  std::mutex empty_mu_;
  Table data_empty_;  // schema of the record chunks, for empty results
  bool empty_captured_ = false;
  std::atomic<bool> emitted_{false};
};

}  // namespace

Result<BatchOperatorPtr> MakeLazyDataScanOperator(const PlanNode& node,
                                                  ExecContext* ctx) {
  BatchOperatorPtr metadata_child;
  if (!node.children.empty()) {
    LAZYETL_ASSIGN_OR_RETURN(metadata_child,
                             BuildOperatorTree(*node.children[0], ctx));
  }
  return BatchOperatorPtr(std::make_unique<LazyDataScanOperator>(
      &node, ctx, std::move(metadata_child)));
}

}  // namespace lazyetl::engine
