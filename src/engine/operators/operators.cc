// Streaming (non-breaking) operators: Scan, Filter, Project, Limit — plus
// the plan-to-operator translation and the drain helper.

#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "engine/expr_eval.h"
#include "engine/operators/internal.h"
#include "engine/operators/operator.h"

namespace lazyetl::engine {

using storage::Column;
using storage::SelectionVector;
using storage::Table;
using storage::TablePtr;
using storage::TableSlice;

namespace {

// Scan: emits zero-copy slices over a catalog table, optionally projected
// and renamed to qualified display names. O(#columns) per batch — the
// non-qualifying rows of a selective query are never copied.
class ScanOperator : public BatchOperator {
 public:
  ScanOperator(TablePtr table, std::vector<ScanColumn> columns,
               const std::string& label, size_t batch_rows)
      : BatchOperator("Scan(" + label + ")"),
        table_(std::move(table)),
        columns_(std::move(columns)),
        batch_rows_(batch_rows) {}

 protected:
  Status OpenImpl() override {
    base_ = TableSlice();
    if (columns_.empty()) {
      base_ = TableSlice::FromTable(*table_, 0, 0);
    } else {
      for (const auto& sc : columns_) {
        LAZYETL_ASSIGN_OR_RETURN(const Column* c,
                                 table_->ColumnByName(sc.base_column));
        base_.AddColumn(sc.output_name, c);
      }
    }
    // Snapshot the row count: rows appended mid-query (lazy hydration)
    // become visible to the next query, matching the materialised
    // executor's copy-at-scan semantics.
    rows_ = table_->num_rows();
    offset_ = 0;
    emitted_ = false;
    return Status::OK();
  }

  Result<bool> NextImpl(Batch* out) override {
    if (offset_ >= rows_ && emitted_) return false;
    size_t n = std::min(batch_rows_, rows_ - offset_);
    out->view = base_;
    out->view.SetRange(offset_, n);
    out->owner = table_;
    offset_ += n;
    emitted_ = true;
    return true;
  }

 private:
  TablePtr table_;
  std::vector<ScanColumn> columns_;
  size_t batch_rows_;
  TableSlice base_;
  size_t rows_ = 0;
  size_t offset_ = 0;
  bool emitted_ = false;
};

// Filter: evaluates the predicate per batch into a selection vector and
// gathers the qualifying rows. An all-pass batch is forwarded unchanged
// (zero-copy); all-drop batches are skipped.
class FilterOperator : public BatchOperator {
 public:
  FilterOperator(const sql::BoundExpr* predicate, BatchOperatorPtr child)
      : BatchOperator("Filter"), predicate_(predicate) {
    AddChild(std::move(child));
  }

 protected:
  Result<bool> NextImpl(Batch* out) override {
    while (true) {
      Batch in;
      LAZYETL_ASSIGN_OR_RETURN(bool more, child()->Next(&in));
      if (!more) {
        if (!emitted_) {
          emitted_ = true;
          *out = Batch::Materialized(std::move(empty_));
          return true;
        }
        return false;
      }
      LAZYETL_ASSIGN_OR_RETURN(SelectionVector sel,
                               EvaluatePredicate(*predicate_, in.view));
      if (sel.size() == in.num_rows()) {
        *out = std::move(in);
        emitted_ = true;
        return true;
      }
      if (sel.empty()) {
        if (!emitted_) empty_ = in.view.Gather({});  // schema for EOS
        continue;
      }
      *out = Batch::Materialized(in.view.Gather(sel));
      emitted_ = true;
      return true;
    }
  }

 private:
  const sql::BoundExpr* predicate_;
  Table empty_;
  bool emitted_ = false;
};

// Project: evaluates the projection expressions per batch.
class ProjectOperator : public BatchOperator {
 public:
  ProjectOperator(const PlanNode* node, BatchOperatorPtr child)
      : BatchOperator("Project"), node_(node) {
    AddChild(std::move(child));
  }

 protected:
  Result<bool> NextImpl(Batch* out) override {
    Batch in;
    LAZYETL_ASSIGN_OR_RETURN(bool more, child()->Next(&in));
    if (!more) return false;
    Table projected;
    for (size_t i = 0; i < node_->project_exprs.size(); ++i) {
      LAZYETL_ASSIGN_OR_RETURN(Column c,
                               EvaluateExpr(*node_->project_exprs[i], in.view));
      LAZYETL_RETURN_NOT_OK(
          projected.AddColumn(node_->project_names[i], std::move(c)));
    }
    *out = Batch::Materialized(std::move(projected));
    return true;
  }

 private:
  const PlanNode* node_;
};

// Limit: forwards batches until the limit is reached, truncating the last
// one with a zero-copy prefix view; then stops pulling the child (early
// exit — an upstream scan never produces the unneeded rows).
class LimitOperator : public BatchOperator {
 public:
  LimitOperator(int64_t limit, BatchOperatorPtr child)
      : BatchOperator("Limit"),
        remaining_(static_cast<size_t>(std::max<int64_t>(0, limit))) {
    AddChild(std::move(child));
  }

 protected:
  Result<bool> NextImpl(Batch* out) override {
    if (remaining_ == 0 && emitted_) return false;
    Batch in;
    LAZYETL_ASSIGN_OR_RETURN(bool more, child()->Next(&in));
    if (!more) return false;
    if (in.num_rows() > remaining_) {
      out->view = in.view.Prefix(remaining_);
      out->owner = std::move(in.owner);
      remaining_ = 0;
    } else {
      remaining_ -= in.num_rows();
      *out = std::move(in);
    }
    emitted_ = true;
    return true;
  }

 private:
  size_t remaining_;
  bool emitted_ = false;
};

}  // namespace

Result<Table> DrainToTable(BatchOperator* op) {
  Table result;
  bool first = true;
  Batch batch;
  while (true) {
    LAZYETL_ASSIGN_OR_RETURN(bool more, op->Next(&batch));
    if (!more) break;
    if (first) {
      result = batch.view.Materialize();
      first = false;
    } else {
      LAZYETL_RETURN_NOT_OK(result.AppendSlice(batch.view));
    }
  }
  return result;
}

Result<BatchOperatorPtr> BuildOperatorTree(const PlanNode& plan,
                                           ExecContext* ctx) {
  switch (plan.type) {
    case PlanNodeType::kScan: {
      LAZYETL_ASSIGN_OR_RETURN(TablePtr table,
                               ctx->catalog->GetTable(plan.table));
      return BatchOperatorPtr(std::make_unique<ScanOperator>(
          std::move(table), plan.scan_columns, plan.table, ctx->batch_rows));
    }
    case PlanNodeType::kLazyDataScan:
      return MakeLazyDataScanOperator(plan, ctx);
    case PlanNodeType::kFilter: {
      LAZYETL_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                               BuildOperatorTree(*plan.children[0], ctx));
      return BatchOperatorPtr(std::make_unique<FilterOperator>(
          plan.predicate.get(), std::move(child)));
    }
    case PlanNodeType::kHashJoin: {
      LAZYETL_ASSIGN_OR_RETURN(BatchOperatorPtr left,
                               BuildOperatorTree(*plan.children[0], ctx));
      LAZYETL_ASSIGN_OR_RETURN(BatchOperatorPtr right,
                               BuildOperatorTree(*plan.children[1], ctx));
      return MakeHashJoinOperator(plan, ctx, std::move(left),
                                  std::move(right));
    }
    case PlanNodeType::kAggregate: {
      LAZYETL_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                               BuildOperatorTree(*plan.children[0], ctx));
      return MakeAggregateOperator(plan, ctx, std::move(child));
    }
    case PlanNodeType::kProject: {
      LAZYETL_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                               BuildOperatorTree(*plan.children[0], ctx));
      return BatchOperatorPtr(
          std::make_unique<ProjectOperator>(&plan, std::move(child)));
    }
    case PlanNodeType::kDistinct: {
      LAZYETL_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                               BuildOperatorTree(*plan.children[0], ctx));
      return MakeDistinctOperator(plan, ctx, std::move(child));
    }
    case PlanNodeType::kSort: {
      LAZYETL_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                               BuildOperatorTree(*plan.children[0], ctx));
      return MakeSortOperator(plan, ctx, std::move(child));
    }
    case PlanNodeType::kLimit: {
      LAZYETL_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                               BuildOperatorTree(*plan.children[0], ctx));
      return BatchOperatorPtr(
          std::make_unique<LimitOperator>(plan.limit, std::move(child)));
    }
  }
  return Status::Internal("unhandled plan node type");
}

}  // namespace lazyetl::engine
