// Streaming (non-breaking) operators: Scan, Filter, Project, Limit, the
// fused FilterScan — plus the plan-to-operator translation, the serial
// drain helper and the morsel-driven parallel drive loop.

#include <atomic>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "engine/expr_eval.h"
#include "engine/operators/batch_cursor.h"
#include "engine/operators/internal.h"
#include "engine/operators/join_build.h"
#include "engine/operators/operator.h"
#include "engine/pruning.h"

namespace lazyetl::engine {

using storage::Column;
using storage::SelectionVector;
using storage::Table;
using storage::TablePtr;
using storage::TableSlice;

namespace {

// Probe-side half of the Bloom semi-join pushdown (see JoinBloomSlot in
// internal.h). Open resolves the join-key columns against the scan's
// output slice and pre-hashes their dictionaries; Refine drops selected
// rows whose key hash cannot be in the build side. The hash fold is
// identical to JoinBuild's (seed, per-column value hashes, key order), so
// Refine never drops a row the exact probe would match — the filter is an
// early-out, not a correctness input.
class BloomProbe {
 public:
  void Open(std::shared_ptr<JoinBloomSlot> slot, const TableSlice& base) {
    slot_ = std::move(slot);
    cols_.clear();
    dict_hashes_.clear();
    if (slot_ == nullptr) return;
    for (const auto& name : slot_->key_names) {
      auto idx = base.ColumnIndex(name);
      if (!idx.ok()) {  // advisory filter: a miss disables, never errors
        slot_.reset();
        cols_.clear();
        return;
      }
      cols_.push_back(&base.column(*idx));
    }
    dict_hashes_.resize(cols_.size());
    for (size_t c = 0; c < cols_.size(); ++c) {
      if (cols_[c]->type() == storage::DataType::kString &&
          cols_[c]->dict_encoded()) {
        kernels::HashDictionary(*cols_[c]->dictionary(), &dict_hashes_[c]);
      }
    }
  }

  // The join publishes with release ordering after filling the filter;
  // until then every row passes.
  bool active() const {
    return slot_ != nullptr && slot_->ready.load(std::memory_order_acquire);
  }

  // Keeps only the rows of `sel` (absolute row = base_offset + entry)
  // whose key hash may be in the filter; returns the number dropped.
  size_t Refine(size_t base_offset, SelectionVector* sel) const {
    const size_t n = sel->size();
    if (n == 0) return 0;
    std::vector<uint64_t> hashes(n, kernels::kGroupHashSeed);
    for (size_t c = 0; c < cols_.size(); ++c) {
      kernels::JoinHashRows(
          *cols_[c], base_offset, sel->data(), n,
          dict_hashes_[c].empty() ? nullptr : dict_hashes_[c].data(),
          hashes.data());
    }
    size_t kept = 0;
    for (size_t i = 0; i < n; ++i) {
      if (slot_->filter.MayContain(hashes[i])) (*sel)[kept++] = (*sel)[i];
    }
    sel->resize(kept);
    return n - kept;
  }

 private:
  std::shared_ptr<JoinBloomSlot> slot_;
  std::vector<const Column*> cols_;
  std::vector<std::vector<uint64_t>> dict_hashes_;
};

// Scan: emits zero-copy slices over a catalog table, optionally projected
// and renamed to qualified display names. O(#columns) per batch — the
// non-qualifying rows of a selective query are never copied. Parallel
// safe: an atomic cursor hands each worker a disjoint morsel range, and
// seq is the morsel index.
class ScanOperator : public BatchOperator {
 public:
  ScanOperator(TablePtr table, std::vector<ScanColumn> columns,
               const std::string& label, size_t batch_rows,
               std::shared_ptr<JoinBloomSlot> bloom_slot = nullptr)
      : BatchOperator("Scan(" + label + ")"),
        table_(std::move(table)),
        columns_(std::move(columns)),
        batch_rows_(batch_rows),
        bloom_slot_(std::move(bloom_slot)) {}

  bool ParallelSafe() const override { return true; }

 protected:
  Status OpenImpl() override {
    base_ = TableSlice();
    if (columns_.empty()) {
      base_ = TableSlice::FromTable(*table_, 0, 0);
    } else {
      for (const auto& sc : columns_) {
        LAZYETL_ASSIGN_OR_RETURN(const Column* c,
                                 table_->ColumnByName(sc.base_column));
        base_.AddColumn(sc.output_name, c);
      }
    }
    // Snapshot the row count: rows appended mid-query (lazy hydration)
    // become visible to the next query, matching the materialised
    // executor's copy-at-scan semantics.
    rows_ = table_->num_rows();
    step_ = std::min(batch_rows_, std::max<size_t>(rows_, 1));
    offset_.store(0, std::memory_order_relaxed);
    emitted_.store(false, std::memory_order_relaxed);
    bloom_.Open(bloom_slot_, base_);
    return Status::OK();
  }

  Result<bool> NextImpl(Batch* out) override {
    while (true) {
      size_t start = offset_.fetch_add(step_, std::memory_order_relaxed);
      if (start >= rows_) {
        // Exactly one schema-carrying empty batch (restored by the drive
        // loop when running in parallel): the whole output for an empty
        // table, the end-of-stream schema batch when the Bloom pushdown
        // may have dropped every morsel. Without a Bloom slot a non-empty
        // table always emitted a real batch first, so this never fires
        // and the output is unchanged.
        if (!parallel_drive() && !emitted_.exchange(true)) {
          out->view = base_;
          out->view.SetRange(0, 0);
          out->owner = table_;
          out->seq = rows_ == 0 ? 0 : rows_ / step_ + 1;
          return true;
        }
        return false;
      }
      size_t n = std::min(step_, rows_ - start);
      uint64_t seq = start / step_;
      if (bloom_.active()) {
        SelectionVector sel(n);
        for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
        size_t dropped = bloom_.Refine(start, &sel);
        if (dropped > 0) {
          RecordRowsBloomFiltered(dropped);
          if (sel.empty()) continue;
          TableSlice morsel = base_;
          morsel.SetRange(start, n);
          *out = Batch::Materialized(morsel.Gather(sel));
          out->seq = seq;
          emitted_.store(true, std::memory_order_relaxed);
          return true;
        }
      }
      out->view = base_;
      out->view.SetRange(start, n);
      out->owner = table_;
      out->seq = seq;
      emitted_.store(true, std::memory_order_relaxed);
      return true;
    }
  }

 private:
  TablePtr table_;
  std::vector<ScanColumn> columns_;
  size_t batch_rows_;
  std::shared_ptr<JoinBloomSlot> bloom_slot_;
  BloomProbe bloom_;
  TableSlice base_;
  size_t rows_ = 0;
  size_t step_ = 1;
  std::atomic<size_t> offset_{0};
  std::atomic<bool> emitted_{false};
};

// Filter: evaluates the predicate per batch into a selection vector and
// gathers the qualifying rows. An all-pass batch is forwarded unchanged
// (zero-copy); all-drop batches are skipped. Parallel safe when the child
// is: predicate evaluation and gather touch only the worker's own batch.
class FilterOperator : public BatchOperator {
 public:
  FilterOperator(const sql::BoundExpr* predicate, BatchOperatorPtr child)
      : BatchOperator("Filter"), predicate_(predicate) {
    AddChild(std::move(child));
  }

  bool ParallelSafe() const override { return child()->ParallelSafe(); }

 protected:
  Result<bool> NextImpl(Batch* out) override {
    while (true) {
      Batch in;
      LAZYETL_ASSIGN_OR_RETURN(bool more, child()->Next(&in));
      if (!more) {
        if (parallel_drive()) return false;
        if (!emitted_.exchange(true)) {
          std::lock_guard<std::mutex> lock(empty_mu_);
          *out = Batch::Materialized(std::move(empty_));
          return true;
        }
        return false;
      }
      LAZYETL_ASSIGN_OR_RETURN(SelectionVector sel,
                               EvaluatePredicate(*predicate_, in.view));
      if (sel.size() == in.num_rows()) {
        *out = std::move(in);
        emitted_.store(true);
        return true;
      }
      if (sel.empty()) {
        if (!emitted_.load()) {
          std::lock_guard<std::mutex> lock(empty_mu_);
          if (!empty_captured_) {
            empty_ = in.view.Gather({});  // schema for EOS
            empty_captured_ = true;
          }
        }
        continue;
      }
      uint64_t seq = in.seq;
      *out = Batch::Materialized(in.view.Gather(sel));
      out->seq = seq;
      emitted_.store(true);
      return true;
    }
  }

 private:
  const sql::BoundExpr* predicate_;
  std::mutex empty_mu_;
  Table empty_;
  bool empty_captured_ = false;
  std::atomic<bool> emitted_{false};
};

// FilterScan: Filter fused into Scan (selection-vector pushdown). The
// predicate is evaluated directly on zero-copy morsel views of the base
// table; all-pass morsels are forwarded without any copy, all-drop
// morsels are skipped without leaving the operator, and — on the serial
// path — qualifying rows of highly selective predicates are accumulated
// across morsels into one batch-sized gather instead of one small gather
// per input batch. Reports stats as the Filter/Scan pair it replaces.
class FilterScanOperator : public BatchOperator {
 public:
  FilterScanOperator(TablePtr table, std::vector<ScanColumn> columns,
                     const std::string& label, const sql::BoundExpr* predicate,
                     size_t batch_rows,
                     std::shared_ptr<JoinBloomSlot> bloom_slot = nullptr)
      : BatchOperator("Filter"),
        table_(std::move(table)),
        columns_(std::move(columns)),
        predicate_(predicate),
        batch_rows_(batch_rows),
        bloom_slot_(std::move(bloom_slot)) {
    scan_stats_.op = "Scan(" + label + ")";
  }

  bool ParallelSafe() const override { return true; }

  // The fused operator stands in for a Filter above a Scan: report both
  // stages so pipeline introspection stays shaped like the plan. The
  // scan stage reports the morsels it viewed; its time cannot be
  // separated from predicate evaluation, so `seconds` is attributed
  // wholly to the Filter entry.
  void AppendStats(std::vector<OperatorStats>* out) const override {
    out->push_back(stats_);
    OperatorStats scan = scan_stats_;
    scan.rows = scanned_rows_.load(std::memory_order_relaxed);
    scan.batches = scanned_batches_.load(std::memory_order_relaxed);
    scan.peak_batch_bytes = scanned_peak_bytes_.load(std::memory_order_relaxed);
    scan.morsels_pruned = morsels_pruned_.load(std::memory_order_relaxed);
    scan.rows_pruned = rows_pruned_.load(std::memory_order_relaxed);
    scan.rows_bloom_filtered =
        rows_bloom_filtered_.load(std::memory_order_relaxed);
    out->push_back(scan);
  }

 protected:
  Status OpenImpl() override {
    base_ = TableSlice();
    if (columns_.empty()) {
      base_ = TableSlice::FromTable(*table_, 0, 0);
    } else {
      for (const auto& sc : columns_) {
        LAZYETL_ASSIGN_OR_RETURN(const Column* c,
                                 table_->ColumnByName(sc.base_column));
        base_.AddColumn(sc.output_name, c);
      }
    }
    rows_ = table_->num_rows();
    step_ = std::min(batch_rows_, std::max<size_t>(rows_, 1));
    offset_.store(0, std::memory_order_relaxed);
    emitted_.store(false, std::memory_order_relaxed);
    pending_.clear();
    pending_first_seq_ = 0;
    // Zone-map constraints for morsel pruning; empty (prune nothing) when
    // disabled, when statistics are missing, or when the predicate is not
    // a conjunction of column-literal comparisons.
    constraints_.clear();
    if (PruningEnabled()) {
      constraints_ = ExtractScanConstraints(*predicate_, base_, *table_);
    }
    bloom_.Open(bloom_slot_, base_);
    return Status::OK();
  }

  Result<bool> NextImpl(Batch* out) override {
    while (true) {
      size_t start = offset_.fetch_add(step_, std::memory_order_relaxed);
      if (start >= rows_) {
        if (parallel_drive()) return false;
        if (!pending_.empty()) return FlushPending(out);
        if (!emitted_.exchange(true)) {
          // Schema-carrying empty batch (zero-copy: the base slice).
          out->view = base_;
          out->view.SetRange(0, 0);
          out->owner = table_;
          out->seq = rows_ / step_ + 1;
          return true;
        }
        return false;
      }
      size_t n = std::min(step_, rows_ - start);
      // Zone-map pruning: a morsel whose chunk statistics prove no row can
      // satisfy the predicate is equivalent to an all-drop morsel — skip it
      // without viewing any data.
      if (!constraints_.empty() && !RangeCanMatch(constraints_, start, n)) {
        morsels_pruned_.fetch_add(1, std::memory_order_relaxed);
        rows_pruned_.fetch_add(n, std::memory_order_relaxed);
        continue;
      }
      TableSlice morsel = base_;
      morsel.SetRange(start, n);
      scanned_rows_.fetch_add(n, std::memory_order_relaxed);
      scanned_batches_.fetch_add(1, std::memory_order_relaxed);
      uint64_t viewed = morsel.ViewedBytes();
      uint64_t prev = scanned_peak_bytes_.load(std::memory_order_relaxed);
      while (viewed > prev && !scanned_peak_bytes_.compare_exchange_weak(
                                  prev, viewed, std::memory_order_relaxed)) {
      }
      LAZYETL_ASSIGN_OR_RETURN(SelectionVector sel,
                               EvaluatePredicate(*predicate_, morsel));
      if (bloom_.active()) {
        // sel entries are morsel-relative; absolute row = start + entry.
        rows_bloom_filtered_.fetch_add(bloom_.Refine(start, &sel),
                                       std::memory_order_relaxed);
      }
      uint64_t seq = start / step_;
      if (sel.size() == n && pending_.empty()) {
        out->view = std::move(morsel);
        out->owner = table_;
        out->seq = seq;
        emitted_.store(true, std::memory_order_relaxed);
        return true;
      }
      if (sel.empty()) continue;
      if (parallel_drive()) {
        // Per-morsel emission keeps seq a pure function of the morsel.
        *out = Batch::Materialized(morsel.Gather(sel));
        out->seq = seq;
        emitted_.store(true, std::memory_order_relaxed);
        return true;
      }
      // Serial: accumulate absolute row ids until a full output batch is
      // ready, then gather once — selective predicates skip the per-morsel
      // gather entirely.
      if (pending_.empty()) pending_first_seq_ = seq;
      for (uint32_t rel : sel) {
        pending_.push_back(static_cast<uint32_t>(start) + rel);
      }
      if (pending_.size() >= batch_rows_) return FlushPending(out);
    }
  }

 private:
  Result<bool> FlushPending(Batch* out) {
    TableSlice all = base_;
    all.SetRange(0, rows_);
    *out = Batch::Materialized(all.Gather(pending_));
    out->seq = pending_first_seq_;
    pending_.clear();
    emitted_.store(true, std::memory_order_relaxed);
    return true;
  }

  TablePtr table_;
  std::vector<ScanColumn> columns_;
  const sql::BoundExpr* predicate_;
  size_t batch_rows_;
  std::shared_ptr<JoinBloomSlot> bloom_slot_;
  BloomProbe bloom_;
  TableSlice base_;
  size_t rows_ = 0;
  size_t step_ = 1;
  std::atomic<size_t> offset_{0};
  std::atomic<bool> emitted_{false};
  std::atomic<uint64_t> scanned_rows_{0};
  std::atomic<uint64_t> scanned_batches_{0};
  std::atomic<uint64_t> scanned_peak_bytes_{0};
  std::atomic<uint64_t> morsels_pruned_{0};
  std::atomic<uint64_t> rows_pruned_{0};
  std::atomic<uint64_t> rows_bloom_filtered_{0};
  std::vector<ScanConstraint> constraints_;
  SelectionVector pending_;  // absolute row ids, serial path only
  uint64_t pending_first_seq_ = 0;
  OperatorStats scan_stats_;
};

// Project: evaluates the projection expressions per batch. Stateless, so
// parallel-safe whenever the child is.
class ProjectOperator : public BatchOperator {
 public:
  ProjectOperator(const PlanNode* node, BatchOperatorPtr child)
      : BatchOperator("Project"), node_(node) {
    AddChild(std::move(child));
  }

  bool ParallelSafe() const override { return child()->ParallelSafe(); }

 protected:
  Result<bool> NextImpl(Batch* out) override {
    Batch in;
    LAZYETL_ASSIGN_OR_RETURN(bool more, child()->Next(&in));
    if (!more) return false;
    Table projected;
    for (size_t i = 0; i < node_->project_exprs.size(); ++i) {
      LAZYETL_ASSIGN_OR_RETURN(Column c,
                               EvaluateExpr(*node_->project_exprs[i], in.view));
      LAZYETL_RETURN_NOT_OK(
          projected.AddColumn(node_->project_names[i], std::move(c)));
    }
    uint64_t seq = in.seq;
    *out = Batch::Materialized(std::move(projected));
    out->seq = seq;
    return true;
  }

 private:
  const PlanNode* node_;
};

// Limit: forwards batches until the limit is reached, truncating the last
// one with a zero-copy prefix view; then stops pulling the child (early
// exit — an upstream scan never produces the unneeded rows). Inherently
// serial: the prefix depends on arrival order.
class LimitOperator : public BatchOperator {
 public:
  LimitOperator(int64_t limit, BatchOperatorPtr child)
      : BatchOperator("Limit"),
        remaining_(static_cast<size_t>(std::max<int64_t>(0, limit))) {
    AddChild(std::move(child));
  }

 protected:
  Result<bool> NextImpl(Batch* out) override {
    if (remaining_ == 0 && emitted_) return false;
    Batch in;
    LAZYETL_ASSIGN_OR_RETURN(bool more, child()->Next(&in));
    if (!more) return false;
    if (in.num_rows() > remaining_) {
      out->view = in.view.Prefix(remaining_);
      out->owner = std::move(in.owner);
      out->seq = in.seq;
      remaining_ = 0;
    } else {
      remaining_ -= in.num_rows();
      *out = std::move(in);
    }
    emitted_ = true;
    return true;
  }

 private:
  size_t remaining_;
  bool emitted_ = false;
};

// A join is eligible for the Bloom semi-join pushdown when its probe side
// is a Scan (possibly under a Filter, which fuses into FilterScan) whose
// output carries every probe-side join key. The slot is allocated fresh
// per operator-tree build, so re-executing a cached plan can never see a
// stale filter. Under kAuto the join still decides at run time whether
// the build side is big enough to publish.
std::shared_ptr<JoinBloomSlot> MaybeMakeJoinBloomSlot(const PlanNode& plan) {
  if (!VectorJoinEnabled()) return nullptr;  // oracle path stays legacy
  if (ResolveJoinBloomMode() == JoinBloomMode::kOff) return nullptr;
  const PlanNode* scan = plan.children[1].get();
  if (scan->type == PlanNodeType::kFilter) scan = scan->children[0].get();
  if (scan->type != PlanNodeType::kScan) return nullptr;
  if (!scan->scan_columns.empty()) {
    for (const auto& key : plan.right_keys) {
      bool found = false;
      for (const auto& sc : scan->scan_columns) {
        if (sc.output_name == key) {
          found = true;
          break;
        }
      }
      if (!found) return nullptr;
    }
  }
  auto slot = std::make_shared<JoinBloomSlot>();
  slot->key_names = plan.right_keys;
  return slot;
}

// Builds a join's probe subtree with the Bloom slot threaded into its
// scan. With no slot this is plain BuildOperatorTree; with one, the node
// shape was already vetted by MaybeMakeJoinBloomSlot (Scan, or Filter
// over Scan — replicating the fusion of the kFilter case below).
Result<BatchOperatorPtr> BuildProbeSide(
    const PlanNode& node, ExecContext* ctx,
    const std::shared_ptr<JoinBloomSlot>& slot) {
  if (slot == nullptr) return BuildOperatorTree(node, ctx);
  if (node.type == PlanNodeType::kScan) {
    LAZYETL_ASSIGN_OR_RETURN(TablePtr table,
                             ctx->catalog->GetTable(node.table));
    return BatchOperatorPtr(std::make_unique<ScanOperator>(
        std::move(table), node.scan_columns, node.table, ctx->batch_rows,
        slot));
  }
  const PlanNode& below = *node.children[0];
  LAZYETL_ASSIGN_OR_RETURN(TablePtr table,
                           ctx->catalog->GetTable(below.table));
  return BatchOperatorPtr(std::make_unique<FilterScanOperator>(
      std::move(table), below.scan_columns, below.table,
      node.predicate.get(), ctx->batch_rows, slot));
}

}  // namespace

Result<Table> DrainToTable(BatchOperator* op) {
  Table result;
  bool first = true;
  Batch batch;
  while (true) {
    LAZYETL_ASSIGN_OR_RETURN(bool more, op->Next(&batch));
    if (!more) break;
    if (first) {
      result = batch.view.Materialize();
      first = false;
    } else {
      LAZYETL_RETURN_NOT_OK(result.AppendSlice(batch.view));
    }
  }
  return result;
}

Status ParallelDrain(BatchOperator* op, size_t threads,
                     const BatchSink& sink) {
  return ParallelDrain(op, threads, sink, nullptr);
}

Status ParallelDrain(BatchOperator* op, size_t threads, const BatchSink& sink,
                     const WorkerDone& done) {
  if (threads <= 1 || !op->ParallelSafe()) {
    Batch batch;
    while (true) {
      LAZYETL_ASSIGN_OR_RETURN(bool more, op->Next(&batch));
      if (!more) break;
      LAZYETL_RETURN_NOT_OK(sink(0, std::move(batch)));
      batch = Batch();
    }
    if (done) done(0);
    return Status::OK();
  }

  op->SetParallelDrive(true);
  std::atomic<bool> failed{false};
  std::atomic<uint64_t> produced{0};
  std::mutex error_mu;
  Status first_error;

  common::ThreadPool::Shared().ParallelFor(
      threads, threads, [&](size_t worker) {
        Batch batch;
        while (!failed.load(std::memory_order_relaxed)) {
          auto more = op->Next(&batch);
          Status st = more.ok() ? Status::OK() : more.status();
          if (st.ok() && !*more) break;
          if (st.ok()) {
            produced.fetch_add(1, std::memory_order_relaxed);
            st = sink(worker, std::move(batch));
            batch = Batch();
          }
          if (!st.ok()) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (first_error.ok()) first_error = st;
            failed.store(true, std::memory_order_relaxed);
            break;
          }
        }
        // Fires on every exit path, clean or failed: a sink blocking on
        // this worker's watermark must be released either way.
        if (done) done(worker);
      });
  op->SetParallelDrive(false);
  if (failed.load()) return first_error;

  if (produced.load() == 0) {
    // Restore the at-least-one-batch contract: the schema batch the
    // workers suppressed.
    Batch batch;
    LAZYETL_ASSIGN_OR_RETURN(bool more, op->Next(&batch));
    if (more) LAZYETL_RETURN_NOT_OK(sink(0, std::move(batch)));
  }
  return Status::OK();
}

// Streaming in-order reassembly: the materializing drain is now a thin
// consumer over BatchCursor (the resumable, suspended form of this same
// watermark drive loop — see batch_cursor.h). An unbounded window keeps
// the historical behavior: the consumer appends every contiguous seq
// prefix while the drain runs, so only out-of-order batches buffer.
Result<Table> DrainToTableOrdered(BatchOperator* op, size_t threads) {
  if (threads <= 1 || !op->ParallelSafe()) return DrainToTable(op);

  BatchCursor cursor(op, BatchCursor::Options{threads, /*window_batches=*/0});
  Table result;
  bool first = true;
  Batch batch;
  while (true) {
    LAZYETL_ASSIGN_OR_RETURN(bool more, cursor.Next(&batch));
    if (!more) break;
    if (first) {
      result = batch.view.Materialize();
      first = false;
    } else {
      // On failure the cursor destructor cancels the drive loop.
      LAZYETL_RETURN_NOT_OK(result.AppendSlice(batch.view));
    }
    batch = Batch();
  }
  return result;
}

Result<BatchOperatorPtr> BuildOperatorTree(const PlanNode& plan,
                                           ExecContext* ctx) {
  switch (plan.type) {
    case PlanNodeType::kScan: {
      LAZYETL_ASSIGN_OR_RETURN(TablePtr table,
                               ctx->catalog->GetTable(plan.table));
      return BatchOperatorPtr(std::make_unique<ScanOperator>(
          std::move(table), plan.scan_columns, plan.table, ctx->batch_rows));
    }
    case PlanNodeType::kLazyDataScan:
      return MakeLazyDataScanOperator(plan, ctx);
    case PlanNodeType::kCachedScan:
      // The table travels in the node (sub-plan cache hit); scanned
      // whole, zero-copy — slices share the cached columns.
      return BatchOperatorPtr(std::make_unique<ScanOperator>(
          plan.cached_table, plan.scan_columns, plan.table,
          ctx->batch_rows));
    case PlanNodeType::kFilter: {
      const PlanNode& below = *plan.children[0];
      if (below.type == PlanNodeType::kScan) {
        // Operator fusion: push the selection vector into the scan. The
        // plan keeps its Filter-over-Scan shape; only execution fuses.
        LAZYETL_ASSIGN_OR_RETURN(TablePtr table,
                                 ctx->catalog->GetTable(below.table));
        return BatchOperatorPtr(std::make_unique<FilterScanOperator>(
            std::move(table), below.scan_columns, below.table,
            plan.predicate.get(), ctx->batch_rows));
      }
      LAZYETL_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                               BuildOperatorTree(below, ctx));
      return BatchOperatorPtr(std::make_unique<FilterOperator>(
          plan.predicate.get(), std::move(child)));
    }
    case PlanNodeType::kHashJoin: {
      LAZYETL_ASSIGN_OR_RETURN(BatchOperatorPtr left,
                               BuildOperatorTree(*plan.children[0], ctx));
      std::shared_ptr<JoinBloomSlot> bloom = MaybeMakeJoinBloomSlot(plan);
      LAZYETL_ASSIGN_OR_RETURN(
          BatchOperatorPtr right,
          BuildProbeSide(*plan.children[1], ctx, bloom));
      return MakeHashJoinOperator(plan, ctx, std::move(left),
                                  std::move(right), std::move(bloom));
    }
    case PlanNodeType::kAggregate: {
      LAZYETL_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                               BuildOperatorTree(*plan.children[0], ctx));
      return MakeAggregateOperator(plan, ctx, std::move(child));
    }
    case PlanNodeType::kProject: {
      LAZYETL_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                               BuildOperatorTree(*plan.children[0], ctx));
      return BatchOperatorPtr(
          std::make_unique<ProjectOperator>(&plan, std::move(child)));
    }
    case PlanNodeType::kDistinct: {
      LAZYETL_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                               BuildOperatorTree(*plan.children[0], ctx));
      return MakeDistinctOperator(plan, ctx, std::move(child));
    }
    case PlanNodeType::kSort: {
      LAZYETL_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                               BuildOperatorTree(*plan.children[0], ctx));
      return MakeSortOperator(plan, ctx, std::move(child));
    }
    case PlanNodeType::kTopK: {
      LAZYETL_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                               BuildOperatorTree(*plan.children[0], ctx));
      return MakeTopKOperator(plan, ctx, std::move(child));
    }
    case PlanNodeType::kLimit: {
      LAZYETL_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                               BuildOperatorTree(*plan.children[0], ctx));
      return BatchOperatorPtr(
          std::make_unique<LimitOperator>(plan.limit, std::move(child)));
    }
  }
  return Status::Internal("unhandled plan node type");
}

}  // namespace lazyetl::engine
