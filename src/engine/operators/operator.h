// BatchOperator: the pull-based (Open/Next/Close) operator interface of
// the streaming engine.
//
// Operators exchange Batches — zero-copy TableSlice views paired with an
// optional owner keeping the viewed storage alive. Streaming operators
// (Scan, Filter, Project, Limit) touch one batch at a time; pipeline
// breakers (Sort, Aggregate, HashJoin build side, Distinct's seen-set)
// consume their input and re-emit batches, recording their materialised
// state in the operator counters.
//
// Invariant: every operator emits at least one (possibly empty) batch
// before end-of-stream, so column names and types always reach the
// consumer even for empty results.

#ifndef LAZYETL_ENGINE_OPERATORS_OPERATOR_H_
#define LAZYETL_ENGINE_OPERATORS_OPERATOR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "engine/executor.h"
#include "engine/report.h"
#include "storage/slice.h"
#include "storage/table.h"

namespace lazyetl::engine {

// One unit of data flowing through the pipeline.
struct Batch {
  storage::TableSlice view;
  // Keep-alive for the storage behind `view`; null when the view borrows
  // from a base table owned elsewhere (e.g. the catalog).
  std::shared_ptr<const storage::Table> owner;

  size_t num_rows() const { return view.num_rows(); }

  // Wraps an operator-produced table: the batch owns it and views all of
  // its rows.
  static Batch Materialized(storage::Table table) {
    Batch b;
    b.owner = std::make_shared<const storage::Table>(std::move(table));
    b.view = b.owner->Slice(0, b.owner->num_rows());
    return b;
  }
};

// Everything an operator needs from its surroundings.
struct ExecContext {
  const storage::Catalog* catalog = nullptr;
  LazyDataProvider* provider = nullptr;
  ExecutionReport* report = nullptr;
  size_t batch_rows = kDefaultBatchRows;
};

class BatchOperator {
 public:
  explicit BatchOperator(std::string name) { stats_.op = std::move(name); }
  virtual ~BatchOperator() = default;

  BatchOperator(const BatchOperator&) = delete;
  BatchOperator& operator=(const BatchOperator&) = delete;

  // Called once before the first Next(); opens children first, then this
  // operator. Pipeline breakers do their consuming work in OpenImpl or
  // lazily on the first Next(); that work is counted in this operator's
  // seconds (inclusive of the child pulls it performs).
  Status Open() {
    for (auto& c : children_) {
      Status st = c->Open();
      if (!st.ok()) return st;
    }
    Stopwatch timer;
    Status st = OpenImpl();
    stats_.seconds += timer.ElapsedSeconds();
    return st;
  }

  // Produces the next batch; returns false at end of stream. Wraps
  // NextImpl with timing and batch/row accounting.
  Result<bool> Next(Batch* out) {
    Stopwatch timer;
    auto produced = NextImpl(out);
    stats_.seconds += timer.ElapsedSeconds();
    if (produced.ok() && *produced) {
      ++stats_.batches;
      stats_.rows += out->num_rows();
      uint64_t bytes = out->view.ViewedBytes();
      if (bytes > stats_.peak_batch_bytes) stats_.peak_batch_bytes = bytes;
    }
    return produced;
  }

  // Called once after the last Next() (or on abandon); closes this
  // operator first, then its children.
  void Close() {
    CloseImpl();
    for (auto& child : children_) child->Close();
  }

  const OperatorStats& stats() const { return stats_; }

  // Appends this operator's counters, then its children's (pre-order).
  void AppendStats(std::vector<OperatorStats>* out) const {
    out->push_back(stats_);
    for (const auto& child : children_) child->AppendStats(out);
  }

 protected:
  virtual Status OpenImpl() { return Status::OK(); }
  virtual Result<bool> NextImpl(Batch* out) = 0;
  virtual void CloseImpl() {}

  // Pipeline breakers report the bytes of state they hold materialised.
  void RecordStateBytes(uint64_t bytes) {
    if (bytes > stats_.state_bytes) stats_.state_bytes = bytes;
  }

  BatchOperator* child(size_t i = 0) { return children_[i].get(); }
  void AddChild(std::unique_ptr<BatchOperator> op) {
    children_.push_back(std::move(op));
  }
  size_t num_children() const { return children_.size(); }

  OperatorStats stats_;

 private:
  std::vector<std::unique_ptr<BatchOperator>> children_;
};

using BatchOperatorPtr = std::unique_ptr<BatchOperator>;

// Builds the operator tree for `plan`. The context must outlive the tree.
Result<BatchOperatorPtr> BuildOperatorTree(const PlanNode& plan,
                                           ExecContext* ctx);

// Drains an already-opened operator into one materialised table (Next
// loop only — the caller owns Open/Close). Used by the executor driver
// for the query result and by pipeline breakers that need their input
// whole.
Result<storage::Table> DrainToTable(BatchOperator* op);

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_OPERATORS_OPERATOR_H_
