// BatchOperator: the pull-based (Open/Next/Close) operator interface of
// the streaming engine.
//
// Operators exchange Batches — zero-copy TableSlice views paired with an
// optional owner keeping the viewed storage alive. Streaming operators
// (Scan, Filter, Project, Limit) touch one batch at a time; pipeline
// breakers (Sort, TopK, Aggregate, HashJoin build side, Distinct's
// seen-set) consume their input and re-emit batches, recording their
// materialised state in the operator counters.
//
// Invariant: every operator emits at least one (possibly empty) batch
// before end-of-stream, so column names and types always reach the
// consumer even for empty results.
//
// Morsel-driven parallelism: operators whose ParallelSafe() is true may
// have Next() called concurrently from several workers — each call hands
// out a disjoint morsel. Every batch carries a sequence number `seq` that
// is a pure function of the morsel (not of scheduling), so consumers that
// need order (sort input assembly, aggregate merge, the final drain)
// restore the serial order deterministically by sorting on seq.

#ifndef LAZYETL_ENGINE_OPERATORS_OPERATOR_H_
#define LAZYETL_ENGINE_OPERATORS_OPERATOR_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/memory_budget.h"
#include "common/result.h"
#include "common/spill.h"
#include "common/time.h"
#include "engine/executor.h"
#include "engine/report.h"
#include "storage/slice.h"
#include "storage/table.h"

namespace lazyetl::engine {

// One unit of data flowing through the pipeline.
struct Batch {
  storage::TableSlice view;
  // Keep-alive for the storage behind `view`; null when the view borrows
  // from a base table owned elsewhere (e.g. the catalog).
  std::shared_ptr<const storage::Table> owner;
  // Deterministic morsel id: assigned by the source (scan morsel index,
  // stream chunk index, emitter slice index) and preserved by streaming
  // operators. Serial pulls observe strictly increasing seqs; parallel
  // consumers sort on it to recover the serial order.
  uint64_t seq = 0;

  size_t num_rows() const { return view.num_rows(); }

  // Wraps an operator-produced table: the batch owns it and views all of
  // its rows.
  static Batch Materialized(storage::Table table) {
    Batch b;
    b.owner = std::make_shared<const storage::Table>(std::move(table));
    b.view = b.owner->Slice(0, b.owner->num_rows());
    return b;
  }
};

// Everything an operator needs from its surroundings.
struct ExecContext {
  const storage::Catalog* catalog = nullptr;
  LazyDataProvider* provider = nullptr;
  ExecutionReport* report = nullptr;
  size_t batch_rows = kDefaultBatchRows;
  // Resolved worker count for this query (>= 1; 1 = the serial path).
  size_t query_threads = 1;
  // Memory governance (owned by the Executor, outlives the tree). When
  // `budget` is null or unlimited, breakers keep their in-memory fast
  // paths; otherwise they reserve state bytes against it and spill through
  // `spill` when a reservation fails.
  common::MemoryBudget* budget = nullptr;
  common::SpillManager* spill = nullptr;

  // True when breakers must govern their state with the budget.
  bool budgeted() const { return budget != nullptr && !budget->unlimited(); }
};

class BatchOperator {
 public:
  explicit BatchOperator(std::string name) { stats_.op = std::move(name); }
  virtual ~BatchOperator() = default;

  BatchOperator(const BatchOperator&) = delete;
  BatchOperator& operator=(const BatchOperator&) = delete;

  // Called once before the first Next(); opens children first, then this
  // operator. Pipeline breakers do their consuming work in OpenImpl or
  // lazily on the first Next(); that work is counted in this operator's
  // seconds (inclusive of the child pulls it performs).
  Status Open() {
    for (auto& c : children_) {
      Status st = c->Open();
      if (!st.ok()) return st;
    }
    Stopwatch timer;
    Status st = OpenImpl();
    stats_.seconds += timer.ElapsedSeconds();  // Open is single-threaded
    return st;
  }

  // Produces the next batch; returns false at end of stream. Wraps
  // NextImpl with timing and batch/row accounting. Thread-safe counter
  // aggregation: under parallel drive, concurrent calls update the stats
  // under a mutex and each add their own time, so `seconds` approximates
  // aggregate worker time (it can exceed wall clock); the serial path
  // skips the lock — only the drive loop ever calls Next concurrently.
  Result<bool> Next(Batch* out) {
    Stopwatch timer;
    auto produced = NextImpl(out);
    double seconds = timer.ElapsedSeconds();
    if (parallel_drive_) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      UpdateStats(produced, *out, seconds);
    } else {
      UpdateStats(produced, *out, seconds);
    }
    return produced;
  }

  // Called once after the last Next() (or on abandon); closes this
  // operator first, then its children.
  void Close() {
    CloseImpl();
    for (auto& child : children_) child->Close();
  }

  // True when Next() may be called concurrently from several workers.
  // Evaluated after Open() (breakers decide their mode there).
  virtual bool ParallelSafe() const { return false; }

  // Toggled by the parallel driver on the subtree it drives. While set,
  // operators suppress their at-least-one-empty-batch end-of-stream
  // contract (several workers would race to emit it); the driver restores
  // the contract with one serial Next() after the workers joined.
  void SetParallelDrive(bool on) {
    parallel_drive_ = on;
    for (auto& child : children_) child->SetParallelDrive(on);
  }

  const OperatorStats& stats() const { return stats_; }

  // Appends this operator's counters, then its children's (pre-order).
  virtual void AppendStats(std::vector<OperatorStats>* out) const {
    out->push_back(stats_);
    for (const auto& child : children_) child->AppendStats(out);
  }

 protected:
  virtual Status OpenImpl() { return Status::OK(); }
  virtual Result<bool> NextImpl(Batch* out) = 0;
  virtual void CloseImpl() {}

  bool parallel_drive() const { return parallel_drive_; }

 public:
  // Pipeline breakers report the bytes of state they hold materialised —
  // on the budgeted path, the peak reserved bytes (recorded just before a
  // spill releases them). Public so the spill helpers in breakers.cc can
  // charge the operator they act for; concurrent consume-phase workers
  // may call these, so updates take the stats lock.
  void RecordStateBytes(uint64_t bytes) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (bytes > stats_.state_bytes) stats_.state_bytes = bytes;
  }
  void RecordSpill(uint64_t bytes, uint64_t files) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.spilled_bytes += bytes;
    stats_.spill_files += files;
  }
  void RecordPartitions(uint64_t count) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.partitions += count;
  }
  // Physical spill bytes (post-compression) and producer time blocked on
  // spill I/O; RecordSpill keeps counting the logical volume.
  void RecordSpillIO(uint64_t compressed_bytes, double wait_seconds) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.spill_compressed_bytes += compressed_bytes;
    stats_.spill_write_wait_seconds += wait_seconds;
  }
  void RecordGroupsVectorized(uint64_t rows) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.groups_vectorized += rows;
  }
  // Vectorized hash-join accounting: one call per vectorized build-side
  // index, plus the time spent in build/probe phases. Safe from inside
  // NextImpl — Next() takes the stats lock only after NextImpl returns.
  void RecordJoinVectorized(uint64_t builds) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.joins_vectorized += builds;
  }
  void RecordJoinBuildSeconds(double seconds) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.join_build_seconds += seconds;
  }
  void RecordJoinProbeSeconds(double seconds) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.join_probe_seconds += seconds;
  }
  // Probe rows dropped by the Bloom semi-join pushdown (scan side).
  void RecordRowsBloomFiltered(uint64_t rows) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.rows_bloom_filtered += rows;
  }

 protected:

  void UpdateStats(const Result<bool>& produced, const Batch& batch,
                   double seconds) {
    stats_.seconds += seconds;
    if (produced.ok() && *produced) {
      ++stats_.batches;
      stats_.rows += batch.num_rows();
      uint64_t bytes = batch.view.ViewedBytes();
      if (bytes > stats_.peak_batch_bytes) stats_.peak_batch_bytes = bytes;
    }
  }

  BatchOperator* child(size_t i = 0) { return children_[i].get(); }
  const BatchOperator* child(size_t i = 0) const { return children_[i].get(); }
  void AddChild(std::unique_ptr<BatchOperator> op) {
    children_.push_back(std::move(op));
  }
  size_t num_children() const { return children_.size(); }

  OperatorStats stats_;
  std::mutex stats_mu_;

 private:
  std::vector<std::unique_ptr<BatchOperator>> children_;
  bool parallel_drive_ = false;
};

using BatchOperatorPtr = std::unique_ptr<BatchOperator>;

// Builds the operator tree for `plan`. The context must outlive the tree.
Result<BatchOperatorPtr> BuildOperatorTree(const PlanNode& plan,
                                           ExecContext* ctx);

// Drains an already-opened operator into one materialised table (Next
// loop only — the caller owns Open/Close). Used by the executor driver
// for the query result and by pipeline breakers that need their input
// whole.
Result<storage::Table> DrainToTable(BatchOperator* op);

// Receives drained batches: called concurrently from different workers,
// but serially per worker id. The seqs a given worker delivers are
// strictly increasing (every parallel-safe source hands out morsels
// through a monotone cursor and streaming operators preserve the seq of
// the batch they forward), which is what makes per-worker watermarks
// sound.
using BatchSink = std::function<Status(size_t worker, Batch&& batch)>;

// Invoked once when a worker's drive loop exits — cleanly (its seq
// watermark becomes +infinity) or on failure (it will deliver no further
// batches). Either way the worker stops participating in watermark
// ordering, so a sink applying backpressure can release peers that were
// waiting on it.
using WorkerDone = std::function<void(size_t worker)>;

// Morsel-driven drive loop: pulls `op` from `threads` concurrent workers
// when it is parallel-safe (plain serial pull otherwise) and hands every
// batch to `sink`. Guarantees the at-least-one-batch contract: if the
// parallel phase produced nothing, one serial pull fetches the schema
// batch.
Status ParallelDrain(BatchOperator* op, size_t threads,
                     const BatchSink& sink);
Status ParallelDrain(BatchOperator* op, size_t threads, const BatchSink& sink,
                     const WorkerDone& done);

// DrainToTable with a parallel drive loop: batches are reassembled in seq
// order, so the result is byte-identical to the serial drain. Streaming
// in-order flush: per-worker seq watermarks let every contiguous seq
// prefix append to the result while the drain is still running, so the
// transient buffering holds only out-of-order batches instead of the
// whole input (~2× before).
Result<storage::Table> DrainToTableOrdered(BatchOperator* op,
                                           size_t threads);

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_OPERATORS_OPERATOR_H_
