#include "engine/operators/spill_run.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <utility>

#include "common/macros.h"
#include "engine/operators/join_build.h"
#include "engine/operators/operator.h"

namespace lazyetl::engine {

using storage::Column;
using storage::DataType;
using storage::SelectionVector;
using storage::Table;

int CompareColumnRows(const Column& a, size_t ar, const Column& b,
                      size_t br) {
  switch (a.type()) {
    case DataType::kString: {
      int cmp = a.StringAt(ar).compare(b.StringAt(br));
      return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    case DataType::kDouble: {
      double va = a.double_data()[ar];
      double vb = b.double_data()[br];
      return va < vb ? -1 : (va > vb ? 1 : 0);
    }
    case DataType::kBool: {
      int va = a.bool_data()[ar];
      int vb = b.bool_data()[br];
      return va < vb ? -1 : (va > vb ? 1 : 0);
    }
    case DataType::kInt32: {
      int32_t va = a.int32_data()[ar];
      int32_t vb = b.int32_data()[br];
      return va < vb ? -1 : (va > vb ? 1 : 0);
    }
    default: {  // kInt64 / kTimestamp
      int64_t va = a.int64_data()[ar];
      int64_t vb = b.int64_data()[br];
      return va < vb ? -1 : (va > vb ? 1 : 0);
    }
  }
}

size_t SpillPartitionOf(const std::string& key, size_t level, size_t fanout) {
  uint64_t h = std::hash<std::string>{}(key);
  h += 0x9E3779B97F4A7C15ull * (level + 1);
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return static_cast<size_t>(h % fanout);
}

Table SortRunRows(const Table& table, size_t order_cols,
                  const std::vector<bool>& ascending) {
  const size_t n = table.num_rows();
  const size_t first = table.num_columns() - order_cols;
  SelectionVector idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < order_cols; ++k) {
      const Column& c = table.column(first + k);
      int cmp = CompareColumnRows(c, a, c, b);
      if (cmp != 0) return ascending[k] ? cmp < 0 : cmp > 0;
    }
    return false;  // unreachable: the last order column is a unique tag
  });
  return table.Gather(idx);
}

Result<SpillWriteStats> WriteRunFile(const Table& table, size_t frame_rows,
                                     common::SpillManager* spill,
                                     std::string* path_out) {
  LAZYETL_ASSIGN_OR_RETURN(std::string path, spill->NewFilePath());
  storage::SpillWriter writer;
  LAZYETL_RETURN_NOT_OK(writer.Open(path, table.schema()));
  const size_t n = table.num_rows();
  const size_t step = std::max<size_t>(1, frame_rows);
  for (size_t off = 0; off < n; off += step) {
    LAZYETL_RETURN_NOT_OK(
        writer.Append(table.Slice(off, std::min(step, n - off))));
  }
  LAZYETL_RETURN_NOT_OK(writer.Finish());
  *path_out = path;
  SpillWriteStats stats;
  stats.logical_bytes = writer.logical_bytes();
  stats.compressed_bytes = writer.bytes_written();
  stats.write_wait_seconds = writer.write_wait_seconds();
  return stats;
}

bool SpillRunsDisjoint(const storage::SpillRunHeader& a,
                       const storage::SpillRunHeader& b,
                       const std::vector<size_t>& a_cols,
                       const std::vector<size_t>& b_cols) {
  if (a.version != 2 || b.version != 2) return false;
  for (size_t k = 0; k < a_cols.size() && k < b_cols.size(); ++k) {
    size_t ca = a_cols[k];
    size_t cb = b_cols[k];
    if (ca >= a.bounds.size() || cb >= b.bounds.size()) continue;
    DataType ta = a.types[ca];
    if (ta != b.types[cb] || ta == DataType::kString ||
        ta == DataType::kDouble) {
      continue;  // only int-like bounds are join-key comparable here
    }
    const auto& ba = a.bounds[ca];
    const auto& bb = b.bounds[cb];
    if (!ba.has_bounds || !bb.has_bounds) continue;
    if (ba.imax < bb.imin || bb.imax < ba.imin) return true;
  }
  return false;
}

Result<SpillWriterVec> OpenPartitionWriters(
    size_t fanout, const storage::TableSchema& schema,
    common::SpillManager* spill) {
  SpillWriterVec writers;
  for (size_t p = 0; p < fanout; ++p) {
    LAZYETL_ASSIGN_OR_RETURN(std::string path, spill->NewFilePath());
    auto writer = std::make_unique<storage::SpillWriter>();
    LAZYETL_RETURN_NOT_OK(writer->Open(path, schema));
    writers.push_back(std::move(writer));
  }
  return writers;
}

Result<std::vector<std::string>> SealPartitionWriters(
    SpillWriterVec* writers, BatchOperator* op, common::SpillManager* spill) {
  std::vector<std::string> paths;
  for (auto& w : *writers) {
    LAZYETL_RETURN_NOT_OK(w->Finish());
    if (w->rows_written() == 0) {
      // Empty partition: nothing to process, nothing worth counting.
      spill->RemoveFile(w->path());
      paths.push_back("");
      continue;
    }
    op->RecordSpill(w->logical_bytes(), 1);
    op->RecordSpillIO(w->bytes_written(), w->write_wait_seconds());
    paths.push_back(w->path());
  }
  writers->clear();
  return paths;
}

Status PartitionTableToWriters(const Table& rows,
                               const std::vector<size_t>& key_cols,
                               size_t level, size_t frame_rows,
                               SpillWriterVec* writers) {
  const size_t fanout = writers->size();
  std::vector<SelectionVector> sel(fanout);
  std::string key;
  for (size_t row = 0; row < rows.num_rows(); ++row) {
    key.clear();
    for (size_t c : key_cols) PackRowKey(rows.column(c), row, &key);
    sel[SpillPartitionOf(key, level, fanout)].push_back(
        static_cast<uint32_t>(row));
  }
  const size_t step = std::max<size_t>(1, frame_rows);
  for (size_t p = 0; p < fanout; ++p) {
    if (sel[p].empty()) continue;
    Table part = rows.Gather(sel[p]);
    for (size_t off = 0; off < part.num_rows(); off += step) {
      LAZYETL_RETURN_NOT_OK((*writers)[p]->Append(
          part.Slice(off, std::min(step, part.num_rows() - off))));
    }
  }
  return Status::OK();
}

// The run header is parsed exactly once here and cached on the Run;
// every (re)open in Advance reuses it. Readers themselves still open
// lazily: a query can accumulate far more runs than the fan-in cap, and
// eagerly holding a file handle plus a decoded frame per run would
// defeat both the fd budget and the memory budget before PrepareFanIn
// gets a chance to bound them.
Status RunMerger::AddSpilledRun(const std::string& path) {
  Run run;
  run.path = path;
  LAZYETL_RETURN_NOT_OK(storage::ReadSpillHeader(path, &run.header));
  const size_t cols = merge_cols();
  if (cols == 0 || asc_.size() < cols) {
    runs_.push_back(std::move(run));
    return Status::OK();
  }
  if (!schema_known_ && run.header.schema.size() >= cols) {
    payload_cols_ = run.header.schema.size() - order_cols_;
    payload_schema_.assign(run.header.schema.begin(),
                           run.header.schema.begin() + payload_cols_);
    schema_known_ = true;
  }
  // Merge-order lower bound from the run-level zone map. The bound is the
  // elementwise per-column extremum oriented by the merge direction; since
  // every run row dominates it elementwise, it is also a lexicographic
  // lower bound, which is what deferral compares against. Only usable when
  // every merge column is int-like with valid bounds.
  if (run.header.version == 2 && run.header.schema.size() >= cols &&
      run.header.bounds.size() == run.header.schema.size()) {
    const size_t first = run.header.schema.size() - cols;
    run.min_key.resize(cols);
    run.has_min_key = true;
    for (size_t k = 0; k < cols; ++k) {
      DataType t = run.header.types[first + k];
      const auto& b = run.header.bounds[first + k];
      if (t == DataType::kString || t == DataType::kDouble || !b.has_bounds) {
        run.has_min_key = false;
        run.min_key.clear();
        break;
      }
      run.min_key[k] = asc_[k] ? b.imin : b.imax;
    }
  }
  runs_.push_back(std::move(run));
  return Status::OK();
}

void RunMerger::AddMemoryRun(Table table) {
  Run run;
  run.current = std::move(table);
  run.opened = true;
  run.done = run.current.num_rows() == 0;
  if (!schema_known_ && run.current.num_columns() >= merge_cols()) {
    payload_cols_ = run.current.num_columns() - order_cols_;
    payload_schema_.assign(run.current.schema().begin(),
                           run.current.schema().begin() + payload_cols_);
    schema_known_ = true;
  }
  runs_.push_back(std::move(run));
}

Status RunMerger::PrepareFanIn() {
  while (runs_.size() > kMaxFanIn) {
    // Merge the first kMaxFanIn runs into one larger spilled run with the
    // order columns preserved, then re-add it. Only the sub-merger's runs
    // are open at any moment, so handles stay bounded by the fan-in.
    RunMerger sub;
    sub.order_cols_ = 0;  // emit all columns, order columns included
    sub.asc_ = asc_;
    sub.merge_cols_ = order_cols_;
    sub.spill_ = spill_;
    sub.prepared_ = true;  // already at fan-in
    sub.runs_.assign(std::make_move_iterator(runs_.begin()),
                     std::make_move_iterator(runs_.begin() + kMaxFanIn));
    runs_.erase(runs_.begin(), runs_.begin() + kMaxFanIn);

    storage::SpillWriter writer;
    std::string path;
    Table chunk;
    while (true) {
      LAZYETL_ASSIGN_OR_RETURN(bool more, sub.Next(4096, &chunk));
      if (!more) break;
      if (path.empty()) {  // schema known after the first merged chunk
        LAZYETL_ASSIGN_OR_RETURN(path, spill_->NewFilePath());
        LAZYETL_RETURN_NOT_OK(writer.Open(path, chunk.schema()));
      }
      LAZYETL_RETURN_NOT_OK(writer.Append(chunk.Slice(0, chunk.num_rows())));
    }
    if (path.empty()) continue;  // all merged runs were empty
    LAZYETL_RETURN_NOT_OK(writer.Finish());
    LAZYETL_RETURN_NOT_OK(AddSpilledRun(path));
  }
  return Status::OK();
}

Status RunMerger::Advance(Run* run) {
  if (run->path.empty()) {  // memory run: one table, no refill
    run->done = true;
    return Status::OK();
  }
  if (run->reader == nullptr) {  // lazy first open; header already parsed
    run->reader = std::make_unique<storage::SpillReader>();
    LAZYETL_RETURN_NOT_OK(run->reader->Open(run->path, &run->header));
  }
  run->opened = true;
  run->cursor = 0;
  while (true) {
    auto more = run->reader->Next(&run->current);
    if (!more.ok()) return more.status();
    if (!*more) {
      run->done = true;
      run->current = Table();
      run->reader.reset();
      if (spill_ != nullptr) spill_->RemoveFile(run->path);
      return Status::OK();
    }
    if (!schema_known_ && run->current.num_columns() >= merge_cols()) {
      payload_cols_ = run->current.num_columns() - order_cols_;
      payload_schema_.assign(run->current.schema().begin(),
                             run->current.schema().begin() + payload_cols_);
      schema_known_ = true;
    }
    if (run->current.num_rows() > 0) return Status::OK();
  }
}

int RunMerger::CompareRuns(const Run& a, size_t ar, const Run& b,
                           size_t br) const {
  const size_t cols = merge_cols();
  const size_t fa = a.current.num_columns() - cols;
  const size_t fb = b.current.num_columns() - cols;
  for (size_t k = 0; k < cols; ++k) {
    int cmp = CompareColumnRows(a.current.column(fa + k), ar,
                                b.current.column(fb + k), br);
    if (cmp != 0) return asc_[k] ? cmp : -cmp;
  }
  return 0;
}

bool RunMerger::RowLess(const Run& a, const Run& b) const {
  return CompareRuns(a, a.cursor, b, b.cursor) < 0;
}

bool RunMerger::BoundAfter(const Run& deferred, const Run& r,
                           size_t row) const {
  if (!deferred.has_min_key) return false;
  const size_t cols = merge_cols();
  const size_t first = r.current.num_columns() - cols;
  for (size_t k = 0; k < cols; ++k) {
    const Column& c = r.current.column(first + k);
    int64_t rv;
    switch (c.type()) {
      case DataType::kBool:
        rv = c.bool_data()[row] ? 1 : 0;
        break;
      case DataType::kInt32:
        rv = c.int32_data()[row];
        break;
      default:  // kInt64 / kTimestamp; min_key excludes string/double runs
        rv = c.int64_data()[row];
        break;
    }
    int64_t bv = deferred.min_key[k];
    if (bv == rv) continue;
    bool bound_first = asc_[k] ? bv < rv : bv > rv;
    return !bound_first;
  }
  return false;  // bound ties the row: the run may hold equal rows — open
}

Result<bool> RunMerger::Next(size_t max_rows, Table* out) {
  if (!prepared_) {
    prepared_ = true;
    LAZYETL_RETURN_NOT_OK(PrepareFanIn());
  }
  // Refill open runs whose frame is exhausted. The first call also opens
  // every run without a usable zone-map bound; runs WITH a bound stay
  // deferred — unopened and undecoded — until the merge head reaches
  // their range below.
  for (Run& run : runs_) {
    if (run.done) continue;
    if (!run.opened) {
      if (run.has_min_key) continue;  // deferred
      LAZYETL_RETURN_NOT_OK(Advance(&run));
    } else if (run.cursor >= run.current.num_rows()) {
      LAZYETL_RETURN_NOT_OK(Advance(&run));
    }
  }
  if (!schema_known_) {
    // Every eagerly-opened run was empty; deferred runs are non-empty by
    // construction, so open them to learn the schema and start merging.
    for (Run& run : runs_) {
      if (!run.done && !run.opened) LAZYETL_RETURN_NOT_OK(Advance(&run));
    }
    if (!schema_known_) return false;  // no run ever produced a frame
  }
  Table result(payload_schema_);
  size_t emitted = 0;
  while (emitted < max_rows) {
    // Linear min-scan: run counts are small (bounded by kMaxFanIn), so a
    // heap buys little.
    Run* best = nullptr;
    for (Run& run : runs_) {
      if (!run.opened || run.cursor >= run.current.num_rows()) continue;
      if (best == nullptr || RowLess(run, *best)) best = &run;
    }
    // Wake any deferred run whose range the merge head has reached.
    bool woke = false;
    for (Run& run : runs_) {
      if (run.done || run.opened) continue;
      if (best == nullptr || !BoundAfter(run, *best, best->cursor)) {
        LAZYETL_RETURN_NOT_OK(Advance(&run));
        woke = true;
      }
    }
    if (woke) continue;  // re-scan with the newly opened runs in play
    if (best == nullptr) break;
    // Bulk fast path: frames are sorted, so when the last row of best's
    // frame still precedes every other head (and every deferred bound),
    // the whole remainder is appended column-at-a-time.
    const size_t frame_rows = best->current.num_rows();
    size_t take = 1;
    if (frame_rows - best->cursor > 1) {
      const size_t last = frame_rows - 1;
      bool bulk = true;
      for (Run& run : runs_) {
        if (&run == best || run.done) continue;
        if (!run.opened) {
          if (!BoundAfter(run, *best, last)) {
            bulk = false;
            break;
          }
        } else if (run.cursor < run.current.num_rows() &&
                   CompareRuns(*best, last, run, run.cursor) >= 0) {
          bulk = false;
          break;
        }
      }
      if (bulk) take = std::min(frame_rows - best->cursor, max_rows - emitted);
    }
    for (size_t c = 0; c < payload_cols_; ++c) {
      LAZYETL_RETURN_NOT_OK(result.column(c).AppendRange(
          best->current.column(c), best->cursor, take));
    }
    emitted += take;
    best->cursor += take;
    if (best->cursor >= frame_rows && !best->done) {
      LAZYETL_RETURN_NOT_OK(Advance(best));
    }
  }
  if (emitted == 0) return false;
  *out = std::move(result);
  return true;
}

}  // namespace lazyetl::engine
