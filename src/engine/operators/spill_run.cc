#include "engine/operators/spill_run.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <utility>

#include "common/macros.h"
#include "engine/operators/join_build.h"
#include "engine/operators/operator.h"

namespace lazyetl::engine {

using storage::Column;
using storage::DataType;
using storage::SelectionVector;
using storage::Table;

int CompareColumnRows(const Column& a, size_t ar, const Column& b,
                      size_t br) {
  switch (a.type()) {
    case DataType::kString: {
      int cmp = a.StringAt(ar).compare(b.StringAt(br));
      return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    case DataType::kDouble: {
      double va = a.double_data()[ar];
      double vb = b.double_data()[br];
      return va < vb ? -1 : (va > vb ? 1 : 0);
    }
    case DataType::kBool: {
      int va = a.bool_data()[ar];
      int vb = b.bool_data()[br];
      return va < vb ? -1 : (va > vb ? 1 : 0);
    }
    case DataType::kInt32: {
      int32_t va = a.int32_data()[ar];
      int32_t vb = b.int32_data()[br];
      return va < vb ? -1 : (va > vb ? 1 : 0);
    }
    default: {  // kInt64 / kTimestamp
      int64_t va = a.int64_data()[ar];
      int64_t vb = b.int64_data()[br];
      return va < vb ? -1 : (va > vb ? 1 : 0);
    }
  }
}

size_t SpillPartitionOf(const std::string& key, size_t level, size_t fanout) {
  uint64_t h = std::hash<std::string>{}(key);
  h += 0x9E3779B97F4A7C15ull * (level + 1);
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return static_cast<size_t>(h % fanout);
}

Table SortRunRows(const Table& table, size_t order_cols,
                  const std::vector<bool>& ascending) {
  const size_t n = table.num_rows();
  const size_t first = table.num_columns() - order_cols;
  SelectionVector idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < order_cols; ++k) {
      const Column& c = table.column(first + k);
      int cmp = CompareColumnRows(c, a, c, b);
      if (cmp != 0) return ascending[k] ? cmp < 0 : cmp > 0;
    }
    return false;  // unreachable: the last order column is a unique tag
  });
  return table.Gather(idx);
}

Result<uint64_t> WriteRunFile(const Table& table, size_t frame_rows,
                              common::SpillManager* spill,
                              std::string* path_out) {
  LAZYETL_ASSIGN_OR_RETURN(std::string path, spill->NewFilePath());
  storage::SpillWriter writer;
  LAZYETL_RETURN_NOT_OK(writer.Open(path, table.schema()));
  const size_t n = table.num_rows();
  const size_t step = std::max<size_t>(1, frame_rows);
  for (size_t off = 0; off < n; off += step) {
    LAZYETL_RETURN_NOT_OK(
        writer.Append(table.Slice(off, std::min(step, n - off))));
  }
  LAZYETL_RETURN_NOT_OK(writer.Finish());
  *path_out = path;
  return writer.bytes_written();
}

Result<SpillWriterVec> OpenPartitionWriters(
    size_t fanout, const storage::TableSchema& schema,
    common::SpillManager* spill) {
  SpillWriterVec writers;
  for (size_t p = 0; p < fanout; ++p) {
    LAZYETL_ASSIGN_OR_RETURN(std::string path, spill->NewFilePath());
    auto writer = std::make_unique<storage::SpillWriter>();
    LAZYETL_RETURN_NOT_OK(writer->Open(path, schema));
    writers.push_back(std::move(writer));
  }
  return writers;
}

Result<std::vector<std::string>> SealPartitionWriters(
    SpillWriterVec* writers, BatchOperator* op, common::SpillManager* spill) {
  std::vector<std::string> paths;
  for (auto& w : *writers) {
    LAZYETL_RETURN_NOT_OK(w->Finish());
    if (w->rows_written() == 0) {
      // Empty partition: nothing to process, nothing worth counting.
      spill->RemoveFile(w->path());
      paths.push_back("");
      continue;
    }
    op->RecordSpill(w->bytes_written(), 1);
    paths.push_back(w->path());
  }
  writers->clear();
  return paths;
}

Status PartitionTableToWriters(const Table& rows,
                               const std::vector<size_t>& key_cols,
                               size_t level, size_t frame_rows,
                               SpillWriterVec* writers) {
  const size_t fanout = writers->size();
  std::vector<SelectionVector> sel(fanout);
  std::string key;
  for (size_t row = 0; row < rows.num_rows(); ++row) {
    key.clear();
    for (size_t c : key_cols) PackRowKey(rows.column(c), row, &key);
    sel[SpillPartitionOf(key, level, fanout)].push_back(
        static_cast<uint32_t>(row));
  }
  const size_t step = std::max<size_t>(1, frame_rows);
  for (size_t p = 0; p < fanout; ++p) {
    if (sel[p].empty()) continue;
    Table part = rows.Gather(sel[p]);
    for (size_t off = 0; off < part.num_rows(); off += step) {
      LAZYETL_RETURN_NOT_OK((*writers)[p]->Append(
          part.Slice(off, std::min(step, part.num_rows() - off))));
    }
  }
  return Status::OK();
}

// Readers open lazily (in Advance), not here: a query can accumulate far
// more runs than the fan-in cap, and eagerly holding a file handle plus a
// decoded frame per run would defeat both the fd budget and the memory
// budget before PrepareFanIn gets a chance to bound them.
Status RunMerger::AddSpilledRun(const std::string& path) {
  Run run;
  run.path = path;
  runs_.push_back(std::move(run));
  return Status::OK();
}

void RunMerger::AddMemoryRun(Table table) {
  Run run;
  run.current = std::move(table);
  run.done = run.current.num_rows() == 0;
  if (!schema_known_ && run.current.num_columns() >= merge_cols()) {
    payload_cols_ = run.current.num_columns() - order_cols_;
    payload_schema_.assign(run.current.schema().begin(),
                           run.current.schema().begin() + payload_cols_);
    schema_known_ = true;
  }
  runs_.push_back(std::move(run));
}

Status RunMerger::PrepareFanIn() {
  while (runs_.size() > kMaxFanIn) {
    // Merge the first kMaxFanIn runs into one larger spilled run with the
    // order columns preserved, then re-add it. Only the sub-merger's runs
    // are open at any moment, so handles stay bounded by the fan-in.
    RunMerger sub;
    sub.order_cols_ = 0;  // emit all columns, order columns included
    sub.asc_ = asc_;
    sub.merge_cols_ = order_cols_;
    sub.spill_ = spill_;
    sub.prepared_ = true;  // already at fan-in
    sub.runs_.assign(std::make_move_iterator(runs_.begin()),
                     std::make_move_iterator(runs_.begin() + kMaxFanIn));
    runs_.erase(runs_.begin(), runs_.begin() + kMaxFanIn);

    storage::SpillWriter writer;
    std::string path;
    Table chunk;
    while (true) {
      LAZYETL_ASSIGN_OR_RETURN(bool more, sub.Next(4096, &chunk));
      if (!more) break;
      if (path.empty()) {  // schema known after the first merged chunk
        LAZYETL_ASSIGN_OR_RETURN(path, spill_->NewFilePath());
        LAZYETL_RETURN_NOT_OK(writer.Open(path, chunk.schema()));
      }
      LAZYETL_RETURN_NOT_OK(writer.Append(chunk.Slice(0, chunk.num_rows())));
    }
    if (path.empty()) continue;  // all merged runs were empty
    LAZYETL_RETURN_NOT_OK(writer.Finish());
    LAZYETL_RETURN_NOT_OK(AddSpilledRun(path));
  }
  return Status::OK();
}

Status RunMerger::Advance(Run* run) {
  if (run->path.empty()) {  // memory run: one table, no refill
    run->done = true;
    return Status::OK();
  }
  if (run->reader == nullptr) {  // lazy first open
    run->reader = std::make_unique<storage::SpillReader>();
    LAZYETL_RETURN_NOT_OK(run->reader->Open(run->path));
  }
  run->cursor = 0;
  while (true) {
    auto more = run->reader->Next(&run->current);
    if (!more.ok()) return more.status();
    if (!*more) {
      run->done = true;
      run->current = Table();
      run->reader.reset();
      if (spill_ != nullptr) spill_->RemoveFile(run->path);
      return Status::OK();
    }
    if (!schema_known_ && run->current.num_columns() >= merge_cols()) {
      payload_cols_ = run->current.num_columns() - order_cols_;
      payload_schema_.assign(run->current.schema().begin(),
                             run->current.schema().begin() + payload_cols_);
      schema_known_ = true;
    }
    if (run->current.num_rows() > 0) return Status::OK();
  }
}

bool RunMerger::RowLess(const Run& a, const Run& b) const {
  const size_t cols = merge_cols();
  const size_t first = a.current.num_columns() - cols;
  for (size_t k = 0; k < cols; ++k) {
    int cmp = CompareColumnRows(a.current.column(first + k), a.cursor,
                                b.current.column(first + k), b.cursor);
    if (cmp != 0) return asc_[k] ? cmp < 0 : cmp > 0;
  }
  return false;
}

Result<bool> RunMerger::Next(size_t max_rows, Table* out) {
  if (!prepared_) {
    prepared_ = true;
    LAZYETL_RETURN_NOT_OK(PrepareFanIn());
  }
  // Lazy opens: load the head frame of every run that does not have one
  // yet (first call) or just exhausted its frame.
  for (Run& run : runs_) {
    if (!run.done && run.cursor >= run.current.num_rows()) {
      LAZYETL_RETURN_NOT_OK(Advance(&run));
    }
  }
  if (!schema_known_) return false;  // no run ever produced a frame
  // Linear min-scan per row: run counts are small (bounded by kMaxFanIn),
  // so a heap buys little.
  Table result(payload_schema_);
  size_t emitted = 0;
  while (emitted < max_rows) {
    Run* best = nullptr;
    for (Run& run : runs_) {
      if (run.cursor >= run.current.num_rows()) continue;
      if (best == nullptr || RowLess(run, *best)) best = &run;
    }
    if (best == nullptr) break;
    for (size_t c = 0; c < payload_cols_; ++c) {
      LAZYETL_RETURN_NOT_OK(
          result.column(c).AppendRange(best->current.column(c), best->cursor,
                                       1));
    }
    ++emitted;
    ++best->cursor;
    if (best->cursor >= best->current.num_rows() && !best->done) {
      LAZYETL_RETURN_NOT_OK(Advance(best));
    }
  }
  if (emitted == 0) return false;
  *out = std::move(result);
  return true;
}

}  // namespace lazyetl::engine
