// Internal factory functions wiring PlanNodes to concrete operators, plus
// small helpers shared between the operator translation units. Not part
// of the engine's public surface.

#ifndef LAZYETL_ENGINE_OPERATORS_INTERNAL_H_
#define LAZYETL_ENGINE_OPERATORS_INTERNAL_H_

#include <algorithm>
#include <memory>

#include "engine/operators/operator.h"

namespace lazyetl::engine {

// Re-emits an operator-owned table as a sequence of zero-copy batches of
// at most `batch_rows` rows (at least one batch, possibly empty, so the
// schema always flows). Used by pipeline breakers.
class TableEmitter {
 public:
  void Reset(storage::Table table, size_t batch_rows) {
    table_ = std::make_shared<const storage::Table>(std::move(table));
    batch_rows_ = batch_rows;
    offset_ = 0;
    emitted_ = false;
  }

  bool Next(Batch* out) {
    size_t rows = table_->num_rows();
    if (offset_ >= rows && emitted_) return false;
    size_t n = std::min(batch_rows_, rows - offset_);
    out->owner = table_;
    out->view = table_->Slice(offset_, n);
    offset_ += n;
    emitted_ = true;
    return true;
  }

  const storage::Table& table() const { return *table_; }

 private:
  std::shared_ptr<const storage::Table> table_;
  size_t batch_rows_ = kDefaultBatchRows;
  size_t offset_ = 0;
  bool emitted_ = false;
};

// Pipeline breakers (breakers.cc).
Result<BatchOperatorPtr> MakeSortOperator(const PlanNode& node,
                                          ExecContext* ctx,
                                          BatchOperatorPtr child);
Result<BatchOperatorPtr> MakeAggregateOperator(const PlanNode& node,
                                               ExecContext* ctx,
                                               BatchOperatorPtr child);
Result<BatchOperatorPtr> MakeDistinctOperator(const PlanNode& node,
                                              ExecContext* ctx,
                                              BatchOperatorPtr child);
Result<BatchOperatorPtr> MakeHashJoinOperator(const PlanNode& node,
                                              ExecContext* ctx,
                                              BatchOperatorPtr left,
                                              BatchOperatorPtr right);

// The §3.1 run-time rewrite operator (lazy_scan.cc); builds its own
// metadata subtree from node.children.
Result<BatchOperatorPtr> MakeLazyDataScanOperator(const PlanNode& node,
                                                  ExecContext* ctx);

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_OPERATORS_INTERNAL_H_
