// Internal factory functions wiring PlanNodes to concrete operators, plus
// small helpers shared between the operator translation units. Not part
// of the engine's public surface.

#ifndef LAZYETL_ENGINE_OPERATORS_INTERNAL_H_
#define LAZYETL_ENGINE_OPERATORS_INTERNAL_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "engine/kernels.h"
#include "engine/operators/operator.h"

namespace lazyetl::engine {

// Semi-join pushdown channel between a hash join and its probe-side scan.
// The operator-tree builder allocates one slot per eligible join, hands it
// to both operators, and the join publishes a Bloom filter over its
// build-side key hashes before the first probe batch is pulled (the join's
// OpenImpl runs after its children open, before any Next). The scan
// checks `ready` with acquire ordering on every batch; until the join
// stores it with release ordering the scan passes rows through untouched,
// so the filter is strictly an early-out — never a correctness input.
// `key_names` are the scan-output names of the probe-side join keys, in
// build-key order so both sides fold hashes identically.
struct JoinBloomSlot {
  std::vector<std::string> key_names;
  kernels::BlockedBloomFilter filter;
  std::atomic<bool> ready{false};
};

// Re-emits an operator-owned table as a sequence of zero-copy batches of
// at most `batch_rows` rows (at least one batch, possibly empty, so the
// schema always flows). Used by pipeline breakers. Thread-safe: morsels
// are handed out through an atomic cursor, and `seq` is the slice index —
// a pure function of the morsel range.
class TableEmitter {
 public:
  void Reset(storage::Table table, size_t batch_rows) {
    table_ = std::make_shared<const storage::Table>(std::move(table));
    step_ = std::min(batch_rows, std::max<size_t>(table_->num_rows(), 1));
    offset_.store(0, std::memory_order_relaxed);
    emitted_.store(false, std::memory_order_relaxed);
  }

  // `suppress_empty` (the parallel-drive flag) skips the one-empty-batch
  // end-of-stream contract; the drive loop restores it serially.
  bool Next(Batch* out, bool suppress_empty = false) {
    size_t rows = table_->num_rows();
    size_t start = offset_.fetch_add(step_, std::memory_order_relaxed);
    if (start >= rows) {
      if (rows == 0 && !suppress_empty && !emitted_.exchange(true)) {
        out->owner = table_;
        out->view = table_->Slice(0, 0);
        out->seq = 0;
        return true;
      }
      return false;
    }
    out->owner = table_;
    out->view = table_->Slice(start, std::min(step_, rows - start));
    out->seq = start / step_;
    return true;
  }

  const storage::Table& table() const { return *table_; }

 private:
  std::shared_ptr<const storage::Table> table_;
  size_t step_ = kDefaultBatchRows;
  std::atomic<size_t> offset_{0};
  std::atomic<bool> emitted_{false};
};

// Pipeline breakers (breakers.cc).
Result<BatchOperatorPtr> MakeSortOperator(const PlanNode& node,
                                          ExecContext* ctx,
                                          BatchOperatorPtr child);
Result<BatchOperatorPtr> MakeTopKOperator(const PlanNode& node,
                                          ExecContext* ctx,
                                          BatchOperatorPtr child);
Result<BatchOperatorPtr> MakeAggregateOperator(const PlanNode& node,
                                               ExecContext* ctx,
                                               BatchOperatorPtr child);
Result<BatchOperatorPtr> MakeDistinctOperator(const PlanNode& node,
                                              ExecContext* ctx,
                                              BatchOperatorPtr child);
Result<BatchOperatorPtr> MakeHashJoinOperator(
    const PlanNode& node, ExecContext* ctx, BatchOperatorPtr left,
    BatchOperatorPtr right,
    std::shared_ptr<JoinBloomSlot> bloom = nullptr);

// The §3.1 run-time rewrite operator (lazy_scan.cc); builds its own
// metadata subtree from node.children.
Result<BatchOperatorPtr> MakeLazyDataScanOperator(const PlanNode& node,
                                                  ExecContext* ctx);

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_OPERATORS_INTERNAL_H_
