// Spilled-run utilities for budget-governed pipeline breakers.
//
// Breakers that overflow their memory budget write *runs* — tables whose
// trailing columns order their rows (evaluated sort keys and/or arrival
// tags (seq, row) that are unique per input row) — to temp files via
// storage::SpillWriter, then stream them back through a k-way RunMerger.
// Because the runs are ordered by deterministic tags, the merged sequence
// is independent of spill timing, scheduling and thread count: it equals
// the in-memory operator's output row sequence exactly.

#ifndef LAZYETL_ENGINE_OPERATORS_SPILL_RUN_H_
#define LAZYETL_ENGINE_OPERATORS_SPILL_RUN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/spill.h"
#include "storage/spill_format.h"
#include "storage/table.h"

namespace lazyetl::engine {

// Three-way comparison of row `ar` of `a` against row `br` of `b` (same
// type). Integer-exact for int-like types; strings lexicographic.
int CompareColumnRows(const storage::Column& a, size_t ar,
                      const storage::Column& b, size_t br);

// Deterministic partition of a packed row key at recursion `level`
// (different levels decorrelate, so re-partitioning an overflowing
// partition actually splits it).
size_t SpillPartitionOf(const std::string& key, size_t level, size_t fanout);

// Sorts `table` rows by its trailing `order_cols` columns (per-column
// ascending flags, lexicographic). The last order column must be unique
// (an arrival tag), so the result is a total, deterministic order.
storage::Table SortRunRows(const storage::Table& table, size_t order_cols,
                           const std::vector<bool>& ascending);

// What one run write cost: logical (uncompressed-equivalent) spill volume,
// physical bytes after per-column compression, and how long the producer
// was blocked on disk I/O (0 when the async writer fully overlapped it).
struct SpillWriteStats {
  uint64_t logical_bytes = 0;
  uint64_t compressed_bytes = 0;
  double write_wait_seconds = 0.0;
};

// Writes `table` to a fresh spill file in frames of `frame_rows` rows so
// read-back memory stays bounded; returns the write stats.
Result<SpillWriteStats> WriteRunFile(const storage::Table& table,
                                     size_t frame_rows,
                                     common::SpillManager* spill,
                                     std::string* path_out);

// True when the run-level zone maps of `a` and `b` prove the paired key
// columns cannot share any value (some int-like key column has disjoint
// [min,max] ranges). Conservative: false whenever bounds are missing.
// Lets Grace hash join skip build/probe partition pairs outright.
bool SpillRunsDisjoint(const storage::SpillRunHeader& a,
                       const storage::SpillRunHeader& b,
                       const std::vector<size_t>& a_cols,
                       const std::vector<size_t>& b_cols);

class BatchOperator;

using SpillWriterVec = std::vector<std::unique_ptr<storage::SpillWriter>>;

// Opens `fanout` fresh partition spill files sharing `schema`.
Result<SpillWriterVec> OpenPartitionWriters(size_t fanout,
                                            const storage::TableSchema& schema,
                                            common::SpillManager* spill);

// Finishes every writer, charges the non-empty ones to `op`'s spill
// counters, deletes the empty ones, and returns one path per partition
// ("" where the partition was empty). Clears `writers`.
Result<std::vector<std::string>> SealPartitionWriters(
    SpillWriterVec* writers, BatchOperator* op, common::SpillManager* spill);

// Radix-partitions `rows` on the packed key of `key_cols` at recursion
// `level` into the writers, appending each partition in frames of at
// most `frame_rows` rows — `rows` may be far larger than a batch (e.g.
// a budget-sized build buffer), and replay memory is bounded by the
// frame size, so the frames must be too.
Status PartitionTableToWriters(const storage::Table& rows,
                               const std::vector<size_t>& key_cols,
                               size_t level, size_t frame_rows,
                               SpillWriterVec* writers);

// Streaming k-way merge over runs ordered by their trailing columns.
// Holds one frame per spilled run; consumed spill files are deleted
// eagerly. Emitted tables carry only the payload (leading) columns.
// When deep recursion produced more runs than kMaxFanIn, groups of runs
// are pre-merged into larger spilled runs first (multi-pass external
// merge), bounding open file handles and resident frames.
//
// Run headers are read exactly once (at AddSpilledRun) and carried with
// the run through every merge pass. Two zone-map optimizations ride on
// them when the merge columns are int-like:
//   - deferred opens: a run whose run-level minimum orders after the
//     current merge head stays unopened and undecoded until a row
//     actually reaches its range;
//   - bulk appends: when the remainder of the leading run's frame orders
//     before every other head (frames are sorted), it is appended
//     column-at-a-time instead of row-at-a-time.
class RunMerger {
 public:
  static constexpr size_t kMaxFanIn = 64;

  // `ascending[i]` applies to trailing order column i (of `order_cols`).
  void Configure(size_t order_cols, std::vector<bool> ascending,
                 common::SpillManager* spill) {
    order_cols_ = order_cols;
    asc_ = std::move(ascending);
    spill_ = spill;
  }

  Status AddSpilledRun(const std::string& path);
  void AddMemoryRun(storage::Table table);

  // Fills *out with up to `max_rows` merged rows (payload columns only);
  // returns false when all runs are exhausted.
  Result<bool> Next(size_t max_rows, storage::Table* out);

 private:
  struct Run {
    std::unique_ptr<storage::SpillReader> reader;  // null for memory runs
    std::string path;
    storage::SpillRunHeader header;  // parsed once, reused on every open
    // Merge-order lower bound of all rows (per merge column, already
    // oriented by the ascending flags), from the run-level zone map.
    std::vector<int64_t> min_key;
    bool has_min_key = false;
    storage::Table current;
    size_t cursor = 0;
    bool done = false;
    bool opened = false;  // frames are being streamed (or memory run)
  };

  Status Advance(Run* run);
  // Merge-order three-way comparison of row `ar` of `a` vs `br` of `b`.
  int CompareRuns(const Run& a, size_t ar, const Run& b, size_t br) const;
  bool RowLess(const Run& a, const Run& b) const;
  // True when `deferred`'s zone-map lower bound orders strictly after row
  // `row` of `r` — every row of the unopened run then comes later.
  bool BoundAfter(const Run& deferred, const Run& r, size_t row) const;
  // Reduces runs_ to at most kMaxFanIn by merging groups of runs into
  // fresh spilled runs (order columns preserved).
  Status PrepareFanIn();

  // Trailing columns the merge compares on. Normally order_cols_; the
  // internal pre-merge passes strip nothing (order_cols_ = 0) but still
  // compare on the parent's order columns.
  size_t merge_cols() const { return merge_cols_ ? merge_cols_ : order_cols_; }

  size_t order_cols_ = 0;  // trailing columns stripped from the output
  size_t merge_cols_ = 0;  // 0 = same as order_cols_
  std::vector<bool> asc_;
  common::SpillManager* spill_ = nullptr;
  std::vector<Run> runs_;
  size_t payload_cols_ = 0;
  storage::TableSchema payload_schema_;
  bool schema_known_ = false;
  bool prepared_ = false;
};

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_OPERATORS_SPILL_RUN_H_
