// BatchCursor: the resumable, pull-side form of the morsel-driven drive
// loop. Where DrainToTableOrdered runs the drive loop to completion and
// collects a Table, a BatchCursor suspends it: the consumer calls Next()
// to receive batches one at a time, in serial seq order, while `threads`
// workers keep pulling morsels in the background.
//
// Backpressure: the in-order ready queue is bounded by
// Options::window_batches. When the consumer falls behind, producers
// block inside the drive loop before handing over more flushable batches
// — a slow client suspends morsel dispatch instead of buffering the
// result unboundedly. Out-of-order batches awaiting their predecessors
// (the reassembly `pending` map) are transient and bounded by worker
// skew, exactly as in DrainToTableOrdered.
//
// Early Close() (consumer abandons the stream — client disconnect, LIMIT
// satisfied upstream) cancels the drive loop: blocked producers wake,
// workers observe the failure flag and stop pulling morsels, and the
// driver thread is joined before Close() returns. Close() is idempotent
// and implied by the destructor. The cursor does NOT own the operator
// tree — the caller closes it after the cursor is closed.

#ifndef LAZYETL_ENGINE_OPERATORS_BATCH_CURSOR_H_
#define LAZYETL_ENGINE_OPERATORS_BATCH_CURSOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "engine/operators/operator.h"

namespace lazyetl::engine {

class BatchCursor {
 public:
  struct Options {
    // Worker threads for the drive loop; <= 1 (or a parallel-unsafe root)
    // selects the inline serial mode, which buffers nothing.
    size_t threads = 1;
    // Backpressure window: maximum batches held in the cursor (in-order
    // ready queue + out-of-order reassembly buffer) before producers
    // suspend — the laggard worker the flush horizon waits on is exempt,
    // so a seq gap always fills. 0 = unbounded (the materializing drain,
    // which consumes as fast as batches flush).
    size_t window_batches = 0;
  };

  // The operator tree must already be Open()ed and must outlive the
  // cursor. The drive loop starts lazily on the first Next().
  BatchCursor(BatchOperator* op, Options options);
  ~BatchCursor();

  BatchCursor(const BatchCursor&) = delete;
  BatchCursor& operator=(const BatchCursor&) = delete;

  // Fills *out with the next in-order batch; returns false at end of
  // stream. The first batch always carries the schema (possibly with zero
  // rows). After an error or Close(), returns the error / false. Single
  // consumer: Next and Close must be called from one thread at a time.
  Result<bool> Next(Batch* out);

  // Cancels the drive loop and joins the driver thread. Safe to call at
  // any point (before the first Next, mid-stream, after exhaustion);
  // idempotent. After Close, Next returns end-of-stream.
  void Close();

  // Peak batches/bytes resident in the cursor (ready queue + reassembly
  // buffer) — the serving-path analogue of peak_intermediate_bytes. With
  // a non-zero window, total buffered batches stay within window_batches
  // plus one in-flight delivery per worker.
  uint64_t peak_buffered_batches() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_buffered_batches_;
  }
  uint64_t peak_buffered_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_buffered_bytes_;
  }

 private:
  void Start();
  void DriveLoop();
  // Moves every flushable pending batch (seq <= safe watermark) into the
  // ready queue, waiting for window space as needed. Returns false when
  // cancelled. Called under `mu_` (the lock is released while waiting).
  bool FlushLocked(std::unique_lock<std::mutex>& lock);
  int64_t SafeSeqLocked() const;
  void NoteBufferedLocked();

  BatchOperator* op_;
  Options opts_;
  bool parallel_ = false;
  bool started_ = false;
  bool closed_ = false;

  // Serial mode: Next() pulls the operator directly.
  bool serial_done_ = false;

  // Parallel mode: a driver thread runs ParallelDrain; its sink reassembles
  // seq order through per-worker watermarks (see DrainToTableOrdered) and
  // feeds the bounded ready queue the consumer pops from.
  std::thread driver_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;  // consumer waits: batch ready / done
  std::condition_variable space_cv_;  // producers wait: window space / close
  std::deque<Batch> ready_;
  std::map<uint64_t, Batch> pending_;
  std::vector<int64_t> watermark_;
  std::vector<bool> finished_;
  bool producer_done_ = false;
  bool cancelled_ = false;
  Status error_;  // first drive-loop error, delivered after drained batches

  uint64_t buffered_bytes_ = 0;
  uint64_t peak_buffered_batches_ = 0;
  uint64_t peak_buffered_bytes_ = 0;
};

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_OPERATORS_BATCH_CURSOR_H_
