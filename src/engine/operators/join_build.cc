#include "engine/operators/join_build.h"

#include "common/macros.h"

namespace lazyetl::engine {

using storage::Column;
using storage::DataType;
using storage::SelectionVector;
using storage::Table;
using storage::TableSlice;

void PackRowKey(const Column& col, size_t row, std::string* out) {
  switch (col.type()) {
    case DataType::kBool:
      out->push_back(col.bool_data()[row] ? '\1' : '\0');
      break;
    case DataType::kInt32: {
      int64_t v = col.int32_data()[row];
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kInt64:
    case DataType::kTimestamp: {
      int64_t v = col.int64_data()[row];
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kDouble: {
      double v = col.double_data()[row];
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kString: {
      const std::string& s = col.StringAt(row);
      uint32_t len = static_cast<uint32_t>(s.size());
      out->append(reinterpret_cast<const char*>(&len), sizeof(len));
      out->append(s);
      break;
    }
  }
  out->push_back('\x1f');  // field separator
}

Status JoinBuild::Init(const Table* build,
                       const std::vector<std::string>& keys) {
  if (keys.empty()) {
    return Status::InvalidArgument("join requires at least one key");
  }
  build_ = build;
  key_arity_ = keys.size();
  std::vector<const Column*> cols;
  cols.reserve(keys.size());
  for (const auto& name : keys) {
    LAZYETL_ASSIGN_OR_RETURN(const Column* c, build->ColumnByName(name));
    cols.push_back(c);
  }
  index_.clear();
  index_.reserve(build->num_rows() * 2);
  std::string key;
  for (size_t row = 0; row < build->num_rows(); ++row) {
    key.clear();
    for (const Column* c : cols) PackRowKey(*c, row, &key);
    auto [it, inserted] = index_.try_emplace(key);
    it->second.push_back(static_cast<uint32_t>(row));
    if (inserted) index_bytes_ += key.size() + sizeof(std::vector<uint32_t>);
    index_bytes_ += sizeof(uint32_t);
  }
  return Status::OK();
}

Status JoinBuild::Probe(const TableSlice& probe,
                        const std::vector<std::string>& keys,
                        SelectionVector* build_sel,
                        SelectionVector* probe_sel) const {
  if (keys.size() != key_arity_) {
    return Status::InvalidArgument("join key arity mismatch");
  }
  std::vector<const Column*> cols;
  cols.reserve(keys.size());
  for (const auto& name : keys) {
    LAZYETL_ASSIGN_OR_RETURN(size_t i, probe.ColumnIndex(name));
    cols.push_back(&probe.column(i));
  }
  std::string key;
  for (size_t row = 0; row < probe.num_rows(); ++row) {
    key.clear();
    for (const Column* c : cols) {
      PackRowKey(*c, probe.offset() + row, &key);
    }
    auto it = index_.find(key);
    if (it == index_.end()) continue;
    for (uint32_t build_row : it->second) {
      build_sel->push_back(build_row);
      probe_sel->push_back(static_cast<uint32_t>(row));
    }
  }
  return Status::OK();
}

}  // namespace lazyetl::engine
