#include "engine/operators/join_build.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/macros.h"
#include "common/thread_pool.h"

namespace lazyetl::engine {

using storage::Column;
using storage::DataType;
using storage::SelectionVector;
using storage::Table;
using storage::TableSlice;

void PackRowKey(const Column& col, size_t row, std::string* out) {
  switch (col.type()) {
    case DataType::kBool:
      out->push_back(col.bool_data()[row] ? '\1' : '\0');
      break;
    case DataType::kInt32: {
      int64_t v = col.int32_data()[row];
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kInt64:
    case DataType::kTimestamp: {
      int64_t v = col.int64_data()[row];
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kDouble: {
      double v = col.double_data()[row];
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kString: {
      const std::string& s = col.StringAt(row);
      uint32_t len = static_cast<uint32_t>(s.size());
      out->append(reinterpret_cast<const char*>(&len), sizeof(len));
      out->append(s);
      break;
    }
  }
  out->push_back('\x1f');  // field separator
}

bool VectorJoinEnabled() {
  const char* env = std::getenv("LAZYETL_DISABLE_VECTOR_JOIN");
  return env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0;
}

JoinBloomMode ResolveJoinBloomMode() {
  const char* env = std::getenv("LAZYETL_JOIN_BLOOM");
  if (env == nullptr || *env == '\0') return JoinBloomMode::kAuto;
  if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0) {
    return JoinBloomMode::kOff;
  }
  if (std::strcmp(env, "force") == 0) return JoinBloomMode::kForce;
  return JoinBloomMode::kAuto;
}

Status JoinBuild::Init(const Table* build,
                       const std::vector<std::string>& keys, size_t threads,
                       kernels::BlockedBloomFilter* bloom) {
  if (keys.empty()) {
    return Status::InvalidArgument("join requires at least one key");
  }
  build_ = build;
  key_arity_ = keys.size();
  std::vector<const Column*> cols;
  cols.reserve(keys.size());
  for (const auto& name : keys) {
    LAZYETL_ASSIGN_OR_RETURN(const Column* c, build->ColumnByName(name));
    cols.push_back(c);
  }
  index_bytes_ = 0;
  if (VectorJoinEnabled()) return InitVectorized(cols, threads, bloom);

  vectorized_ = false;
  index_.clear();
  index_.reserve(build->num_rows() * 2);
  std::string key;
  for (size_t row = 0; row < build->num_rows(); ++row) {
    key.clear();
    for (const Column* c : cols) PackRowKey(*c, row, &key);
    auto [it, inserted] = index_.try_emplace(key);
    const size_t cap_before = it->second.capacity();
    it->second.push_back(static_cast<uint32_t>(row));
    if (inserted) {
      // Key bytes plus the map's node + bucket overhead and the match
      // vector's header — the container footprint, not just the payload.
      index_bytes_ += key.size() + sizeof(std::vector<uint32_t>) + 40;
    }
    index_bytes_ +=
        (it->second.capacity() - cap_before) * sizeof(uint32_t);
  }
  return Status::OK();
}

Status JoinBuild::InitVectorized(const std::vector<const Column*>& cols,
                                 size_t threads,
                                 kernels::BlockedBloomFilter* bloom) {
  vectorized_ = true;
  build_cols_ = cols;
  const size_t n = build_->num_rows();

  build_dict_hashes_.assign(cols.size(), {});
  for (size_t c = 0; c < cols.size(); ++c) {
    if (cols[c]->type() == DataType::kString && cols[c]->dict_encoded()) {
      kernels::HashDictionary(*cols[c]->dictionary(),
                              &build_dict_hashes_[c]);
    }
  }

  slots_.clear();
  slot_mask_ = 0;
  key_hashes_.clear();
  key_first_.clear();
  rows_sorted_.clear();
  row_offsets_.assign(1, 0);
  if (n == 0) return Status::OK();

  // Batch-hash all build rows; per-row work is pure, so morsels can run on
  // any worker without affecting the result.
  std::vector<uint64_t> hashes(n, kernels::kGroupHashSeed);
  constexpr size_t kChunk = 4096;
  const size_t chunks = (n + kChunk - 1) / kChunk;
  auto hash_chunk = [&](size_t ci) {
    const size_t begin = ci * kChunk;
    const size_t len = std::min(kChunk, n - begin);
    for (size_t c = 0; c < cols.size(); ++c) {
      kernels::JoinHashColumn(
          *cols[c], begin, len,
          build_dict_hashes_[c].empty() ? nullptr
                                        : build_dict_hashes_[c].data(),
          hashes.data() + begin);
    }
  };
  if (threads > 1 && chunks > 1) {
    common::ThreadPool::Shared().ParallelFor(chunks, threads, hash_chunk);
  } else {
    for (size_t ci = 0; ci < chunks; ++ci) hash_chunk(ci);
  }

  // Open-addressing insert over distinct keys. Sized to load factor <= 1/2
  // upfront (distinct keys <= rows), so no rehash mid-build.
  size_t cap = 16;
  while (cap < n * 2) cap <<= 1;
  slots_.assign(cap, 0);
  slot_mask_ = cap - 1;
  std::vector<uint32_t> kids(n);
  const Column* const* bc = build_cols_.data();
  for (size_t r = 0; r < n; ++r) {
    const uint64_t h = hashes[r];
    size_t s = h & slot_mask_;
    for (;;) {
      const uint32_t tag = slots_[s];
      if (tag == 0) {
        const uint32_t kid = static_cast<uint32_t>(key_hashes_.size());
        slots_[s] = kid + 1;
        key_hashes_.push_back(h);
        key_first_.push_back(static_cast<uint32_t>(r));
        kids[r] = kid;
        break;
      }
      const uint32_t kid = tag - 1;
      if (key_hashes_[kid] == h &&
          kernels::JoinRowsEqual(bc, bc, cols.size(), key_first_[kid], r)) {
        kids[r] = kid;
        break;
      }
      s = (s + 1) & slot_mask_;
    }
  }

  // Counting sort of build rows by key id. Rows are visited ascending, so
  // each key's match list stays ascending — the legacy emission order.
  const size_t nkeys = key_hashes_.size();
  row_offsets_.assign(nkeys + 1, 0);
  for (size_t r = 0; r < n; ++r) ++row_offsets_[kids[r] + 1];
  for (size_t k = 0; k < nkeys; ++k) row_offsets_[k + 1] += row_offsets_[k];
  rows_sorted_.resize(n);
  std::vector<uint32_t> cursor(row_offsets_.begin(), row_offsets_.end() - 1);
  for (size_t r = 0; r < n; ++r) {
    rows_sorted_[cursor[kids[r]]++] = static_cast<uint32_t>(r);
  }

  if (bloom != nullptr && bloom->initialized()) {
    for (uint64_t h : key_hashes_) bloom->Insert(h);
  }

  index_bytes_ = slots_.capacity() * sizeof(uint32_t) +
                 key_hashes_.capacity() * sizeof(uint64_t) +
                 (key_first_.capacity() + rows_sorted_.capacity() +
                  row_offsets_.capacity()) *
                     sizeof(uint32_t);
  for (const auto& dh : build_dict_hashes_) {
    index_bytes_ += dh.capacity() * sizeof(uint64_t);
  }
  return Status::OK();
}

Status JoinBuild::Probe(const TableSlice& probe,
                        const std::vector<std::string>& keys,
                        SelectionVector* build_sel,
                        SelectionVector* probe_sel) const {
  if (keys.size() != key_arity_) {
    return Status::InvalidArgument("join key arity mismatch");
  }
  std::vector<const Column*> cols;
  cols.reserve(keys.size());
  for (const auto& name : keys) {
    LAZYETL_ASSIGN_OR_RETURN(size_t i, probe.ColumnIndex(name));
    cols.push_back(&probe.column(i));
  }
  if (vectorized_) return ProbeVectorized(probe, cols, build_sel, probe_sel);

  std::string key;
  for (size_t row = 0; row < probe.num_rows(); ++row) {
    key.clear();
    for (const Column* c : cols) {
      PackRowKey(*c, probe.offset() + row, &key);
    }
    auto it = index_.find(key);
    if (it == index_.end()) continue;
    for (uint32_t build_row : it->second) {
      build_sel->push_back(build_row);
      probe_sel->push_back(static_cast<uint32_t>(row));
    }
  }
  return Status::OK();
}

Status JoinBuild::ProbeVectorized(const TableSlice& probe,
                                  const std::vector<const Column*>& cols,
                                  SelectionVector* build_sel,
                                  SelectionVector* probe_sel) const {
  const size_t n = probe.num_rows();
  if (n == 0 || key_hashes_.empty()) return Status::OK();

  std::vector<const uint64_t*> dict_hashes(cols.size(), nullptr);
  for (size_t c = 0; c < cols.size(); ++c) {
    if (cols[c]->type() == DataType::kString && cols[c]->dict_encoded()) {
      dict_hashes[c] = ProbeDictHashes(cols[c]->dictionary())->data();
    }
  }

  std::vector<uint64_t> hashes(n, kernels::kGroupHashSeed);
  for (size_t c = 0; c < cols.size(); ++c) {
    kernels::JoinHashColumn(*cols[c], probe.offset(), n, dict_hashes[c],
                            hashes.data());
  }

  const Column* const* bc = build_cols_.data();
  const Column* const* pc = cols.data();
  const size_t ncols = cols.size();
  for (size_t row = 0; row < n; ++row) {
    const uint64_t h = hashes[row];
    size_t s = h & slot_mask_;
    while (slots_[s] != 0) {
      const uint32_t kid = slots_[s] - 1;
      if (key_hashes_[kid] == h &&
          kernels::JoinRowsEqual(bc, pc, ncols, key_first_[kid],
                                 probe.offset() + row)) {
        for (size_t i = row_offsets_[kid]; i < row_offsets_[kid + 1]; ++i) {
          build_sel->push_back(rows_sorted_[i]);
          probe_sel->push_back(static_cast<uint32_t>(row));
        }
        break;
      }
      s = (s + 1) & slot_mask_;
    }
  }
  return Status::OK();
}

const std::vector<uint64_t>* JoinBuild::ProbeDictHashes(
    const std::shared_ptr<const std::vector<std::string>>& dict) const {
  {
    std::lock_guard<std::mutex> lock(probe_cache_mu_);
    for (const auto& e : probe_dict_cache_) {
      if (e.first.get() == dict.get()) return e.second.get();
    }
  }
  // Hash outside the lock (worst case two threads duplicate the work, the
  // loser's copy is dropped). Entries are never evicted — concurrent
  // probes hold raw pointers into them, and a query touches only a
  // handful of dictionaries.
  auto hashes = std::make_unique<std::vector<uint64_t>>();
  kernels::HashDictionary(*dict, hashes.get());
  std::lock_guard<std::mutex> lock(probe_cache_mu_);
  for (const auto& e : probe_dict_cache_) {
    if (e.first.get() == dict.get()) return e.second.get();
  }
  probe_dict_cache_.emplace_back(dict, std::move(hashes));
  return probe_dict_cache_.back().second.get();
}

}  // namespace lazyetl::engine
