#include "engine/operators/batch_cursor.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace lazyetl::engine {

namespace {
constexpr int64_t kNoneDelivered = -1;
}  // namespace

BatchCursor::BatchCursor(BatchOperator* op, Options options)
    : op_(op), opts_(options) {}

BatchCursor::~BatchCursor() { Close(); }

void BatchCursor::Start() {
  started_ = true;
  parallel_ = opts_.threads > 1 && op_->ParallelSafe();
  if (!parallel_) return;
  watermark_.assign(opts_.threads, kNoneDelivered);
  finished_.assign(opts_.threads, false);
  driver_ = std::thread([this] { DriveLoop(); });
}

// Safe flush horizon: any pending seq at or below the minimum watermark of
// the unfinished workers can never be preceded by a still-missing batch
// (each worker delivers strictly increasing seqs).
int64_t BatchCursor::SafeSeqLocked() const {
  int64_t safe = std::numeric_limits<int64_t>::max();
  for (size_t w = 0; w < watermark_.size(); ++w) {
    if (!finished_[w]) safe = std::min(safe, watermark_[w]);
  }
  return safe;
}

void BatchCursor::NoteBufferedLocked() {
  uint64_t batches = ready_.size() + pending_.size();
  if (batches > peak_buffered_batches_) peak_buffered_batches_ = batches;
  if (buffered_bytes_ > peak_buffered_bytes_) {
    peak_buffered_bytes_ = buffered_bytes_;
  }
}

bool BatchCursor::FlushLocked(std::unique_lock<std::mutex>& lock) {
  while (!cancelled_ && !pending_.empty() &&
         static_cast<int64_t>(pending_.begin()->first) <= SafeSeqLocked()) {
    if (opts_.window_batches > 0 && ready_.size() >= opts_.window_batches) {
      // Backpressure: the consumer is behind. Suspend this producer until
      // it pops a batch (or the cursor is closed) — morsel dispatch stops
      // with it, so nothing buffers unboundedly.
      space_cv_.wait(lock, [&] {
        return cancelled_ || ready_.size() < opts_.window_batches;
      });
      continue;
    }
    ready_.push_back(std::move(pending_.begin()->second));
    pending_.erase(pending_.begin());
    ready_cv_.notify_one();
  }
  return !cancelled_;
}

void BatchCursor::DriveLoop() {
  Status st = ParallelDrain(
      op_, opts_.threads,
      [this](size_t worker, Batch&& batch) -> Status {
        std::unique_lock<std::mutex> lock(mu_);
        if (cancelled_) return Status::ExecutionError("batch cursor closed");
        watermark_[worker] = static_cast<int64_t>(batch.seq);
        buffered_bytes_ += batch.view.ViewedBytes();
        pending_.emplace(batch.seq, std::move(batch));
        NoteBufferedLocked();
        if (!FlushLocked(lock)) {
          return Status::ExecutionError("batch cursor closed");
        }
        // This delivery may have advanced the flush horizon: peers
        // suspended in the reorder wait below re-evaluate who the
        // laggard is.
        space_cv_.notify_all();
        // Reorder-window backpressure: FlushLocked bounds the in-order
        // ready queue, but a worker running far ahead of the laggard
        // would still pile out-of-order batches into pending_ without
        // limit. Suspend it until total buffered state is back inside
        // the window — except the laggard itself (the worker every
        // flush is waiting on), which must keep producing or no seq
        // gap ever fills.
        if (opts_.window_batches > 0) {
          space_cv_.wait(lock, [&] {
            return cancelled_ ||
                   ready_.size() + pending_.size() <= opts_.window_batches ||
                   watermark_[worker] <= SafeSeqLocked();
          });
          if (cancelled_) {
            return Status::ExecutionError("batch cursor closed");
          }
        }
        return Status::OK();
      },
      [this](size_t worker) {
        std::unique_lock<std::mutex> lock(mu_);
        finished_[worker] = true;
        FlushLocked(lock);
        // A finished (or failed) worker leaves the watermark set: a new
        // laggard may emerge, and waiters keyed on it must wake.
        space_cv_.notify_all();
      });

  std::unique_lock<std::mutex> lock(mu_);
  // After a clean join everything still pending is fully ordered: stream
  // it out, still honoring the window. On failure st carries the first
  // error and the pending remainder is dropped at Close. The
  // schema-restoring batch of an empty parallel phase arrived through
  // the sink above.
  std::fill(finished_.begin(), finished_.end(), true);
  if (st.ok()) {
    FlushLocked(lock);
  } else if (!cancelled_ && error_.ok()) {
    error_ = st;
  }
  producer_done_ = true;
  ready_cv_.notify_all();
}

Result<bool> BatchCursor::Next(Batch* out) {
  if (closed_) return false;
  if (!started_) Start();

  if (!parallel_) {
    if (serial_done_) return false;
    auto more = op_->Next(out);
    if (!more.ok() || !*more) {
      serial_done_ = true;
      return more;
    }
    // Serial mode buffers exactly the batch in flight.
    uint64_t bytes = out->view.ViewedBytes();
    if (peak_buffered_batches_ == 0) peak_buffered_batches_ = 1;
    if (bytes > peak_buffered_bytes_) peak_buffered_bytes_ = bytes;
    return more;
  }

  std::unique_lock<std::mutex> lock(mu_);
  ready_cv_.wait(lock, [&] { return !ready_.empty() || producer_done_; });
  if (!ready_.empty()) {
    *out = std::move(ready_.front());
    ready_.pop_front();
    uint64_t bytes = out->view.ViewedBytes();
    buffered_bytes_ -= std::min(buffered_bytes_, bytes);
    space_cv_.notify_all();
    return true;
  }
  if (!error_.ok()) return error_;
  return false;
}

void BatchCursor::Close() {
  if (closed_) return;
  closed_ = true;
  if (!started_ || !parallel_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
    ready_.clear();
    pending_.clear();
    buffered_bytes_ = 0;
  }
  space_cv_.notify_all();
  ready_cv_.notify_all();
  if (driver_.joinable()) driver_.join();
}

}  // namespace lazyetl::engine
