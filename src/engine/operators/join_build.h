// Shared row-key packing and the hash-join build side, used by the join,
// aggregate and distinct operators and by the LazyDataScan run-time
// rewrite (build once over the metadata side, probe per record batch).

#ifndef LAZYETL_ENGINE_OPERATORS_JOIN_BUILD_H_
#define LAZYETL_ENGINE_OPERATORS_JOIN_BUILD_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/slice.h"
#include "storage/table.h"

namespace lazyetl::engine {

// Appends a type-tagged binary encoding of row `row` of `col` to `out`,
// such that two rows encode equal iff their values are equal.
void PackRowKey(const storage::Column& col, size_t row, std::string* out);

// Hash index over the key columns of a materialised build-side table.
class JoinBuild {
 public:
  // `build` must outlive this object.
  Status Init(const storage::Table* build,
              const std::vector<std::string>& keys);

  // Probes the viewed rows of `probe` on `keys` (same arity as the build
  // keys); appends matching (build_row, slice-relative probe_row) pairs in
  // probe order.
  Status Probe(const storage::TableSlice& probe,
               const std::vector<std::string>& keys,
               storage::SelectionVector* build_sel,
               storage::SelectionVector* probe_sel) const;

  const storage::Table& table() const { return *build_; }

  // Approximate bytes held by the hash index (not the build table).
  uint64_t IndexBytes() const { return index_bytes_; }

 private:
  const storage::Table* build_ = nullptr;
  size_t key_arity_ = 0;
  std::unordered_map<std::string, std::vector<uint32_t>> index_;
  uint64_t index_bytes_ = 0;
};

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_OPERATORS_JOIN_BUILD_H_
