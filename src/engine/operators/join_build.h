// Shared row-key packing and the hash-join build side, used by the join,
// aggregate and distinct operators and by the LazyDataScan run-time
// rewrite (build once over the metadata side, probe per record batch).
//
// Two implementations share the JoinBuild interface:
//
//  - Vectorized (default): build-side rows are batch-hashed (optionally in
//    parallel on the shared ThreadPool), landed in an open-addressing
//    table with cached hashes, and match lists are stored as one
//    counting-sorted row array sliced by per-key offsets. Probes batch-hash
//    the probe columns and verify hash-equal candidates with the exact
//    cross-table row equality of kernels::JoinRowsEqual. Dict-encoded
//    string keys hash via per-dictionary content hashes, so they join
//    against plain (or differently-coded) string columns without decoding.
//  - Legacy (LAZYETL_DISABLE_VECTOR_JOIN=1): the original per-row
//    PackRowKey + unordered_map<string, vector<row>> loops, kept verbatim
//    as a differential oracle.
//
// Both emit (build_row, probe_row) pairs in probe order with build rows
// ascending per probe row, so results are byte-identical. The one
// deliberate divergence: the packed encoding can alias values of
// different type classes through a multi-field byte coincidence (e.g. a
// string whose length/contents bytes mimic a packed number); the
// vectorized path resolves such pairs as non-matches. No sane schema
// joins a string column against a double, and the engine's planner never
// produces such a pair from a bound view.

#ifndef LAZYETL_ENGINE_OPERATORS_JOIN_BUILD_H_
#define LAZYETL_ENGINE_OPERATORS_JOIN_BUILD_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/kernels.h"
#include "storage/slice.h"
#include "storage/table.h"

namespace lazyetl::engine {

// Appends a type-tagged binary encoding of row `row` of `col` to `out`,
// such that two rows encode equal iff their values are equal.
void PackRowKey(const storage::Column& col, size_t row, std::string* out);

// True unless LAZYETL_DISABLE_VECTOR_JOIN is set to a non-empty value
// other than "0". Gates the vectorized build/probe AND the Bloom-filter
// semi-join pushdown, so the kill switch yields the fully legacy path.
bool VectorJoinEnabled();

// Bloom semi-join pushdown policy, from LAZYETL_JOIN_BLOOM:
// unset/"1"/"auto" -> kAuto (push only when the join goes Grace and the
// build side is big enough to pay for the hashing — dropped probe rows
// then save partition and spill I/O, whereas an in-memory probe discards
// them nearly as cheaply as the filter would), "0"/"off" -> kOff,
// "force" -> kForce (push for in-memory joins too — tests and benches).
enum class JoinBloomMode { kOff, kAuto, kForce };
JoinBloomMode ResolveJoinBloomMode();

// Hash index over the key columns of a materialised build-side table.
class JoinBuild {
 public:
  // `build` must outlive this object. `threads` > 1 hashes build rows in
  // parallel on the shared ThreadPool (per-row work is pure, so the
  // result is identical at any thread count). When `bloom` is non-null
  // and the vectorized path is active, every distinct build-key hash is
  // inserted into it (the filter must already be Init'd).
  Status Init(const storage::Table* build,
              const std::vector<std::string>& keys, size_t threads = 1,
              kernels::BlockedBloomFilter* bloom = nullptr);

  // Probes the viewed rows of `probe` on `keys` (same arity as the build
  // keys); appends matching (build_row, slice-relative probe_row) pairs in
  // probe order. Thread-safe: concurrent Probe calls against one Init'd
  // JoinBuild are allowed (LazyDataScan probes from pool workers).
  Status Probe(const storage::TableSlice& probe,
               const std::vector<std::string>& keys,
               storage::SelectionVector* build_sel,
               storage::SelectionVector* probe_sel) const;

  const storage::Table& table() const { return *build_; }

  // Approximate bytes held by the hash index (not the build table).
  uint64_t IndexBytes() const { return index_bytes_; }

  // True when Init took the vectorized path (reported as
  // `joins_vectorized` by the operators).
  bool vectorized() const { return vectorized_; }

 private:
  Status InitVectorized(const std::vector<const storage::Column*>& cols,
                        size_t threads, kernels::BlockedBloomFilter* bloom);
  Status ProbeVectorized(const storage::TableSlice& probe,
                         const std::vector<const storage::Column*>& cols,
                         storage::SelectionVector* build_sel,
                         storage::SelectionVector* probe_sel) const;

  // Per-dictionary content hashes for probe-side dict columns, cached so
  // repeated probe batches sharing a dictionary hash it once. Keyed by
  // the dictionary's address; the shared_ptr keeps that address alive so
  // a recycled allocation can never alias a stale entry.
  const std::vector<uint64_t>* ProbeDictHashes(
      const std::shared_ptr<const std::vector<std::string>>& dict) const;

  const storage::Table* build_ = nullptr;
  size_t key_arity_ = 0;
  bool vectorized_ = false;
  uint64_t index_bytes_ = 0;

  // Legacy index.
  std::unordered_map<std::string, std::vector<uint32_t>> index_;

  // Vectorized index: open addressing over distinct keys. slots_ holds
  // key-id+1 (0 = empty); key_hashes_/key_first_ cache each distinct
  // key's hash and a representative build row; rows_sorted_ holds all
  // build rows counting-sorted by key id (ascending within a key) and
  // row_offsets_ (size = #keys + 1) slices it per key.
  std::vector<uint32_t> slots_;
  size_t slot_mask_ = 0;
  std::vector<uint64_t> key_hashes_;
  std::vector<uint32_t> key_first_;
  std::vector<uint32_t> rows_sorted_;
  std::vector<uint32_t> row_offsets_;
  std::vector<const storage::Column*> build_cols_;
  std::vector<std::vector<uint64_t>> build_dict_hashes_;

  mutable std::mutex probe_cache_mu_;
  mutable std::vector<std::pair<std::shared_ptr<const std::vector<std::string>>,
                                std::unique_ptr<std::vector<uint64_t>>>>
      probe_dict_cache_;
};

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_OPERATORS_JOIN_BUILD_H_
