// Pipeline breakers: Sort, TopK, Aggregate, Distinct, HashJoin. These
// consume their input batch-at-a-time and re-emit batches. Aggregate and
// Distinct accumulate incrementally (state is O(groups) / O(distinct
// keys), never the whole input); Sort and the HashJoin build side must
// materialise and record that state in the operator counters; TopK keeps
// only a bounded candidate set (O(k) per worker).
//
// Parallelism (morsel-driven): with query_threads > 1 and a parallel-safe
// child, every breaker consumes its input through ParallelDrain — workers
// fold batches into *partial* states that are merged at the end of the
// consume phase. Merges happen in batch-seq order, so results are
// deterministic and independent of scheduling: integer/string aggregates,
// distinct sets, sort orders and top-k sets are byte-identical to the
// serial path; floating-point sums combine per-batch partials in seq
// order (deterministic, but associated differently than the serial
// row-by-row sum — equal up to rounding).

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <numeric>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/memory_budget.h"
#include "common/thread_pool.h"
#include "engine/expr_eval.h"
#include "engine/kernels.h"
#include "engine/operators/internal.h"
#include "engine/operators/join_build.h"
#include "engine/operators/operator.h"
#include "engine/operators/spill_run.h"
#include "storage/spill_format.h"

namespace lazyetl::engine {

using sql::BoundAggregate;
using storage::Column;
using storage::DataType;
using storage::SelectionVector;
using storage::Table;
using storage::TableSchema;
using storage::TableSlice;

namespace {

// Grace partitioning parameters: the fan-out of one partitioning pass and
// the recursion cap. Beyond the cap (e.g. a single key dominating the
// input, which no hash can split) the partition is processed in memory
// even if it overruns the budget — completion is guaranteed, the budget
// becomes best-effort. The same soft-overflow escape applies when a
// partition holds too few groups/rows for splitting to help (fewer than
// kMinSplitGroups / kMinSplitRows): re-partitioning such a partition
// multiplies tiny files without reducing its largest state, so it
// finishes in memory instead — the over-budget transient is bounded by
// that constant, not by the input.
constexpr size_t kSpillFanout = 8;
constexpr size_t kMaxSpillLevel = 6;
constexpr size_t kMinSplitGroups = 128;
constexpr size_t kMinSplitRows = 1024;

// Per-group bookkeeping estimate (hash-map node + tag + accumulator
// entries) used when charging grouped state to the memory budget.
constexpr uint64_t kPerGroupOverhead = 96;

bool IsIntLike(DataType t) {
  return t == DataType::kBool || t == DataType::kInt32 ||
         t == DataType::kInt64 || t == DataType::kTimestamp;
}

// Three-way row comparison under the ORDER BY items; `sort_cols` are the
// evaluated key columns. Negative = row a orders first.
int CompareRows(const std::vector<Column>& sort_cols,
                const std::vector<sql::BoundOrderItem>& items, size_t a,
                size_t b) {
  for (size_t k = 0; k < sort_cols.size(); ++k) {
    const Column& c = sort_cols[k];
    int cmp = 0;
    if (c.type() == DataType::kString) {
      cmp = c.StringAt(a).compare(c.StringAt(b));
      cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    } else if (c.type() == DataType::kDouble) {
      double va = c.double_data()[a];
      double vb = c.double_data()[b];
      cmp = va < vb ? -1 : (va > vb ? 1 : 0);
    } else if (IsIntLike(c.type())) {
      // Exact integer path: doubles corrupt wide int64/timestamps.
      int64_t ia, ib;
      if (c.type() == DataType::kInt32) {
        ia = c.int32_data()[a];
        ib = c.int32_data()[b];
      } else if (c.type() == DataType::kBool) {
        ia = c.bool_data()[a];
        ib = c.bool_data()[b];
      } else {
        ia = c.int64_data()[a];
        ib = c.int64_data()[b];
      }
      cmp = ia < ib ? -1 : (ia > ib ? 1 : 0);
    } else {
      double va = c.NumericAt(a);
      double vb = c.NumericAt(b);
      cmp = va < vb ? -1 : (va > vb ? 1 : 0);
    }
    if (cmp != 0) return items[k].ascending ? cmp : -cmp;
  }
  return 0;
}

// Stable-sorts `idx` with `threads` workers: contiguous chunks are sorted
// concurrently, then merged pairwise (std::inplace_merge is stable and
// every left chunk holds lower original positions than its right chunk,
// so the result is exactly the serial std::stable_sort order).
template <typename Less>
void ParallelStableSort(std::vector<uint32_t>* idx, size_t threads,
                        const Less& less) {
  size_t n = idx->size();
  if (threads <= 1 || n < 4096) {
    std::stable_sort(idx->begin(), idx->end(), less);
    return;
  }
  size_t chunks = std::min(threads, n);
  std::vector<size_t> bounds(chunks + 1);
  for (size_t c = 0; c <= chunks; ++c) bounds[c] = c * n / chunks;

  auto& pool = common::ThreadPool::Shared();
  pool.ParallelFor(chunks, threads, [&](size_t c) {
    std::stable_sort(idx->begin() + bounds[c], idx->begin() + bounds[c + 1],
                     less);
  });
  for (size_t width = 1; width < chunks; width *= 2) {
    std::vector<size_t> starts;
    for (size_t c = 0; c + width < chunks; c += 2 * width) starts.push_back(c);
    pool.ParallelFor(starts.size(), threads, [&](size_t j) {
      size_t c = starts[j];
      std::inplace_merge(idx->begin() + bounds[c],
                         idx->begin() + bounds[c + width],
                         idx->begin() + bounds[std::min(c + 2 * width, chunks)],
                         less);
    });
  }
}

// Evaluates the ORDER BY key expressions over `input` with `threads`
// workers: the table is split into contiguous chunks, each (item, chunk)
// pair evaluates independently, and the chunk columns are concatenated in
// order. Expression evaluation is pure and row-wise, so the result is
// byte-identical to the serial whole-table evaluation.
Result<std::vector<Column>> EvaluateSortKeys(
    const Table& input, const std::vector<sql::BoundOrderItem>& items,
    size_t threads) {
  std::vector<Column> keys;
  const size_t n = input.num_rows();
  if (threads <= 1 || n < 8192 || items.empty()) {
    for (const auto& item : items) {
      LAZYETL_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*item.expr, input));
      keys.push_back(std::move(c));
    }
    return keys;
  }

  const size_t chunks = std::min(threads, n / 4096);
  std::vector<size_t> bounds(chunks + 1);
  for (size_t c = 0; c <= chunks; ++c) bounds[c] = c * n / chunks;
  std::vector<std::vector<Column>> parts(
      items.size(), std::vector<Column>(chunks, Column(DataType::kInt64)));
  std::mutex err_mu;
  Status err;
  common::ThreadPool::Shared().ParallelFor(
      items.size() * chunks, threads, [&](size_t j) {
        size_t item = j / chunks;
        size_t c = j % chunks;
        TableSlice slice = input.Slice(bounds[c], bounds[c + 1] - bounds[c]);
        auto col = EvaluateExpr(*items[item].expr, slice);
        if (!col.ok()) {
          std::lock_guard<std::mutex> lock(err_mu);
          if (err.ok()) err = col.status();
          return;
        }
        parts[item][c] = std::move(*col);
      });
  LAZYETL_RETURN_NOT_OK(err);
  for (size_t item = 0; item < items.size(); ++item) {
    Column key = std::move(parts[item][0]);
    for (size_t c = 1; c < chunks; ++c) {
      LAZYETL_RETURN_NOT_OK(key.AppendColumn(parts[item][c]));
    }
    keys.push_back(std::move(key));
  }
  return keys;
}

// Gathers the picked rows column-by-column across workers.
Table ParallelGather(const Table& input, const SelectionVector& sel,
                     size_t threads) {
  if (threads <= 1 || input.num_columns() <= 1) return input.Gather(sel);
  std::vector<Column> cols(input.num_columns(), Column(DataType::kInt64));
  common::ThreadPool::Shared().ParallelFor(
      input.num_columns(), threads,
      [&](size_t c) { cols[c] = input.column(c).Gather(sel); });
  Table out;
  for (size_t c = 0; c < input.num_columns(); ++c) {
    Status st = out.AddColumn(input.column_name(c), std::move(cols[c]));
    (void)st;  // same-length columns from the same table cannot mismatch
  }
  return out;
}

// --------------------------------------------------------------------------
// Sort
// --------------------------------------------------------------------------

// External sort (budget mode): workers accumulate <payload, evaluated
// keys, arrival tag> run buffers and spill them — sorted — whenever the
// memory reservation fails; a k-way streaming merge over the runs then
// emits batches in sorted order. The arrival tag (seq, row) is a unique
// total tie-break, so the merged sequence equals the in-memory stable
// sort byte-for-byte regardless of where the spill boundaries fell.
class SortOperator : public BatchOperator {
 public:
  SortOperator(const PlanNode* node, ExecContext* ctx, BatchOperatorPtr child)
      : BatchOperator("Sort"), node_(node), ctx_(ctx) {
    AddChild(std::move(child));
  }

  // The streaming merge is inherently serial; the in-memory emitter is
  // parallel-safe as before.
  bool ParallelSafe() const override { return !external_; }

 protected:
  Status OpenImpl() override {
    size_t threads = ctx_->query_threads;
    if (ctx_->budgeted()) return OpenBudgeted(threads);

    LAZYETL_ASSIGN_OR_RETURN(Table input,
                             DrainToTableOrdered(child(), threads));
    RecordStateBytes(input.MemoryBytes());

    LAZYETL_ASSIGN_OR_RETURN(
        std::vector<Column> sort_cols,
        EvaluateSortKeys(input, node_->order_items, threads));
    std::vector<uint32_t> idx(input.num_rows());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<uint32_t>(i);

    auto less = [&](uint32_t a, uint32_t b) {
      return CompareRows(sort_cols, node_->order_items, a, b) < 0;
    };
    ParallelStableSort(&idx, threads, less);
    emitter_.Reset(ParallelGather(input, idx, threads), ctx_->batch_rows);
    return Status::OK();
  }

  Result<bool> NextImpl(Batch* out) override {
    if (!external_) return emitter_.Next(out, parallel_drive());
    Table merged;
    LAZYETL_ASSIGN_OR_RETURN(bool more,
                             merger_.Next(ctx_->batch_rows, &merged));
    if (!more) {
      if (!emitted_) {
        emitted_ = true;
        *out = Batch::Materialized(payload_proto_.Gather({}));
        return true;
      }
      return false;
    }
    *out = Batch::Materialized(std::move(merged));
    out->seq = next_seq_++;
    emitted_ = true;
    return true;
  }

  void CloseImpl() override {
    for (auto& w : workers_) w.res.ReleaseAll();
  }

 private:
  struct SortWorker {
    bool init = false;
    Table payload;                      // accumulated input rows
    std::vector<Column> keys;           // evaluated key columns, aligned
    std::vector<int64_t> tag_seq;
    std::vector<int64_t> tag_row;
    std::vector<std::string> run_paths;  // spilled sorted runs
    common::MemoryReservation res;
  };

  Status OpenBudgeted(size_t threads) {
    external_ = true;
    // Run ordering spec: ORDER BY keys, then the (seq, row) arrival tag.
    order_cols_ = node_->order_items.size() + 2;
    for (const auto& item : node_->order_items) {
      ascending_.push_back(item.ascending);
    }
    ascending_.push_back(true);  // tag seq
    ascending_.push_back(true);  // tag row
    merger_.Configure(order_cols_, ascending_, ctx_->spill);

    workers_.resize(std::max<size_t>(threads, 1));
    for (auto& w : workers_) w.res.Reset(ctx_->budget);

    LAZYETL_RETURN_NOT_OK(ParallelDrain(
        child(), threads, [&](size_t worker, Batch&& batch) -> Status {
          return Consume(&workers_[worker], batch);
        }));

    // Leftover buffers become in-memory runs (their reservations stay
    // held until Close — they are the resident breaker state).
    uint64_t resident = 0;
    bool any_spill = false;
    for (auto& w : workers_) {
      if (w.init && payload_proto_.num_columns() == 0) {
        payload_proto_ = w.payload.Gather({});
      }
      if (w.init && w.payload.num_rows() > 0) {
        merger_.AddMemoryRun(SortRunRows(AssembleRun(&w), order_cols_,
                                         ascending_));
      }
      resident += w.res.held();
      any_spill = any_spill || !w.run_paths.empty();
      for (const std::string& path : w.run_paths) {
        LAZYETL_RETURN_NOT_OK(merger_.AddSpilledRun(path));
      }
    }
    RecordStateBytes(resident);
    if (!any_spill) {
      // Fit within the budget: merge the per-worker sorted runs once and
      // keep the parallel emitter path — a budget alone must not
      // serialise queries that never overflow it.
      Table merged;
      LAZYETL_ASSIGN_OR_RETURN(
          bool more,
          merger_.Next(std::numeric_limits<size_t>::max(), &merged));
      if (!more) merged = payload_proto_.Gather({});
      emitter_.Reset(std::move(merged), ctx_->batch_rows);
      external_ = false;
    }
    return Status::OK();
  }

  Status Consume(SortWorker* w, const Batch& batch) {
    std::vector<Column> batch_keys;
    for (const auto& item : node_->order_items) {
      LAZYETL_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*item.expr, batch.view));
      batch_keys.push_back(std::move(c));
    }
    if (!w->init) {
      w->payload = batch.view.Gather({});
      for (const Column& c : batch_keys) w->keys.emplace_back(c.type());
      w->init = true;
    }
    uint64_t added = batch.view.ViewedBytes() + 16 * batch.num_rows();
    for (const Column& c : batch_keys) added += c.MemoryBytes();
    LAZYETL_RETURN_NOT_OK(w->payload.AppendSlice(batch.view));
    for (size_t i = 0; i < batch_keys.size(); ++i) {
      LAZYETL_RETURN_NOT_OK(w->keys[i].AppendColumn(batch_keys[i]));
    }
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      w->tag_seq.push_back(static_cast<int64_t>(batch.seq));
      w->tag_row.push_back(static_cast<int64_t>(r));
    }
    if (!w->res.Grow(added)) {
      // Peak resident state: what was reserved plus the batch that did
      // not fit (a single batch is the floor no budget can undercut).
      RecordStateBytes(w->res.held() + added);
      return SpillWorkerRun(w);
    }
    return Status::OK();
  }

  // Drains `w`'s buffer into <payload | keys | tag> columns, resetting the
  // buffer to empty same-schema state.
  Table AssembleRun(SortWorker* w) {
    Table run = std::move(w->payload);
    w->payload = run.Gather({});
    for (size_t i = 0; i < w->keys.size(); ++i) {
      Column key = std::move(w->keys[i]);
      w->keys[i] = Column(key.type());
      Status st = run.AddColumn("#k" + std::to_string(i), std::move(key));
      (void)st;  // equal-length by construction
    }
    Status st = run.AddColumn("#tseq", Column::FromInt64(std::move(w->tag_seq)));
    (void)st;
    st = run.AddColumn("#trow", Column::FromInt64(std::move(w->tag_row)));
    (void)st;
    w->tag_seq.clear();
    w->tag_row.clear();
    return run;
  }

  Status SpillWorkerRun(SortWorker* w) {
    if (w->payload.num_rows() == 0) return Status::OK();
    Table run = SortRunRows(AssembleRun(w), order_cols_, ascending_);
    std::string path;
    LAZYETL_ASSIGN_OR_RETURN(
        SpillWriteStats stats,
        WriteRunFile(run, ctx_->batch_rows, ctx_->spill, &path));
    RecordSpill(stats.logical_bytes, 1);
    RecordSpillIO(stats.compressed_bytes, stats.write_wait_seconds);
    w->run_paths.push_back(std::move(path));
    w->res.ReleaseAll();
    return Status::OK();
  }

  const PlanNode* node_;
  ExecContext* ctx_;
  TableEmitter emitter_;
  // External-mode state.
  bool external_ = false;
  bool emitted_ = false;
  uint64_t next_seq_ = 0;
  size_t order_cols_ = 0;        // run ordering spec (keys + 2 tag cols)
  std::vector<bool> ascending_;
  std::vector<SortWorker> workers_;
  RunMerger merger_;
  Table payload_proto_;  // schema-only table for the empty-batch contract
};

// --------------------------------------------------------------------------
// TopK (fused Sort + Limit)
// --------------------------------------------------------------------------

// Bounded top-k: each worker keeps at most ~2k candidate rows (pruned
// with nth_element under the total order <sort keys, arrival tag>), so a
// Sort directly below a Limit no longer materialises its whole input.
// The arrival tag (batch seq, row) reproduces stable-sort semantics:
// among key-equal rows the earliest input rows win, byte-identical to the
// unfused Sort + Limit at any thread count.
class TopKOperator : public BatchOperator {
 public:
  TopKOperator(const PlanNode* node, ExecContext* ctx, BatchOperatorPtr child)
      : BatchOperator("TopK"), node_(node), ctx_(ctx) {
    AddChild(std::move(child));
  }

  bool ParallelSafe() const override { return true; }

 protected:
  Status OpenImpl() override {
    k_ = static_cast<size_t>(std::max<int64_t>(0, node_->limit));
    size_t threads = ctx_->query_threads;
    std::vector<WorkerState> states(std::max<size_t>(threads, 1));

    LAZYETL_RETURN_NOT_OK(ParallelDrain(
        child(), threads, [&](size_t worker, Batch&& batch) -> Status {
          return Consume(&states[worker], batch);
        }));

    // Merge: every worker's pruned candidates together hold the global
    // top k; one final ordered selection yields the output.
    WorkerState merged;
    for (WorkerState& s : states) {
      if (!s.init) continue;
      Prune(&s);
      if (!merged.init) {
        merged = std::move(s);
        continue;
      }
      LAZYETL_RETURN_NOT_OK(merged.rows.AppendTable(s.rows));
      for (size_t i = 0; i < merged.keys.size(); ++i) {
        LAZYETL_RETURN_NOT_OK(merged.keys[i].AppendColumn(s.keys[i]));
      }
      merged.tags.insert(merged.tags.end(), s.tags.begin(), s.tags.end());
    }
    // ParallelDrain delivers at least one (possibly empty) batch, so some
    // worker always carries the schema.
    if (!merged.init) return Status::Internal("top-k saw no input batch");

    std::vector<uint32_t> idx(merged.rows.num_rows());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<uint32_t>(i);
    std::sort(idx.begin(), idx.end(),
              [&](uint32_t a, uint32_t b) { return Before(merged, a, b); });
    if (idx.size() > k_) idx.resize(k_);

    uint64_t key_bytes = 0;
    for (const Column& c : merged.keys) key_bytes += c.MemoryBytes();
    RecordStateBytes(merged.rows.MemoryBytes() + key_bytes);
    emitter_.Reset(merged.rows.Gather(idx), ctx_->batch_rows);
    return Status::OK();
  }

  Result<bool> NextImpl(Batch* out) override {
    return emitter_.Next(out, parallel_drive());
  }

 private:
  struct WorkerState {
    bool init = false;
    Table rows;                // candidate rows (bounded by Prune)
    std::vector<Column> keys;  // evaluated sort keys, aligned with rows
    std::vector<std::pair<uint64_t, uint32_t>> tags;  // (batch seq, row)
  };

  // Total order: sort keys, then input arrival order.
  bool Before(const WorkerState& s, uint32_t a, uint32_t b) const {
    int cmp = CompareRows(s.keys, node_->order_items, a, b);
    if (cmp != 0) return cmp < 0;
    return s.tags[a] < s.tags[b];
  }

  Status Consume(WorkerState* s, const Batch& batch) {
    std::vector<Column> batch_keys;
    for (const auto& item : node_->order_items) {
      LAZYETL_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*item.expr, batch.view));
      batch_keys.push_back(std::move(c));
    }
    if (!s->init) {
      s->rows = batch.view.Gather({});  // schema
      for (const Column& c : batch_keys) s->keys.emplace_back(c.type());
      s->init = true;
    }
    if (k_ == 0) return Status::OK();
    LAZYETL_RETURN_NOT_OK(s->rows.AppendSlice(batch.view));
    for (size_t i = 0; i < batch_keys.size(); ++i) {
      LAZYETL_RETURN_NOT_OK(s->keys[i].AppendColumn(batch_keys[i]));
    }
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      s->tags.emplace_back(batch.seq, static_cast<uint32_t>(r));
    }
    if (s->rows.num_rows() >= std::max<size_t>(2 * k_, 8192)) Prune(s);
    return Status::OK();
  }

  void Prune(WorkerState* s) {
    size_t n = s->rows.num_rows();
    if (n <= k_) return;
    std::vector<uint32_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = static_cast<uint32_t>(i);
    std::nth_element(idx.begin(), idx.begin() + k_, idx.end(),
                     [&](uint32_t a, uint32_t b) { return Before(*s, a, b); });
    idx.resize(k_);
    s->rows = s->rows.Gather(idx);
    std::vector<std::pair<uint64_t, uint32_t>> tags;
    tags.reserve(idx.size());
    for (uint32_t i : idx) tags.push_back(s->tags[i]);
    for (Column& key : s->keys) key = key.Gather(idx);
    s->tags = std::move(tags);
  }

  const PlanNode* node_;
  ExecContext* ctx_;
  size_t k_ = 0;
  TableEmitter emitter_;
};

// --------------------------------------------------------------------------
// Aggregate
// --------------------------------------------------------------------------

// Typed accumulator for one aggregate across all groups; grows as new
// groups appear, fed batch-local argument columns.
class Accumulator {
 public:
  explicit Accumulator(const BoundAggregate& agg)
      : function_(agg.function), out_type_(agg.type) {}

  // Called once, with the argument type observed on the first batch.
  void Prepare(DataType arg_type) { arg_type_ = arg_type; }

  DataType arg_type() const { return arg_type_; }

  void Resize(size_t groups) {
    count_.resize(groups, 0);
    if (function_ == "AVG" || function_ == "SUM") {
      dsum_.resize(groups, 0.0);
      isum_.resize(groups, 0);
    } else if (function_ == "MIN" || function_ == "MAX") {
      if (arg_type_ == DataType::kString) {
        sext_.resize(groups);
      } else if (arg_type_ == DataType::kDouble) {
        dext_.resize(groups, 0.0);
      } else {
        iext_.resize(groups, 0);
      }
    }
  }

  void Update(size_t group, const Column* arg, size_t row) {
    bool first = count_[group] == 0;
    ++count_[group];
    if (function_ == "COUNT") return;
    if (function_ == "AVG" || function_ == "SUM") {
      if (arg->type() == DataType::kDouble) {
        dsum_[group] += arg->double_data()[row];
      } else {
        int64_t v = IntValueAt(*arg, row);
        isum_[group] += v;
        dsum_[group] += static_cast<double>(v);
      }
      return;
    }
    // MIN / MAX
    bool want_min = function_ == "MIN";
    if (arg_type_ == DataType::kString) {
      const std::string& v = arg->StringAt(row);
      if (first || (want_min ? v < sext_[group] : v > sext_[group])) {
        sext_[group] = v;
      }
    } else if (arg_type_ == DataType::kDouble) {
      double v = arg->double_data()[row];
      if (first || (want_min ? v < dext_[group] : v > dext_[group])) {
        dext_[group] = v;
      }
    } else {
      int64_t v = IntValueAt(*arg, row);
      if (first || (want_min ? v < iext_[group] : v > iext_[group])) {
        iext_[group] = v;
      }
    }
  }

  // Bulk Update over rows [0, rows) of `arg` into group 0 — the ungrouped
  // aggregation path, routed through the vectorized kernels. Byte-identical
  // to per-row Update: integer sums vectorize freely, double sums
  // accumulate in row order, and min/max replicate the scalar comparison
  // chain (including its NaN-seeding behaviour).
  void UpdateBulk(const Column* arg, size_t rows) {
    bool first = count_[0] == 0;
    count_[0] += static_cast<int64_t>(rows);
    if (function_ == "COUNT") return;
    if (function_ == "AVG" || function_ == "SUM") {
      if (arg->type() == DataType::kDouble) {
        kernels::SumDoubleRange(arg->double_data().data(), 0, rows,
                                &dsum_[0]);
      } else if (arg->type() == DataType::kInt32) {
        kernels::SumRange(arg->int32_data().data(), 0, rows, &isum_[0],
                          &dsum_[0]);
      } else if (arg->type() == DataType::kBool) {
        kernels::SumRange(arg->bool_data().data(), 0, rows, &isum_[0],
                          &dsum_[0]);
      } else {
        kernels::SumRange(arg->int64_data().data(), 0, rows, &isum_[0],
                          &dsum_[0]);
      }
      return;
    }
    bool want_min = function_ == "MIN";
    if (arg_type_ == DataType::kString) {
      for (size_t row = 0; row < rows; ++row) {
        const std::string& v = arg->StringAt(row);
        if (first || (want_min ? v < sext_[0] : v > sext_[0])) {
          sext_[0] = v;
          first = false;
        }
      }
    } else if (arg_type_ == DataType::kDouble) {
      kernels::MinMaxRange(arg->double_data().data(), 0, rows, want_min,
                           &first, &dext_[0]);
    } else if (arg->type() == DataType::kInt32) {
      kernels::MinMaxRange(arg->int32_data().data(), 0, rows, want_min,
                           &first, &iext_[0]);
    } else if (arg->type() == DataType::kBool) {
      kernels::MinMaxRange(arg->bool_data().data(), 0, rows, want_min,
                           &first, &iext_[0]);
    } else {
      kernels::MinMaxRange(arg->int64_data().data(), 0, rows, want_min,
                           &first, &iext_[0]);
    }
  }

  // Columnar Update over rows [0, rows) of `arg`, one group id per row —
  // the vectorized grouped path. Visits rows in ascending order and
  // performs exactly the scalar per-row arithmetic, so per-group state is
  // byte-identical to calling Update(gids[row], arg, row) for every row.
  void UpdateGrouped(const uint32_t* gids, const Column* arg, size_t rows) {
    if (function_ == "COUNT") {
      kernels::CountGrouped(gids, rows, count_.data());
      return;
    }
    if (function_ == "AVG" || function_ == "SUM") {
      kernels::CountGrouped(gids, rows, count_.data());
      if (arg->type() == DataType::kDouble) {
        kernels::SumDoubleGrouped(arg->double_data().data(), gids, rows,
                                  dsum_.data());
      } else if (arg->type() == DataType::kInt32) {
        kernels::SumGrouped(arg->int32_data().data(), gids, rows,
                            isum_.data(), dsum_.data());
      } else if (arg->type() == DataType::kBool) {
        kernels::SumGrouped(arg->bool_data().data(), gids, rows,
                            isum_.data(), dsum_.data());
      } else {
        kernels::SumGrouped(arg->int64_data().data(), gids, rows,
                            isum_.data(), dsum_.data());
      }
      return;
    }
    bool want_min = function_ == "MIN";
    if (arg_type_ == DataType::kString) {
      for (size_t row = 0; row < rows; ++row) {
        uint32_t g = gids[row];
        bool first = count_[g]++ == 0;
        const std::string& v = arg->StringAt(row);
        if (first || (want_min ? v < sext_[g] : v > sext_[g])) sext_[g] = v;
      }
    } else if (arg_type_ == DataType::kDouble) {
      kernels::MinMaxGrouped(arg->double_data().data(), gids, rows, want_min,
                             count_.data(), dext_.data());
    } else if (arg->type() == DataType::kInt32) {
      kernels::MinMaxGrouped(arg->int32_data().data(), gids, rows, want_min,
                             count_.data(), iext_.data());
    } else if (arg->type() == DataType::kBool) {
      kernels::MinMaxGrouped(arg->bool_data().data(), gids, rows, want_min,
                             count_.data(), iext_.data());
    } else {
      kernels::MinMaxGrouped(arg->int64_data().data(), gids, rows, want_min,
                             count_.data(), iext_.data());
    }
  }

  // Folds group `src_group` of a partial accumulator into this one's
  // `dst_group`. COUNT/SUM/MIN/MAX merge exactly; double sums combine the
  // partials' per-batch sums (callers merge in seq order so the result is
  // deterministic).
  void MergeGroup(const Accumulator& src, size_t src_group,
                  size_t dst_group) {
    int64_t src_count = src.count_[src_group];
    if (src_count == 0) return;
    bool first = count_[dst_group] == 0;
    count_[dst_group] += src_count;
    if (function_ == "COUNT") return;
    if (function_ == "AVG" || function_ == "SUM") {
      dsum_[dst_group] += src.dsum_[src_group];
      isum_[dst_group] += src.isum_[src_group];
      return;
    }
    bool want_min = function_ == "MIN";
    if (arg_type_ == DataType::kString) {
      const std::string& v = src.sext_[src_group];
      if (first || (want_min ? v < sext_[dst_group] : v > sext_[dst_group])) {
        sext_[dst_group] = v;
      }
    } else if (arg_type_ == DataType::kDouble) {
      double v = src.dext_[src_group];
      if (first || (want_min ? v < dext_[dst_group] : v > dext_[dst_group])) {
        dext_[dst_group] = v;
      }
    } else {
      int64_t v = src.iext_[src_group];
      if (first || (want_min ? v < iext_[dst_group] : v > iext_[dst_group])) {
        iext_[dst_group] = v;
      }
    }
  }

  // Bulk MergeGroup: folds src groups [0, n) into this accumulator at
  // dst[g], with the per-aggregate dispatch hoisted out of the loop. Each
  // loop body matches MergeGroup exactly (same early-outs, same per-dst
  // ascending-g merge order), so results are bit-identical.
  void MergeGroupsBulk(const Accumulator& src, const uint32_t* dst,
                       size_t n) {
    if (function_ == "COUNT") {
      for (size_t g = 0; g < n; ++g) count_[dst[g]] += src.count_[g];
      return;
    }
    if (function_ == "AVG" || function_ == "SUM") {
      for (size_t g = 0; g < n; ++g) {
        if (src.count_[g] == 0) continue;
        count_[dst[g]] += src.count_[g];
        dsum_[dst[g]] += src.dsum_[g];
        isum_[dst[g]] += src.isum_[g];
      }
      return;
    }
    const bool want_min = function_ == "MIN";
    for (size_t g = 0; g < n; ++g) {
      if (src.count_[g] == 0) continue;
      const size_t d = dst[g];
      const bool first = count_[d] == 0;
      count_[d] += src.count_[g];
      if (arg_type_ == DataType::kString) {
        const std::string& v = src.sext_[g];
        if (first || (want_min ? v < sext_[d] : v > sext_[d])) sext_[d] = v;
      } else if (arg_type_ == DataType::kDouble) {
        const double v = src.dext_[g];
        if (first || (want_min ? v < dext_[d] : v > dext_[d])) dext_[d] = v;
      } else {
        const int64_t v = src.iext_[g];
        if (first || (want_min ? v < iext_[d] : v > iext_[d])) iext_[d] = v;
      }
    }
  }

  // --- Spill support -------------------------------------------------------
  // Partial state serialises as columns (one row per group) so overflowing
  // aggregation state can be radix-partitioned to disk and re-merged
  // later: COUNT → [count]; SUM/AVG → [count, isum, dsum]; MIN/MAX →
  // [count, extremum (argument-typed)]. Integer merges are exact and
  // order-independent; double sums re-associate across spill boundaries
  // (same relaxation as the parallel in-memory merge).

  DataType StateExtType() const {
    if (arg_type_ == DataType::kString) return DataType::kString;
    if (arg_type_ == DataType::kDouble) return DataType::kDouble;
    return DataType::kInt64;
  }

  size_t NumStateCols() const {
    if (function_ == "AVG" || function_ == "SUM") return 3;
    if (function_ == "MIN" || function_ == "MAX") return 2;
    return 1;  // COUNT
  }

  void AppendStateSchema(TableSchema* schema,
                         const std::string& prefix) const {
    schema->push_back({prefix + "c", DataType::kInt64});
    if (function_ == "AVG" || function_ == "SUM") {
      schema->push_back({prefix + "i", DataType::kInt64});
      schema->push_back({prefix + "d", DataType::kDouble});
    } else if (function_ == "MIN" || function_ == "MAX") {
      schema->push_back({prefix + "x", StateExtType()});
    }
  }

  void ExportState(std::vector<Column>* out) const {
    out->push_back(Column::FromInt64(count_));
    if (function_ == "AVG" || function_ == "SUM") {
      out->push_back(Column::FromInt64(isum_));
      out->push_back(Column::FromDouble(dsum_));
    } else if (function_ == "MIN" || function_ == "MAX") {
      if (arg_type_ == DataType::kString) {
        out->push_back(Column::FromString(sext_));
      } else if (arg_type_ == DataType::kDouble) {
        out->push_back(Column::FromDouble(dext_));
      } else {
        out->push_back(Column::FromInt64(iext_));
      }
    }
  }

  // Merges one exported-state row (columns starting at `first_col` of `t`)
  // into group `dst_group`, the disk-backed analog of MergeGroup.
  void MergeStateRow(const Table& t, size_t first_col, size_t row,
                     size_t dst_group) {
    int64_t src_count = t.column(first_col).int64_data()[row];
    if (src_count == 0) return;
    bool first = count_[dst_group] == 0;
    count_[dst_group] += src_count;
    if (function_ == "COUNT") return;
    if (function_ == "AVG" || function_ == "SUM") {
      isum_[dst_group] += t.column(first_col + 1).int64_data()[row];
      dsum_[dst_group] += t.column(first_col + 2).double_data()[row];
      return;
    }
    bool want_min = function_ == "MIN";
    const Column& ext = t.column(first_col + 1);
    if (arg_type_ == DataType::kString) {
      const std::string& v = ext.StringAt(row);
      if (first || (want_min ? v < sext_[dst_group] : v > sext_[dst_group])) {
        sext_[dst_group] = v;
      }
    } else if (arg_type_ == DataType::kDouble) {
      double v = ext.double_data()[row];
      if (first || (want_min ? v < dext_[dst_group] : v > dext_[dst_group])) {
        dext_[dst_group] = v;
      }
    } else {
      int64_t v = ext.int64_data()[row];
      if (first || (want_min ? v < iext_[dst_group] : v > iext_[dst_group])) {
        iext_[dst_group] = v;
      }
    }
  }

  // Columnar MergeStateRow over all rows of a partition frame; `dst[row]`
  // gives the destination group of each state row. Rows are merged in
  // ascending order, so the result is byte-identical to the per-row path.
  void MergeStateBulk(const Table& t, size_t first_col, const uint32_t* dst,
                      size_t rows) {
    const int64_t* counts = t.column(first_col).int64_data().data();
    if (function_ == "COUNT") {
      for (size_t r = 0; r < rows; ++r) count_[dst[r]] += counts[r];
      return;
    }
    if (function_ == "AVG" || function_ == "SUM") {
      const int64_t* is = t.column(first_col + 1).int64_data().data();
      const double* ds = t.column(first_col + 2).double_data().data();
      for (size_t r = 0; r < rows; ++r) {
        if (counts[r] == 0) continue;  // matches MergeStateRow's early-out
        size_t g = dst[r];
        count_[g] += counts[r];
        isum_[g] += is[r];
        dsum_[g] += ds[r];
      }
      return;
    }
    bool want_min = function_ == "MIN";
    const Column& ext = t.column(first_col + 1);
    if (arg_type_ == DataType::kString) {
      for (size_t r = 0; r < rows; ++r) {
        if (counts[r] == 0) continue;
        size_t g = dst[r];
        bool first = count_[g] == 0;
        count_[g] += counts[r];
        const std::string& v = ext.StringAt(r);
        if (first || (want_min ? v < sext_[g] : v > sext_[g])) sext_[g] = v;
      }
    } else if (arg_type_ == DataType::kDouble) {
      const double* x = ext.double_data().data();
      for (size_t r = 0; r < rows; ++r) {
        if (counts[r] == 0) continue;
        size_t g = dst[r];
        bool first = count_[g] == 0;
        count_[g] += counts[r];
        if (first || (want_min ? x[r] < dext_[g] : x[r] > dext_[g])) {
          dext_[g] = x[r];
        }
      }
    } else {
      const int64_t* x = ext.int64_data().data();
      for (size_t r = 0; r < rows; ++r) {
        if (counts[r] == 0) continue;
        size_t g = dst[r];
        bool first = count_[g] == 0;
        count_[g] += counts[r];
        if (first || (want_min ? x[r] < iext_[g] : x[r] > iext_[g])) {
          iext_[g] = x[r];
        }
      }
    }
  }

  Result<Column> Finish(size_t groups) const {
    if (function_ == "COUNT") {
      std::vector<int64_t> out(groups);
      for (size_t g = 0; g < groups; ++g) out[g] = count_[g];
      return Column::FromInt64(std::move(out));
    }
    if (function_ == "AVG") {
      std::vector<double> out(groups);
      for (size_t g = 0; g < groups; ++g) {
        out[g] = count_[g] ? dsum_[g] / static_cast<double>(count_[g]) : 0.0;
      }
      return Column::FromDouble(std::move(out));
    }
    if (function_ == "SUM") {
      if (out_type_ == DataType::kDouble) {
        return Column::FromDouble(dsum_);
      }
      return Column::FromInt64(isum_);
    }
    // MIN / MAX: emit in the argument's type.
    if (arg_type_ == DataType::kString) return Column::FromString(sext_);
    if (arg_type_ == DataType::kDouble) return Column::FromDouble(dext_);
    switch (out_type_) {
      case DataType::kInt32: {
        std::vector<int32_t> out(groups);
        for (size_t g = 0; g < groups; ++g) {
          out[g] = static_cast<int32_t>(iext_[g]);
        }
        return Column::FromInt32(std::move(out));
      }
      case DataType::kTimestamp:
        return Column::FromTimestamp(iext_);
      default:
        return Column::FromInt64(iext_);
    }
  }

  uint64_t StateBytes() const {
    uint64_t bytes = count_.size() * sizeof(int64_t) +
                     dsum_.size() * sizeof(double) +
                     isum_.size() * sizeof(int64_t) +
                     iext_.size() * sizeof(int64_t) +
                     dext_.size() * sizeof(double);
    for (const auto& s : sext_) bytes += sizeof(std::string) + s.capacity();
    return bytes;
  }

 private:
  static int64_t IntValueAt(const Column& arg, size_t row) {
    switch (arg.type()) {
      case DataType::kInt32:
        return arg.int32_data()[row];
      case DataType::kBool:
        return arg.bool_data()[row];
      default:
        return arg.int64_data()[row];
    }
  }

  std::string function_;
  DataType out_type_;
  DataType arg_type_ = DataType::kInt64;
  std::vector<int64_t> count_;
  std::vector<double> dsum_;
  std::vector<int64_t> isum_;
  std::vector<int64_t> iext_;
  std::vector<double> dext_;
  std::vector<std::string> sext_;
};

// One batch pre-grouped by a worker: local groups in first-occurrence
// order with their packed keys, representative values, first-occurrence
// arrival tags, and (for Aggregate) accumulator state. Shared between the
// Aggregate and Distinct consume paths.
struct GroupedPartial {
  uint64_t seq = 0;
  std::vector<std::string> names;   // group column names (first partial)
  std::vector<std::string> keys;    // one per local group
  std::vector<Column> values;       // one row per local group
  std::vector<Accumulator> accs;    // empty for Distinct
  std::vector<int64_t> tag_seq;     // first occurrence (seq, row) per group
  std::vector<int64_t> tag_row;
};

// Reusable per-worker scratch: the per-batch hash table and key buffer
// are the dominant per-batch allocations of the aggregate partials
// (ROADMAP open item); hoisting them into one arena per worker makes the
// consume loop allocation-light.
struct GroupScratch {
  std::unordered_map<std::string, uint32_t> index;  // legacy row path only
  std::string key;
  std::vector<Column> group_cols;
  std::vector<Column> arg_cols;
  // Vectorized path: batch group-id builder plus its column-pointer view.
  kernels::GroupIdBuilder builder;
  std::vector<const Column*> colptrs;
};

// Kill switch for the columnar grouping path: LAZYETL_DISABLE_VECTOR_AGG
// set to anything but "0" falls back to the per-row packed-key loops.
// Both paths are byte-identical (the differential suite in
// vector_agg_test.cc holds them to that); the switch exists for exactly
// that comparison and as an escape hatch.
bool VectorAggEnabled() {
  const char* env = std::getenv("LAZYETL_DISABLE_VECTOR_AGG");
  return env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0;
}

// Open-addressing packed-key → dense-group-id index for the vectorized
// path's cross-batch state. Group identity stays packed-key byte
// equality — the unordered_map semantics of the row path — but a probe
// is one cached-hash compare plus (on candidate match) one byte compare,
// with no per-group node allocation. The key bytes themselves live in
// the caller's gid-ordered store (`keys[gid]`), which the caller appends
// to right after an insert, so the index holds only slots and hashes.
struct PackedKeyIndex {
  std::vector<uint32_t> slots;   // gid + 1; 0 = empty
  std::vector<uint64_t> hashes;  // per gid, HashBytes of its key
  size_t mask = 0;

  void Clear() {
    slots.clear();
    hashes.clear();
    mask = 0;
  }

  // Returns the group id for `key`, inserting a fresh one (== keys.size())
  // when absent. `keys` must be the gid-aligned key store; on
  // *inserted == true the caller must push `key` onto it before the next
  // call.
  uint32_t FindOrInsert(const std::string& key,
                        const std::vector<std::string>& keys,
                        bool* inserted) {
    if ((hashes.size() + 1) * 4 > slots.size() * 3) Grow();
    const uint64_t h = kernels::HashBytes(key.data(), key.size());
    size_t i = h & mask;
    while (true) {
      const uint32_t s = slots[i];
      if (s == 0) {
        const uint32_t gid = static_cast<uint32_t>(hashes.size());
        slots[i] = gid + 1;
        hashes.push_back(h);
        *inserted = true;
        return gid;
      }
      const uint32_t gid = s - 1;
      if (hashes[gid] == h && keys[gid] == key) {
        *inserted = false;
        return gid;
      }
      i = (i + 1) & mask;
    }
  }

 private:
  void Grow() {
    const size_t cap = slots.empty() ? 1024 : slots.size() * 2;
    slots.assign(cap, 0);
    mask = cap - 1;
    for (size_t gid = 0; gid < hashes.size(); ++gid) {
      size_t i = hashes[gid] & mask;
      while (slots[i] != 0) i = (i + 1) & mask;
      slots[i] = static_cast<uint32_t>(gid) + 1;
    }
  }
};

// Budget-governed grouped state shared by Aggregate and Distinct
// (Distinct is the degenerate case: every column is a group column, no
// accumulators). Consume merges pre-grouped partials into one hash state;
// when the memory reservation fails the state is radix-partitioned to
// spill files (group values + arrival tags + serialised accumulator
// state). Partitions are then merged one at a time — recursing with a
// re-seeded hash when a partition itself overflows — and each finished
// partition becomes a run sorted by first-occurrence tag, so the final
// k-way merge streams groups out in exactly the in-memory
// first-occurrence order.
class GroupSpillHelper {
 public:
  void Init(BatchOperator* op, ExecContext* ctx,
            std::vector<std::string> output_names) {
    op_ = op;
    ctx_ = ctx;
    output_names_ = std::move(output_names);
    res_consume_.Reset(ctx->budget);
  }

  // Merges one partial into the global state; thread-safe.
  Status MergePartial(GroupedPartial&& partial) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!init_) InitFromPartial(partial);
    uint64_t added = 0;
    if (VectorAggEnabled()) {
      // Resolve all local groups to state slots first, then merge the
      // accumulator partials in one bulk pass per aggregate (per slot the
      // merge order is still ascending g — identical results).
      const size_t n = partial.keys.size();
      merge_dst_.resize(n);
      for (size_t g = 0; g < n; ++g) {
        bool inserted;
        const uint32_t dst = state_.vindex.FindOrInsert(partial.keys[g],
                                                        state_.keys,
                                                        &inserted);
        if (inserted) {
          added += 2 * partial.keys[g].size() + kPerGroupOverhead +
                   24 * state_.accs.size();
          state_.keys.push_back(partial.keys[g]);
          for (size_t i = 0; i < state_.values.size(); ++i) {
            LAZYETL_RETURN_NOT_OK(
                state_.values[i].AppendRange(partial.values[i], g, 1));
          }
          state_.tseq.push_back(partial.tag_seq[g]);
          state_.trow.push_back(partial.tag_row[g]);
          ++total_groups_;
        } else if (std::pair(partial.tag_seq[g], partial.tag_row[g]) <
                   std::pair(state_.tseq[dst], state_.trow[dst])) {
          state_.tseq[dst] = partial.tag_seq[g];
          state_.trow[dst] = partial.tag_row[g];
        }
        merge_dst_[g] = dst;
      }
      for (auto& acc : state_.accs) acc.Resize(state_.keys.size());
      for (size_t a = 0; a < state_.accs.size(); ++a) {
        state_.accs[a].MergeGroupsBulk(partial.accs[a], merge_dst_.data(),
                                       n);
      }
    } else {
      for (size_t g = 0; g < partial.keys.size(); ++g) {
        auto [it, inserted] = state_.index.emplace(
            partial.keys[g], static_cast<uint32_t>(state_.keys.size()));
        size_t dst = it->second;
        if (inserted) {
          added += 2 * partial.keys[g].size() + kPerGroupOverhead +
                   24 * state_.accs.size();
          state_.keys.push_back(partial.keys[g]);
          for (size_t i = 0; i < state_.values.size(); ++i) {
            LAZYETL_RETURN_NOT_OK(
                state_.values[i].AppendRange(partial.values[i], g, 1));
          }
          state_.tseq.push_back(partial.tag_seq[g]);
          state_.trow.push_back(partial.tag_row[g]);
          for (auto& acc : state_.accs) acc.Resize(state_.keys.size());
          ++total_groups_;
        } else if (std::pair(partial.tag_seq[g], partial.tag_row[g]) <
                   std::pair(state_.tseq[dst], state_.trow[dst])) {
          state_.tseq[dst] = partial.tag_seq[g];
          state_.trow[dst] = partial.tag_row[g];
        }
        for (size_t a = 0; a < state_.accs.size(); ++a) {
          state_.accs[a].MergeGroup(partial.accs[a], g, dst);
        }
      }
    }
    if (!res_consume_.Grow(added)) {
      op_->RecordStateBytes(res_consume_.held() + added);
      LAZYETL_RETURN_NOT_OK(SpillState());
    }
    return Status::OK();
  }

  // Total distinct groups observed during consume (including spilled).
  uint64_t total_groups() const { return total_groups_; }

  // True when consume overflowed into partition files at least once.
  bool spilled() const { return spilled_; }

  // No-spill finish: the merged groups as one tag-ordered output table
  // (tags stripped), ready for the parallel TableEmitter — budgeted
  // queries whose state fit keep the in-memory emission path.
  Result<Table> FinishInMemory() {
    if (!init_ || state_.keys.empty()) return EmptyOutput();
    LAZYETL_ASSIGN_OR_RETURN(Table run, FinishState(&state_));
    Table out;
    for (size_t c = 0; c + 2 < run.num_columns(); ++c) {
      LAZYETL_RETURN_NOT_OK(
          out.AddColumn(run.column_name(c), std::move(run.column(c))));
    }
    return out;
  }

  // Zero-row output table carrying the schema (group columns + finished
  // aggregate columns) for the empty-batch contract.
  Result<Table> EmptyOutput() const {
    Table out;
    for (size_t i = 0; i < value_types_.size(); ++i) {
      LAZYETL_RETURN_NOT_OK(
          out.AddColumn(output_names_[i], Column(value_types_[i])));
    }
    for (size_t a = 0; a < acc_protos_.size(); ++a) {
      LAZYETL_ASSIGN_OR_RETURN(Column c, acc_protos_[a].Finish(0));
      LAZYETL_RETURN_NOT_OK(
          out.AddColumn("#agg" + std::to_string(a), std::move(c)));
    }
    return out;
  }

  const std::vector<Accumulator>& acc_protos() const { return acc_protos_; }

  uint64_t resident_bytes() const { return res_consume_.held(); }

  void ReleaseReservations() { res_consume_.ReleaseAll(); }

  // Ends the consume phase: processes spilled partitions (if any) and
  // returns a merger streaming <group cols, agg cols> rows ordered by
  // first occurrence (trailing tag columns are stripped by the merger).
  Result<RunMerger> Finish() {
    RunMerger merger;
    merger.Configure(2, {true, true}, ctx_->spill);
    if (!spilled_) {
      if (init_ && !state_.keys.empty()) {
        LAZYETL_ASSIGN_OR_RETURN(Table run, FinishState(&state_));
        merger.AddMemoryRun(std::move(run));
        // res_consume_ keeps the run's bytes charged until Close.
      }
      return merger;
    }
    LAZYETL_RETURN_NOT_OK(SpillState());  // flush the remainder
    res_consume_.ReleaseAll();
    LAZYETL_ASSIGN_OR_RETURN(
        std::vector<std::string> paths,
        SealPartitionWriters(&writers_, op_, ctx_->spill));
    for (const std::string& path : paths) {
      if (path.empty()) continue;
      LAZYETL_RETURN_NOT_OK(ProcessPartition(path, 1, &merger));
    }
    return merger;
  }

 private:
  struct State {
    std::unordered_map<std::string, uint32_t> index;  // legacy row path
    PackedKeyIndex vindex;                            // vectorized path
    std::vector<std::string> keys;  // aligned with group ids
    std::vector<Column> values;
    std::vector<Accumulator> accs;
    std::vector<int64_t> tseq;
    std::vector<int64_t> trow;
  };

  void InitFromPartial(const GroupedPartial& partial) {
    if (output_names_.empty()) output_names_ = partial.names;
    for (const Column& c : partial.values) {
      value_types_.push_back(c.type());
    }
    for (const Accumulator& acc : partial.accs) {
      Accumulator proto = acc;
      proto.Resize(0);
      acc_protos_.push_back(std::move(proto));
    }
    ResetState(&state_);
    init_ = true;
  }

  void ResetState(State* st) const {
    st->index.clear();
    st->vindex.Clear();
    st->keys.clear();
    st->values.clear();
    for (DataType t : value_types_) st->values.emplace_back(t);
    st->accs = acc_protos_;
    st->tseq.clear();
    st->trow.clear();
  }

  // Schema of partition spill rows: group values, arrival tag, serialised
  // accumulator state.
  TableSchema PartitionSchema() const {
    TableSchema schema;
    for (size_t i = 0; i < value_types_.size(); ++i) {
      schema.push_back({"#g" + std::to_string(i), value_types_[i]});
    }
    schema.push_back({"#tseq", DataType::kInt64});
    schema.push_back({"#trow", DataType::kInt64});
    for (size_t a = 0; a < acc_protos_.size(); ++a) {
      acc_protos_[a].AppendStateSchema(&schema,
                                       "#s" + std::to_string(a) + "_");
    }
    return schema;
  }

  // Drains `st` into one <group values | tags | acc state> table.
  Table AssembleStateTable(State* st) const {
    Table t;
    for (size_t i = 0; i < st->values.size(); ++i) {
      Status s = t.AddColumn("#g" + std::to_string(i),
                             std::move(st->values[i]));
      (void)s;  // equal-length by construction
    }
    Status s = t.AddColumn("#tseq", Column::FromInt64(std::move(st->tseq)));
    (void)s;
    s = t.AddColumn("#trow", Column::FromInt64(std::move(st->trow)));
    (void)s;
    for (size_t a = 0; a < st->accs.size(); ++a) {
      std::vector<Column> cols;
      st->accs[a].ExportState(&cols);
      for (size_t k = 0; k < cols.size(); ++k) {
        s = t.AddColumn("#s" + std::to_string(a) + "_" + std::to_string(k),
                        std::move(cols[k]));
        (void)s;
      }
    }
    return t;
  }

  // Radix-partitions `st` (by key hash at `level`) into the writers.
  Status SpillStateInto(State* st, size_t level, SpillWriterVec* writers) {
    if (st->keys.empty()) return Status::OK();
    std::vector<SelectionVector> sel(kSpillFanout);
    for (size_t g = 0; g < st->keys.size(); ++g) {
      sel[SpillPartitionOf(st->keys[g], level, kSpillFanout)].push_back(
          static_cast<uint32_t>(g));
    }
    Table full = AssembleStateTable(st);
    for (size_t p = 0; p < kSpillFanout; ++p) {
      if (sel[p].empty()) continue;
      Table part = full.Gather(sel[p]);
      const size_t step = std::max<size_t>(1, ctx_->batch_rows);
      for (size_t off = 0; off < part.num_rows(); off += step) {
        LAZYETL_RETURN_NOT_OK((*writers)[p]->Append(
            part.Slice(off, std::min(step, part.num_rows() - off))));
      }
    }
    return Status::OK();
  }

  // Spills the consume-phase state into the level-0 partition files.
  // Caller holds mu_ (or is past the parallel phase).
  Status SpillState() {
    spilled_ = true;
    if (writers_.empty()) {
      LAZYETL_ASSIGN_OR_RETURN(
          writers_,
          OpenPartitionWriters(kSpillFanout, PartitionSchema(), ctx_->spill));
    }
    LAZYETL_RETURN_NOT_OK(SpillStateInto(&state_, 0, &writers_));
    ResetState(&state_);
    res_consume_.ReleaseAll();
    return Status::OK();
  }

  // Routes the partition-file rows of `frame` to sub-partitions at
  // `level` without merging (used after a recursive overflow).
  Status RouteFrame(const Table& frame, size_t level, SpillWriterVec* subs) {
    std::vector<size_t> key_cols(value_types_.size());
    std::iota(key_cols.begin(), key_cols.end(), 0);
    return PartitionTableToWriters(frame, key_cols, level, ctx_->batch_rows,
                                   subs);
  }

  // Merges one partition file into a fresh state, recursing (with a
  // re-seeded hash) when it still overflows the budget, and turns the
  // merged groups into a tag-sorted run for the final merge.
  Status ProcessPartition(const std::string& path, size_t level,
                          RunMerger* merger) {
    op_->RecordPartitions(1);
    State st;
    ResetState(&st);
    common::MemoryReservation res(ctx_->budget);
    storage::SpillReader reader;
    LAZYETL_RETURN_NOT_OK(reader.Open(path));
    const size_t ngroup = value_types_.size();
    const size_t state_col0 = ngroup + 2;
    bool routing = false;
    SpillWriterVec subs;
    Table frame;
    std::string key;
    while (true) {
      LAZYETL_ASSIGN_OR_RETURN(bool more, reader.Next(&frame));
      if (!more) break;
      if (routing) {
        LAZYETL_RETURN_NOT_OK(RouteFrame(frame, level, &subs));
        continue;
      }
      uint64_t added = 0;
      const size_t frame_rows = frame.num_rows();
      if (VectorAggEnabled() && frame_rows > 0) {
        // Columnar partition merge: batch group ids over the frame's group
        // columns, fold the per-row arrival tags down to a per-local-group
        // minimum (min is associative — same result as the per-row
        // compare-and-update), resolve each local group to its state slot
        // once, then merge the serialized accumulator state with one
        // columnar pass per aggregate.
        colptrs_.clear();
        for (size_t i = 0; i < ngroup; ++i) colptrs_.push_back(&frame.column(i));
        const size_t ngroups =
            builder_.Build(colptrs_.data(), ngroup, 0, frame_rows);
        const uint32_t* gids = builder_.gids.data();
        const int64_t* tseq = frame.column(ngroup).int64_data().data();
        const int64_t* trow = frame.column(ngroup + 1).int64_data().data();
        min_seq_.assign(ngroups, std::numeric_limits<int64_t>::max());
        min_row_.assign(ngroups, std::numeric_limits<int64_t>::max());
        for (size_t row = 0; row < frame_rows; ++row) {
          uint32_t g = gids[row];
          if (std::pair(tseq[row], trow[row]) <
              std::pair(min_seq_[g], min_row_[g])) {
            min_seq_[g] = tseq[row];
            min_row_[g] = trow[row];
          }
        }
        group_dst_.resize(ngroups);
        for (size_t g = 0; g < ngroups; ++g) {
          const size_t row = builder_.first_row[g];
          key.clear();
          for (size_t i = 0; i < ngroup; ++i) {
            PackRowKey(frame.column(i), row, &key);
          }
          bool inserted;
          size_t dst = st.vindex.FindOrInsert(key, st.keys, &inserted);
          if (inserted) {
            added += 2 * key.size() + kPerGroupOverhead + 24 * st.accs.size();
            st.keys.push_back(key);
            for (size_t i = 0; i < ngroup; ++i) {
              LAZYETL_RETURN_NOT_OK(
                  st.values[i].AppendRange(frame.column(i), row, 1));
            }
            st.tseq.push_back(min_seq_[g]);
            st.trow.push_back(min_row_[g]);
            for (auto& acc : st.accs) acc.Resize(st.keys.size());
          } else if (std::pair(min_seq_[g], min_row_[g]) <
                     std::pair(st.tseq[dst], st.trow[dst])) {
            st.tseq[dst] = min_seq_[g];
            st.trow[dst] = min_row_[g];
          }
          group_dst_[g] = static_cast<uint32_t>(dst);
        }
        row_dst_.resize(frame_rows);
        for (size_t row = 0; row < frame_rows; ++row) {
          row_dst_[row] = group_dst_[gids[row]];
        }
        size_t col = state_col0;
        for (auto& acc : st.accs) {
          acc.MergeStateBulk(frame, col, row_dst_.data(), frame_rows);
          col += acc.NumStateCols();
        }
      } else {
        for (size_t row = 0; row < frame_rows; ++row) {
          key.clear();
          for (size_t i = 0; i < ngroup; ++i) {
            PackRowKey(frame.column(i), row, &key);
          }
          auto [it, inserted] =
              st.index.emplace(key, static_cast<uint32_t>(st.keys.size()));
          size_t dst = it->second;
          int64_t tseq = frame.column(ngroup).int64_data()[row];
          int64_t trow = frame.column(ngroup + 1).int64_data()[row];
          if (inserted) {
            added += 2 * key.size() + kPerGroupOverhead + 24 * st.accs.size();
            st.keys.push_back(key);
            for (size_t i = 0; i < ngroup; ++i) {
              LAZYETL_RETURN_NOT_OK(
                  st.values[i].AppendRange(frame.column(i), row, 1));
            }
            st.tseq.push_back(tseq);
            st.trow.push_back(trow);
            for (auto& acc : st.accs) acc.Resize(st.keys.size());
          } else if (std::pair(tseq, trow) <
                     std::pair(st.tseq[dst], st.trow[dst])) {
            st.tseq[dst] = tseq;
            st.trow[dst] = trow;
          }
          size_t col = state_col0;
          for (auto& acc : st.accs) {
            acc.MergeStateRow(frame, col, row, dst);
            col += acc.NumStateCols();
          }
        }
      }
      if (!res.Grow(added) && level < kMaxSpillLevel &&
          st.keys.size() >= kMinSplitGroups) {
        op_->RecordStateBytes(res.held() + added);
        // Recursive overflow: push the merged state down one level and
        // route the rest of this partition directly to the sub-files.
        LAZYETL_ASSIGN_OR_RETURN(
            subs, OpenPartitionWriters(kSpillFanout, PartitionSchema(),
                                       ctx_->spill));
        LAZYETL_RETURN_NOT_OK(SpillStateInto(&st, level, &subs));
        ResetState(&st);
        res.ReleaseAll();
        routing = true;
      }
      // At kMaxSpillLevel (or below kMinSplitGroups) the partition
      // finishes in memory even over budget: splitting cannot help.
    }
    ctx_->spill->RemoveFile(path);
    if (routing) {
      LAZYETL_ASSIGN_OR_RETURN(
          std::vector<std::string> sub_paths,
          SealPartitionWriters(&subs, op_, ctx_->spill));
      for (const std::string& sub_path : sub_paths) {
        if (sub_path.empty()) continue;
        LAZYETL_RETURN_NOT_OK(ProcessPartition(sub_path, level + 1, merger));
      }
      return Status::OK();
    }
    op_->RecordStateBytes(res.held());
    if (st.keys.empty()) return Status::OK();
    // Finished partitions always go to disk: retaining them in memory
    // would eat the budget headroom every later partition needs to merge,
    // cascading into needless recursion.
    LAZYETL_ASSIGN_OR_RETURN(Table run, FinishState(&st));
    std::string run_path;
    LAZYETL_ASSIGN_OR_RETURN(
        SpillWriteStats stats,
        WriteRunFile(run, ctx_->batch_rows, ctx_->spill, &run_path));
    op_->RecordSpill(stats.logical_bytes, 1);
    op_->RecordSpillIO(stats.compressed_bytes, stats.write_wait_seconds);
    return merger->AddSpilledRun(run_path);
  }

  // Converts merged groups into an output run <group cols | #agg cols |
  // tags>, sorted by first-occurrence tag.
  Result<Table> FinishState(State* st) const {
    const size_t n = st->keys.size();
    Table out;
    for (size_t i = 0; i < st->values.size(); ++i) {
      LAZYETL_RETURN_NOT_OK(
          out.AddColumn(output_names_[i], std::move(st->values[i])));
    }
    for (size_t a = 0; a < st->accs.size(); ++a) {
      LAZYETL_ASSIGN_OR_RETURN(Column c, st->accs[a].Finish(n));
      LAZYETL_RETURN_NOT_OK(
          out.AddColumn("#agg" + std::to_string(a), std::move(c)));
    }
    LAZYETL_RETURN_NOT_OK(
        out.AddColumn("#tseq", Column::FromInt64(std::move(st->tseq))));
    LAZYETL_RETURN_NOT_OK(
        out.AddColumn("#trow", Column::FromInt64(std::move(st->trow))));
    return SortRunRows(out, 2, {true, true});
  }

  BatchOperator* op_ = nullptr;
  ExecContext* ctx_ = nullptr;
  std::vector<std::string> output_names_;
  std::vector<DataType> value_types_;
  std::vector<Accumulator> acc_protos_;
  std::mutex mu_;
  bool init_ = false;
  bool spilled_ = false;
  State state_;
  SpillWriterVec writers_;
  uint64_t total_groups_ = 0;
  common::MemoryReservation res_consume_;  // live grouped state
  std::vector<uint32_t> merge_dst_;        // MergePartial dst scratch (mu_)
  // ProcessPartition scratch (post-drain, single-threaded; recursion
  // reuses it sequentially — never concurrently).
  kernels::GroupIdBuilder builder_;
  std::vector<const Column*> colptrs_;
  std::vector<int64_t> min_seq_;
  std::vector<int64_t> min_row_;
  std::vector<uint32_t> group_dst_;
  std::vector<uint32_t> row_dst_;
};

// Streaming hash aggregation: per input batch, evaluate the grouping and
// argument expressions, map rows to group ids, and fold them into the
// accumulators. Holds O(groups) state — the input is never materialised.
//
// Parallel consume: workers pre-aggregate each batch into a local
// partial (per-batch hash table + accumulators) and the partials are
// merged into the global state in seq order — group output order equals
// the serial first-occurrence order, and the merge result is independent
// of which worker processed which batch.
class AggregateOperator : public BatchOperator {
 public:
  AggregateOperator(const PlanNode* node, ExecContext* ctx,
                    BatchOperatorPtr child)
      : BatchOperator("Aggregate"), node_(node), ctx_(ctx) {
    AddChild(std::move(child));
  }

  bool ParallelSafe() const override { return !external_; }

 protected:
  Status OpenImpl() override {
    size_t threads = ctx_->query_threads;
    if (ctx_->budgeted()) return OpenBudgeted(threads);

    for (const auto& agg : node_->aggregates) accs_.emplace_back(agg);

    if (threads > 1 && child()->ParallelSafe()) {
      LAZYETL_RETURN_NOT_OK(ConsumeParallel(threads));
    } else {
      bool first_batch = true;
      Batch in;
      while (true) {
        LAZYETL_ASSIGN_OR_RETURN(bool more, child()->Next(&in));
        if (!more) break;
        LAZYETL_RETURN_NOT_OK(ConsumeBatch(in.view, first_batch));
        first_batch = false;
      }
    }

    size_t num_groups = group_count_;
    // Grand aggregate over an empty input still yields one row (COUNT = 0),
    // matching the "no NULLs" simplification documented in the README.
    bool synthetic_empty_group = false;
    if (num_groups == 0 && node_->group_exprs.empty()) {
      num_groups = 1;
      synthetic_empty_group = true;
      for (auto& acc : accs_) acc.Resize(1);
    }

    // Output: group columns (named by expression) + one per aggregate.
    Table out;
    if (!synthetic_empty_group) {
      for (size_t i = 0; i < group_values_.size(); ++i) {
        LAZYETL_RETURN_NOT_OK(out.AddColumn(node_->group_exprs[i]->ToString(),
                                            std::move(group_values_[i])));
      }
    }
    for (size_t i = 0; i < accs_.size(); ++i) {
      LAZYETL_ASSIGN_OR_RETURN(Column c, accs_[i].Finish(num_groups));
      LAZYETL_RETURN_NOT_OK(
          out.AddColumn("#agg" + std::to_string(i), std::move(c)));
    }

    uint64_t state = group_key_bytes_ + out.MemoryBytes();
    for (const auto& acc : accs_) state += acc.StateBytes();
    RecordStateBytes(state);
    emitter_.Reset(std::move(out), ctx_->batch_rows);
    return Status::OK();
  }

  Result<bool> NextImpl(Batch* out) override {
    if (!external_) return emitter_.Next(out, parallel_drive());
    Table merged;
    LAZYETL_ASSIGN_OR_RETURN(bool more,
                             merger_.Next(ctx_->batch_rows, &merged));
    if (!more) {
      if (!emitted_) {
        emitted_ = true;
        LAZYETL_ASSIGN_OR_RETURN(Table empty, helper_.EmptyOutput());
        *out = Batch::Materialized(std::move(empty));
        return true;
      }
      return false;
    }
    *out = Batch::Materialized(std::move(merged));
    out->seq = next_seq_++;
    emitted_ = true;
    return true;
  }

  void CloseImpl() override { helper_.ReleaseReservations(); }

 private:
  // Budget mode: per-batch partials merge into the GroupSpillHelper's
  // governed state (in any arrival order — the first-occurrence tags
  // restore the serial group order at emission), which spills partitions
  // when its reservation fails.
  Status OpenBudgeted(size_t threads) {
    std::vector<std::string> names;
    for (const auto& g : node_->group_exprs) names.push_back(g->ToString());
    helper_.Init(this, ctx_, std::move(names));
    std::vector<GroupScratch> scratches(std::max<size_t>(threads, 1));
    LAZYETL_RETURN_NOT_OK(ParallelDrain(
        child(), threads, [&](size_t worker, Batch&& batch) -> Status {
          GroupedPartial partial;
          LAZYETL_RETURN_NOT_OK(AggregateBatch(batch.view, batch.seq,
                                               &scratches[worker], &partial));
          return helper_.MergePartial(std::move(partial));
        }));

    if (helper_.total_groups() == 0 && node_->group_exprs.empty()) {
      // Grand aggregate over an empty input still yields one row.
      std::vector<Accumulator> accs = helper_.acc_protos();
      Table out;
      for (size_t i = 0; i < accs.size(); ++i) {
        accs[i].Resize(1);
        LAZYETL_ASSIGN_OR_RETURN(Column c, accs[i].Finish(1));
        LAZYETL_RETURN_NOT_OK(
            out.AddColumn("#agg" + std::to_string(i), std::move(c)));
      }
      RecordStateBytes(helper_.resident_bytes());
      emitter_.Reset(std::move(out), ctx_->batch_rows);
      return Status::OK();
    }
    if (!helper_.spilled()) {
      // State fit the budget: keep the parallel emitter path — a budget
      // alone must not serialise queries that never overflow it.
      LAZYETL_ASSIGN_OR_RETURN(Table out, helper_.FinishInMemory());
      RecordStateBytes(helper_.resident_bytes());
      emitter_.Reset(std::move(out), ctx_->batch_rows);
      return Status::OK();
    }
    external_ = true;
    LAZYETL_ASSIGN_OR_RETURN(merger_, helper_.Finish());
    RecordStateBytes(helper_.resident_bytes());
    return Status::OK();
  }

  Status ConsumeParallel(size_t threads) {
    std::mutex mu;
    std::vector<GroupedPartial> partials;
    std::vector<GroupScratch> scratches(std::max<size_t>(threads, 1));
    LAZYETL_RETURN_NOT_OK(ParallelDrain(
        child(), threads, [&](size_t worker, Batch&& batch) -> Status {
          GroupedPartial partial;
          LAZYETL_RETURN_NOT_OK(AggregateBatch(batch.view, batch.seq,
                                               &scratches[worker], &partial));
          std::lock_guard<std::mutex> lock(mu);
          partials.push_back(std::move(partial));
          return Status::OK();
        }));
    std::sort(partials.begin(), partials.end(),
              [](const GroupedPartial& a, const GroupedPartial& b) {
                return a.seq < b.seq;
              });

    bool first = true;
    for (GroupedPartial& partial : partials) {
      if (first) {
        for (const Column& c : partial.values) {
          group_values_.emplace_back(c.type());
        }
        for (size_t i = 0; i < accs_.size(); ++i) {
          accs_[i].Prepare(partial.accs[i].arg_type());
        }
        first = false;
      }
      if (VectorAggEnabled()) {
        // Resolve every local group to its global id first, then merge
        // the accumulator partials in one bulk pass per aggregate. Per
        // destination the merge order is still ascending g — identical to
        // the interleaved per-group merge.
        const size_t n = partial.keys.size();
        merge_dst_.resize(n);
        for (size_t g = 0; g < n; ++g) {
          bool inserted;
          const uint32_t dst = group_vindex_.FindOrInsert(
              partial.keys[g], group_keys_, &inserted);
          if (inserted) {
            group_keys_.push_back(partial.keys[g]);
            ++group_count_;
            group_key_bytes_ += partial.keys[g].size();
            for (size_t i = 0; i < group_values_.size(); ++i) {
              LAZYETL_RETURN_NOT_OK(
                  group_values_[i].AppendRange(partial.values[i], g, 1));
            }
          }
          merge_dst_[g] = dst;
        }
        for (auto& acc : accs_) acc.Resize(group_count_);
        for (size_t i = 0; i < accs_.size(); ++i) {
          accs_[i].MergeGroupsBulk(partial.accs[i], merge_dst_.data(), n);
        }
      } else {
        for (size_t g = 0; g < partial.keys.size(); ++g) {
          auto [it, inserted] = group_index_.emplace(
              partial.keys[g], static_cast<uint32_t>(group_count_));
          if (inserted) {
            ++group_count_;
            group_key_bytes_ += partial.keys[g].size();
            for (size_t i = 0; i < group_values_.size(); ++i) {
              LAZYETL_RETURN_NOT_OK(
                  group_values_[i].AppendRange(partial.values[i], g, 1));
            }
            for (auto& acc : accs_) acc.Resize(group_count_);
          }
          for (size_t i = 0; i < accs_.size(); ++i) {
            accs_[i].MergeGroup(partial.accs[i], g, it->second);
          }
        }
      }
    }
    return Status::OK();
  }

  // Pre-aggregates one batch into `partial`. Pure per-batch work — safe
  // to run concurrently on distinct batches. The hash table and key
  // buffer live in the per-worker scratch and are reused across batches.
  Status AggregateBatch(const TableSlice& view, uint64_t seq,
                        GroupScratch* scratch, GroupedPartial* partial) {
    scratch->group_cols.clear();
    for (const auto& g : node_->group_exprs) {
      LAZYETL_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*g, view));
      scratch->group_cols.push_back(std::move(c));
    }
    scratch->arg_cols.clear();
    for (const auto& a : node_->aggregates) {
      if (a.arg) {
        LAZYETL_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*a.arg, view));
        scratch->arg_cols.push_back(std::move(c));
      } else {
        scratch->arg_cols.emplace_back(DataType::kInt64);  // COUNT(*)
      }
    }
    partial->seq = seq;
    for (const Column& c : scratch->group_cols) {
      partial->values.emplace_back(c.type());
    }
    for (size_t i = 0; i < node_->aggregates.size(); ++i) {
      partial->accs.emplace_back(node_->aggregates[i]);
      partial->accs.back().Prepare(scratch->arg_cols[i].type());
    }

    scratch->index.clear();
    const size_t rows = view.num_rows();
    if (node_->group_exprs.empty() && rows > 0) {
      // Ungrouped: one implicit group, fed whole batches through the
      // vectorized accumulator path.
      partial->keys.emplace_back();
      partial->tag_seq.push_back(static_cast<int64_t>(seq));
      partial->tag_row.push_back(0);
      for (auto& acc : partial->accs) acc.Resize(1);
      for (size_t i = 0; i < partial->accs.size(); ++i) {
        partial->accs[i].UpdateBulk(&scratch->arg_cols[i], rows);
      }
      return Status::OK();
    }
    std::string& key = scratch->key;
    if (VectorAggEnabled()) {
      // Columnar pre-aggregation: batch group ids first (hash + bit-equal
      // probe, in row order — ids and first-occurrence order match the
      // packed-key loop exactly), then pack a key only once per NEW group
      // and fold the whole batch through the grouped accumulator kernels.
      kernels::GroupIdBuilder& b = scratch->builder;
      scratch->colptrs.clear();
      for (const Column& c : scratch->group_cols) {
        scratch->colptrs.push_back(&c);
      }
      const size_t ngroups =
          b.Build(scratch->colptrs.data(), scratch->colptrs.size(), 0, rows);
      for (size_t g = 0; g < ngroups; ++g) {
        const size_t row = b.first_row[g];
        key.clear();
        for (const Column& c : scratch->group_cols) PackRowKey(c, row, &key);
        partial->keys.push_back(key);
        for (size_t i = 0; i < scratch->group_cols.size(); ++i) {
          LAZYETL_RETURN_NOT_OK(partial->values[i].AppendRange(
              scratch->group_cols[i], row, 1));
        }
        partial->tag_seq.push_back(static_cast<int64_t>(seq));
        partial->tag_row.push_back(static_cast<int64_t>(row));
      }
      for (auto& acc : partial->accs) acc.Resize(ngroups);
      for (size_t i = 0; i < partial->accs.size(); ++i) {
        partial->accs[i].UpdateGrouped(b.gids.data(), &scratch->arg_cols[i],
                                       rows);
      }
      RecordGroupsVectorized(rows);
      return Status::OK();
    }
    // Legacy per-row path (LAZYETL_DISABLE_VECTOR_AGG).
    for (size_t row = 0; row < rows; ++row) {
      key.clear();
      for (const Column& c : scratch->group_cols) PackRowKey(c, row, &key);
      auto [it, inserted] = scratch->index.emplace(
          key, static_cast<uint32_t>(partial->keys.size()));
      if (inserted) {
        partial->keys.push_back(key);
        for (size_t i = 0; i < scratch->group_cols.size(); ++i) {
          LAZYETL_RETURN_NOT_OK(partial->values[i].AppendRange(
              scratch->group_cols[i], row, 1));
        }
        partial->tag_seq.push_back(static_cast<int64_t>(seq));
        partial->tag_row.push_back(static_cast<int64_t>(row));
        for (auto& acc : partial->accs) acc.Resize(partial->keys.size());
      }
      for (size_t i = 0; i < partial->accs.size(); ++i) {
        partial->accs[i].Update(it->second, &scratch->arg_cols[i], row);
      }
    }
    return Status::OK();
  }

  Status ConsumeBatch(const TableSlice& view, bool first_batch) {
    // Evaluate grouping expressions and aggregate arguments per batch.
    std::vector<Column> group_cols;
    group_cols.reserve(node_->group_exprs.size());
    for (const auto& g : node_->group_exprs) {
      LAZYETL_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*g, view));
      group_cols.push_back(std::move(c));
    }
    std::vector<Column> arg_cols;
    arg_cols.reserve(node_->aggregates.size());
    for (const auto& a : node_->aggregates) {
      if (a.arg) {
        LAZYETL_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*a.arg, view));
        arg_cols.push_back(std::move(c));
      } else {
        arg_cols.emplace_back(DataType::kInt64);  // COUNT(*): unused
      }
    }
    if (first_batch) {
      for (const Column& c : group_cols) {
        group_values_.emplace_back(c.type());
      }
      for (size_t i = 0; i < accs_.size(); ++i) {
        accs_[i].Prepare(arg_cols[i].type());
      }
    }

    const size_t rows = view.num_rows();
    if (node_->group_exprs.empty()) {
      if (rows > 0) {
        if (group_index_.emplace(std::string(), 0).second) ++group_count_;
        for (auto& acc : accs_) acc.Resize(group_count_);
        for (size_t i = 0; i < accs_.size(); ++i) {
          accs_[i].UpdateBulk(&arg_cols[i], rows);
        }
      }
      return Status::OK();
    }
    std::string key;
    if (VectorAggEnabled()) {
      // Columnar serial consume: batch-local group ids, then one global
      // hash lookup per LOCAL group (not per row) to translate local ids
      // to global ones, then grouped accumulator kernels over the batch.
      scratch_colptrs_.clear();
      for (const Column& c : group_cols) scratch_colptrs_.push_back(&c);
      const size_t ngroups = builder_.Build(
          scratch_colptrs_.data(), scratch_colptrs_.size(), 0, rows);
      global_gids_.resize(ngroups);
      for (size_t g = 0; g < ngroups; ++g) {
        const size_t row = builder_.first_row[g];
        key.clear();
        for (const Column& c : group_cols) PackRowKey(c, row, &key);
        bool inserted;
        const uint32_t dst =
            group_vindex_.FindOrInsert(key, group_keys_, &inserted);
        if (inserted) {
          group_keys_.push_back(key);
          ++group_count_;
          group_key_bytes_ += key.size();
          for (size_t i = 0; i < group_cols.size(); ++i) {
            LAZYETL_RETURN_NOT_OK(
                group_values_[i].AppendRange(group_cols[i], row, 1));
          }
        }
        global_gids_[g] = dst;
      }
      for (auto& acc : accs_) acc.Resize(group_count_);
      for (size_t row = 0; row < rows; ++row) {
        builder_.gids[row] = global_gids_[builder_.gids[row]];
      }
      for (size_t i = 0; i < accs_.size(); ++i) {
        accs_[i].UpdateGrouped(builder_.gids.data(), &arg_cols[i], rows);
      }
      RecordGroupsVectorized(rows);
      return Status::OK();
    }
    // Legacy per-row path (LAZYETL_DISABLE_VECTOR_AGG).
    for (size_t row = 0; row < rows; ++row) {
      key.clear();
      for (const Column& c : group_cols) PackRowKey(c, row, &key);
      auto [it, inserted] = group_index_.emplace(
          key, static_cast<uint32_t>(group_count_));
      if (inserted) {
        ++group_count_;
        group_key_bytes_ += key.size();
        for (size_t i = 0; i < group_cols.size(); ++i) {
          LAZYETL_RETURN_NOT_OK(
              group_values_[i].AppendRange(group_cols[i], row, 1));
        }
        for (auto& acc : accs_) acc.Resize(group_count_);
      }
      size_t group = it->second;
      for (size_t i = 0; i < accs_.size(); ++i) {
        accs_[i].Update(group, &arg_cols[i], row);
      }
    }
    return Status::OK();
  }

  const PlanNode* node_;
  ExecContext* ctx_;
  std::vector<Accumulator> accs_;
  std::unordered_map<std::string, uint32_t> group_index_;  // legacy row path
  // Vectorized path: open-addressing index + gid-ordered key store.
  PackedKeyIndex group_vindex_;
  std::vector<std::string> group_keys_;
  std::vector<uint32_t> merge_dst_;  // per-partial dst scratch
  std::vector<Column> group_values_;  // representative values per group
  size_t group_count_ = 0;
  uint64_t group_key_bytes_ = 0;
  // Serial-consume scratch for the vectorized path (ConsumeBatch only —
  // the parallel paths use the per-worker GroupScratch instead).
  kernels::GroupIdBuilder builder_;
  std::vector<const Column*> scratch_colptrs_;
  std::vector<uint32_t> global_gids_;
  TableEmitter emitter_;
  // Budget-mode state.
  bool external_ = false;
  bool emitted_ = false;
  uint64_t next_seq_ = 0;
  GroupSpillHelper helper_;
  RunMerger merger_;
};

// --------------------------------------------------------------------------
// Distinct
// --------------------------------------------------------------------------

// Streaming duplicate elimination: a global seen-set of packed row keys;
// each batch forwards only its first-occurrence rows. In parallel mode it
// becomes a breaker: workers dedupe each batch locally (pure per-batch
// work) and the survivors are merged against the global set in seq order
// — exactly the serial first-occurrence output.
class DistinctOperator : public BatchOperator {
 public:
  DistinctOperator(ExecContext* ctx, BatchOperatorPtr child)
      : BatchOperator("Distinct"), ctx_(ctx) {
    AddChild(std::move(child));
  }

  // Streaming (serial) mode shares the seen-set across calls; only the
  // materialised parallel mode may be pulled concurrently.
  bool ParallelSafe() const override { return parallel_mode_; }

 protected:
  Status OpenImpl() override {
    size_t threads = ctx_->query_threads;
    if (ctx_->budgeted()) return OpenBudgeted(threads);
    parallel_mode_ = threads > 1 && child()->ParallelSafe();
    if (!parallel_mode_) return Status::OK();

    struct BatchPartial {
      uint64_t seq = 0;
      std::vector<std::string> keys;  // aligned with rows of `rows`
      Table rows;                     // first-in-batch occurrences
    };
    std::mutex mu;
    std::vector<BatchPartial> partials;
    std::vector<GroupScratch> scratches(std::max<size_t>(threads, 1));
    LAZYETL_RETURN_NOT_OK(ParallelDrain(
        child(), threads, [&](size_t worker, Batch&& batch) -> Status {
          BatchPartial partial;
          partial.seq = batch.seq;
          SelectionVector keep;
          const size_t rows = batch.num_rows();
          const size_t ncols = batch.view.num_columns();
          if (VectorAggEnabled() && rows > 0) {
            // Columnar local dedup: batch group ids, keep one row per
            // group. first_row is ascending, so the kept rows and their
            // key order match the per-row scan exactly.
            GroupScratch& scratch = scratches[worker];
            scratch.colptrs.clear();
            for (size_t c = 0; c < ncols; ++c) {
              scratch.colptrs.push_back(&batch.view.column(c));
            }
            const size_t ngroups =
                scratch.builder.Build(scratch.colptrs.data(), ncols,
                                      batch.view.offset(), rows);
            std::string& key = scratch.key;
            for (size_t g = 0; g < ngroups; ++g) {
              const size_t row = scratch.builder.first_row[g];
              key.clear();
              for (size_t c = 0; c < ncols; ++c) {
                PackRowKey(batch.view.column(c), batch.view.offset() + row,
                           &key);
              }
              keep.push_back(static_cast<uint32_t>(row));
              partial.keys.push_back(key);
            }
            RecordGroupsVectorized(rows);
          } else {
            std::unordered_set<std::string> local;
            std::string key;
            for (size_t row = 0; row < rows; ++row) {
              key.clear();
              for (size_t c = 0; c < ncols; ++c) {
                PackRowKey(batch.view.column(c), batch.view.offset() + row,
                           &key);
              }
              if (local.insert(key).second) {
                keep.push_back(static_cast<uint32_t>(row));
                partial.keys.push_back(key);
              }
            }
          }
          partial.rows = batch.view.Gather(keep);
          std::lock_guard<std::mutex> lock(mu);
          partials.push_back(std::move(partial));
          return Status::OK();
        }));
    std::sort(partials.begin(), partials.end(),
              [](const BatchPartial& a, const BatchPartial& b) {
                return a.seq < b.seq;
              });

    Table out;
    bool first = true;
    for (const BatchPartial& partial : partials) {
      if (first) {
        out = partial.rows.Gather({});  // schema
        first = false;
      }
      SelectionVector keep;
      const bool vectorized = VectorAggEnabled();
      for (size_t r = 0; r < partial.keys.size(); ++r) {
        bool inserted;
        if (vectorized) {
          seen_index_.FindOrInsert(partial.keys[r], seen_keys_, &inserted);
          if (inserted) seen_keys_.push_back(partial.keys[r]);
        } else {
          inserted = seen_.insert(partial.keys[r]).second;
        }
        if (inserted) {
          seen_bytes_ += partial.keys[r].size();
          keep.push_back(static_cast<uint32_t>(r));
        }
      }
      if (keep.empty()) continue;
      if (keep.size() == partial.rows.num_rows()) {
        LAZYETL_RETURN_NOT_OK(out.AppendTable(partial.rows));
      } else {
        LAZYETL_RETURN_NOT_OK(out.AppendTable(partial.rows.Gather(keep)));
      }
    }
    RecordStateBytes(seen_bytes_);
    emitter_.Reset(std::move(out), ctx_->batch_rows);
    return Status::OK();
  }

  Result<bool> NextImpl(Batch* out) override {
    if (external_) {
      Table merged;
      LAZYETL_ASSIGN_OR_RETURN(bool more,
                               merger_.Next(ctx_->batch_rows, &merged));
      if (!more) {
        if (!emitted_) {
          emitted_ = true;
          *out = Batch::Materialized(payload_proto_.Gather({}));
          return true;
        }
        return false;
      }
      *out = Batch::Materialized(std::move(merged));
      out->seq = next_seq_++;
      emitted_ = true;
      return true;
    }
    if (parallel_mode_) return emitter_.Next(out, parallel_drive());
    while (true) {
      Batch in;
      LAZYETL_ASSIGN_OR_RETURN(bool more, child()->Next(&in));
      if (!more) {
        if (!emitted_) {
          emitted_ = true;
          *out = Batch::Materialized(std::move(empty_));
          return true;
        }
        return false;
      }
      SelectionVector keep;
      std::string key;
      const size_t in_rows = in.num_rows();
      const size_t ncols = in.view.num_columns();
      if (VectorAggEnabled() && in_rows > 0) {
        // Columnar streaming dedup: batch-local group ids first, then one
        // seen-set probe per local group. A row that duplicates an earlier
        // row of the same batch can never survive the per-row scan (the
        // earlier row either entered the set or was already in it), so
        // probing only first-occurrence rows yields the identical keep set.
        colptrs_.clear();
        for (size_t c = 0; c < ncols; ++c) {
          colptrs_.push_back(&in.view.column(c));
        }
        const size_t ngroups = builder_.Build(colptrs_.data(), ncols,
                                              in.view.offset(), in_rows);
        for (size_t g = 0; g < ngroups; ++g) {
          const size_t row = builder_.first_row[g];
          key.clear();
          for (size_t c = 0; c < ncols; ++c) {
            PackRowKey(in.view.column(c), in.view.offset() + row, &key);
          }
          bool inserted;
          seen_index_.FindOrInsert(key, seen_keys_, &inserted);
          if (inserted) {
            seen_keys_.push_back(key);
            seen_bytes_ += key.size();
            keep.push_back(static_cast<uint32_t>(row));
          }
        }
        RecordGroupsVectorized(in_rows);
      } else {
        for (size_t row = 0; row < in_rows; ++row) {
          key.clear();
          for (size_t c = 0; c < ncols; ++c) {
            PackRowKey(in.view.column(c), in.view.offset() + row, &key);
          }
          if (seen_.insert(key).second) {
            seen_bytes_ += key.size();
            keep.push_back(static_cast<uint32_t>(row));
          }
        }
      }
      RecordStateBytes(seen_bytes_);
      if (keep.size() == in.num_rows()) {
        *out = std::move(in);
        emitted_ = true;
        return true;
      }
      if (keep.empty()) {
        if (!emitted_) empty_ = in.view.Gather({});
        continue;
      }
      uint64_t seq = in.seq;
      *out = Batch::Materialized(in.view.Gather(keep));
      out->seq = seq;
      emitted_ = true;
      return true;
    }
  }

  void CloseImpl() override { helper_.ReleaseReservations(); }

 private:
  // Budget mode (any thread count): Distinct becomes a breaker whose
  // seen-state is governed by the GroupSpillHelper — every column is a
  // group column, there are no accumulators, and duplicate rows are
  // byte-identical so keeping the minimum-tag representative reproduces
  // the streaming first-occurrence output exactly.
  Status OpenBudgeted(size_t threads) {
    external_ = true;
    helper_.Init(this, ctx_, {});  // names come from the first partial
    std::vector<GroupScratch> scratches(std::max<size_t>(threads, 1));
    std::mutex proto_mu;
    LAZYETL_RETURN_NOT_OK(ParallelDrain(
        child(), threads, [&](size_t worker, Batch&& batch) -> Status {
          GroupScratch& scratch = scratches[worker];
          GroupedPartial partial;
          partial.seq = batch.seq;
          for (size_t c = 0; c < batch.view.num_columns(); ++c) {
            partial.names.push_back(batch.view.column_name(c));
          }
          SelectionVector keep;
          std::string& key = scratch.key;
          const size_t batch_rows = batch.num_rows();
          const size_t ncols = batch.view.num_columns();
          if (VectorAggEnabled() && batch_rows > 0) {
            // Columnar local dedup (see the unbudgeted parallel path).
            scratch.colptrs.clear();
            for (size_t c = 0; c < ncols; ++c) {
              scratch.colptrs.push_back(&batch.view.column(c));
            }
            const size_t ngroups =
                scratch.builder.Build(scratch.colptrs.data(), ncols,
                                      batch.view.offset(), batch_rows);
            for (size_t g = 0; g < ngroups; ++g) {
              const size_t row = scratch.builder.first_row[g];
              key.clear();
              for (size_t c = 0; c < ncols; ++c) {
                PackRowKey(batch.view.column(c), batch.view.offset() + row,
                           &key);
              }
              keep.push_back(static_cast<uint32_t>(row));
              partial.keys.push_back(key);
              partial.tag_seq.push_back(static_cast<int64_t>(batch.seq));
              partial.tag_row.push_back(static_cast<int64_t>(row));
            }
            RecordGroupsVectorized(batch_rows);
          } else {
            scratch.index.clear();
            for (size_t row = 0; row < batch_rows; ++row) {
              key.clear();
              for (size_t c = 0; c < ncols; ++c) {
                PackRowKey(batch.view.column(c), batch.view.offset() + row,
                           &key);
              }
              if (scratch.index
                      .emplace(key,
                               static_cast<uint32_t>(partial.keys.size()))
                      .second) {
                keep.push_back(static_cast<uint32_t>(row));
                partial.keys.push_back(key);
                partial.tag_seq.push_back(static_cast<int64_t>(batch.seq));
                partial.tag_row.push_back(static_cast<int64_t>(row));
              }
            }
          }
          Table rows = batch.view.Gather(keep);
          for (size_t c = 0; c < rows.num_columns(); ++c) {
            partial.values.push_back(std::move(rows.column(c)));
          }
          {
            std::lock_guard<std::mutex> lock(proto_mu);
            if (payload_proto_.num_columns() == 0) {
              payload_proto_ = batch.view.Gather({});
            }
          }
          return helper_.MergePartial(std::move(partial));
        }));
    if (!helper_.spilled()) {
      // Fit within the budget: parallel emitter path, as unbudgeted.
      LAZYETL_ASSIGN_OR_RETURN(Table out, helper_.FinishInMemory());
      RecordStateBytes(helper_.resident_bytes());
      emitter_.Reset(std::move(out), ctx_->batch_rows);
      external_ = false;
      parallel_mode_ = true;
      return Status::OK();
    }
    LAZYETL_ASSIGN_OR_RETURN(merger_, helper_.Finish());
    RecordStateBytes(helper_.resident_bytes());
    return Status::OK();
  }

  ExecContext* ctx_;
  bool parallel_mode_ = false;
  TableEmitter emitter_;
  std::unordered_set<std::string> seen_;  // legacy row path
  // Vectorized path: open-addressing seen-index + its key store.
  PackedKeyIndex seen_index_;
  std::vector<std::string> seen_keys_;
  // Streaming-mode scratch for the vectorized batch-local dedup.
  kernels::GroupIdBuilder builder_;
  std::vector<const Column*> colptrs_;
  uint64_t seen_bytes_ = 0;
  Table empty_;
  bool emitted_ = false;
  // Budget-mode state.
  bool external_ = false;
  uint64_t next_seq_ = 0;
  Table payload_proto_;
  GroupSpillHelper helper_;
  RunMerger merger_;
};

// --------------------------------------------------------------------------
// HashJoin
// --------------------------------------------------------------------------

// Build side (left child) is consumed whole into a hash index — the
// pipeline-breaking half; the probe side (right child) then streams
// through, emitting one joined batch per probe batch. The build index is
// read-only after Open, so probe batches may be processed concurrently
// (parallel probe): each worker probes and assembles its own joined
// batch.
//
// Budget mode: the build side accumulates under a reservation; on
// overflow both sides are radix-partitioned on the join key to spill
// files (Grace join) and the partitions are joined one at a time,
// recursing with a re-seeded hash when a build partition still exceeds
// the budget. Every joined row carries the probe arrival tag (seq, row)
// plus a match counter in build-row order, and the joined fragments are
// re-merged by that tag — the emitted row sequence equals the in-memory
// join's seq-ordered output exactly.
// Build sides below this many rows keep the Bloom pushdown unpublished
// under kAuto (which already limits the pushdown to Grace joins): the
// per-partition probe is cheap against a tiny index, so double-hashing
// every probe row at the scan would not pay for itself.
constexpr size_t kBloomMinBuildRows = 1024;

class HashJoinOperator : public BatchOperator {
 public:
  HashJoinOperator(const PlanNode* node, ExecContext* ctx,
                   BatchOperatorPtr left, BatchOperatorPtr right,
                   std::shared_ptr<JoinBloomSlot> bloom_slot)
      : BatchOperator("HashJoin"),
        node_(node),
        ctx_(ctx),
        bloom_slot_(std::move(bloom_slot)) {
    AddChild(std::move(left));
    AddChild(std::move(right));
  }

  bool ParallelSafe() const override {
    return !grace_ && child(1)->ParallelSafe();
  }

 protected:
  Status OpenImpl() override {
    if (node_->left_keys.size() != node_->right_keys.size() ||
        node_->left_keys.empty()) {
      return Status::InvalidArgument("join key arity mismatch");
    }
    if (ctx_->budgeted()) return OpenBudgeted(ctx_->query_threads);
    Stopwatch build_timer;
    LAZYETL_ASSIGN_OR_RETURN(
        build_table_, DrainToTableOrdered(child(0), ctx_->query_threads));
    kernels::BlockedBloomFilter* bloom = nullptr;
    // An in-memory probe discards non-matching rows in the hash lookup
    // almost as cheaply as the filter would, while the pushdown's
    // scan-side gather copies every surviving morsel — so kAuto reserves
    // the filter for the budgeted path, where dropped probe rows save
    // partition and spill I/O. kForce overrides for tests and benches.
    if (bloom_slot_ != nullptr && VectorJoinEnabled() &&
        ResolveJoinBloomMode() == JoinBloomMode::kForce) {
      bloom_slot_->filter.Init(build_table_.num_rows());
      bloom = &bloom_slot_->filter;
    }
    LAZYETL_RETURN_NOT_OK(build_.Init(&build_table_, node_->left_keys,
                                      ctx_->query_threads, bloom));
    if (build_.vectorized()) {
      RecordJoinVectorized(1);
      // Publish before the first probe batch is pulled; the scan observes
      // `ready` with acquire ordering, so the filled filter is visible.
      if (bloom != nullptr) {
        bloom_slot_->ready.store(true, std::memory_order_release);
      }
    }
    RecordJoinBuildSeconds(build_timer.ElapsedSeconds());
    RecordStateBytes(build_table_.MemoryBytes() + build_.IndexBytes());
    return Status::OK();
  }

  Result<bool> NextImpl(Batch* out) override {
    if (grace_) {
      Table merged;
      LAZYETL_ASSIGN_OR_RETURN(bool more,
                               merger_.Next(ctx_->batch_rows, &merged));
      if (!more) {
        if (!grace_emitted_) {
          grace_emitted_ = true;
          LAZYETL_ASSIGN_OR_RETURN(Table empty, EmptyJoined());
          *out = Batch::Materialized(std::move(empty));
          return true;
        }
        return false;
      }
      *out = Batch::Materialized(std::move(merged));
      out->seq = next_seq_++;
      grace_emitted_ = true;
      return true;
    }
    while (true) {
      Batch in;
      LAZYETL_ASSIGN_OR_RETURN(bool more, child(1)->Next(&in));
      if (!more) {
        if (parallel_drive()) return false;
        if (!emitted_.exchange(true)) {
          std::lock_guard<std::mutex> lock(empty_mu_);
          LAZYETL_ASSIGN_OR_RETURN(Table empty, JoinBatch({}, probe_empty_));
          *out = Batch::Materialized(std::move(empty));
          return true;
        }
        return false;
      }
      SelectionVector build_sel;
      SelectionVector probe_sel;
      Stopwatch probe_timer;
      LAZYETL_RETURN_NOT_OK(
          build_.Probe(in.view, node_->right_keys, &build_sel, &probe_sel));
      RecordJoinProbeSeconds(probe_timer.ElapsedSeconds());
      if (probe_sel.empty()) {
        if (!emitted_.load()) {
          std::lock_guard<std::mutex> lock(empty_mu_);
          if (!empty_captured_) {
            probe_empty_ = in.view.Gather({});
            empty_captured_ = true;
          }
        }
        continue;
      }
      uint64_t seq = in.seq;
      LAZYETL_ASSIGN_OR_RETURN(
          Table joined, JoinBatch(build_sel, in.view.Gather(probe_sel)));
      *out = Batch::Materialized(std::move(joined));
      out->seq = seq;
      emitted_.store(true);
      return true;
    }
  }

  void CloseImpl() override { res_state_.ReleaseAll(); }

 private:
  using WriterVec = SpillWriterVec;

  // Joined output: build-side rows picked by `build_sel` extended with the
  // already-gathered probe-side columns.
  Result<Table> JoinBatch(const SelectionVector& build_sel,
                          const Table& probe_rows) {
    Table out = build_table_.Gather(build_sel);
    for (size_t i = 0; i < probe_rows.num_columns(); ++i) {
      LAZYETL_RETURN_NOT_OK(
          out.AddColumn(probe_rows.column_name(i), probe_rows.column(i)));
    }
    return out;
  }

  // Appends "#tseq"/"#trow" tag columns to a materialised batch.
  static Result<Table> TagRows(Table rows, uint64_t seq) {
    std::vector<int64_t> tseq(rows.num_rows(), static_cast<int64_t>(seq));
    std::vector<int64_t> trow(rows.num_rows());
    std::iota(trow.begin(), trow.end(), 0);
    LAZYETL_RETURN_NOT_OK(
        rows.AddColumn("#tseq", Column::FromInt64(std::move(tseq))));
    LAZYETL_RETURN_NOT_OK(
        rows.AddColumn("#trow", Column::FromInt64(std::move(trow))));
    return rows;
  }

  // Radix-partitions `rows` on the packed key of `key_cols` at `level`
  // into the writers, frame-bounded so replay memory stays bounded even
  // when `rows` is a budget-sized buffer.
  Status PartitionRows(const Table& rows, const std::vector<size_t>& key_cols,
                       size_t level, WriterVec* writers) {
    return PartitionTableToWriters(rows, key_cols, level, ctx_->batch_rows,
                                   writers);
  }

  // Key column indices within a tagged partition table (payload columns
  // precede the two tag columns, so payload indices are stable).
  static Result<std::vector<size_t>> ResolveKeys(
      const Table& table, const std::vector<std::string>& names) {
    std::vector<size_t> cols;
    for (const auto& name : names) {
      LAZYETL_ASSIGN_OR_RETURN(size_t i, table.ColumnIndex(name));
      cols.push_back(i);
    }
    return cols;
  }

  Status OpenBudgeted(size_t threads) {
    // Phase 1: drain the build side under the reservation; on overflow,
    // switch to writing key-partitioned build files.
    std::mutex mu;
    Table build_rows;             // tagged accumulation (payload + tags)
    bool build_init = false;
    WriterVec build_writers;
    std::vector<size_t> build_key_cols;
    res_state_.Reset(ctx_->budget);
    Stopwatch build_timer;

    // Budgeted Bloom fill: every build row passes through the phase-1
    // sink exactly once (fit and Grace alike), so the filter is complete
    // before any probe row is pulled. The key count is unknown upfront;
    // a fixed 64 KiB filter keeps the false-positive rate useful without
    // charging the budget (it is deliberately outside governance — a
    // fixed small cost that *reduces* spill volume).
    bool fill_bloom = bloom_slot_ != nullptr && VectorJoinEnabled();
    uint64_t bloom_rows = 0;
    if (fill_bloom) bloom_slot_->filter.InitBlocks(1024);

    LAZYETL_RETURN_NOT_OK(ParallelDrain(
        child(0), threads, [&](size_t, Batch&& batch) -> Status {
          LAZYETL_ASSIGN_OR_RETURN(Table tagged,
                                   TagRows(batch.view.Materialize(),
                                           batch.seq));
          std::lock_guard<std::mutex> lock(mu);
          if (!build_init) {
            build_rows = tagged.Gather({});
            build_proto_ = batch.view.Gather({});
            LAZYETL_ASSIGN_OR_RETURN(
                build_key_cols, ResolveKeys(build_rows, node_->left_keys));
            build_init = true;
          }
          if (fill_bloom) {
            bloom_rows += tagged.num_rows();
            BloomInsertRows(tagged, build_key_cols);
          }
          if (!build_writers.empty()) {
            return PartitionRows(tagged, build_key_cols, 0, &build_writers);
          }
          uint64_t added = tagged.MemoryBytes();
          LAZYETL_RETURN_NOT_OK(build_rows.AppendTable(tagged));
          if (!res_state_.Grow(added)) {
            RecordStateBytes(res_state_.held() + added);
            LAZYETL_ASSIGN_OR_RETURN(
                build_writers,
                OpenPartitionWriters(kSpillFanout, build_rows.schema(),
                                     ctx_->spill));
            LAZYETL_RETURN_NOT_OK(
                PartitionRows(build_rows, build_key_cols, 0, &build_writers));
            build_rows = build_rows.Gather({});
            res_state_.ReleaseAll();
          }
          return Status::OK();
        }));

    // kForce publishes for fit and Grace alike; kAuto waits until the
    // join actually goes Grace (below) — that is where dropped probe
    // rows save partition and spill I/O, while an in-memory probe
    // discards them just as cheaply without the scan-side gather.
    if (fill_bloom && ResolveJoinBloomMode() == JoinBloomMode::kForce) {
      bloom_slot_->ready.store(true, std::memory_order_release);
    }

    if (build_writers.empty()) {
      // Everything fit: reorder into arrival order and try the in-memory
      // index (reserving roughly its footprint on top of the payload). An
      // index reservation failure still forces Grace.
      Table sorted = SortRunRows(build_rows, 2, {true, true});
      build_rows = Table();
      if (res_state_.Grow(sorted.MemoryBytes())) {
        for (size_t c = 0; c + 2 < sorted.num_columns(); ++c) {
          LAZYETL_RETURN_NOT_OK(build_table_.AddColumn(
              sorted.column_name(c), std::move(sorted.column(c))));
        }
        LAZYETL_RETURN_NOT_OK(build_.Init(&build_table_, node_->left_keys,
                                          ctx_->query_threads));
        if (build_.vectorized()) RecordJoinVectorized(1);
        RecordJoinBuildSeconds(build_timer.ElapsedSeconds());
        RecordStateBytes(build_table_.MemoryBytes() + build_.IndexBytes());
        return Status::OK();
      }
      LAZYETL_ASSIGN_OR_RETURN(
          build_writers,
          OpenPartitionWriters(kSpillFanout, sorted.schema(), ctx_->spill));
      LAZYETL_RETURN_NOT_OK(
          PartitionRows(sorted, build_key_cols, 0, &build_writers));
      res_state_.ReleaseAll();
    }
    grace_ = true;
    if (fill_bloom && bloom_rows >= kBloomMinBuildRows) {
      bloom_slot_->ready.store(true, std::memory_order_release);
    }
    RecordJoinBuildSeconds(build_timer.ElapsedSeconds());
    LAZYETL_ASSIGN_OR_RETURN(
        std::vector<std::string> build_paths,
        SealPartitionWriters(&build_writers, this, ctx_->spill));

    // Phase 2: drain the probe side into matching key partitions.
    WriterVec probe_writers;
    std::vector<size_t> probe_key_cols;
    bool probe_init = false;
    LAZYETL_RETURN_NOT_OK(ParallelDrain(
        child(1), threads, [&](size_t, Batch&& batch) -> Status {
          LAZYETL_ASSIGN_OR_RETURN(Table tagged,
                                   TagRows(batch.view.Materialize(),
                                           batch.seq));
          std::lock_guard<std::mutex> lock(mu);
          if (!probe_init) {
            probe_proto_ = batch.view.Gather({});
            LAZYETL_ASSIGN_OR_RETURN(
                probe_key_cols, ResolveKeys(tagged, node_->right_keys));
            LAZYETL_ASSIGN_OR_RETURN(
                probe_writers,
                OpenPartitionWriters(kSpillFanout, tagged.schema(),
                                     ctx_->spill));
            probe_init = true;
          }
          return PartitionRows(tagged, probe_key_cols, 0, &probe_writers);
        }));
    std::vector<std::string> probe_paths;
    if (probe_init) {
      LAZYETL_ASSIGN_OR_RETURN(
          probe_paths,
          SealPartitionWriters(&probe_writers, this, ctx_->spill));
    } else {
      probe_paths.assign(kSpillFanout, "");
    }

    // Phase 3: join the partition pairs; joined fragments become
    // tag-sorted runs merged at emission.
    merger_.Configure(3, {true, true, true}, ctx_->spill);
    for (size_t p = 0; p < kSpillFanout; ++p) {
      if (build_paths[p].empty() || probe_paths[p].empty()) {
        if (!build_paths[p].empty()) ctx_->spill->RemoveFile(build_paths[p]);
        if (!probe_paths[p].empty()) ctx_->spill->RemoveFile(probe_paths[p]);
        continue;
      }
      if (PartitionPairDisjoint(build_paths[p], probe_paths[p], build_key_cols,
                                probe_key_cols)) {
        ctx_->spill->RemoveFile(build_paths[p]);
        ctx_->spill->RemoveFile(probe_paths[p]);
        continue;
      }
      LAZYETL_RETURN_NOT_OK(JoinPartition(build_paths[p], probe_paths[p], 1));
    }
    return Status::OK();
  }

  // Zone-map pair skip: the run headers carry per-column min/max, so a
  // build/probe pair whose key ranges provably cannot intersect joins to
  // nothing and need not be read at all. Conservative on any error.
  static bool PartitionPairDisjoint(const std::string& build_path,
                                    const std::string& probe_path,
                                    const std::vector<size_t>& build_keys,
                                    const std::vector<size_t>& probe_keys) {
    storage::SpillRunHeader bh;
    storage::SpillRunHeader ph;
    if (!storage::ReadSpillHeader(build_path, &bh).ok()) return false;
    if (!storage::ReadSpillHeader(probe_path, &ph).ok()) return false;
    return SpillRunsDisjoint(bh, ph, build_keys, probe_keys);
  }

  // Joins one build/probe partition pair, recursing when the build side
  // still overflows the budget.
  Status JoinPartition(const std::string& build_path,
                       const std::string& probe_path, size_t level) {
    RecordPartitions(1);
    common::MemoryReservation res(ctx_->budget);

    // Load the build partition (payload + tags).
    storage::SpillReader breader;
    LAZYETL_RETURN_NOT_OK(breader.Open(build_path));
    Table build_part;
    bool overflow = false;
    Table frame;
    while (true) {
      LAZYETL_ASSIGN_OR_RETURN(bool more, breader.Next(&frame));
      if (!more) break;
      if (build_part.num_columns() == 0) build_part = frame.Gather({});
      LAZYETL_RETURN_NOT_OK(build_part.AppendTable(frame));
      if (!res.Grow(frame.MemoryBytes()) && level < kMaxSpillLevel &&
          build_part.num_rows() >= kMinSplitRows) {
        overflow = true;
        break;
      }
    }
    if (overflow) {
      // Sub-partition both sides with the re-seeded hash and recurse.
      LAZYETL_ASSIGN_OR_RETURN(std::vector<size_t> bkeys,
                               ResolveKeys(build_part, node_->left_keys));
      WriterVec sub_build;
      LAZYETL_ASSIGN_OR_RETURN(
          sub_build,
          OpenPartitionWriters(kSpillFanout, build_part.schema(),
                               ctx_->spill));
      LAZYETL_RETURN_NOT_OK(
          PartitionRows(build_part, bkeys, level, &sub_build));
      build_part = Table();
      res.ReleaseAll();
      while (true) {
        LAZYETL_ASSIGN_OR_RETURN(bool more, breader.Next(&frame));
        if (!more) break;
        LAZYETL_RETURN_NOT_OK(PartitionRows(frame, bkeys, level, &sub_build));
      }
      ctx_->spill->RemoveFile(build_path);
      LAZYETL_ASSIGN_OR_RETURN(
          std::vector<std::string> sub_build_paths,
          SealPartitionWriters(&sub_build, this, ctx_->spill));

      storage::SpillReader preader;
      LAZYETL_RETURN_NOT_OK(preader.Open(probe_path));
      WriterVec sub_probe;
      std::vector<size_t> pkeys;
      bool pkeys_init = false;
      while (true) {
        LAZYETL_ASSIGN_OR_RETURN(bool more, preader.Next(&frame));
        if (!more) break;
        if (!pkeys_init) {
          LAZYETL_ASSIGN_OR_RETURN(pkeys,
                                   ResolveKeys(frame, node_->right_keys));
          LAZYETL_ASSIGN_OR_RETURN(
              sub_probe,
              OpenPartitionWriters(kSpillFanout, frame.schema(),
                                   ctx_->spill));
          pkeys_init = true;
        }
        LAZYETL_RETURN_NOT_OK(PartitionRows(frame, pkeys, level, &sub_probe));
      }
      ctx_->spill->RemoveFile(probe_path);
      std::vector<std::string> sub_probe_paths;
      if (pkeys_init) {
        LAZYETL_ASSIGN_OR_RETURN(
            sub_probe_paths,
            SealPartitionWriters(&sub_probe, this, ctx_->spill));
      } else {
        sub_probe_paths.assign(kSpillFanout, "");
      }
      for (size_t p = 0; p < kSpillFanout; ++p) {
        if (sub_build_paths[p].empty() || sub_probe_paths[p].empty()) {
          if (!sub_build_paths[p].empty()) {
            ctx_->spill->RemoveFile(sub_build_paths[p]);
          }
          if (!sub_probe_paths[p].empty()) {
            ctx_->spill->RemoveFile(sub_probe_paths[p]);
          }
          continue;
        }
        if (PartitionPairDisjoint(sub_build_paths[p], sub_probe_paths[p],
                                  bkeys, pkeys)) {
          ctx_->spill->RemoveFile(sub_build_paths[p]);
          ctx_->spill->RemoveFile(sub_probe_paths[p]);
          continue;
        }
        LAZYETL_RETURN_NOT_OK(
            JoinPartition(sub_build_paths[p], sub_probe_paths[p], level + 1));
      }
      return Status::OK();
    }
    ctx_->spill->RemoveFile(build_path);

    // Build the partition index over arrival-ordered payload rows, so
    // per-probe-row matches enumerate in global build-row order.
    Stopwatch part_build_timer;
    Table bt;
    if (build_part.num_rows() > 0) {
      Table sorted = SortRunRows(build_part, 2, {true, true});
      for (size_t c = 0; c + 2 < sorted.num_columns(); ++c) {
        LAZYETL_RETURN_NOT_OK(
            bt.AddColumn(sorted.column_name(c), std::move(sorted.column(c))));
      }
    }
    JoinBuild jb;
    LAZYETL_RETURN_NOT_OK(
        jb.Init(&bt, node_->left_keys, ctx_->query_threads));
    if (jb.vectorized()) RecordJoinVectorized(1);
    RecordJoinBuildSeconds(part_build_timer.ElapsedSeconds());

    // Stream the probe partition, spooling tagged joined fragments.
    storage::SpillReader preader;
    LAZYETL_RETURN_NOT_OK(preader.Open(probe_path));
    Table out_buf;
    common::MemoryReservation out_res(ctx_->budget);
    double probe_seconds = 0;
    while (true) {
      LAZYETL_ASSIGN_OR_RETURN(bool more, preader.Next(&frame));
      if (!more) break;
      if (frame.num_rows() == 0) continue;
      TableSlice probe = frame.Slice(0, frame.num_rows());
      SelectionVector build_sel;
      SelectionVector probe_sel;
      Stopwatch probe_timer;
      LAZYETL_RETURN_NOT_OK(
          jb.Probe(probe, node_->right_keys, &build_sel, &probe_sel));
      probe_seconds += probe_timer.ElapsedSeconds();
      if (probe_sel.empty()) continue;

      // Joined fragment: build payload + probe payload + (#tseq, #trow,
      // #tk) with the match counter in build-row order per probe row.
      Table joined = bt.Gather(build_sel);
      const size_t probe_payload = frame.num_columns() - 2;
      for (size_t c = 0; c < probe_payload; ++c) {
        LAZYETL_RETURN_NOT_OK(joined.AddColumn(
            frame.column_name(c), frame.column(c).Gather(probe_sel)));
      }
      LAZYETL_RETURN_NOT_OK(joined.AddColumn(
          "#tseq", frame.column(probe_payload).Gather(probe_sel)));
      LAZYETL_RETURN_NOT_OK(joined.AddColumn(
          "#trow", frame.column(probe_payload + 1).Gather(probe_sel)));
      std::vector<int64_t> tk(probe_sel.size());
      for (size_t i = 0; i < probe_sel.size(); ++i) {
        tk[i] = (i > 0 && probe_sel[i] == probe_sel[i - 1]) ? tk[i - 1] + 1
                                                            : 0;
      }
      LAZYETL_RETURN_NOT_OK(
          joined.AddColumn("#tk", Column::FromInt64(std::move(tk))));

      if (out_buf.num_columns() == 0) out_buf = joined.Gather({});
      uint64_t added = joined.MemoryBytes();
      LAZYETL_RETURN_NOT_OK(out_buf.AppendTable(joined));
      if (!out_res.Grow(added)) {
        Table run = SortRunRows(out_buf, 3, {true, true, true});
        std::string run_path;
        LAZYETL_ASSIGN_OR_RETURN(
            SpillWriteStats stats,
            WriteRunFile(run, ctx_->batch_rows, ctx_->spill, &run_path));
        RecordSpill(stats.logical_bytes, 1);
        RecordSpillIO(stats.compressed_bytes, stats.write_wait_seconds);
        LAZYETL_RETURN_NOT_OK(merger_.AddSpilledRun(run_path));
        out_buf = out_buf.Gather({});
        out_res.ReleaseAll();
      }
    }
    ctx_->spill->RemoveFile(probe_path);
    RecordJoinProbeSeconds(probe_seconds);
    RecordStateBytes(res.held() + out_res.held());
    res.ReleaseAll();

    if (out_buf.num_rows() > 0) {
      // Always to disk: in-memory runs would eat the headroom the later
      // partitions need (see GroupSpillHelper::ProcessPartition).
      Table run = SortRunRows(out_buf, 3, {true, true, true});
      std::string run_path;
      LAZYETL_ASSIGN_OR_RETURN(
          SpillWriteStats stats,
          WriteRunFile(run, ctx_->batch_rows, ctx_->spill, &run_path));
      RecordSpill(stats.logical_bytes, 1);
      RecordSpillIO(stats.compressed_bytes, stats.write_wait_seconds);
      LAZYETL_RETURN_NOT_OK(merger_.AddSpilledRun(run_path));
    }
    return Status::OK();
  }

  // Budgeted Bloom fill: folds the key columns of one tagged build batch
  // into per-row hashes (same seed/fold as JoinBuild and BloomProbe) and
  // inserts them. Called under the phase-1 mutex; per-batch dictionaries
  // hash once via a pointer-keyed cache (the shared_ptr pins the address).
  void BloomInsertRows(const Table& tagged,
                       const std::vector<size_t>& key_cols) {
    const size_t n = tagged.num_rows();
    if (n == 0) return;
    std::vector<uint64_t> hashes(n, kernels::kGroupHashSeed);
    for (size_t i : key_cols) {
      const Column& c = tagged.column(i);
      const uint64_t* dh = nullptr;
      if (c.type() == DataType::kString && c.dict_encoded()) {
        std::vector<uint64_t>* cached = nullptr;
        for (auto& e : bloom_dict_hashes_) {
          if (e.first.get() == c.dictionary().get()) {
            cached = &e.second;
            break;
          }
        }
        if (cached == nullptr) {
          bloom_dict_hashes_.emplace_back(c.dictionary(),
                                          std::vector<uint64_t>());
          cached = &bloom_dict_hashes_.back().second;
          kernels::HashDictionary(*c.dictionary(), cached);
        }
        dh = cached->data();
      }
      kernels::JoinHashColumn(c, 0, n, dh, hashes.data());
    }
    for (uint64_t h : hashes) bloom_slot_->filter.Insert(h);
  }

  // Zero-row joined table: build payload schema + probe payload schema.
  Result<Table> EmptyJoined() const {
    Table out;
    for (size_t c = 0; c < build_proto_.num_columns(); ++c) {
      LAZYETL_RETURN_NOT_OK(out.AddColumn(
          build_proto_.column_name(c),
          Column(build_proto_.schema()[c].type)));
    }
    for (size_t c = 0; c < probe_proto_.num_columns(); ++c) {
      LAZYETL_RETURN_NOT_OK(out.AddColumn(
          probe_proto_.column_name(c),
          Column(probe_proto_.schema()[c].type)));
    }
    return out;
  }

  const PlanNode* node_;
  ExecContext* ctx_;
  std::shared_ptr<JoinBloomSlot> bloom_slot_;
  std::vector<std::pair<std::shared_ptr<const std::vector<std::string>>,
                        std::vector<uint64_t>>>
      bloom_dict_hashes_;
  Table build_table_;
  JoinBuild build_;
  std::mutex empty_mu_;
  Table probe_empty_;
  bool empty_captured_ = false;
  std::atomic<bool> emitted_{false};
  // Budget-mode state.
  bool grace_ = false;
  bool grace_emitted_ = false;
  uint64_t next_seq_ = 0;
  Table build_proto_;
  Table probe_proto_;
  RunMerger merger_;
  common::MemoryReservation res_state_;
};

}  // namespace

Result<BatchOperatorPtr> MakeSortOperator(const PlanNode& node,
                                          ExecContext* ctx,
                                          BatchOperatorPtr child) {
  return BatchOperatorPtr(
      std::make_unique<SortOperator>(&node, ctx, std::move(child)));
}

Result<BatchOperatorPtr> MakeTopKOperator(const PlanNode& node,
                                          ExecContext* ctx,
                                          BatchOperatorPtr child) {
  return BatchOperatorPtr(
      std::make_unique<TopKOperator>(&node, ctx, std::move(child)));
}

Result<BatchOperatorPtr> MakeAggregateOperator(const PlanNode& node,
                                               ExecContext* ctx,
                                               BatchOperatorPtr child) {
  return BatchOperatorPtr(
      std::make_unique<AggregateOperator>(&node, ctx, std::move(child)));
}

Result<BatchOperatorPtr> MakeDistinctOperator(const PlanNode& node,
                                              ExecContext* ctx,
                                              BatchOperatorPtr child) {
  (void)node;
  return BatchOperatorPtr(
      std::make_unique<DistinctOperator>(ctx, std::move(child)));
}

Result<BatchOperatorPtr> MakeHashJoinOperator(
    const PlanNode& node, ExecContext* ctx, BatchOperatorPtr left,
    BatchOperatorPtr right, std::shared_ptr<JoinBloomSlot> bloom) {
  return BatchOperatorPtr(std::make_unique<HashJoinOperator>(
      &node, ctx, std::move(left), std::move(right), std::move(bloom)));
}

}  // namespace lazyetl::engine
