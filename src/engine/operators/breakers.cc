// Pipeline breakers: Sort, Aggregate, Distinct, HashJoin. These consume
// their input batch-at-a-time and re-emit batches. Aggregate and Distinct
// accumulate incrementally (state is O(groups) / O(distinct keys), never
// the whole input); Sort and the HashJoin build side must materialise and
// record that state in the operator counters.

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "engine/expr_eval.h"
#include "engine/operators/internal.h"
#include "engine/operators/join_build.h"
#include "engine/operators/operator.h"

namespace lazyetl::engine {

using sql::BoundAggregate;
using storage::Column;
using storage::DataType;
using storage::SelectionVector;
using storage::Table;
using storage::TableSlice;

namespace {

bool IsIntLike(DataType t) {
  return t == DataType::kBool || t == DataType::kInt32 ||
         t == DataType::kInt64 || t == DataType::kTimestamp;
}

// --------------------------------------------------------------------------
// Sort
// --------------------------------------------------------------------------

class SortOperator : public BatchOperator {
 public:
  SortOperator(const PlanNode* node, ExecContext* ctx, BatchOperatorPtr child)
      : BatchOperator("Sort"), node_(node), ctx_(ctx) {
    AddChild(std::move(child));
  }

 protected:
  Status OpenImpl() override {
    LAZYETL_ASSIGN_OR_RETURN(Table input, DrainToTable(child()));
    RecordStateBytes(input.MemoryBytes());

    std::vector<Column> sort_cols;
    for (const auto& item : node_->order_items) {
      LAZYETL_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*item.expr, input));
      sort_cols.push_back(std::move(c));
    }
    std::vector<uint32_t> idx(input.num_rows());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<uint32_t>(i);

    auto compare_rows = [&](uint32_t a, uint32_t b) {
      for (size_t k = 0; k < sort_cols.size(); ++k) {
        const Column& c = sort_cols[k];
        bool asc = node_->order_items[k].ascending;
        int cmp = 0;
        if (c.type() == DataType::kString) {
          cmp = c.string_data()[a].compare(c.string_data()[b]);
        } else if (c.type() == DataType::kDouble) {
          double va = c.double_data()[a];
          double vb = c.double_data()[b];
          cmp = va < vb ? -1 : (va > vb ? 1 : 0);
        } else if (IsIntLike(c.type())) {
          // Exact integer path: doubles corrupt wide int64/timestamps.
          int64_t ia, ib;
          if (c.type() == DataType::kInt32) {
            ia = c.int32_data()[a];
            ib = c.int32_data()[b];
          } else if (c.type() == DataType::kBool) {
            ia = c.bool_data()[a];
            ib = c.bool_data()[b];
          } else {
            ia = c.int64_data()[a];
            ib = c.int64_data()[b];
          }
          cmp = ia < ib ? -1 : (ia > ib ? 1 : 0);
        } else {
          double va = c.NumericAt(a);
          double vb = c.NumericAt(b);
          cmp = va < vb ? -1 : (va > vb ? 1 : 0);
        }
        if (cmp != 0) return asc ? cmp < 0 : cmp > 0;
      }
      return false;
    };
    std::stable_sort(idx.begin(), idx.end(), compare_rows);
    emitter_.Reset(input.Gather(idx), ctx_->batch_rows);
    return Status::OK();
  }

  Result<bool> NextImpl(Batch* out) override { return emitter_.Next(out); }

 private:
  const PlanNode* node_;
  ExecContext* ctx_;
  TableEmitter emitter_;
};

// --------------------------------------------------------------------------
// Aggregate
// --------------------------------------------------------------------------

// Typed accumulator for one aggregate across all groups; grows as new
// groups appear, fed batch-local argument columns.
class Accumulator {
 public:
  explicit Accumulator(const BoundAggregate& agg)
      : function_(agg.function), out_type_(agg.type) {}

  // Called once, with the argument type observed on the first batch.
  void Prepare(DataType arg_type) { arg_type_ = arg_type; }

  void Resize(size_t groups) {
    count_.resize(groups, 0);
    if (function_ == "AVG" || function_ == "SUM") {
      dsum_.resize(groups, 0.0);
      isum_.resize(groups, 0);
    } else if (function_ == "MIN" || function_ == "MAX") {
      if (arg_type_ == DataType::kString) {
        sext_.resize(groups);
      } else if (arg_type_ == DataType::kDouble) {
        dext_.resize(groups, 0.0);
      } else {
        iext_.resize(groups, 0);
      }
    }
  }

  void Update(size_t group, const Column* arg, size_t row) {
    bool first = count_[group] == 0;
    ++count_[group];
    if (function_ == "COUNT") return;
    if (function_ == "AVG" || function_ == "SUM") {
      if (arg->type() == DataType::kDouble) {
        dsum_[group] += arg->double_data()[row];
      } else {
        int64_t v = IntValueAt(*arg, row);
        isum_[group] += v;
        dsum_[group] += static_cast<double>(v);
      }
      return;
    }
    // MIN / MAX
    bool want_min = function_ == "MIN";
    if (arg_type_ == DataType::kString) {
      const std::string& v = arg->string_data()[row];
      if (first || (want_min ? v < sext_[group] : v > sext_[group])) {
        sext_[group] = v;
      }
    } else if (arg_type_ == DataType::kDouble) {
      double v = arg->double_data()[row];
      if (first || (want_min ? v < dext_[group] : v > dext_[group])) {
        dext_[group] = v;
      }
    } else {
      int64_t v = IntValueAt(*arg, row);
      if (first || (want_min ? v < iext_[group] : v > iext_[group])) {
        iext_[group] = v;
      }
    }
  }

  Result<Column> Finish(size_t groups) const {
    if (function_ == "COUNT") {
      std::vector<int64_t> out(groups);
      for (size_t g = 0; g < groups; ++g) out[g] = count_[g];
      return Column::FromInt64(std::move(out));
    }
    if (function_ == "AVG") {
      std::vector<double> out(groups);
      for (size_t g = 0; g < groups; ++g) {
        out[g] = count_[g] ? dsum_[g] / static_cast<double>(count_[g]) : 0.0;
      }
      return Column::FromDouble(std::move(out));
    }
    if (function_ == "SUM") {
      if (out_type_ == DataType::kDouble) {
        return Column::FromDouble(dsum_);
      }
      return Column::FromInt64(isum_);
    }
    // MIN / MAX: emit in the argument's type.
    if (arg_type_ == DataType::kString) return Column::FromString(sext_);
    if (arg_type_ == DataType::kDouble) return Column::FromDouble(dext_);
    switch (out_type_) {
      case DataType::kInt32: {
        std::vector<int32_t> out(groups);
        for (size_t g = 0; g < groups; ++g) {
          out[g] = static_cast<int32_t>(iext_[g]);
        }
        return Column::FromInt32(std::move(out));
      }
      case DataType::kTimestamp:
        return Column::FromTimestamp(iext_);
      default:
        return Column::FromInt64(iext_);
    }
  }

  uint64_t StateBytes() const {
    uint64_t bytes = count_.size() * sizeof(int64_t) +
                     dsum_.size() * sizeof(double) +
                     isum_.size() * sizeof(int64_t) +
                     iext_.size() * sizeof(int64_t) +
                     dext_.size() * sizeof(double);
    for (const auto& s : sext_) bytes += sizeof(std::string) + s.capacity();
    return bytes;
  }

 private:
  static int64_t IntValueAt(const Column& arg, size_t row) {
    switch (arg.type()) {
      case DataType::kInt32:
        return arg.int32_data()[row];
      case DataType::kBool:
        return arg.bool_data()[row];
      default:
        return arg.int64_data()[row];
    }
  }

  std::string function_;
  DataType out_type_;
  DataType arg_type_ = DataType::kInt64;
  std::vector<int64_t> count_;
  std::vector<double> dsum_;
  std::vector<int64_t> isum_;
  std::vector<int64_t> iext_;
  std::vector<double> dext_;
  std::vector<std::string> sext_;
};

// Streaming hash aggregation: per input batch, evaluate the grouping and
// argument expressions, map rows to group ids, and fold them into the
// accumulators. Holds O(groups) state — the input is never materialised.
class AggregateOperator : public BatchOperator {
 public:
  AggregateOperator(const PlanNode* node, ExecContext* ctx,
                    BatchOperatorPtr child)
      : BatchOperator("Aggregate"), node_(node), ctx_(ctx) {
    AddChild(std::move(child));
  }

 protected:
  Status OpenImpl() override {
    for (const auto& agg : node_->aggregates) accs_.emplace_back(agg);

    bool first_batch = true;
    Batch in;
    while (true) {
      LAZYETL_ASSIGN_OR_RETURN(bool more, child()->Next(&in));
      if (!more) break;
      LAZYETL_RETURN_NOT_OK(ConsumeBatch(in.view, first_batch));
      first_batch = false;
    }

    size_t num_groups = group_count_;
    // Grand aggregate over an empty input still yields one row (COUNT = 0),
    // matching the "no NULLs" simplification documented in the README.
    bool synthetic_empty_group = false;
    if (num_groups == 0 && node_->group_exprs.empty()) {
      num_groups = 1;
      synthetic_empty_group = true;
      for (auto& acc : accs_) acc.Resize(1);
    }

    // Output: group columns (named by expression) + one per aggregate.
    Table out;
    if (!synthetic_empty_group) {
      for (size_t i = 0; i < group_values_.size(); ++i) {
        LAZYETL_RETURN_NOT_OK(out.AddColumn(node_->group_exprs[i]->ToString(),
                                            std::move(group_values_[i])));
      }
    }
    for (size_t i = 0; i < accs_.size(); ++i) {
      LAZYETL_ASSIGN_OR_RETURN(Column c, accs_[i].Finish(num_groups));
      LAZYETL_RETURN_NOT_OK(
          out.AddColumn("#agg" + std::to_string(i), std::move(c)));
    }

    uint64_t state = group_key_bytes_ + out.MemoryBytes();
    for (const auto& acc : accs_) state += acc.StateBytes();
    RecordStateBytes(state);
    emitter_.Reset(std::move(out), ctx_->batch_rows);
    return Status::OK();
  }

  Result<bool> NextImpl(Batch* out) override { return emitter_.Next(out); }

 private:
  Status ConsumeBatch(const TableSlice& view, bool first_batch) {
    // Evaluate grouping expressions and aggregate arguments per batch.
    std::vector<Column> group_cols;
    group_cols.reserve(node_->group_exprs.size());
    for (const auto& g : node_->group_exprs) {
      LAZYETL_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*g, view));
      group_cols.push_back(std::move(c));
    }
    std::vector<Column> arg_cols;
    arg_cols.reserve(node_->aggregates.size());
    for (const auto& a : node_->aggregates) {
      if (a.arg) {
        LAZYETL_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*a.arg, view));
        arg_cols.push_back(std::move(c));
      } else {
        arg_cols.emplace_back(DataType::kInt64);  // COUNT(*): unused
      }
    }
    if (first_batch) {
      for (const Column& c : group_cols) {
        group_values_.emplace_back(c.type());
      }
      for (size_t i = 0; i < accs_.size(); ++i) {
        accs_[i].Prepare(arg_cols[i].type());
      }
    }

    const size_t rows = view.num_rows();
    std::string key;
    for (size_t row = 0; row < rows; ++row) {
      key.clear();
      for (const Column& c : group_cols) PackRowKey(c, row, &key);
      auto [it, inserted] = group_index_.emplace(
          key, static_cast<uint32_t>(group_count_));
      if (inserted) {
        ++group_count_;
        group_key_bytes_ += key.size();
        for (size_t i = 0; i < group_cols.size(); ++i) {
          LAZYETL_RETURN_NOT_OK(
              group_values_[i].AppendRange(group_cols[i], row, 1));
        }
        for (auto& acc : accs_) acc.Resize(group_count_);
      }
      size_t group = it->second;
      for (size_t i = 0; i < accs_.size(); ++i) {
        accs_[i].Update(group, &arg_cols[i], row);
      }
    }
    return Status::OK();
  }

  const PlanNode* node_;
  ExecContext* ctx_;
  std::vector<Accumulator> accs_;
  std::unordered_map<std::string, uint32_t> group_index_;
  std::vector<Column> group_values_;  // representative values per group
  size_t group_count_ = 0;
  uint64_t group_key_bytes_ = 0;
  TableEmitter emitter_;
};

// --------------------------------------------------------------------------
// Distinct
// --------------------------------------------------------------------------

// Streaming duplicate elimination: a global seen-set of packed row keys;
// each batch forwards only its first-occurrence rows.
class DistinctOperator : public BatchOperator {
 public:
  explicit DistinctOperator(BatchOperatorPtr child)
      : BatchOperator("Distinct") {
    AddChild(std::move(child));
  }

 protected:
  Result<bool> NextImpl(Batch* out) override {
    while (true) {
      Batch in;
      LAZYETL_ASSIGN_OR_RETURN(bool more, child()->Next(&in));
      if (!more) {
        if (!emitted_) {
          emitted_ = true;
          *out = Batch::Materialized(std::move(empty_));
          return true;
        }
        return false;
      }
      SelectionVector keep;
      std::string key;
      for (size_t row = 0; row < in.num_rows(); ++row) {
        key.clear();
        for (size_t c = 0; c < in.view.num_columns(); ++c) {
          PackRowKey(in.view.column(c), in.view.offset() + row, &key);
        }
        if (seen_.insert(key).second) {
          seen_bytes_ += key.size();
          keep.push_back(static_cast<uint32_t>(row));
        }
      }
      RecordStateBytes(seen_bytes_);
      if (keep.size() == in.num_rows()) {
        *out = std::move(in);
        emitted_ = true;
        return true;
      }
      if (keep.empty()) {
        if (!emitted_) empty_ = in.view.Gather({});
        continue;
      }
      *out = Batch::Materialized(in.view.Gather(keep));
      emitted_ = true;
      return true;
    }
  }

 private:
  std::unordered_set<std::string> seen_;
  uint64_t seen_bytes_ = 0;
  Table empty_;
  bool emitted_ = false;
};

// --------------------------------------------------------------------------
// HashJoin
// --------------------------------------------------------------------------

// Build side (left child) is consumed whole into a hash index — the
// pipeline-breaking half; the probe side (right child) then streams
// through, emitting one joined batch per probe batch.
class HashJoinOperator : public BatchOperator {
 public:
  HashJoinOperator(const PlanNode* node, BatchOperatorPtr left,
                   BatchOperatorPtr right)
      : BatchOperator("HashJoin"), node_(node) {
    AddChild(std::move(left));
    AddChild(std::move(right));
  }

 protected:
  Status OpenImpl() override {
    if (node_->left_keys.size() != node_->right_keys.size() ||
        node_->left_keys.empty()) {
      return Status::InvalidArgument("join key arity mismatch");
    }
    LAZYETL_ASSIGN_OR_RETURN(build_table_, DrainToTable(child(0)));
    LAZYETL_RETURN_NOT_OK(build_.Init(&build_table_, node_->left_keys));
    RecordStateBytes(build_table_.MemoryBytes() + build_.IndexBytes());
    return Status::OK();
  }

  Result<bool> NextImpl(Batch* out) override {
    while (true) {
      Batch in;
      LAZYETL_ASSIGN_OR_RETURN(bool more, child(1)->Next(&in));
      if (!more) {
        if (!emitted_) {
          emitted_ = true;
          LAZYETL_ASSIGN_OR_RETURN(Table empty, JoinBatch({}, probe_empty_));
          *out = Batch::Materialized(std::move(empty));
          return true;
        }
        return false;
      }
      SelectionVector build_sel;
      SelectionVector probe_sel;
      LAZYETL_RETURN_NOT_OK(
          build_.Probe(in.view, node_->right_keys, &build_sel, &probe_sel));
      if (probe_sel.empty()) {
        if (!emitted_) probe_empty_ = in.view.Gather({});
        continue;
      }
      LAZYETL_ASSIGN_OR_RETURN(
          Table joined, JoinBatch(build_sel, in.view.Gather(probe_sel)));
      *out = Batch::Materialized(std::move(joined));
      emitted_ = true;
      return true;
    }
  }

 private:
  // Joined output: build-side rows picked by `build_sel` extended with the
  // already-gathered probe-side columns.
  Result<Table> JoinBatch(const SelectionVector& build_sel,
                          const Table& probe_rows) {
    Table out = build_table_.Gather(build_sel);
    for (size_t i = 0; i < probe_rows.num_columns(); ++i) {
      LAZYETL_RETURN_NOT_OK(
          out.AddColumn(probe_rows.column_name(i), probe_rows.column(i)));
    }
    return out;
  }

  const PlanNode* node_;
  Table build_table_;
  JoinBuild build_;
  Table probe_empty_;
  bool emitted_ = false;
};

}  // namespace

Result<BatchOperatorPtr> MakeSortOperator(const PlanNode& node,
                                          ExecContext* ctx,
                                          BatchOperatorPtr child) {
  return BatchOperatorPtr(
      std::make_unique<SortOperator>(&node, ctx, std::move(child)));
}

Result<BatchOperatorPtr> MakeAggregateOperator(const PlanNode& node,
                                               ExecContext* ctx,
                                               BatchOperatorPtr child) {
  return BatchOperatorPtr(
      std::make_unique<AggregateOperator>(&node, ctx, std::move(child)));
}

Result<BatchOperatorPtr> MakeDistinctOperator(const PlanNode& node,
                                              ExecContext* ctx,
                                              BatchOperatorPtr child) {
  (void)node;
  (void)ctx;
  return BatchOperatorPtr(
      std::make_unique<DistinctOperator>(std::move(child)));
}

Result<BatchOperatorPtr> MakeHashJoinOperator(const PlanNode& node,
                                              ExecContext* ctx,
                                              BatchOperatorPtr left,
                                              BatchOperatorPtr right) {
  (void)ctx;
  return BatchOperatorPtr(std::make_unique<HashJoinOperator>(
      &node, std::move(left), std::move(right)));
}

}  // namespace lazyetl::engine
