// Pipeline breakers: Sort, TopK, Aggregate, Distinct, HashJoin. These
// consume their input batch-at-a-time and re-emit batches. Aggregate and
// Distinct accumulate incrementally (state is O(groups) / O(distinct
// keys), never the whole input); Sort and the HashJoin build side must
// materialise and record that state in the operator counters; TopK keeps
// only a bounded candidate set (O(k) per worker).
//
// Parallelism (morsel-driven): with query_threads > 1 and a parallel-safe
// child, every breaker consumes its input through ParallelDrain — workers
// fold batches into *partial* states that are merged at the end of the
// consume phase. Merges happen in batch-seq order, so results are
// deterministic and independent of scheduling: integer/string aggregates,
// distinct sets, sort orders and top-k sets are byte-identical to the
// serial path; floating-point sums combine per-batch partials in seq
// order (deterministic, but associated differently than the serial
// row-by-row sum — equal up to rounding).

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "engine/expr_eval.h"
#include "engine/operators/internal.h"
#include "engine/operators/join_build.h"
#include "engine/operators/operator.h"

namespace lazyetl::engine {

using sql::BoundAggregate;
using storage::Column;
using storage::DataType;
using storage::SelectionVector;
using storage::Table;
using storage::TableSlice;

namespace {

bool IsIntLike(DataType t) {
  return t == DataType::kBool || t == DataType::kInt32 ||
         t == DataType::kInt64 || t == DataType::kTimestamp;
}

// Three-way row comparison under the ORDER BY items; `sort_cols` are the
// evaluated key columns. Negative = row a orders first.
int CompareRows(const std::vector<Column>& sort_cols,
                const std::vector<sql::BoundOrderItem>& items, size_t a,
                size_t b) {
  for (size_t k = 0; k < sort_cols.size(); ++k) {
    const Column& c = sort_cols[k];
    int cmp = 0;
    if (c.type() == DataType::kString) {
      cmp = c.string_data()[a].compare(c.string_data()[b]);
      cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    } else if (c.type() == DataType::kDouble) {
      double va = c.double_data()[a];
      double vb = c.double_data()[b];
      cmp = va < vb ? -1 : (va > vb ? 1 : 0);
    } else if (IsIntLike(c.type())) {
      // Exact integer path: doubles corrupt wide int64/timestamps.
      int64_t ia, ib;
      if (c.type() == DataType::kInt32) {
        ia = c.int32_data()[a];
        ib = c.int32_data()[b];
      } else if (c.type() == DataType::kBool) {
        ia = c.bool_data()[a];
        ib = c.bool_data()[b];
      } else {
        ia = c.int64_data()[a];
        ib = c.int64_data()[b];
      }
      cmp = ia < ib ? -1 : (ia > ib ? 1 : 0);
    } else {
      double va = c.NumericAt(a);
      double vb = c.NumericAt(b);
      cmp = va < vb ? -1 : (va > vb ? 1 : 0);
    }
    if (cmp != 0) return items[k].ascending ? cmp : -cmp;
  }
  return 0;
}

// Stable-sorts `idx` with `threads` workers: contiguous chunks are sorted
// concurrently, then merged pairwise (std::inplace_merge is stable and
// every left chunk holds lower original positions than its right chunk,
// so the result is exactly the serial std::stable_sort order).
template <typename Less>
void ParallelStableSort(std::vector<uint32_t>* idx, size_t threads,
                        const Less& less) {
  size_t n = idx->size();
  if (threads <= 1 || n < 4096) {
    std::stable_sort(idx->begin(), idx->end(), less);
    return;
  }
  size_t chunks = std::min(threads, n);
  std::vector<size_t> bounds(chunks + 1);
  for (size_t c = 0; c <= chunks; ++c) bounds[c] = c * n / chunks;

  auto& pool = common::ThreadPool::Shared();
  pool.ParallelFor(chunks, threads, [&](size_t c) {
    std::stable_sort(idx->begin() + bounds[c], idx->begin() + bounds[c + 1],
                     less);
  });
  for (size_t width = 1; width < chunks; width *= 2) {
    std::vector<size_t> starts;
    for (size_t c = 0; c + width < chunks; c += 2 * width) starts.push_back(c);
    pool.ParallelFor(starts.size(), threads, [&](size_t j) {
      size_t c = starts[j];
      std::inplace_merge(idx->begin() + bounds[c],
                         idx->begin() + bounds[c + width],
                         idx->begin() + bounds[std::min(c + 2 * width, chunks)],
                         less);
    });
  }
}

// Gathers the picked rows column-by-column across workers.
Table ParallelGather(const Table& input, const SelectionVector& sel,
                     size_t threads) {
  if (threads <= 1 || input.num_columns() <= 1) return input.Gather(sel);
  std::vector<Column> cols(input.num_columns(), Column(DataType::kInt64));
  common::ThreadPool::Shared().ParallelFor(
      input.num_columns(), threads,
      [&](size_t c) { cols[c] = input.column(c).Gather(sel); });
  Table out;
  for (size_t c = 0; c < input.num_columns(); ++c) {
    Status st = out.AddColumn(input.column_name(c), std::move(cols[c]));
    (void)st;  // same-length columns from the same table cannot mismatch
  }
  return out;
}

// --------------------------------------------------------------------------
// Sort
// --------------------------------------------------------------------------

class SortOperator : public BatchOperator {
 public:
  SortOperator(const PlanNode* node, ExecContext* ctx, BatchOperatorPtr child)
      : BatchOperator("Sort"), node_(node), ctx_(ctx) {
    AddChild(std::move(child));
  }

  bool ParallelSafe() const override { return true; }

 protected:
  Status OpenImpl() override {
    size_t threads = ctx_->query_threads;
    LAZYETL_ASSIGN_OR_RETURN(Table input,
                             DrainToTableOrdered(child(), threads));
    RecordStateBytes(input.MemoryBytes());

    std::vector<Column> sort_cols;
    for (const auto& item : node_->order_items) {
      LAZYETL_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*item.expr, input));
      sort_cols.push_back(std::move(c));
    }
    std::vector<uint32_t> idx(input.num_rows());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<uint32_t>(i);

    auto less = [&](uint32_t a, uint32_t b) {
      return CompareRows(sort_cols, node_->order_items, a, b) < 0;
    };
    ParallelStableSort(&idx, threads, less);
    emitter_.Reset(ParallelGather(input, idx, threads), ctx_->batch_rows);
    return Status::OK();
  }

  Result<bool> NextImpl(Batch* out) override {
    return emitter_.Next(out, parallel_drive());
  }

 private:
  const PlanNode* node_;
  ExecContext* ctx_;
  TableEmitter emitter_;
};

// --------------------------------------------------------------------------
// TopK (fused Sort + Limit)
// --------------------------------------------------------------------------

// Bounded top-k: each worker keeps at most ~2k candidate rows (pruned
// with nth_element under the total order <sort keys, arrival tag>), so a
// Sort directly below a Limit no longer materialises its whole input.
// The arrival tag (batch seq, row) reproduces stable-sort semantics:
// among key-equal rows the earliest input rows win, byte-identical to the
// unfused Sort + Limit at any thread count.
class TopKOperator : public BatchOperator {
 public:
  TopKOperator(const PlanNode* node, ExecContext* ctx, BatchOperatorPtr child)
      : BatchOperator("TopK"), node_(node), ctx_(ctx) {
    AddChild(std::move(child));
  }

  bool ParallelSafe() const override { return true; }

 protected:
  Status OpenImpl() override {
    k_ = static_cast<size_t>(std::max<int64_t>(0, node_->limit));
    size_t threads = ctx_->query_threads;
    std::vector<WorkerState> states(std::max<size_t>(threads, 1));

    LAZYETL_RETURN_NOT_OK(ParallelDrain(
        child(), threads, [&](size_t worker, Batch&& batch) -> Status {
          return Consume(&states[worker], batch);
        }));

    // Merge: every worker's pruned candidates together hold the global
    // top k; one final ordered selection yields the output.
    WorkerState merged;
    for (WorkerState& s : states) {
      if (!s.init) continue;
      Prune(&s);
      if (!merged.init) {
        merged = std::move(s);
        continue;
      }
      LAZYETL_RETURN_NOT_OK(merged.rows.AppendTable(s.rows));
      for (size_t i = 0; i < merged.keys.size(); ++i) {
        LAZYETL_RETURN_NOT_OK(merged.keys[i].AppendColumn(s.keys[i]));
      }
      merged.tags.insert(merged.tags.end(), s.tags.begin(), s.tags.end());
    }
    // ParallelDrain delivers at least one (possibly empty) batch, so some
    // worker always carries the schema.
    if (!merged.init) return Status::Internal("top-k saw no input batch");

    std::vector<uint32_t> idx(merged.rows.num_rows());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<uint32_t>(i);
    std::sort(idx.begin(), idx.end(),
              [&](uint32_t a, uint32_t b) { return Before(merged, a, b); });
    if (idx.size() > k_) idx.resize(k_);

    uint64_t key_bytes = 0;
    for (const Column& c : merged.keys) key_bytes += c.MemoryBytes();
    RecordStateBytes(merged.rows.MemoryBytes() + key_bytes);
    emitter_.Reset(merged.rows.Gather(idx), ctx_->batch_rows);
    return Status::OK();
  }

  Result<bool> NextImpl(Batch* out) override {
    return emitter_.Next(out, parallel_drive());
  }

 private:
  struct WorkerState {
    bool init = false;
    Table rows;                // candidate rows (bounded by Prune)
    std::vector<Column> keys;  // evaluated sort keys, aligned with rows
    std::vector<std::pair<uint64_t, uint32_t>> tags;  // (batch seq, row)
  };

  // Total order: sort keys, then input arrival order.
  bool Before(const WorkerState& s, uint32_t a, uint32_t b) const {
    int cmp = CompareRows(s.keys, node_->order_items, a, b);
    if (cmp != 0) return cmp < 0;
    return s.tags[a] < s.tags[b];
  }

  Status Consume(WorkerState* s, const Batch& batch) {
    std::vector<Column> batch_keys;
    for (const auto& item : node_->order_items) {
      LAZYETL_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*item.expr, batch.view));
      batch_keys.push_back(std::move(c));
    }
    if (!s->init) {
      s->rows = batch.view.Gather({});  // schema
      for (const Column& c : batch_keys) s->keys.emplace_back(c.type());
      s->init = true;
    }
    if (k_ == 0) return Status::OK();
    LAZYETL_RETURN_NOT_OK(s->rows.AppendSlice(batch.view));
    for (size_t i = 0; i < batch_keys.size(); ++i) {
      LAZYETL_RETURN_NOT_OK(s->keys[i].AppendColumn(batch_keys[i]));
    }
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      s->tags.emplace_back(batch.seq, static_cast<uint32_t>(r));
    }
    if (s->rows.num_rows() >= std::max<size_t>(2 * k_, 8192)) Prune(s);
    return Status::OK();
  }

  void Prune(WorkerState* s) {
    size_t n = s->rows.num_rows();
    if (n <= k_) return;
    std::vector<uint32_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = static_cast<uint32_t>(i);
    std::nth_element(idx.begin(), idx.begin() + k_, idx.end(),
                     [&](uint32_t a, uint32_t b) { return Before(*s, a, b); });
    idx.resize(k_);
    s->rows = s->rows.Gather(idx);
    std::vector<std::pair<uint64_t, uint32_t>> tags;
    tags.reserve(idx.size());
    for (uint32_t i : idx) tags.push_back(s->tags[i]);
    for (Column& key : s->keys) key = key.Gather(idx);
    s->tags = std::move(tags);
  }

  const PlanNode* node_;
  ExecContext* ctx_;
  size_t k_ = 0;
  TableEmitter emitter_;
};

// --------------------------------------------------------------------------
// Aggregate
// --------------------------------------------------------------------------

// Typed accumulator for one aggregate across all groups; grows as new
// groups appear, fed batch-local argument columns.
class Accumulator {
 public:
  explicit Accumulator(const BoundAggregate& agg)
      : function_(agg.function), out_type_(agg.type) {}

  // Called once, with the argument type observed on the first batch.
  void Prepare(DataType arg_type) { arg_type_ = arg_type; }

  DataType arg_type() const { return arg_type_; }

  void Resize(size_t groups) {
    count_.resize(groups, 0);
    if (function_ == "AVG" || function_ == "SUM") {
      dsum_.resize(groups, 0.0);
      isum_.resize(groups, 0);
    } else if (function_ == "MIN" || function_ == "MAX") {
      if (arg_type_ == DataType::kString) {
        sext_.resize(groups);
      } else if (arg_type_ == DataType::kDouble) {
        dext_.resize(groups, 0.0);
      } else {
        iext_.resize(groups, 0);
      }
    }
  }

  void Update(size_t group, const Column* arg, size_t row) {
    bool first = count_[group] == 0;
    ++count_[group];
    if (function_ == "COUNT") return;
    if (function_ == "AVG" || function_ == "SUM") {
      if (arg->type() == DataType::kDouble) {
        dsum_[group] += arg->double_data()[row];
      } else {
        int64_t v = IntValueAt(*arg, row);
        isum_[group] += v;
        dsum_[group] += static_cast<double>(v);
      }
      return;
    }
    // MIN / MAX
    bool want_min = function_ == "MIN";
    if (arg_type_ == DataType::kString) {
      const std::string& v = arg->string_data()[row];
      if (first || (want_min ? v < sext_[group] : v > sext_[group])) {
        sext_[group] = v;
      }
    } else if (arg_type_ == DataType::kDouble) {
      double v = arg->double_data()[row];
      if (first || (want_min ? v < dext_[group] : v > dext_[group])) {
        dext_[group] = v;
      }
    } else {
      int64_t v = IntValueAt(*arg, row);
      if (first || (want_min ? v < iext_[group] : v > iext_[group])) {
        iext_[group] = v;
      }
    }
  }

  // Folds group `src_group` of a partial accumulator into this one's
  // `dst_group`. COUNT/SUM/MIN/MAX merge exactly; double sums combine the
  // partials' per-batch sums (callers merge in seq order so the result is
  // deterministic).
  void MergeGroup(const Accumulator& src, size_t src_group,
                  size_t dst_group) {
    int64_t src_count = src.count_[src_group];
    if (src_count == 0) return;
    bool first = count_[dst_group] == 0;
    count_[dst_group] += src_count;
    if (function_ == "COUNT") return;
    if (function_ == "AVG" || function_ == "SUM") {
      dsum_[dst_group] += src.dsum_[src_group];
      isum_[dst_group] += src.isum_[src_group];
      return;
    }
    bool want_min = function_ == "MIN";
    if (arg_type_ == DataType::kString) {
      const std::string& v = src.sext_[src_group];
      if (first || (want_min ? v < sext_[dst_group] : v > sext_[dst_group])) {
        sext_[dst_group] = v;
      }
    } else if (arg_type_ == DataType::kDouble) {
      double v = src.dext_[src_group];
      if (first || (want_min ? v < dext_[dst_group] : v > dext_[dst_group])) {
        dext_[dst_group] = v;
      }
    } else {
      int64_t v = src.iext_[src_group];
      if (first || (want_min ? v < iext_[dst_group] : v > iext_[dst_group])) {
        iext_[dst_group] = v;
      }
    }
  }

  Result<Column> Finish(size_t groups) const {
    if (function_ == "COUNT") {
      std::vector<int64_t> out(groups);
      for (size_t g = 0; g < groups; ++g) out[g] = count_[g];
      return Column::FromInt64(std::move(out));
    }
    if (function_ == "AVG") {
      std::vector<double> out(groups);
      for (size_t g = 0; g < groups; ++g) {
        out[g] = count_[g] ? dsum_[g] / static_cast<double>(count_[g]) : 0.0;
      }
      return Column::FromDouble(std::move(out));
    }
    if (function_ == "SUM") {
      if (out_type_ == DataType::kDouble) {
        return Column::FromDouble(dsum_);
      }
      return Column::FromInt64(isum_);
    }
    // MIN / MAX: emit in the argument's type.
    if (arg_type_ == DataType::kString) return Column::FromString(sext_);
    if (arg_type_ == DataType::kDouble) return Column::FromDouble(dext_);
    switch (out_type_) {
      case DataType::kInt32: {
        std::vector<int32_t> out(groups);
        for (size_t g = 0; g < groups; ++g) {
          out[g] = static_cast<int32_t>(iext_[g]);
        }
        return Column::FromInt32(std::move(out));
      }
      case DataType::kTimestamp:
        return Column::FromTimestamp(iext_);
      default:
        return Column::FromInt64(iext_);
    }
  }

  uint64_t StateBytes() const {
    uint64_t bytes = count_.size() * sizeof(int64_t) +
                     dsum_.size() * sizeof(double) +
                     isum_.size() * sizeof(int64_t) +
                     iext_.size() * sizeof(int64_t) +
                     dext_.size() * sizeof(double);
    for (const auto& s : sext_) bytes += sizeof(std::string) + s.capacity();
    return bytes;
  }

 private:
  static int64_t IntValueAt(const Column& arg, size_t row) {
    switch (arg.type()) {
      case DataType::kInt32:
        return arg.int32_data()[row];
      case DataType::kBool:
        return arg.bool_data()[row];
      default:
        return arg.int64_data()[row];
    }
  }

  std::string function_;
  DataType out_type_;
  DataType arg_type_ = DataType::kInt64;
  std::vector<int64_t> count_;
  std::vector<double> dsum_;
  std::vector<int64_t> isum_;
  std::vector<int64_t> iext_;
  std::vector<double> dext_;
  std::vector<std::string> sext_;
};

// Streaming hash aggregation: per input batch, evaluate the grouping and
// argument expressions, map rows to group ids, and fold them into the
// accumulators. Holds O(groups) state — the input is never materialised.
//
// Parallel consume: workers pre-aggregate each batch into a local
// partial (per-batch hash table + accumulators) and the partials are
// merged into the global state in seq order — group output order equals
// the serial first-occurrence order, and the merge result is independent
// of which worker processed which batch.
class AggregateOperator : public BatchOperator {
 public:
  AggregateOperator(const PlanNode* node, ExecContext* ctx,
                    BatchOperatorPtr child)
      : BatchOperator("Aggregate"), node_(node), ctx_(ctx) {
    AddChild(std::move(child));
  }

  bool ParallelSafe() const override { return true; }

 protected:
  Status OpenImpl() override {
    for (const auto& agg : node_->aggregates) accs_.emplace_back(agg);

    size_t threads = ctx_->query_threads;
    if (threads > 1 && child()->ParallelSafe()) {
      LAZYETL_RETURN_NOT_OK(ConsumeParallel(threads));
    } else {
      bool first_batch = true;
      Batch in;
      while (true) {
        LAZYETL_ASSIGN_OR_RETURN(bool more, child()->Next(&in));
        if (!more) break;
        LAZYETL_RETURN_NOT_OK(ConsumeBatch(in.view, first_batch));
        first_batch = false;
      }
    }

    size_t num_groups = group_count_;
    // Grand aggregate over an empty input still yields one row (COUNT = 0),
    // matching the "no NULLs" simplification documented in the README.
    bool synthetic_empty_group = false;
    if (num_groups == 0 && node_->group_exprs.empty()) {
      num_groups = 1;
      synthetic_empty_group = true;
      for (auto& acc : accs_) acc.Resize(1);
    }

    // Output: group columns (named by expression) + one per aggregate.
    Table out;
    if (!synthetic_empty_group) {
      for (size_t i = 0; i < group_values_.size(); ++i) {
        LAZYETL_RETURN_NOT_OK(out.AddColumn(node_->group_exprs[i]->ToString(),
                                            std::move(group_values_[i])));
      }
    }
    for (size_t i = 0; i < accs_.size(); ++i) {
      LAZYETL_ASSIGN_OR_RETURN(Column c, accs_[i].Finish(num_groups));
      LAZYETL_RETURN_NOT_OK(
          out.AddColumn("#agg" + std::to_string(i), std::move(c)));
    }

    uint64_t state = group_key_bytes_ + out.MemoryBytes();
    for (const auto& acc : accs_) state += acc.StateBytes();
    RecordStateBytes(state);
    emitter_.Reset(std::move(out), ctx_->batch_rows);
    return Status::OK();
  }

  Result<bool> NextImpl(Batch* out) override {
    return emitter_.Next(out, parallel_drive());
  }

 private:
  // One batch pre-aggregated by a worker: local groups in first-occurrence
  // order with their keys, representative values and accumulator state.
  struct BatchPartial {
    uint64_t seq = 0;
    std::vector<std::string> keys;     // one per local group
    std::vector<Column> group_values;  // one row per local group
    std::vector<Accumulator> accs;
  };

  Status ConsumeParallel(size_t threads) {
    std::mutex mu;
    std::vector<BatchPartial> partials;
    LAZYETL_RETURN_NOT_OK(ParallelDrain(
        child(), threads, [&](size_t, Batch&& batch) -> Status {
          BatchPartial partial;
          partial.seq = batch.seq;
          LAZYETL_RETURN_NOT_OK(AggregateBatch(batch.view, &partial));
          std::lock_guard<std::mutex> lock(mu);
          partials.push_back(std::move(partial));
          return Status::OK();
        }));
    std::sort(partials.begin(), partials.end(),
              [](const BatchPartial& a, const BatchPartial& b) {
                return a.seq < b.seq;
              });

    bool first = true;
    for (BatchPartial& partial : partials) {
      if (first) {
        for (const Column& c : partial.group_values) {
          group_values_.emplace_back(c.type());
        }
        for (size_t i = 0; i < accs_.size(); ++i) {
          accs_[i].Prepare(partial.accs[i].arg_type());
        }
        first = false;
      }
      for (size_t g = 0; g < partial.keys.size(); ++g) {
        auto [it, inserted] = group_index_.emplace(
            partial.keys[g], static_cast<uint32_t>(group_count_));
        if (inserted) {
          ++group_count_;
          group_key_bytes_ += partial.keys[g].size();
          for (size_t i = 0; i < group_values_.size(); ++i) {
            LAZYETL_RETURN_NOT_OK(
                group_values_[i].AppendRange(partial.group_values[i], g, 1));
          }
          for (auto& acc : accs_) acc.Resize(group_count_);
        }
        for (size_t i = 0; i < accs_.size(); ++i) {
          accs_[i].MergeGroup(partial.accs[i], g, it->second);
        }
      }
    }
    return Status::OK();
  }

  // Pre-aggregates one batch into `partial`. Pure per-batch work — safe
  // to run concurrently on distinct batches.
  Status AggregateBatch(const TableSlice& view, BatchPartial* partial) {
    std::vector<Column> group_cols;
    group_cols.reserve(node_->group_exprs.size());
    for (const auto& g : node_->group_exprs) {
      LAZYETL_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*g, view));
      group_cols.push_back(std::move(c));
    }
    std::vector<Column> arg_cols;
    arg_cols.reserve(node_->aggregates.size());
    for (const auto& a : node_->aggregates) {
      if (a.arg) {
        LAZYETL_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*a.arg, view));
        arg_cols.push_back(std::move(c));
      } else {
        arg_cols.emplace_back(DataType::kInt64);  // COUNT(*): unused
      }
    }
    for (const Column& c : group_cols) {
      partial->group_values.emplace_back(c.type());
    }
    for (size_t i = 0; i < node_->aggregates.size(); ++i) {
      partial->accs.emplace_back(node_->aggregates[i]);
      partial->accs.back().Prepare(arg_cols[i].type());
    }

    std::unordered_map<std::string, uint32_t> local_index;
    const size_t rows = view.num_rows();
    std::string key;
    for (size_t row = 0; row < rows; ++row) {
      key.clear();
      for (const Column& c : group_cols) PackRowKey(c, row, &key);
      auto [it, inserted] = local_index.emplace(
          key, static_cast<uint32_t>(partial->keys.size()));
      if (inserted) {
        partial->keys.push_back(key);
        for (size_t i = 0; i < group_cols.size(); ++i) {
          LAZYETL_RETURN_NOT_OK(
              partial->group_values[i].AppendRange(group_cols[i], row, 1));
        }
        for (auto& acc : partial->accs) acc.Resize(partial->keys.size());
      }
      for (size_t i = 0; i < partial->accs.size(); ++i) {
        partial->accs[i].Update(it->second, &arg_cols[i], row);
      }
    }
    return Status::OK();
  }

  Status ConsumeBatch(const TableSlice& view, bool first_batch) {
    // Evaluate grouping expressions and aggregate arguments per batch.
    std::vector<Column> group_cols;
    group_cols.reserve(node_->group_exprs.size());
    for (const auto& g : node_->group_exprs) {
      LAZYETL_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*g, view));
      group_cols.push_back(std::move(c));
    }
    std::vector<Column> arg_cols;
    arg_cols.reserve(node_->aggregates.size());
    for (const auto& a : node_->aggregates) {
      if (a.arg) {
        LAZYETL_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*a.arg, view));
        arg_cols.push_back(std::move(c));
      } else {
        arg_cols.emplace_back(DataType::kInt64);  // COUNT(*): unused
      }
    }
    if (first_batch) {
      for (const Column& c : group_cols) {
        group_values_.emplace_back(c.type());
      }
      for (size_t i = 0; i < accs_.size(); ++i) {
        accs_[i].Prepare(arg_cols[i].type());
      }
    }

    const size_t rows = view.num_rows();
    std::string key;
    for (size_t row = 0; row < rows; ++row) {
      key.clear();
      for (const Column& c : group_cols) PackRowKey(c, row, &key);
      auto [it, inserted] = group_index_.emplace(
          key, static_cast<uint32_t>(group_count_));
      if (inserted) {
        ++group_count_;
        group_key_bytes_ += key.size();
        for (size_t i = 0; i < group_cols.size(); ++i) {
          LAZYETL_RETURN_NOT_OK(
              group_values_[i].AppendRange(group_cols[i], row, 1));
        }
        for (auto& acc : accs_) acc.Resize(group_count_);
      }
      size_t group = it->second;
      for (size_t i = 0; i < accs_.size(); ++i) {
        accs_[i].Update(group, &arg_cols[i], row);
      }
    }
    return Status::OK();
  }

  const PlanNode* node_;
  ExecContext* ctx_;
  std::vector<Accumulator> accs_;
  std::unordered_map<std::string, uint32_t> group_index_;
  std::vector<Column> group_values_;  // representative values per group
  size_t group_count_ = 0;
  uint64_t group_key_bytes_ = 0;
  TableEmitter emitter_;
};

// --------------------------------------------------------------------------
// Distinct
// --------------------------------------------------------------------------

// Streaming duplicate elimination: a global seen-set of packed row keys;
// each batch forwards only its first-occurrence rows. In parallel mode it
// becomes a breaker: workers dedupe each batch locally (pure per-batch
// work) and the survivors are merged against the global set in seq order
// — exactly the serial first-occurrence output.
class DistinctOperator : public BatchOperator {
 public:
  DistinctOperator(ExecContext* ctx, BatchOperatorPtr child)
      : BatchOperator("Distinct"), ctx_(ctx) {
    AddChild(std::move(child));
  }

  // Streaming (serial) mode shares the seen-set across calls; only the
  // materialised parallel mode may be pulled concurrently.
  bool ParallelSafe() const override { return parallel_mode_; }

 protected:
  Status OpenImpl() override {
    size_t threads = ctx_->query_threads;
    parallel_mode_ = threads > 1 && child()->ParallelSafe();
    if (!parallel_mode_) return Status::OK();

    struct BatchPartial {
      uint64_t seq = 0;
      std::vector<std::string> keys;  // aligned with rows of `rows`
      Table rows;                     // first-in-batch occurrences
    };
    std::mutex mu;
    std::vector<BatchPartial> partials;
    LAZYETL_RETURN_NOT_OK(ParallelDrain(
        child(), threads, [&](size_t, Batch&& batch) -> Status {
          BatchPartial partial;
          partial.seq = batch.seq;
          std::unordered_set<std::string> local;
          SelectionVector keep;
          std::string key;
          for (size_t row = 0; row < batch.num_rows(); ++row) {
            key.clear();
            for (size_t c = 0; c < batch.view.num_columns(); ++c) {
              PackRowKey(batch.view.column(c), batch.view.offset() + row,
                         &key);
            }
            if (local.insert(key).second) {
              keep.push_back(static_cast<uint32_t>(row));
              partial.keys.push_back(key);
            }
          }
          partial.rows = batch.view.Gather(keep);
          std::lock_guard<std::mutex> lock(mu);
          partials.push_back(std::move(partial));
          return Status::OK();
        }));
    std::sort(partials.begin(), partials.end(),
              [](const BatchPartial& a, const BatchPartial& b) {
                return a.seq < b.seq;
              });

    Table out;
    bool first = true;
    for (const BatchPartial& partial : partials) {
      if (first) {
        out = partial.rows.Gather({});  // schema
        first = false;
      }
      SelectionVector keep;
      for (size_t r = 0; r < partial.keys.size(); ++r) {
        if (seen_.insert(partial.keys[r]).second) {
          seen_bytes_ += partial.keys[r].size();
          keep.push_back(static_cast<uint32_t>(r));
        }
      }
      if (keep.empty()) continue;
      if (keep.size() == partial.rows.num_rows()) {
        LAZYETL_RETURN_NOT_OK(out.AppendTable(partial.rows));
      } else {
        LAZYETL_RETURN_NOT_OK(out.AppendTable(partial.rows.Gather(keep)));
      }
    }
    RecordStateBytes(seen_bytes_);
    emitter_.Reset(std::move(out), ctx_->batch_rows);
    return Status::OK();
  }

  Result<bool> NextImpl(Batch* out) override {
    if (parallel_mode_) return emitter_.Next(out, parallel_drive());
    while (true) {
      Batch in;
      LAZYETL_ASSIGN_OR_RETURN(bool more, child()->Next(&in));
      if (!more) {
        if (!emitted_) {
          emitted_ = true;
          *out = Batch::Materialized(std::move(empty_));
          return true;
        }
        return false;
      }
      SelectionVector keep;
      std::string key;
      for (size_t row = 0; row < in.num_rows(); ++row) {
        key.clear();
        for (size_t c = 0; c < in.view.num_columns(); ++c) {
          PackRowKey(in.view.column(c), in.view.offset() + row, &key);
        }
        if (seen_.insert(key).second) {
          seen_bytes_ += key.size();
          keep.push_back(static_cast<uint32_t>(row));
        }
      }
      RecordStateBytes(seen_bytes_);
      if (keep.size() == in.num_rows()) {
        *out = std::move(in);
        emitted_ = true;
        return true;
      }
      if (keep.empty()) {
        if (!emitted_) empty_ = in.view.Gather({});
        continue;
      }
      uint64_t seq = in.seq;
      *out = Batch::Materialized(in.view.Gather(keep));
      out->seq = seq;
      emitted_ = true;
      return true;
    }
  }

 private:
  ExecContext* ctx_;
  bool parallel_mode_ = false;
  TableEmitter emitter_;
  std::unordered_set<std::string> seen_;
  uint64_t seen_bytes_ = 0;
  Table empty_;
  bool emitted_ = false;
};

// --------------------------------------------------------------------------
// HashJoin
// --------------------------------------------------------------------------

// Build side (left child) is consumed whole into a hash index — the
// pipeline-breaking half; the probe side (right child) then streams
// through, emitting one joined batch per probe batch. The build index is
// read-only after Open, so probe batches may be processed concurrently
// (parallel probe): each worker probes and assembles its own joined
// batch.
class HashJoinOperator : public BatchOperator {
 public:
  HashJoinOperator(const PlanNode* node, ExecContext* ctx,
                   BatchOperatorPtr left, BatchOperatorPtr right)
      : BatchOperator("HashJoin"), node_(node), ctx_(ctx) {
    AddChild(std::move(left));
    AddChild(std::move(right));
  }

  bool ParallelSafe() const override { return child(1)->ParallelSafe(); }

 protected:
  Status OpenImpl() override {
    if (node_->left_keys.size() != node_->right_keys.size() ||
        node_->left_keys.empty()) {
      return Status::InvalidArgument("join key arity mismatch");
    }
    LAZYETL_ASSIGN_OR_RETURN(
        build_table_, DrainToTableOrdered(child(0), ctx_->query_threads));
    LAZYETL_RETURN_NOT_OK(build_.Init(&build_table_, node_->left_keys));
    RecordStateBytes(build_table_.MemoryBytes() + build_.IndexBytes());
    return Status::OK();
  }

  Result<bool> NextImpl(Batch* out) override {
    while (true) {
      Batch in;
      LAZYETL_ASSIGN_OR_RETURN(bool more, child(1)->Next(&in));
      if (!more) {
        if (parallel_drive()) return false;
        if (!emitted_.exchange(true)) {
          std::lock_guard<std::mutex> lock(empty_mu_);
          LAZYETL_ASSIGN_OR_RETURN(Table empty, JoinBatch({}, probe_empty_));
          *out = Batch::Materialized(std::move(empty));
          return true;
        }
        return false;
      }
      SelectionVector build_sel;
      SelectionVector probe_sel;
      LAZYETL_RETURN_NOT_OK(
          build_.Probe(in.view, node_->right_keys, &build_sel, &probe_sel));
      if (probe_sel.empty()) {
        if (!emitted_.load()) {
          std::lock_guard<std::mutex> lock(empty_mu_);
          if (!empty_captured_) {
            probe_empty_ = in.view.Gather({});
            empty_captured_ = true;
          }
        }
        continue;
      }
      uint64_t seq = in.seq;
      LAZYETL_ASSIGN_OR_RETURN(
          Table joined, JoinBatch(build_sel, in.view.Gather(probe_sel)));
      *out = Batch::Materialized(std::move(joined));
      out->seq = seq;
      emitted_.store(true);
      return true;
    }
  }

 private:
  // Joined output: build-side rows picked by `build_sel` extended with the
  // already-gathered probe-side columns.
  Result<Table> JoinBatch(const SelectionVector& build_sel,
                          const Table& probe_rows) {
    Table out = build_table_.Gather(build_sel);
    for (size_t i = 0; i < probe_rows.num_columns(); ++i) {
      LAZYETL_RETURN_NOT_OK(
          out.AddColumn(probe_rows.column_name(i), probe_rows.column(i)));
    }
    return out;
  }

  const PlanNode* node_;
  ExecContext* ctx_;
  Table build_table_;
  JoinBuild build_;
  std::mutex empty_mu_;
  Table probe_empty_;
  bool empty_captured_ = false;
  std::atomic<bool> emitted_{false};
};

}  // namespace

Result<BatchOperatorPtr> MakeSortOperator(const PlanNode& node,
                                          ExecContext* ctx,
                                          BatchOperatorPtr child) {
  return BatchOperatorPtr(
      std::make_unique<SortOperator>(&node, ctx, std::move(child)));
}

Result<BatchOperatorPtr> MakeTopKOperator(const PlanNode& node,
                                          ExecContext* ctx,
                                          BatchOperatorPtr child) {
  return BatchOperatorPtr(
      std::make_unique<TopKOperator>(&node, ctx, std::move(child)));
}

Result<BatchOperatorPtr> MakeAggregateOperator(const PlanNode& node,
                                               ExecContext* ctx,
                                               BatchOperatorPtr child) {
  return BatchOperatorPtr(
      std::make_unique<AggregateOperator>(&node, ctx, std::move(child)));
}

Result<BatchOperatorPtr> MakeDistinctOperator(const PlanNode& node,
                                              ExecContext* ctx,
                                              BatchOperatorPtr child) {
  (void)node;
  return BatchOperatorPtr(
      std::make_unique<DistinctOperator>(ctx, std::move(child)));
}

Result<BatchOperatorPtr> MakeHashJoinOperator(const PlanNode& node,
                                              ExecContext* ctx,
                                              BatchOperatorPtr left,
                                              BatchOperatorPtr right) {
  return BatchOperatorPtr(std::make_unique<HashJoinOperator>(
      &node, ctx, std::move(left), std::move(right)));
}

}  // namespace lazyetl::engine
