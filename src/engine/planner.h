// Planner: turns a bound query into an executable plan and performs the
// compile-time plan reorganisation of §3.1 — splitting the WHERE clause
// into per-table conjuncts and pushing metadata predicates below the joins
// so they run before any actual data is touched.

#ifndef LAZYETL_ENGINE_PLANNER_H_
#define LAZYETL_ENGINE_PLANNER_H_

#include <set>
#include <string>

#include "common/result.h"
#include "engine/plan.h"
#include "sql/binder.h"
#include "storage/catalog.h"

namespace lazyetl::engine {

struct PlannedQuery {
  PlanNodePtr plan;        // the optimized, executable plan
  std::string naive_plan;  // printout of the plan before reorganisation
};

class Planner {
 public:
  // `lazy_tables` names base tables whose contents are not materialised
  // and must be produced by lazy extraction (empty set in eager mode).
  // `infer_metadata_predicates` enables deriving record/file time-range
  // predicates from actual-data predicates via the view's containment
  // rules (disable only for the metadata-granularity ablation).
  Planner(const storage::Catalog* catalog, std::set<std::string> lazy_tables,
          bool infer_metadata_predicates = true)
      : catalog_(catalog),
        lazy_tables_(std::move(lazy_tables)),
        infer_metadata_predicates_(infer_metadata_predicates) {}

  Result<PlannedQuery> Plan(const sql::BoundQuery& query);

 private:
  Result<PlannedQuery> PlanViewQuery(const sql::BoundQuery& query);
  Result<PlannedQuery> PlanBaseTableQuery(const sql::BoundQuery& query);

  // Wraps `input` with Aggregate/Having/Sort/Project/Limit as required.
  // With `fuse` set, an ORDER BY + LIMIT pair (without DISTINCT between
  // them) is rewritten into a single bounded top-k breaker; the naive
  // ("before optimisation") plan passes false to keep the unfused shape.
  Result<PlanNodePtr> FinishPlan(const sql::BoundQuery& query,
                                 PlanNodePtr input, bool fuse = true);

  bool IsLazy(const std::string& table) const {
    return lazy_tables_.count(table) > 0;
  }

  const storage::Catalog* catalog_;
  std::set<std::string> lazy_tables_;
  bool infer_metadata_predicates_ = true;
};

// Estimated peak memory footprint (bytes) of executing `plan`, for
// footprint-aware admission: pipeline-breaker state (Sort, Aggregate,
// Distinct, HashJoin build, TopK) is bounded by its input's materialised
// size, so the walk carries a per-node output-size estimate — catalog
// table bytes at the Scan leaves, `lazy_scan_bytes` (the caller's
// cold-extraction estimate from file metadata) at a LazyDataScan — and
// sums the breaker states plus the result materialisation. A cheap,
// deterministic heuristic upper bound, not a guarantee; the admitted
// query's real usage is still governed by its MemoryBudget.
uint64_t EstimatePlanFootprint(const PlanNode& plan,
                               const storage::Catalog& catalog,
                               uint64_t lazy_scan_bytes);

// Splits a boolean expression into its top-level AND conjuncts (clones).
std::vector<sql::BoundExprPtr> SplitConjuncts(const sql::BoundExpr& expr);

// Re-joins conjuncts with AND (consumes them). Returns null for empty input.
sql::BoundExprPtr CombineConjuncts(std::vector<sql::BoundExprPtr> conjuncts);

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_PLANNER_H_
