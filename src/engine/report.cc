#include "engine/report.h"

#include <cstdio>
#include <sstream>

namespace lazyetl::engine {

std::string ExecutionReport::ToString() const {
  std::ostringstream os;
  os << "query: " << sql << "\n";
  os << "result rows: " << result_rows << "\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "timings: parse %.3fms bind %.3fms plan %.3fms exec %.3fms "
                "(extract %.3fms) total %.3fms",
                parse_seconds * 1e3, bind_seconds * 1e3, plan_seconds * 1e3,
                execute_seconds * 1e3, extract_seconds * 1e3,
                total_seconds * 1e3);
  os << buf << "\n";
  os << "lazy extraction: requested " << records_requested
     << " records | cache hits " << cache_hits << " misses " << cache_misses
     << " stale " << cache_stale << " | files opened " << files_opened
     << " | records extracted " << records_extracted << " ("
     << samples_extracted << " samples, " << bytes_read << " bytes read)\n";
  if (files_hydrated > 0) {
    os << "deferred metadata: hydrated " << files_hydrated << " files\n";
  }
  if (result_cache_hit) {
    os << "result served from recycler cache\n";
  }
  if (column_cache_hits > 0 || column_cache_misses > 0) {
    os << "column cache: hits " << column_cache_hits << " misses "
       << column_cache_misses << "\n";
  }
  if (plan_cache_hit) {
    os << "sub-plan served from plan cache\n";
  }
  if (query_threads > 1) {
    os << "query threads: " << query_threads << "\n";
  }
  if (ticket_id > 0) {
    std::snprintf(buf, sizeof(buf),
                  "scheduler: ticket %llu | queue wait %.3fms | admitted "
                  "budget %llu B",
                  static_cast<unsigned long long>(ticket_id),
                  queue_wait_seconds * 1e3,
                  static_cast<unsigned long long>(admitted_budget_bytes));
    os << buf;
    os << " | priority " << priority;
    if (!client_id.empty()) os << " | client " << client_id;
    if (estimated_footprint_bytes > 0) {
      os << " | estimated footprint " << estimated_footprint_bytes << " B";
    }
    os << "\n";
  }
  if (memory_budget_bytes > 0) {
    os << "memory budget: " << memory_budget_bytes << " B | spilled "
       << spilled_bytes << " B in " << spill_files << " files";
    if (spill_compressed_bytes > 0 && spill_compressed_bytes != spilled_bytes) {
      os << " (" << spill_compressed_bytes << " B on disk)";
    }
    if (spill_write_wait_seconds > 0) {
      std::snprintf(buf, sizeof(buf), " | write wait %.3fms",
                    spill_write_wait_seconds * 1e3);
      os << buf;
    }
    os << "\n";
  }
  if (groups_vectorized > 0) {
    os << "vectorized grouping: " << groups_vectorized << " rows\n";
  }
  if (joins_vectorized > 0) {
    std::snprintf(buf, sizeof(buf),
                  "vectorized join: %llu builds | build %.3fms probe %.3fms",
                  static_cast<unsigned long long>(joins_vectorized),
                  join_build_seconds * 1e3, join_probe_seconds * 1e3);
    os << buf;
    if (probe_rows_bloom_filtered > 0) {
      os << " | bloom skipped " << probe_rows_bloom_filtered << " probe rows";
    }
    os << "\n";
  }
  if (morsel_rows > 0) {
    os << "morsel rows: " << morsel_rows << "\n";
  }
  if (!operator_stats.empty()) {
    os << "--- operator pipeline ---\n";
    for (const auto& op : operator_stats) {
      std::snprintf(buf, sizeof(buf),
                    "%s: %llu batches, %llu rows, peak batch %llu B, "
                    "state %llu B, %.3fms",
                    op.op.c_str(),
                    static_cast<unsigned long long>(op.batches),
                    static_cast<unsigned long long>(op.rows),
                    static_cast<unsigned long long>(op.peak_batch_bytes),
                    static_cast<unsigned long long>(op.state_bytes),
                    op.seconds * 1e3);
      os << buf;
      if (op.spilled_bytes > 0 || op.partitions > 0) {
        std::snprintf(buf, sizeof(buf),
                      " | spilled %llu B, %llu files, %llu partitions",
                      static_cast<unsigned long long>(op.spilled_bytes),
                      static_cast<unsigned long long>(op.spill_files),
                      static_cast<unsigned long long>(op.partitions));
        os << buf;
        if (op.spill_compressed_bytes > 0 &&
            op.spill_compressed_bytes != op.spilled_bytes) {
          std::snprintf(buf, sizeof(buf), " (%llu B on disk)",
                        static_cast<unsigned long long>(
                            op.spill_compressed_bytes));
          os << buf;
        }
      }
      if (op.groups_vectorized > 0) {
        std::snprintf(buf, sizeof(buf), " | vectorized %llu rows",
                      static_cast<unsigned long long>(op.groups_vectorized));
        os << buf;
      }
      if (op.morsels_pruned > 0) {
        std::snprintf(buf, sizeof(buf), " | pruned %llu morsels (%llu rows)",
                      static_cast<unsigned long long>(op.morsels_pruned),
                      static_cast<unsigned long long>(op.rows_pruned));
        os << buf;
      }
      if (op.joins_vectorized > 0) {
        std::snprintf(
            buf, sizeof(buf),
            " | vectorized %llu builds (build %.3fms probe %.3fms)",
            static_cast<unsigned long long>(op.joins_vectorized),
            op.join_build_seconds * 1e3, op.join_probe_seconds * 1e3);
        os << buf;
      }
      if (op.rows_bloom_filtered > 0) {
        std::snprintf(buf, sizeof(buf), " | bloom skipped %llu rows",
                      static_cast<unsigned long long>(op.rows_bloom_filtered));
        os << buf;
      }
      os << "\n";
    }
    os << "peak intermediate bytes: " << peak_intermediate_bytes << "\n";
  }
  if (!plan_before.empty()) {
    os << "--- plan (naive) ---\n" << plan_before;
    os << "--- plan (metadata-first) ---\n" << plan_after;
    if (!plan_runtime.empty()) {
      os << "--- plan (after run-time rewrite) ---\n" << plan_runtime;
    }
  }
  return os.str();
}

}  // namespace lazyetl::engine
