// QueryContext: the per-query execution state that used to live scattered
// across Warehouse and Executor.
//
// One QueryContext exists per Query() call and owns everything that must
// not be shared between concurrent queries: the scheduler admission ticket
// (id + queue-wait stats), the per-query MemoryBudget (chained to the
// process-global budget, so breaker state, recycler admissions and
// extraction windows of all in-flight queries draw from one cap), and the
// SpillManager whose temp directory is labelled with the ticket id. The
// Warehouse threads it from admission through the Executor into the
// operator tree and the lazy-extraction stream; standalone Executor users
// get one constructed on the fly from ExecutorOptions.

#ifndef LAZYETL_ENGINE_QUERY_CONTEXT_H_
#define LAZYETL_ENGINE_QUERY_CONTEXT_H_

#include <memory>
#include <string>
#include <utility>

#include "common/memory_budget.h"
#include "common/query_scheduler.h"
#include "common/spill.h"

namespace lazyetl::engine {

class QueryContext {
 public:
  // Admitted path: budget, ticket id and queue-wait stats come from the
  // scheduler ticket.
  QueryContext(common::QueryTicket ticket, const std::string& spill_dir)
      : ticket_(std::move(ticket)),
        spill_(spill_dir, ticket_.id()) {}

  // Standalone path (no scheduler): a per-query budget of `budget_bytes`
  // (0 = unlimited), chained to the process-global budget.
  QueryContext(uint64_t budget_bytes, const std::string& spill_dir)
      : local_budget_(std::make_unique<common::MemoryBudget>(
            budget_bytes, &common::MemoryBudget::Process())),
        spill_(spill_dir, 0) {}

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  common::MemoryBudget* budget() {
    return local_budget_ != nullptr ? local_budget_.get() : ticket_.budget();
  }
  common::SpillManager* spill() { return &spill_; }

  uint64_t ticket_id() const { return ticket_.id(); }
  double queue_wait_seconds() const { return ticket_.queue_wait_seconds(); }
  // The resolved per-query cap (0 = unlimited).
  uint64_t admitted_budget_bytes() const {
    return local_budget_ != nullptr ? local_budget_->limit()
                                    : ticket_.admitted_budget_bytes();
  }
  // The admission request this query ran under (defaults on the
  // standalone path): priority class, fair-share client id, and the
  // footprint estimate the scheduler admitted on.
  const common::AdmissionRequest& admission() const {
    return ticket_.request();
  }

 private:
  common::QueryTicket ticket_;  // empty on the standalone path
  std::unique_ptr<common::MemoryBudget> local_budget_;
  common::SpillManager spill_;
};

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_QUERY_CONTEXT_H_
