#include "engine/pruning.h"

#include <cstdlib>

namespace lazyetl::engine {

using kernels::CmpOp;
using sql::BinaryOp;
using sql::BoundExpr;
using sql::ExprKind;
using storage::Column;
using storage::ColumnZoneMap;
using storage::DataType;
using storage::Table;
using storage::TableSlice;
using storage::ZoneMapEntry;

bool ComparisonOp(BinaryOp op, CmpOp* out) {
  switch (op) {
    case BinaryOp::kEq: *out = CmpOp::kEq; return true;
    case BinaryOp::kNe: *out = CmpOp::kNe; return true;
    case BinaryOp::kLt: *out = CmpOp::kLt; return true;
    case BinaryOp::kLe: *out = CmpOp::kLe; return true;
    case BinaryOp::kGt: *out = CmpOp::kGt; return true;
    case BinaryOp::kGe: *out = CmpOp::kGe; return true;
    default: return false;
  }
}

CmpOp FlipComparison(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

bool MatchColumnComparison(const BoundExpr& e, ColumnComparison* out) {
  if (e.kind != ExprKind::kBinary || e.children.size() != 2) return false;
  CmpOp op;
  if (!ComparisonOp(e.bin_op, &op)) return false;
  const BoundExpr& a = *e.children[0];
  const BoundExpr& b = *e.children[1];
  if (a.kind == ExprKind::kColumnRef && !a.is_aggregate &&
      b.kind == ExprKind::kLiteral) {
    *out = {&a, &b.literal, op};
    return true;
  }
  if (a.kind == ExprKind::kLiteral && b.kind == ExprKind::kColumnRef &&
      !b.is_aggregate) {
    *out = {&b, &a.literal, FlipComparison(op)};
    return true;
  }
  return false;
}

bool CollectConjunctComparisons(
    const BoundExpr& e, const std::function<bool(const std::string&)>& shadowed,
    std::vector<ColumnComparison>* out) {
  if (e.is_aggregate) return false;
  if (shadowed(e.ToString())) return false;
  if (e.kind == ExprKind::kBinary && e.bin_op == BinaryOp::kAnd) {
    return CollectConjunctComparisons(*e.children[0], shadowed, out) &&
           CollectConjunctComparisons(*e.children[1], shadowed, out);
  }
  ColumnComparison cc;
  if (!MatchColumnComparison(e, &cc)) return false;
  out->push_back(cc);
  return true;
}

namespace {

bool IsIntLike(DataType t) {
  return t == DataType::kBool || t == DataType::kInt32 ||
         t == DataType::kInt64 || t == DataType::kTimestamp;
}

// Base-table column index backing slice column `i`, resolved by pointer
// identity (the scan's slice borrows the table's columns directly).
bool BaseColumnIndex(const TableSlice& base, size_t i, const Table& table,
                     size_t* out) {
  const Column* col = &base.column(i);
  for (size_t j = 0; j < table.num_columns(); ++j) {
    if (&table.column(j) == col) {
      *out = j;
      return true;
    }
  }
  return false;
}

template <typename V>
bool BoundsCanMatch(CmpOp op, V lo, V hi, V v) {
  switch (op) {
    case CmpOp::kEq: return !(v < lo) && !(hi < v);
    case CmpOp::kNe: return !(lo == hi && lo == v);
    case CmpOp::kLt: return lo < v;
    case CmpOp::kLe: return !(v < lo);
    case CmpOp::kGt: return hi > v;
    case CmpOp::kGe: return !(hi < v);
  }
  return true;
}

bool EntryCanMatch(const ScanConstraint& c, const ZoneMapEntry& e,
                   DataType col_type) {
  switch (c.domain) {
    case ScanConstraint::Domain::kString:
      if (!e.has_bounds) return false;
      return BoundsCanMatch<const std::string&>(c.op, e.smin, e.smax, c.sval);
    case ScanConstraint::Domain::kInt:
      if (!e.has_bounds) return false;
      return BoundsCanMatch(c.op, e.imin, e.imax, c.ival);
    case ScanConstraint::Domain::kDouble: {
      // NaN rows satisfy `!=` against any literal, and double bounds skip
      // NaNs — so `!=` never prunes in the double domain. Every other
      // comparison is false for NaN rows, making the NaN-skipping bounds
      // sound (an all-NaN chunk has no bounds and prunes).
      if (c.op == CmpOp::kNe) return true;
      if (!e.has_bounds) return false;
      double lo, hi;
      if (col_type == DataType::kDouble) {
        lo = e.dmin;
        hi = e.dmax;
      } else {
        // int64 -> double is monotonic, so cast-then-bound == bound-then-
        // cast and the check stays exact at the chunk level.
        lo = static_cast<double>(e.imin);
        hi = static_cast<double>(e.imax);
      }
      return BoundsCanMatch(c.op, lo, hi, c.dval);
    }
  }
  return true;
}

}  // namespace

bool PruningEnabled() {
  const char* env = std::getenv("LAZYETL_DISABLE_PRUNING");
  if (env == nullptr) return true;
  std::string v(env);
  return v.empty() || v == "0";
}

std::vector<ScanConstraint> ExtractScanConstraints(const BoundExpr& predicate,
                                                   const TableSlice& base,
                                                   const Table& table) {
  std::vector<ScanConstraint> out;
  if (!table.has_stats()) return out;
  std::vector<ColumnComparison> cmps;
  auto shadowed = [&base](const std::string& name) {
    return base.ColumnIndex(name).ok();
  };
  if (!CollectConjunctComparisons(predicate, shadowed, &cmps) ||
      cmps.empty()) {
    return out;
  }
  for (const auto& cc : cmps) {
    auto bi = base.ColumnIndex(cc.column->display);
    if (!bi.ok()) return {};  // the evaluator would error; never prune
    size_t ti = 0;
    if (!BaseColumnIndex(base, *bi, table, &ti)) return {};
    const ColumnZoneMap* zm = table.zone_map(ti);
    if (zm == nullptr) return {};
    bool col_str = zm->type == DataType::kString;
    bool lit_str = cc.literal->type() == DataType::kString;
    if (col_str != lit_str) return {};  // type error in the evaluator
    ScanConstraint c;
    c.zone_map = zm;
    c.op = cc.op;
    if (col_str) {
      c.domain = ScanConstraint::Domain::kString;
      c.sval = cc.literal->string_value();
    } else if (IsIntLike(zm->type) && IsIntLike(cc.literal->type())) {
      c.domain = ScanConstraint::Domain::kInt;
      c.ival = cc.literal->AsInt64();
    } else {
      c.domain = ScanConstraint::Domain::kDouble;
      c.dval = cc.literal->AsDouble();
    }
    out.push_back(std::move(c));
  }
  return out;
}

bool RangeCanMatch(const std::vector<ScanConstraint>& constraints,
                   size_t start, size_t length) {
  if (constraints.empty() || length == 0) return true;
  size_t first = start / storage::kZoneMapChunkRows;
  size_t last = (start + length - 1) / storage::kZoneMapChunkRows;
  for (size_t ch = first; ch <= last; ++ch) {
    bool all = true;
    for (const auto& c : constraints) {
      if (ch >= c.zone_map->chunks.size()) return true;  // conservative
      if (!EntryCanMatch(c, c.zone_map->chunks[ch], c.zone_map->type)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

uint64_t EstimateFilteredScanBytes(const Table& table, const TableSlice& base,
                                   const BoundExpr& predicate) {
  // Column indices of the scanned subset; unresolvable or stats-less
  // tables fall back to the scanned columns' full footprint.
  std::vector<const ColumnZoneMap*> maps;
  uint64_t full = 0;
  bool have_maps = table.has_stats();
  for (size_t i = 0; i < base.num_columns(); ++i) {
    full += base.column(i).MemoryBytes();
    size_t ti = 0;
    if (have_maps && BaseColumnIndex(base, i, table, &ti)) {
      maps.push_back(table.zone_map(ti));
    } else {
      have_maps = false;
    }
  }
  if (!have_maps || maps.empty()) return full;

  std::vector<ScanConstraint> constraints =
      ExtractScanConstraints(predicate, base, table);
  size_t num_chunks = maps[0]->chunks.size();
  uint64_t total = 0;
  for (size_t ch = 0; ch < num_chunks; ++ch) {
    size_t start = ch * storage::kZoneMapChunkRows;
    size_t rows = maps[0]->chunks[ch].rows;
    if (!RangeCanMatch(constraints, start, rows)) continue;
    for (const ColumnZoneMap* zm : maps) {
      if (ch < zm->chunks.size()) total += zm->chunks[ch].bytes;
    }
  }
  return total;
}

}  // namespace lazyetl::engine
