// Vectorised evaluation of bound expressions over intermediate tables.
//
// Lazy transformations (§3.2) become ordinary relational expressions after
// view expansion; this evaluator executes them column-at-a-time.

#ifndef LAZYETL_ENGINE_EXPR_EVAL_H_
#define LAZYETL_ENGINE_EXPR_EVAL_H_

#include "common/result.h"
#include "sql/binder.h"
#include "storage/table.h"

namespace lazyetl::engine {

// Evaluates `expr` for every row of `input`, producing a column of
// input.num_rows() values.
//
// Resolution rules (in order):
//   1. If the whole expression's display string names a column of `input`
//      (e.g. a grouping expression re-evaluated above an Aggregate, or an
//      aggregate result column "#aggN"), that column is returned directly.
//   2. Column refs are fetched by display name.
//   3. Operators and scalar functions are computed recursively.
Result<storage::Column> EvaluateExpr(const sql::BoundExpr& expr,
                                     const storage::Table& input);

// Evaluates a boolean predicate and returns the selected row ids.
Result<storage::SelectionVector> EvaluatePredicate(const sql::BoundExpr& expr,
                                                   const storage::Table& input);

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_EXPR_EVAL_H_
