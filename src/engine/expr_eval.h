// Vectorised evaluation of bound expressions over intermediate tables and
// batch slices.
//
// Lazy transformations (§3.2) become ordinary relational expressions after
// view expansion; this evaluator executes them column-at-a-time. The batch
// pipeline evaluates the same expressions per-batch over TableSlices:
// column refs materialise only the viewed batch of rows, so evaluation
// cost and memory are bounded by the batch size.

#ifndef LAZYETL_ENGINE_EXPR_EVAL_H_
#define LAZYETL_ENGINE_EXPR_EVAL_H_

#include "common/result.h"
#include "sql/binder.h"
#include "storage/slice.h"
#include "storage/table.h"

namespace lazyetl::engine {

// Evaluates `expr` for every row of `input`, producing a column of
// input.num_rows() values.
//
// Resolution rules (in order):
//   1. If the whole expression's display string names a column of `input`
//      (e.g. a grouping expression re-evaluated above an Aggregate, or an
//      aggregate result column "#aggN"), that column is returned directly.
//   2. Column refs are fetched by display name.
//   3. Operators and scalar functions are computed recursively.
Result<storage::Column> EvaluateExpr(const sql::BoundExpr& expr,
                                     const storage::Table& input);

// Per-batch evaluation: produces a column of input.num_rows() values for
// the viewed rows only.
Result<storage::Column> EvaluateExpr(const sql::BoundExpr& expr,
                                     const storage::TableSlice& input);

// Evaluates a boolean predicate and returns the selected row ids.
Result<storage::SelectionVector> EvaluatePredicate(const sql::BoundExpr& expr,
                                                   const storage::Table& input);

// Per-batch predicate: the returned row ids are slice-relative.
Result<storage::SelectionVector> EvaluatePredicate(
    const sql::BoundExpr& expr, const storage::TableSlice& input);

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_EXPR_EVAL_H_
