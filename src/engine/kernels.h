// Vectorized scan kernels: tight, auto-vectorizable per-type loops used by
// predicate evaluation (engine/expr_eval) and the streaming aggregates
// (engine/operators/breakers). No per-row virtual dispatch and no Value
// boxing — the comparison op is dispatched once, outside the loop, and each
// branch body is a plain loop over contiguous data the compiler can SIMD.
//
// Determinism contract: every kernel visits rows in ascending order and
// performs exactly the arithmetic of the generic path it replaces. The
// comparators are the transparent std functors (std::less<> etc.), so mixed
// operand types go through the usual arithmetic conversions — identical to
// the generic evaluator's promoted compares. Double summation stays a
// serial in-order accumulation (see SumRange) so budgeted/unbudgeted and
// all thread counts produce byte-identical aggregates.

#ifndef LAZYETL_ENGINE_KERNELS_H_
#define LAZYETL_ENGINE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "storage/column.h"

namespace lazyetl::engine::kernels {

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

// Applies `op` between `v` and `c` with the functor's usual arithmetic
// conversions (int32 vs int64 -> int64, int vs double -> double).
template <typename T, typename V>
inline bool ApplyCmp(CmpOp op, T v, V c) {
  switch (op) {
    case CmpOp::kEq: return std::equal_to<>()(v, c);
    case CmpOp::kNe: return std::not_equal_to<>()(v, c);
    case CmpOp::kLt: return std::less<>()(v, c);
    case CmpOp::kLe: return std::less_equal<>()(v, c);
    case CmpOp::kGt: return std::greater<>()(v, c);
    case CmpOp::kGe: return std::greater_equal<>()(v, c);
  }
  return false;
}

// data[i] `op` constant over [0, n) -> selection vector of passing rows.
// Op dispatch happens once; each case body is one branch-free-comparison
// loop the compiler can vectorize.
template <typename T, typename V>
inline void CompareConstSelect(const T* data, size_t n, CmpOp op, V constant,
                               storage::SelectionVector* out) {
  out->clear();
  out->reserve(n);
  switch (op) {
#define LAZYETL_CMP_CASE(OP, FUNCTOR)                            \
  case CmpOp::OP:                                                \
    for (size_t i = 0; i < n; ++i) {                             \
      if (FUNCTOR()(data[i], constant))                          \
        out->push_back(static_cast<uint32_t>(i));                \
    }                                                            \
    break;
    LAZYETL_CMP_CASE(kEq, std::equal_to<>)
    LAZYETL_CMP_CASE(kNe, std::not_equal_to<>)
    LAZYETL_CMP_CASE(kLt, std::less<>)
    LAZYETL_CMP_CASE(kLe, std::less_equal<>)
    LAZYETL_CMP_CASE(kGt, std::greater<>)
    LAZYETL_CMP_CASE(kGe, std::greater_equal<>)
#undef LAZYETL_CMP_CASE
  }
}

// In-place refine: keeps only rows of `sel` whose value still passes
// data[row] `op` constant. Preserves ascending order.
template <typename T, typename V>
inline void CompareConstRefine(const T* data, CmpOp op, V constant,
                               storage::SelectionVector* sel) {
  size_t kept = 0;
  switch (op) {
#define LAZYETL_CMP_CASE(OP, FUNCTOR)                            \
  case CmpOp::OP:                                                \
    for (size_t i = 0; i < sel->size(); ++i) {                   \
      uint32_t row = (*sel)[i];                                  \
      if (FUNCTOR()(data[row], constant)) (*sel)[kept++] = row;  \
    }                                                            \
    break;
    LAZYETL_CMP_CASE(kEq, std::equal_to<>)
    LAZYETL_CMP_CASE(kNe, std::not_equal_to<>)
    LAZYETL_CMP_CASE(kLt, std::less<>)
    LAZYETL_CMP_CASE(kLe, std::less_equal<>)
    LAZYETL_CMP_CASE(kGt, std::greater<>)
    LAZYETL_CMP_CASE(kGe, std::greater_equal<>)
#undef LAZYETL_CMP_CASE
  }
  sel->resize(kept);
}

// data[i] `op` constant over [0, n) -> byte mask (1 = pass). Used when a
// comparison feeds a logical expression rather than a selection directly.
template <typename T, typename V>
inline void CompareConstMask(const T* data, size_t n, CmpOp op, V constant,
                             std::vector<uint8_t>* mask) {
  mask->resize(n);
  uint8_t* m = mask->data();
  switch (op) {
#define LAZYETL_CMP_CASE(OP, FUNCTOR)                                  \
  case CmpOp::OP:                                                      \
    for (size_t i = 0; i < n; ++i) m[i] = FUNCTOR()(data[i], constant); \
    break;
    LAZYETL_CMP_CASE(kEq, std::equal_to<>)
    LAZYETL_CMP_CASE(kNe, std::not_equal_to<>)
    LAZYETL_CMP_CASE(kLt, std::less<>)
    LAZYETL_CMP_CASE(kLe, std::less_equal<>)
    LAZYETL_CMP_CASE(kGt, std::greater<>)
    LAZYETL_CMP_CASE(kGe, std::greater_equal<>)
#undef LAZYETL_CMP_CASE
  }
}

// Element-wise AND of two equal-length byte masks, into `a`.
inline void AndMask(std::vector<uint8_t>* a, const std::vector<uint8_t>& b) {
  uint8_t* pa = a->data();
  const uint8_t* pb = b.data();
  size_t n = a->size();
  for (size_t i = 0; i < n; ++i) pa[i] = pa[i] & pb[i];
}

// Min/max over data[sel[*]] refining running bounds. `first` marks whether
// the running bounds are not yet seeded. Matches the scalar update order of
// Accumulator::Update (ascending rows), so NaN handling for doubles is
// identical: a NaN seeds the state and then sticks, exactly like the
// per-row path.
template <typename T, typename V>
inline void MinMaxRefine(const T* data, const uint32_t* sel, size_t n,
                         bool want_min, bool* first, V* extreme) {
  for (size_t i = 0; i < n; ++i) {
    V v = static_cast<V>(data[sel[i]]);
    if (*first || (want_min ? v < *extreme : v > *extreme)) {
      *extreme = v;
      *first = false;
    }
  }
}

// Contiguous-range variant (sel == identity over [offset, offset+n)).
template <typename T, typename V>
inline void MinMaxRange(const T* data, size_t offset, size_t n, bool want_min,
                        bool* first, V* extreme) {
  for (size_t i = 0; i < n; ++i) {
    V v = static_cast<V>(data[offset + i]);
    if (*first || (want_min ? v < *extreme : v > *extreme)) {
      *extreme = v;
      *first = false;
    }
  }
}

// Sum over a contiguous range for SUM/AVG state: integer part vectorizes
// freely (int addition is associative); the double mirror accumulates
// per-row IN ORDER with the same two-step cast (T -> int64 -> double) as
// the scalar path, preserving byte-identical floating-point results.
template <typename T>
inline void SumRange(const T* data, size_t offset, size_t n, int64_t* isum,
                     double* dsum) {
  int64_t is = 0;
  for (size_t i = 0; i < n; ++i) is += static_cast<int64_t>(data[offset + i]);
  *isum += is;
  double ds = *dsum;
  for (size_t i = 0; i < n; ++i) {
    ds += static_cast<double>(static_cast<int64_t>(data[offset + i]));
  }
  *dsum = ds;
}

// Double-typed sum: strictly in-order accumulation (FP addition is not
// associative; reordering would break budgeted == unbudgeted parity).
inline void SumDoubleRange(const double* data, size_t offset, size_t n,
                           double* dsum) {
  double ds = *dsum;
  for (size_t i = 0; i < n; ++i) ds += data[offset + i];
  *dsum = ds;
}

// --- Batch hashing & group-id building (vectorized grouped aggregation) --

// Group identity in the aggregate/distinct breakers is defined by byte
// equality of PackRowKey-packed keys: doubles compare by bit pattern
// (NaN == NaN, -0.0 != 0.0), bools by truth value, strings by contents.
// GroupIdBuilder reproduces exactly that equivalence relation column-at-a-
// time: it hashes the grouping columns batch-wide (dictionary-encoded
// strings hash their u32 codes — within one column, code equality is
// string equality), then assigns dense group ids in ascending row order
// through an open-addressing map whose probe check is per-column bit
// equality against the group's first row. Because rows are visited in
// order, the resulting ids, first-occurrence rows and group count are
// identical to the per-row packed-key path — packing is only needed once
// per *group*, not once per row.

inline constexpr uint64_t kGroupHashSeed = 0x2545F4914F6CDD1Dull;

// 64-bit mix (splitmix-style finalizer folded into a rotate-combine).
inline uint64_t MixHash(uint64_t h, uint64_t v) {
  v *= 0xFF51AFD7ED558CCDull;
  v ^= v >> 33;
  v *= 0xC4CEB9FE1A85EC53ull;
  h ^= v;
  h = (h << 27) | (h >> 37);
  return h * 5 + 0x52DCE729;
}

inline uint64_t HashBytes(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

// Folds rows [offset, offset+n) of `c` into the per-row hash accumulators.
inline void HashColumn(const storage::Column& c, size_t offset, size_t n,
                       uint64_t* hashes) {
  switch (c.type()) {
    case storage::DataType::kString:
      if (c.dict_encoded()) {
        const uint32_t* codes = c.dict_codes().data() + offset;
        for (size_t i = 0; i < n; ++i) {
          hashes[i] = MixHash(hashes[i], codes[i]);
        }
      } else {
        const std::string* s = c.string_data().data() + offset;
        for (size_t i = 0; i < n; ++i) {
          hashes[i] = MixHash(hashes[i], HashBytes(s[i].data(), s[i].size()));
        }
      }
      break;
    case storage::DataType::kDouble: {
      const double* d = c.double_data().data() + offset;
      for (size_t i = 0; i < n; ++i) {
        uint64_t bits;
        std::memcpy(&bits, &d[i], sizeof(bits));
        hashes[i] = MixHash(hashes[i], bits);
      }
      break;
    }
    case storage::DataType::kBool: {
      const uint8_t* b = c.bool_data().data() + offset;
      for (size_t i = 0; i < n; ++i) {
        hashes[i] = MixHash(hashes[i], b[i] != 0 ? 1u : 0u);
      }
      break;
    }
    case storage::DataType::kInt32: {
      const int32_t* v = c.int32_data().data() + offset;
      for (size_t i = 0; i < n; ++i) {
        hashes[i] = MixHash(
            hashes[i], static_cast<uint64_t>(static_cast<int64_t>(v[i])));
      }
      break;
    }
    default: {  // kInt64 / kTimestamp
      const int64_t* v = c.int64_data().data() + offset;
      for (size_t i = 0; i < n; ++i) {
        hashes[i] = MixHash(hashes[i], static_cast<uint64_t>(v[i]));
      }
      break;
    }
  }
}

// Bit-exact row equality over the grouping columns — the PackRowKey
// equivalence relation (see the block comment above).
inline bool GroupRowsEqual(const storage::Column* const* cols, size_t ncols,
                           size_t offset, size_t a, size_t b) {
  for (size_t c = 0; c < ncols; ++c) {
    const storage::Column& col = *cols[c];
    switch (col.type()) {
      case storage::DataType::kString:
        if (col.dict_encoded()) {
          if (col.dict_codes()[offset + a] != col.dict_codes()[offset + b]) {
            return false;
          }
        } else if (col.string_data()[offset + a] !=
                   col.string_data()[offset + b]) {
          return false;
        }
        break;
      case storage::DataType::kDouble: {
        uint64_t ba;
        uint64_t bb;
        std::memcpy(&ba, &col.double_data()[offset + a], sizeof(ba));
        std::memcpy(&bb, &col.double_data()[offset + b], sizeof(bb));
        if (ba != bb) return false;
        break;
      }
      case storage::DataType::kBool:
        if ((col.bool_data()[offset + a] != 0) !=
            (col.bool_data()[offset + b] != 0)) {
          return false;
        }
        break;
      case storage::DataType::kInt32:
        if (col.int32_data()[offset + a] != col.int32_data()[offset + b]) {
          return false;
        }
        break;
      default:  // kInt64 / kTimestamp
        if (col.int64_data()[offset + a] != col.int64_data()[offset + b]) {
          return false;
        }
        break;
    }
  }
  return true;
}

// Open-addressing batch group-id map. Build() fills `gids` (one dense id
// per row) and `first_row` (representative row per group, strictly
// ascending = first-occurrence order) and returns the group count. The
// scratch vectors persist across batches, so steady-state builds allocate
// nothing.
struct GroupIdBuilder {
  std::vector<uint64_t> hashes;
  std::vector<uint32_t> gids;       // per row: dense group id
  std::vector<uint32_t> first_row;  // per group: first row (batch-relative)
  std::vector<uint32_t> slots;      // probe table: group id + 1; 0 = empty
  size_t mask = 0;

  size_t Build(const storage::Column* const* cols, size_t ncols,
               size_t offset, size_t rows) {
    hashes.assign(rows, kGroupHashSeed);
    for (size_t c = 0; c < ncols; ++c) {
      HashColumn(*cols[c], offset, rows, hashes.data());
    }
    size_t cap = 16;
    while (cap < rows * 2) cap <<= 1;
    mask = cap - 1;
    slots.assign(cap, 0);
    gids.resize(rows);
    first_row.clear();
    for (size_t r = 0; r < rows; ++r) {
      size_t slot = hashes[r] & mask;
      for (;;) {
        uint32_t s = slots[slot];
        if (s == 0) {
          slots[slot] = static_cast<uint32_t>(first_row.size()) + 1;
          gids[r] = static_cast<uint32_t>(first_row.size());
          first_row.push_back(static_cast<uint32_t>(r));
          break;
        }
        uint32_t g = s - 1;
        if (hashes[first_row[g]] == hashes[r] &&
            GroupRowsEqual(cols, ncols, offset, first_row[g], r)) {
          gids[r] = g;
          break;
        }
        slot = (slot + 1) & mask;
      }
    }
    return first_row.size();
  }
};

// --- Grouped accumulator kernels -----------------------------------------
//
// Columnar counterparts of Accumulator::Update: one pass over the batch
// with a group-id scatter. All kernels visit rows in ascending order and
// perform exactly the scalar path's arithmetic, so per-group state is
// byte-identical (including the in-order double accumulation for SUM/AVG
// and the NaN-seeding behaviour of MIN/MAX on doubles).

inline void CountGrouped(const uint32_t* gids, size_t n, int64_t* counts) {
  for (size_t i = 0; i < n; ++i) ++counts[gids[i]];
}

// Integer-typed SUM/AVG state: per-row updates of both the exact integer
// sum and its double mirror, in row order, with the scalar path's two-step
// cast (T -> int64 -> double).
template <typename T>
inline void SumGrouped(const T* data, const uint32_t* gids, size_t n,
                       int64_t* isum, double* dsum) {
  for (size_t i = 0; i < n; ++i) {
    int64_t v = static_cast<int64_t>(data[i]);
    isum[gids[i]] += v;
    dsum[gids[i]] += static_cast<double>(v);
  }
}

inline void SumDoubleGrouped(const double* data, const uint32_t* gids,
                             size_t n, double* dsum) {
  for (size_t i = 0; i < n; ++i) dsum[gids[i]] += data[i];
}

// MIN/MAX with first-row seeding derived from the running counts (a group
// whose count is still zero takes the value unconditionally — NaNs seed
// and then stick, exactly like the per-row path). Also advances counts.
template <typename T, typename V>
inline void MinMaxGrouped(const T* data, const uint32_t* gids, size_t n,
                          bool want_min, int64_t* counts, V* ext) {
  for (size_t i = 0; i < n; ++i) {
    uint32_t g = gids[i];
    bool first = counts[g]++ == 0;
    V v = static_cast<V>(data[i]);
    if (first || (want_min ? v < ext[g] : v > ext[g])) ext[g] = v;
  }
}

// --- Join-key hashing & cross-table row equality (vectorized hash join) --
//
// Join identity is the PackRowKey byte equality of join_build.cc: doubles
// compare by bit pattern (NaN == NaN, -0.0 != 0.0), int32 widens to int64
// (so it matches an int64 of the same value — and a double whose bit
// pattern aliases, exactly like the packed bytes), bools by truth value,
// strings by contents. Unlike the grouping kernels above, a join hashes
// keys from TWO tables, so dictionary codes are useless as hash input:
// the same string carries different codes in different dictionaries.
// Dict-encoded columns instead hash per-CODE content hashes precomputed
// once per dictionary (HashDictionary) — per row the hash is still one
// table lookup, and it equals the plain column's HashBytes of the same
// string, so hashes agree across encodings and tables.

// Content hash of every dictionary entry, one per code.
inline void HashDictionary(const std::vector<std::string>& dict,
                           std::vector<uint64_t>* out) {
  out->resize(dict.size());
  for (size_t i = 0; i < dict.size(); ++i) {
    (*out)[i] = HashBytes(dict[i].data(), dict[i].size());
  }
}

// Folds rows [offset, offset+n) of `c` into the per-row hash accumulators
// using encoding-independent value hashes. `dict_hashes` must be the
// HashDictionary output for c's dictionary when c is dict-encoded (null
// otherwise).
inline void JoinHashColumn(const storage::Column& c, size_t offset, size_t n,
                           const uint64_t* dict_hashes, uint64_t* hashes) {
  switch (c.type()) {
    case storage::DataType::kString:
      if (c.dict_encoded()) {
        const uint32_t* codes = c.dict_codes().data() + offset;
        for (size_t i = 0; i < n; ++i) {
          hashes[i] = MixHash(hashes[i], dict_hashes[codes[i]]);
        }
      } else {
        const std::string* s = c.string_data().data() + offset;
        for (size_t i = 0; i < n; ++i) {
          hashes[i] = MixHash(hashes[i], HashBytes(s[i].data(), s[i].size()));
        }
      }
      break;
    case storage::DataType::kDouble: {
      const double* d = c.double_data().data() + offset;
      for (size_t i = 0; i < n; ++i) {
        uint64_t bits;
        std::memcpy(&bits, &d[i], sizeof(bits));
        hashes[i] = MixHash(hashes[i], bits);
      }
      break;
    }
    case storage::DataType::kBool: {
      const uint8_t* b = c.bool_data().data() + offset;
      for (size_t i = 0; i < n; ++i) {
        hashes[i] = MixHash(hashes[i], b[i] != 0 ? 1u : 0u);
      }
      break;
    }
    case storage::DataType::kInt32: {
      const int32_t* v = c.int32_data().data() + offset;
      for (size_t i = 0; i < n; ++i) {
        hashes[i] = MixHash(
            hashes[i], static_cast<uint64_t>(static_cast<int64_t>(v[i])));
      }
      break;
    }
    default: {  // kInt64 / kTimestamp
      const int64_t* v = c.int64_data().data() + offset;
      for (size_t i = 0; i < n; ++i) {
        hashes[i] = MixHash(hashes[i], static_cast<uint64_t>(v[i]));
      }
      break;
    }
  }
}

// Gather variant: folds rows base_offset + rows[i] of `c` into hashes[i].
// Used by the Bloom-pushdown scan, whose candidate rows are a selection.
inline void JoinHashRows(const storage::Column& c, size_t base_offset,
                         const uint32_t* rows, size_t n,
                         const uint64_t* dict_hashes, uint64_t* hashes) {
  switch (c.type()) {
    case storage::DataType::kString:
      if (c.dict_encoded()) {
        const uint32_t* codes = c.dict_codes().data() + base_offset;
        for (size_t i = 0; i < n; ++i) {
          hashes[i] = MixHash(hashes[i], dict_hashes[codes[rows[i]]]);
        }
      } else {
        const std::string* s = c.string_data().data() + base_offset;
        for (size_t i = 0; i < n; ++i) {
          const std::string& v = s[rows[i]];
          hashes[i] = MixHash(hashes[i], HashBytes(v.data(), v.size()));
        }
      }
      break;
    case storage::DataType::kDouble: {
      const double* d = c.double_data().data() + base_offset;
      for (size_t i = 0; i < n; ++i) {
        uint64_t bits;
        std::memcpy(&bits, &d[rows[i]], sizeof(bits));
        hashes[i] = MixHash(hashes[i], bits);
      }
      break;
    }
    case storage::DataType::kBool: {
      const uint8_t* b = c.bool_data().data() + base_offset;
      for (size_t i = 0; i < n; ++i) {
        hashes[i] = MixHash(hashes[i], b[rows[i]] != 0 ? 1u : 0u);
      }
      break;
    }
    case storage::DataType::kInt32: {
      const int32_t* v = c.int32_data().data() + base_offset;
      for (size_t i = 0; i < n; ++i) {
        hashes[i] = MixHash(
            hashes[i],
            static_cast<uint64_t>(static_cast<int64_t>(v[rows[i]])));
      }
      break;
    }
    default: {  // kInt64 / kTimestamp
      const int64_t* v = c.int64_data().data() + base_offset;
      for (size_t i = 0; i < n; ++i) {
        hashes[i] = MixHash(hashes[i], static_cast<uint64_t>(v[rows[i]]));
      }
      break;
    }
  }
}

// Equality classes of the packed-key encoding: bool packs one byte,
// int32/int64/timestamp/double all pack the same 8-byte word (int32
// sign-extended, double by bit pattern), strings pack length + contents.
enum class JoinKeyClass { kBool, kWord, kString };

inline JoinKeyClass JoinClassOf(storage::DataType t) {
  switch (t) {
    case storage::DataType::kBool: return JoinKeyClass::kBool;
    case storage::DataType::kString: return JoinKeyClass::kString;
    default: return JoinKeyClass::kWord;
  }
}

// The 8-byte word a kWord-class column packs for `row`.
inline uint64_t JoinWordAt(const storage::Column& c, size_t row) {
  switch (c.type()) {
    case storage::DataType::kInt32:
      return static_cast<uint64_t>(
          static_cast<int64_t>(c.int32_data()[row]));
    case storage::DataType::kDouble: {
      uint64_t bits;
      std::memcpy(&bits, &c.double_data()[row], sizeof(bits));
      return bits;
    }
    default:  // kInt64 / kTimestamp
      return static_cast<uint64_t>(c.int64_data()[row]);
  }
}

// Row equality across two column sets (build vs probe), reproducing the
// packed-key equivalence for every same-class pair and for word-class
// pairs of different types (int32 vs int64 vs double compare by the
// 8-byte word, exactly like the packed bytes). Pairs of different classes
// compare unequal — the packed encoding can alias such pairs only through
// a pathological multi-field byte coincidence, which this path resolves
// as a non-match (see the JoinBuild header).
inline bool JoinRowsEqual(const storage::Column* const* build_cols,
                          const storage::Column* const* probe_cols,
                          size_t ncols, size_t build_row, size_t probe_row) {
  for (size_t c = 0; c < ncols; ++c) {
    const storage::Column& bc = *build_cols[c];
    const storage::Column& pc = *probe_cols[c];
    const JoinKeyClass cls = JoinClassOf(bc.type());
    if (cls != JoinClassOf(pc.type())) return false;
    switch (cls) {
      case JoinKeyClass::kBool:
        if ((bc.bool_data()[build_row] != 0) !=
            (pc.bool_data()[probe_row] != 0)) {
          return false;
        }
        break;
      case JoinKeyClass::kWord:
        if (JoinWordAt(bc, build_row) != JoinWordAt(pc, probe_row)) {
          return false;
        }
        break;
      case JoinKeyClass::kString:
        if (bc.StringAt(build_row) != pc.StringAt(probe_row)) return false;
        break;
    }
  }
  return true;
}

// Blocked Bloom filter over the 64-bit join-key hashes: one 64-byte block
// (8 words, a cache line) per key, selected by the hash's high bits; six
// probe bits derived from the low 32 bits (Kirsch-Mitzenmacher double
// hashing). False positives only reduce the pushdown's skip rate — a
// passed row still goes through the exact join probe — so sizing is a
// performance knob, never a correctness one. Insert is not thread-safe;
// the join fills the filter before publishing it read-only.
class BlockedBloomFilter {
 public:
  static constexpr size_t kWordsPerBlock = 8;  // 512 bits

  // Sizes for ~12 bits per expected key, clamped to [16, 4096] blocks
  // (1 KiB .. 256 KiB). Also used with a fixed block count when the key
  // count is unknown upfront (the Grace build phase).
  void Init(size_t expected_keys) {
    size_t blocks = 16;
    while (blocks * kWordsPerBlock * 64 < expected_keys * 12 &&
           blocks < 4096) {
      blocks <<= 1;
    }
    InitBlocks(blocks);
  }

  void InitBlocks(size_t blocks) {  // `blocks` must be a power of two
    words_.assign(blocks * kWordsPerBlock, 0);
    block_mask_ = blocks - 1;
  }

  bool initialized() const { return !words_.empty(); }

  void Insert(uint64_t h) {
    uint64_t* block =
        words_.data() + ((h >> 32) & block_mask_) * kWordsPerBlock;
    const uint32_t lo = static_cast<uint32_t>(h);
    for (size_t k = 0; k < 6; ++k) {
      const uint32_t p = (lo * kOdd[k]) >> 23;  // top 9 bits: 0..511
      block[p >> 6] |= 1ull << (p & 63);
    }
  }

  bool MayContain(uint64_t h) const {
    const uint64_t* block =
        words_.data() + ((h >> 32) & block_mask_) * kWordsPerBlock;
    const uint32_t lo = static_cast<uint32_t>(h);
    for (size_t k = 0; k < 6; ++k) {
      const uint32_t p = (lo * kOdd[k]) >> 23;
      if ((block[p >> 6] & (1ull << (p & 63))) == 0) return false;
    }
    return true;
  }

  uint64_t MemoryBytes() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  static constexpr uint32_t kOdd[6] = {0x9E3779B1u, 0x85EBCA77u, 0xC2B2AE3Du,
                                       0x27D4EB2Fu, 0x165667B1u, 0xD3A2646Du};
  std::vector<uint64_t> words_;
  size_t block_mask_ = 0;
};

}  // namespace lazyetl::engine::kernels

#endif  // LAZYETL_ENGINE_KERNELS_H_
