// Vectorized scan kernels: tight, auto-vectorizable per-type loops used by
// predicate evaluation (engine/expr_eval) and the streaming aggregates
// (engine/operators/breakers). No per-row virtual dispatch and no Value
// boxing — the comparison op is dispatched once, outside the loop, and each
// branch body is a plain loop over contiguous data the compiler can SIMD.
//
// Determinism contract: every kernel visits rows in ascending order and
// performs exactly the arithmetic of the generic path it replaces. The
// comparators are the transparent std functors (std::less<> etc.), so mixed
// operand types go through the usual arithmetic conversions — identical to
// the generic evaluator's promoted compares. Double summation stays a
// serial in-order accumulation (see SumRange) so budgeted/unbudgeted and
// all thread counts produce byte-identical aggregates.

#ifndef LAZYETL_ENGINE_KERNELS_H_
#define LAZYETL_ENGINE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "storage/column.h"

namespace lazyetl::engine::kernels {

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

// Applies `op` between `v` and `c` with the functor's usual arithmetic
// conversions (int32 vs int64 -> int64, int vs double -> double).
template <typename T, typename V>
inline bool ApplyCmp(CmpOp op, T v, V c) {
  switch (op) {
    case CmpOp::kEq: return std::equal_to<>()(v, c);
    case CmpOp::kNe: return std::not_equal_to<>()(v, c);
    case CmpOp::kLt: return std::less<>()(v, c);
    case CmpOp::kLe: return std::less_equal<>()(v, c);
    case CmpOp::kGt: return std::greater<>()(v, c);
    case CmpOp::kGe: return std::greater_equal<>()(v, c);
  }
  return false;
}

// data[i] `op` constant over [0, n) -> selection vector of passing rows.
// Op dispatch happens once; each case body is one branch-free-comparison
// loop the compiler can vectorize.
template <typename T, typename V>
inline void CompareConstSelect(const T* data, size_t n, CmpOp op, V constant,
                               storage::SelectionVector* out) {
  out->clear();
  out->reserve(n);
  switch (op) {
#define LAZYETL_CMP_CASE(OP, FUNCTOR)                            \
  case CmpOp::OP:                                                \
    for (size_t i = 0; i < n; ++i) {                             \
      if (FUNCTOR()(data[i], constant))                          \
        out->push_back(static_cast<uint32_t>(i));                \
    }                                                            \
    break;
    LAZYETL_CMP_CASE(kEq, std::equal_to<>)
    LAZYETL_CMP_CASE(kNe, std::not_equal_to<>)
    LAZYETL_CMP_CASE(kLt, std::less<>)
    LAZYETL_CMP_CASE(kLe, std::less_equal<>)
    LAZYETL_CMP_CASE(kGt, std::greater<>)
    LAZYETL_CMP_CASE(kGe, std::greater_equal<>)
#undef LAZYETL_CMP_CASE
  }
}

// In-place refine: keeps only rows of `sel` whose value still passes
// data[row] `op` constant. Preserves ascending order.
template <typename T, typename V>
inline void CompareConstRefine(const T* data, CmpOp op, V constant,
                               storage::SelectionVector* sel) {
  size_t kept = 0;
  switch (op) {
#define LAZYETL_CMP_CASE(OP, FUNCTOR)                            \
  case CmpOp::OP:                                                \
    for (size_t i = 0; i < sel->size(); ++i) {                   \
      uint32_t row = (*sel)[i];                                  \
      if (FUNCTOR()(data[row], constant)) (*sel)[kept++] = row;  \
    }                                                            \
    break;
    LAZYETL_CMP_CASE(kEq, std::equal_to<>)
    LAZYETL_CMP_CASE(kNe, std::not_equal_to<>)
    LAZYETL_CMP_CASE(kLt, std::less<>)
    LAZYETL_CMP_CASE(kLe, std::less_equal<>)
    LAZYETL_CMP_CASE(kGt, std::greater<>)
    LAZYETL_CMP_CASE(kGe, std::greater_equal<>)
#undef LAZYETL_CMP_CASE
  }
  sel->resize(kept);
}

// data[i] `op` constant over [0, n) -> byte mask (1 = pass). Used when a
// comparison feeds a logical expression rather than a selection directly.
template <typename T, typename V>
inline void CompareConstMask(const T* data, size_t n, CmpOp op, V constant,
                             std::vector<uint8_t>* mask) {
  mask->resize(n);
  uint8_t* m = mask->data();
  switch (op) {
#define LAZYETL_CMP_CASE(OP, FUNCTOR)                                  \
  case CmpOp::OP:                                                      \
    for (size_t i = 0; i < n; ++i) m[i] = FUNCTOR()(data[i], constant); \
    break;
    LAZYETL_CMP_CASE(kEq, std::equal_to<>)
    LAZYETL_CMP_CASE(kNe, std::not_equal_to<>)
    LAZYETL_CMP_CASE(kLt, std::less<>)
    LAZYETL_CMP_CASE(kLe, std::less_equal<>)
    LAZYETL_CMP_CASE(kGt, std::greater<>)
    LAZYETL_CMP_CASE(kGe, std::greater_equal<>)
#undef LAZYETL_CMP_CASE
  }
}

// Element-wise AND of two equal-length byte masks, into `a`.
inline void AndMask(std::vector<uint8_t>* a, const std::vector<uint8_t>& b) {
  uint8_t* pa = a->data();
  const uint8_t* pb = b.data();
  size_t n = a->size();
  for (size_t i = 0; i < n; ++i) pa[i] = pa[i] & pb[i];
}

// Min/max over data[sel[*]] refining running bounds. `first` marks whether
// the running bounds are not yet seeded. Matches the scalar update order of
// Accumulator::Update (ascending rows), so NaN handling for doubles is
// identical: a NaN seeds the state and then sticks, exactly like the
// per-row path.
template <typename T, typename V>
inline void MinMaxRefine(const T* data, const uint32_t* sel, size_t n,
                         bool want_min, bool* first, V* extreme) {
  for (size_t i = 0; i < n; ++i) {
    V v = static_cast<V>(data[sel[i]]);
    if (*first || (want_min ? v < *extreme : v > *extreme)) {
      *extreme = v;
      *first = false;
    }
  }
}

// Contiguous-range variant (sel == identity over [offset, offset+n)).
template <typename T, typename V>
inline void MinMaxRange(const T* data, size_t offset, size_t n, bool want_min,
                        bool* first, V* extreme) {
  for (size_t i = 0; i < n; ++i) {
    V v = static_cast<V>(data[offset + i]);
    if (*first || (want_min ? v < *extreme : v > *extreme)) {
      *extreme = v;
      *first = false;
    }
  }
}

// Sum over a contiguous range for SUM/AVG state: integer part vectorizes
// freely (int addition is associative); the double mirror accumulates
// per-row IN ORDER with the same two-step cast (T -> int64 -> double) as
// the scalar path, preserving byte-identical floating-point results.
template <typename T>
inline void SumRange(const T* data, size_t offset, size_t n, int64_t* isum,
                     double* dsum) {
  int64_t is = 0;
  for (size_t i = 0; i < n; ++i) is += static_cast<int64_t>(data[offset + i]);
  *isum += is;
  double ds = *dsum;
  for (size_t i = 0; i < n; ++i) {
    ds += static_cast<double>(static_cast<int64_t>(data[offset + i]));
  }
  *dsum = ds;
}

// Double-typed sum: strictly in-order accumulation (FP addition is not
// associative; reordering would break budgeted == unbudgeted parity).
inline void SumDoubleRange(const double* data, size_t offset, size_t n,
                           double* dsum) {
  double ds = *dsum;
  for (size_t i = 0; i < n; ++i) ds += data[offset + i];
  *dsum = ds;
}

}  // namespace lazyetl::engine::kernels

#endif  // LAZYETL_ENGINE_KERNELS_H_
