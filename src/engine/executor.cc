#include "engine/executor.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "common/memory_budget.h"
#include "common/spill.h"
#include "common/thread_pool.h"
#include "engine/query_context.h"
#include "engine/operators/join_build.h"
#include "engine/operators/operator.h"

namespace lazyetl::engine {

using storage::SelectionVector;
using storage::Table;
using storage::TableSlice;

namespace {

// Default streaming adapter: one chunk holding the whole fetched table.
// Providers that can extract incrementally override StreamRecords.
class SingleChunkStream : public RecordStream {
 public:
  explicit SingleChunkStream(Table table) : table_(std::move(table)) {}

  Result<bool> Next(Table* out) override {
    if (done_) return false;
    done_ = true;
    *out = std::move(table_);
    return true;
  }

 private:
  Table table_;
  bool done_ = false;
};

// Cache-aware morsel sizing: LAZYETL_MORSEL_ROWS overrides the default
// rows-per-batch (and thus per-morsel) when the caller did not configure
// one explicitly. Values outside [64, 1M] — or non-numeric ones — are
// ignored; results are identical at any setting, only locality changes.
size_t ResolveMorselRows(size_t configured) {
  if (configured != kDefaultBatchRows) return configured;
  const char* env = std::getenv("LAZYETL_MORSEL_ROWS");
  if (env == nullptr || *env == '\0') return configured;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return configured;
  if (v < 64 || v > (1ull << 20)) return configured;
  return static_cast<size_t>(v);
}

}  // namespace

Result<std::unique_ptr<RecordStream>> LazyDataProvider::StreamRecords(
    const std::vector<RecordKey>& keys, const std::vector<ScanColumn>& columns,
    size_t batch_rows, ExecutionReport* report) {
  (void)batch_rows;
  LAZYETL_ASSIGN_OR_RETURN(Table data, FetchRecords(keys, columns, report));
  return std::unique_ptr<RecordStream>(
      std::make_unique<SingleChunkStream>(std::move(data)));
}

Result<std::unique_ptr<RecordStream>> LazyDataProvider::StreamAllRecords(
    const std::vector<ScanColumn>& columns, size_t batch_rows,
    ExecutionReport* report) {
  (void)batch_rows;
  LAZYETL_ASSIGN_OR_RETURN(Table data, FetchAllRecords(columns, report));
  return std::unique_ptr<RecordStream>(
      std::make_unique<SingleChunkStream>(std::move(data)));
}

Result<Table> HashJoinTables(const Table& left, const Table& right,
                             const std::vector<std::string>& left_keys,
                             const std::vector<std::string>& right_keys) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    return Status::InvalidArgument("join key arity mismatch");
  }
  JoinBuild build;
  LAZYETL_RETURN_NOT_OK(build.Init(&left, left_keys));
  TableSlice probe = right.Slice(0, right.num_rows());
  SelectionVector left_sel;
  SelectionVector right_sel;
  LAZYETL_RETURN_NOT_OK(build.Probe(probe, right_keys, &left_sel, &right_sel));

  Table out = left.Gather(left_sel);
  Table right_rows = right.Gather(right_sel);
  for (size_t i = 0; i < right_rows.num_columns(); ++i) {
    LAZYETL_RETURN_NOT_OK(
        out.AddColumn(right_rows.column_name(i), right_rows.column(i)));
  }
  return out;
}

Result<Table> Executor::Execute(const PlanNode& plan, ExecutionReport* report,
                                QueryContext* qctx) {
  size_t threads = options_.query_threads;
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, common::ThreadPool::kMaxThreads);

  // Memory governance: the per-query budget chains to the process-wide
  // budget so a global cap across concurrent queries also holds. An
  // admitted query brings its context (scheduler-carved budget, spill
  // manager labelled with the ticket id); standalone callers get one built
  // here from the options (else the LAZYETL_MEMORY_BUDGET environment
  // variable). Either way the spill directory lives exactly as long as
  // the context — RAII removes it on success and on error alike.
  std::unique_ptr<QueryContext> local_ctx;
  if (qctx == nullptr) {
    local_ctx = std::make_unique<QueryContext>(
        common::ResolvePerQueryBudgetBytes(options_.memory_budget_bytes),
        options_.spill_dir);
    qctx = local_ctx.get();
  }
  uint64_t budget_bytes = qctx->admitted_budget_bytes();

  size_t batch_rows = ResolveMorselRows(options_.batch_rows);

  ExecContext ctx{catalog_,  provider_,      report, batch_rows,
                  threads,   qctx->budget(), qctx->spill()};
  LAZYETL_ASSIGN_OR_RETURN(BatchOperatorPtr root,
                           BuildOperatorTree(plan, &ctx));
  LAZYETL_RETURN_NOT_OK(root->Open());
  // The top-level drive loop: when the root pipeline is parallel-safe,
  // `threads` workers pull morsels concurrently and the result table is
  // reassembled in seq order — byte-identical to the serial drain.
  auto result = DrainToTableOrdered(root.get(), threads);
  root->Close();
  if (report != nullptr) {
    report->query_threads = threads;
    report->morsel_rows = batch_rows == SIZE_MAX ? 0 : batch_rows;
    report->memory_budget_bytes = budget_bytes;
    report->ticket_id = qctx->ticket_id();
    report->queue_wait_seconds = qctx->queue_wait_seconds();
    report->admitted_budget_bytes = qctx->admitted_budget_bytes();
    report->priority =
        common::QueryPriorityToString(qctx->admission().priority);
    report->client_id = qctx->admission().client_id;
    report->estimated_footprint_bytes = qctx->admission().estimated_bytes;
  }
  if (!result.ok()) return result.status();

  if (report != nullptr) {
    size_t base = report->operator_stats.size();
    root->AppendStats(&report->operator_stats);
    uint64_t peak = 0;
    for (size_t i = base; i < report->operator_stats.size(); ++i) {
      const OperatorStats& os = report->operator_stats[i];
      peak += os.state_bytes + os.peak_batch_bytes;
      report->spilled_bytes += os.spilled_bytes;
      report->spill_files += os.spill_files;
      report->spill_compressed_bytes += os.spill_compressed_bytes;
      report->spill_write_wait_seconds += os.spill_write_wait_seconds;
      report->groups_vectorized += os.groups_vectorized;
      report->morsels_pruned += os.morsels_pruned;
      report->rows_pruned += os.rows_pruned;
      report->joins_vectorized += os.joins_vectorized;
      report->probe_rows_bloom_filtered += os.rows_bloom_filtered;
      report->join_build_seconds += os.join_build_seconds;
      report->join_probe_seconds += os.join_probe_seconds;
    }
    report->peak_intermediate_bytes += peak;
  }
  return result;
}

}  // namespace lazyetl::engine
