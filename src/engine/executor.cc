#include "engine/executor.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/log.h"
#include "common/macros.h"
#include "common/time.h"
#include "engine/expr_eval.h"

namespace lazyetl::engine {

using sql::BoundAggregate;
using storage::Column;
using storage::DataType;
using storage::SelectionVector;
using storage::Table;

namespace {

bool IsIntLike(DataType t) {
  return t == DataType::kBool || t == DataType::kInt32 ||
         t == DataType::kInt64 || t == DataType::kTimestamp;
}

// Appends a type-tagged binary encoding of row `row` of `col` to `out`,
// such that two rows encode equal iff their values are equal.
void PackValue(const Column& col, size_t row, std::string* out) {
  switch (col.type()) {
    case DataType::kBool:
      out->push_back(col.bool_data()[row] ? '\1' : '\0');
      break;
    case DataType::kInt32: {
      int64_t v = col.int32_data()[row];
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kInt64:
    case DataType::kTimestamp: {
      int64_t v = col.int64_data()[row];
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kDouble: {
      double v = col.double_data()[row];
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kString: {
      const std::string& s = col.string_data()[row];
      uint32_t len = static_cast<uint32_t>(s.size());
      out->append(reinterpret_cast<const char*>(&len), sizeof(len));
      out->append(s);
      break;
    }
  }
  out->push_back('\x1f');  // field separator
}

Result<std::vector<const Column*>> ResolveColumns(
    const Table& table, const std::vector<std::string>& names) {
  std::vector<const Column*> cols;
  cols.reserve(names.size());
  for (const auto& name : names) {
    LAZYETL_ASSIGN_OR_RETURN(const Column* c, table.ColumnByName(name));
    cols.push_back(c);
  }
  return cols;
}

// Extracts a column as int64s (for record-key probing).
Result<std::vector<int64_t>> ColumnAsInt64(const Column& col) {
  if (!IsIntLike(col.type())) {
    return Status::ExecutionError("expected an integer key column");
  }
  std::vector<int64_t> out(col.size());
  switch (col.type()) {
    case DataType::kInt32:
      for (size_t i = 0; i < col.size(); ++i) out[i] = col.int32_data()[i];
      break;
    case DataType::kBool:
      for (size_t i = 0; i < col.size(); ++i) out[i] = col.bool_data()[i];
      break;
    default:
      out = col.int64_data();
      break;
  }
  return out;
}

}  // namespace

Result<Table> HashJoinTables(const Table& left, const Table& right,
                             const std::vector<std::string>& left_keys,
                             const std::vector<std::string>& right_keys) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    return Status::InvalidArgument("join key arity mismatch");
  }
  LAZYETL_ASSIGN_OR_RETURN(auto lcols, ResolveColumns(left, left_keys));
  LAZYETL_ASSIGN_OR_RETURN(auto rcols, ResolveColumns(right, right_keys));

  // Build side: left.
  std::unordered_map<std::string, std::vector<uint32_t>> build;
  build.reserve(left.num_rows() * 2);
  std::string key;
  for (size_t row = 0; row < left.num_rows(); ++row) {
    key.clear();
    for (const Column* c : lcols) PackValue(*c, row, &key);
    build[key].push_back(static_cast<uint32_t>(row));
  }

  // Probe side: right.
  SelectionVector left_sel;
  SelectionVector right_sel;
  for (size_t row = 0; row < right.num_rows(); ++row) {
    key.clear();
    for (const Column* c : rcols) PackValue(*c, row, &key);
    auto it = build.find(key);
    if (it == build.end()) continue;
    for (uint32_t lrow : it->second) {
      left_sel.push_back(lrow);
      right_sel.push_back(static_cast<uint32_t>(row));
    }
  }

  Table out = left.Gather(left_sel);
  Table right_rows = right.Gather(right_sel);
  for (size_t i = 0; i < right_rows.num_columns(); ++i) {
    LAZYETL_RETURN_NOT_OK(
        out.AddColumn(right_rows.column_name(i), right_rows.column(i)));
  }
  return out;
}

Result<Table> Executor::ExecuteScan(const PlanNode& node) {
  LAZYETL_ASSIGN_OR_RETURN(storage::TablePtr table,
                           catalog_->GetTable(node.table));
  if (node.scan_columns.empty()) {
    return *table;  // full copy with stored names
  }
  Table out;
  for (const auto& sc : node.scan_columns) {
    LAZYETL_ASSIGN_OR_RETURN(const Column* c,
                             table->ColumnByName(sc.base_column));
    LAZYETL_RETURN_NOT_OK(out.AddColumn(sc.output_name, *c));
  }
  return out;
}

Result<Table> Executor::ExecuteLazyDataScan(const PlanNode& node,
                                            ExecutionReport* report) {
  if (provider_ == nullptr) {
    return Status::ExecutionError(
        "plan contains LazyDataScan but no lazy data provider is attached");
  }
  Stopwatch extract_timer;

  if (node.children.empty()) {
    LogOp(LogCategory::kRewrite,
          "run-time rewrite: no metadata side; extracting entire repository "
          "for " + node.table);
    LAZYETL_ASSIGN_OR_RETURN(
        Table data, provider_->FetchAllRecords(node.scan_columns, report));
    report->extract_seconds += extract_timer.ElapsedSeconds();
    return data;
  }

  // Phase 1: execute the metadata side.
  LAZYETL_ASSIGN_OR_RETURN(Table meta, Execute(*node.children[0], report));

  // Phase 2 (run-time rewrite): determine the qualifying records.
  LAZYETL_ASSIGN_OR_RETURN(const Column* fid_col,
                           meta.ColumnByName(node.probe_file_id_column));
  LAZYETL_ASSIGN_OR_RETURN(const Column* seq_col,
                           meta.ColumnByName(node.probe_seq_no_column));
  LAZYETL_ASSIGN_OR_RETURN(std::vector<int64_t> fids, ColumnAsInt64(*fid_col));
  LAZYETL_ASSIGN_OR_RETURN(std::vector<int64_t> seqs, ColumnAsInt64(*seq_col));

  std::vector<RecordKey> keys;
  std::unordered_set<uint64_t> seen;
  keys.reserve(fids.size());
  for (size_t i = 0; i < fids.size(); ++i) {
    uint64_t packed = (static_cast<uint64_t>(fids[i]) << 32) ^
                      static_cast<uint64_t>(static_cast<uint32_t>(seqs[i]));
    if (seen.insert(packed).second) {
      keys.push_back({fids[i], seqs[i]});
    }
  }
  report->records_requested += keys.size();
  LogOp(LogCategory::kRewrite,
        "run-time rewrite: metadata phase selected " +
            std::to_string(keys.size()) + " records from " +
            std::to_string(meta.num_rows()) + " metadata rows");

  // Phase 3: injected operators — cache accesses and file extraction.
  LAZYETL_ASSIGN_OR_RETURN(Table data,
                           provider_->FetchRecords(keys, node.scan_columns,
                                                   report));
  report->extract_seconds += extract_timer.ElapsedSeconds();

  // Phase 4: join extracted data back to the metadata side.
  return HashJoinTables(meta, data, node.left_keys, node.right_keys);
}

Result<Table> Executor::ExecuteFilter(const PlanNode& node,
                                      ExecutionReport* report) {
  LAZYETL_ASSIGN_OR_RETURN(Table input, Execute(*node.children[0], report));
  LAZYETL_ASSIGN_OR_RETURN(SelectionVector sel,
                           EvaluatePredicate(*node.predicate, input));
  return input.Gather(sel);
}

Result<Table> Executor::ExecuteHashJoin(const PlanNode& node,
                                        ExecutionReport* report) {
  LAZYETL_ASSIGN_OR_RETURN(Table left, Execute(*node.children[0], report));
  LAZYETL_ASSIGN_OR_RETURN(Table right, Execute(*node.children[1], report));
  return HashJoinTables(left, right, node.left_keys, node.right_keys);
}

namespace {

// Typed accumulator for one aggregate across all groups.
class Accumulator {
 public:
  Accumulator(const BoundAggregate& agg, const Column* arg)
      : function_(agg.function), out_type_(agg.type), arg_(arg) {}

  void Resize(size_t groups) {
    count_.resize(groups, 0);
    if (function_ == "AVG" || function_ == "SUM") {
      dsum_.resize(groups, 0.0);
      isum_.resize(groups, 0);
    } else if (function_ == "MIN" || function_ == "MAX") {
      if (arg_ && arg_->type() == DataType::kString) {
        sext_.resize(groups);
      } else if (arg_ && arg_->type() == DataType::kDouble) {
        dext_.resize(groups, 0.0);
      } else {
        iext_.resize(groups, 0);
      }
    }
  }

  void Update(size_t group, size_t row) {
    bool first = count_[group] == 0;
    ++count_[group];
    if (function_ == "COUNT") return;
    if (function_ == "AVG" || function_ == "SUM") {
      if (arg_->type() == DataType::kDouble) {
        dsum_[group] += arg_->double_data()[row];
      } else {
        int64_t v = IntValueAt(row);
        isum_[group] += v;
        dsum_[group] += static_cast<double>(v);
      }
      return;
    }
    // MIN / MAX
    bool want_min = function_ == "MIN";
    if (!sext_.empty()) {
      const std::string& v = arg_->string_data()[row];
      if (first || (want_min ? v < sext_[group] : v > sext_[group])) {
        sext_[group] = v;
      }
    } else if (!dext_.empty()) {
      double v = arg_->double_data()[row];
      if (first || (want_min ? v < dext_[group] : v > dext_[group])) {
        dext_[group] = v;
      }
    } else {
      int64_t v = IntValueAt(row);
      if (first || (want_min ? v < iext_[group] : v > iext_[group])) {
        iext_[group] = v;
      }
    }
  }

  Result<Column> Finish(size_t groups) const {
    if (function_ == "COUNT") {
      std::vector<int64_t> out(groups);
      for (size_t g = 0; g < groups; ++g) out[g] = count_[g];
      return Column::FromInt64(std::move(out));
    }
    if (function_ == "AVG") {
      std::vector<double> out(groups);
      for (size_t g = 0; g < groups; ++g) {
        out[g] = count_[g] ? dsum_[g] / static_cast<double>(count_[g]) : 0.0;
      }
      return Column::FromDouble(std::move(out));
    }
    if (function_ == "SUM") {
      if (out_type_ == DataType::kDouble) {
        return Column::FromDouble(dsum_);
      }
      return Column::FromInt64(isum_);
    }
    // MIN / MAX: emit in the argument's type.
    if (!sext_.empty()) return Column::FromString(sext_);
    if (!dext_.empty()) return Column::FromDouble(dext_);
    switch (out_type_) {
      case DataType::kInt32: {
        std::vector<int32_t> out(groups);
        for (size_t g = 0; g < groups; ++g) {
          out[g] = static_cast<int32_t>(iext_[g]);
        }
        return Column::FromInt32(std::move(out));
      }
      case DataType::kTimestamp:
        return Column::FromTimestamp(iext_);
      default:
        return Column::FromInt64(iext_);
    }
  }

 private:
  int64_t IntValueAt(size_t row) const {
    switch (arg_->type()) {
      case DataType::kInt32:
        return arg_->int32_data()[row];
      case DataType::kBool:
        return arg_->bool_data()[row];
      default:
        return arg_->int64_data()[row];
    }
  }

  std::string function_;
  DataType out_type_;
  const Column* arg_;
  std::vector<int64_t> count_;
  std::vector<double> dsum_;
  std::vector<int64_t> isum_;
  std::vector<int64_t> iext_;
  std::vector<double> dext_;
  std::vector<std::string> sext_;
};

}  // namespace

Result<Table> Executor::ExecuteAggregate(const PlanNode& node,
                                         ExecutionReport* report) {
  LAZYETL_ASSIGN_OR_RETURN(Table input, Execute(*node.children[0], report));

  // Evaluate grouping expressions and aggregate arguments once, over the
  // whole input.
  std::vector<Column> group_cols;
  for (const auto& g : node.group_exprs) {
    LAZYETL_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*g, input));
    group_cols.push_back(std::move(c));
  }
  std::vector<Column> arg_cols;
  arg_cols.reserve(node.aggregates.size());
  for (const auto& a : node.aggregates) {
    if (a.arg) {
      LAZYETL_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*a.arg, input));
      arg_cols.push_back(std::move(c));
    } else {
      arg_cols.emplace_back(DataType::kInt64);  // COUNT(*): unused
    }
  }

  // Assign group ids.
  const size_t rows = input.num_rows();
  std::unordered_map<std::string, uint32_t> group_index;
  std::vector<uint32_t> row_group(rows);
  std::vector<uint32_t> group_rep;  // representative row per group
  std::string key;
  for (size_t row = 0; row < rows; ++row) {
    key.clear();
    for (const Column& c : group_cols) PackValue(c, row, &key);
    auto [it, inserted] = group_index.emplace(
        key, static_cast<uint32_t>(group_rep.size()));
    if (inserted) group_rep.push_back(static_cast<uint32_t>(row));
    row_group[row] = it->second;
  }
  size_t num_groups = group_rep.size();
  // Grand aggregate over an empty input still yields one row (COUNT = 0),
  // matching the "no NULLs" simplification documented in the README.
  bool synthetic_empty_group = false;
  if (num_groups == 0 && node.group_exprs.empty()) {
    num_groups = 1;
    synthetic_empty_group = true;
  }

  std::vector<Accumulator> accs;
  accs.reserve(node.aggregates.size());
  for (size_t i = 0; i < node.aggregates.size(); ++i) {
    accs.emplace_back(node.aggregates[i],
                      node.aggregates[i].arg ? &arg_cols[i] : nullptr);
    accs.back().Resize(num_groups);
  }
  for (size_t row = 0; row < rows; ++row) {
    for (auto& acc : accs) acc.Update(row_group[row], row);
  }

  // Output: group columns (named by expression) + one column per aggregate.
  Table out;
  if (!synthetic_empty_group) {
    SelectionVector rep_sel(group_rep.begin(), group_rep.end());
    for (size_t i = 0; i < group_cols.size(); ++i) {
      LAZYETL_RETURN_NOT_OK(out.AddColumn(node.group_exprs[i]->ToString(),
                                          group_cols[i].Gather(rep_sel)));
    }
  }
  for (size_t i = 0; i < node.aggregates.size(); ++i) {
    LAZYETL_ASSIGN_OR_RETURN(Column c, accs[i].Finish(num_groups));
    LAZYETL_RETURN_NOT_OK(
        out.AddColumn("#agg" + std::to_string(i), std::move(c)));
  }
  return out;
}

Result<Table> Executor::ExecuteProject(const PlanNode& node,
                                       ExecutionReport* report) {
  LAZYETL_ASSIGN_OR_RETURN(Table input, Execute(*node.children[0], report));
  Table out;
  for (size_t i = 0; i < node.project_exprs.size(); ++i) {
    LAZYETL_ASSIGN_OR_RETURN(Column c,
                             EvaluateExpr(*node.project_exprs[i], input));
    LAZYETL_RETURN_NOT_OK(out.AddColumn(node.project_names[i], std::move(c)));
  }
  return out;
}

Result<Table> Executor::ExecuteDistinct(const PlanNode& node,
                                        ExecutionReport* report) {
  LAZYETL_ASSIGN_OR_RETURN(Table input, Execute(*node.children[0], report));
  std::unordered_set<std::string> seen;
  seen.reserve(input.num_rows());
  SelectionVector keep;
  std::string key;
  for (size_t row = 0; row < input.num_rows(); ++row) {
    key.clear();
    for (size_t c = 0; c < input.num_columns(); ++c) {
      PackValue(input.column(c), row, &key);
    }
    if (seen.insert(key).second) keep.push_back(static_cast<uint32_t>(row));
  }
  return input.Gather(keep);
}

Result<Table> Executor::ExecuteSort(const PlanNode& node,
                                    ExecutionReport* report) {
  LAZYETL_ASSIGN_OR_RETURN(Table input, Execute(*node.children[0], report));
  std::vector<Column> sort_cols;
  for (const auto& item : node.order_items) {
    LAZYETL_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*item.expr, input));
    sort_cols.push_back(std::move(c));
  }
  std::vector<uint32_t> idx(input.num_rows());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<uint32_t>(i);

  auto compare_rows = [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < sort_cols.size(); ++k) {
      const Column& c = sort_cols[k];
      bool asc = node.order_items[k].ascending;
      int cmp = 0;
      if (c.type() == DataType::kString) {
        cmp = c.string_data()[a].compare(c.string_data()[b]);
      } else if (c.type() == DataType::kDouble) {
        double va = c.double_data()[a];
        double vb = c.double_data()[b];
        cmp = va < vb ? -1 : (va > vb ? 1 : 0);
      } else {
        double va = c.NumericAt(a);
        double vb = c.NumericAt(b);
        if (IsIntLike(c.type())) {
          int64_t ia = static_cast<int64_t>(va);
          int64_t ib = static_cast<int64_t>(vb);
          // Re-read exactly for int64/timestamp columns.
          if (c.type() != DataType::kInt32 && c.type() != DataType::kBool) {
            ia = c.int64_data()[a];
            ib = c.int64_data()[b];
          }
          cmp = ia < ib ? -1 : (ia > ib ? 1 : 0);
        } else {
          cmp = va < vb ? -1 : (va > vb ? 1 : 0);
        }
      }
      if (cmp != 0) return asc ? cmp < 0 : cmp > 0;
    }
    return false;
  };
  std::stable_sort(idx.begin(), idx.end(), compare_rows);
  return input.Gather(idx);
}

Result<Table> Executor::ExecuteLimit(const PlanNode& node,
                                     ExecutionReport* report) {
  LAZYETL_ASSIGN_OR_RETURN(Table input, Execute(*node.children[0], report));
  size_t n = std::min<size_t>(input.num_rows(),
                              static_cast<size_t>(std::max<int64_t>(0, node.limit)));
  SelectionVector sel(n);
  for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
  return input.Gather(sel);
}

Result<Table> Executor::Execute(const PlanNode& plan, ExecutionReport* report) {
  switch (plan.type) {
    case PlanNodeType::kScan:
      return ExecuteScan(plan);
    case PlanNodeType::kLazyDataScan:
      return ExecuteLazyDataScan(plan, report);
    case PlanNodeType::kFilter:
      return ExecuteFilter(plan, report);
    case PlanNodeType::kHashJoin:
      return ExecuteHashJoin(plan, report);
    case PlanNodeType::kAggregate:
      return ExecuteAggregate(plan, report);
    case PlanNodeType::kProject:
      return ExecuteProject(plan, report);
    case PlanNodeType::kDistinct:
      return ExecuteDistinct(plan, report);
    case PlanNodeType::kSort:
      return ExecuteSort(plan, report);
    case PlanNodeType::kLimit:
      return ExecuteLimit(plan, report);
  }
  return Status::Internal("unhandled plan node type");
}

}  // namespace lazyetl::engine
