#include "engine/executor.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "common/memory_budget.h"
#include "common/spill.h"
#include "common/thread_pool.h"
#include "engine/query_context.h"
#include "engine/operators/batch_cursor.h"
#include "engine/operators/join_build.h"
#include "engine/operators/operator.h"

namespace lazyetl::engine {

using storage::SelectionVector;
using storage::Table;
using storage::TableSlice;

namespace {

// Default streaming adapter: one chunk holding the whole fetched table.
// Providers that can extract incrementally override StreamRecords.
class SingleChunkStream : public RecordStream {
 public:
  explicit SingleChunkStream(Table table) : table_(std::move(table)) {}

  Result<bool> Next(Table* out) override {
    if (done_) return false;
    done_ = true;
    *out = std::move(table_);
    return true;
  }

 private:
  Table table_;
  bool done_ = false;
};

// Cache-aware morsel sizing: LAZYETL_MORSEL_ROWS overrides the default
// rows-per-batch (and thus per-morsel) when the caller did not configure
// one explicitly. Values outside [64, 1M] — or non-numeric ones — are
// ignored; results are identical at any setting, only locality changes.
size_t ResolveMorselRows(size_t configured) {
  if (configured != kDefaultBatchRows) return configured;
  const char* env = std::getenv("LAZYETL_MORSEL_ROWS");
  if (env == nullptr || *env == '\0') return configured;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return configured;
  if (v < 64 || v > (1ull << 20)) return configured;
  return static_cast<size_t>(v);
}

}  // namespace

Result<std::unique_ptr<RecordStream>> LazyDataProvider::StreamRecords(
    const std::vector<RecordKey>& keys, const std::vector<ScanColumn>& columns,
    size_t batch_rows, ExecutionReport* report) {
  (void)batch_rows;
  LAZYETL_ASSIGN_OR_RETURN(Table data, FetchRecords(keys, columns, report));
  return std::unique_ptr<RecordStream>(
      std::make_unique<SingleChunkStream>(std::move(data)));
}

Result<std::unique_ptr<RecordStream>> LazyDataProvider::StreamAllRecords(
    const std::vector<ScanColumn>& columns, size_t batch_rows,
    ExecutionReport* report) {
  (void)batch_rows;
  LAZYETL_ASSIGN_OR_RETURN(Table data, FetchAllRecords(columns, report));
  return std::unique_ptr<RecordStream>(
      std::make_unique<SingleChunkStream>(std::move(data)));
}

Result<Table> HashJoinTables(const Table& left, const Table& right,
                             const std::vector<std::string>& left_keys,
                             const std::vector<std::string>& right_keys) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    return Status::InvalidArgument("join key arity mismatch");
  }
  JoinBuild build;
  LAZYETL_RETURN_NOT_OK(build.Init(&left, left_keys));
  TableSlice probe = right.Slice(0, right.num_rows());
  SelectionVector left_sel;
  SelectionVector right_sel;
  LAZYETL_RETURN_NOT_OK(build.Probe(probe, right_keys, &left_sel, &right_sel));

  Table out = left.Gather(left_sel);
  Table right_rows = right.Gather(right_sel);
  for (size_t i = 0; i < right_rows.num_columns(); ++i) {
    LAZYETL_RETURN_NOT_OK(
        out.AddColumn(right_rows.column_name(i), right_rows.column(i)));
  }
  return out;
}

ExecutionCursor::ExecutionCursor() = default;

ExecutionCursor::~ExecutionCursor() { Close(); }

// Report finalization, exactly once: the drive loop is cancelled/joined,
// the operator tree closed, and the per-operator counters aggregated into
// the report (skipped on error, matching the historical Execute). The
// standalone QueryContext (budget + spill dir) is released here too, so
// an abandoned cursor frees its resources at Close, not at destruction.
void ExecutionCursor::Finalize(bool with_stats) {
  if (finalized_) return;
  finalized_ = true;
  if (cursor_ != nullptr) {
    peak_buffered_batches_ = cursor_->peak_buffered_batches();
    peak_buffered_bytes_ = cursor_->peak_buffered_bytes();
    cursor_->Close();
  }
  if (root_ != nullptr) {
    root_->Close();
    if (report_ != nullptr && with_stats) {
      size_t base = report_->operator_stats.size();
      root_->AppendStats(&report_->operator_stats);
      uint64_t peak = 0;
      for (size_t i = base; i < report_->operator_stats.size(); ++i) {
        const OperatorStats& os = report_->operator_stats[i];
        peak += os.state_bytes + os.peak_batch_bytes;
        report_->spilled_bytes += os.spilled_bytes;
        report_->spill_files += os.spill_files;
        report_->spill_compressed_bytes += os.spill_compressed_bytes;
        report_->spill_write_wait_seconds += os.spill_write_wait_seconds;
        report_->groups_vectorized += os.groups_vectorized;
        report_->morsels_pruned += os.morsels_pruned;
        report_->rows_pruned += os.rows_pruned;
        report_->joins_vectorized += os.joins_vectorized;
        report_->probe_rows_bloom_filtered += os.rows_bloom_filtered;
        report_->join_build_seconds += os.join_build_seconds;
        report_->join_probe_seconds += os.join_probe_seconds;
      }
      report_->peak_intermediate_bytes += peak;
    }
  }
  cursor_.reset();
  root_.reset();
  exec_ctx_.reset();
  local_ctx_.reset();
}

Result<bool> ExecutionCursor::Next(Batch* out) {
  if (closed_ || finished_ || finalized_) return false;
  auto more = cursor_->Next(out);
  if (!more.ok()) {
    finished_ = true;
    Finalize(/*with_stats=*/false);
    return more;
  }
  if (!*more) {
    finished_ = true;
    Finalize(/*with_stats=*/true);
  }
  return more;
}

void ExecutionCursor::Close() {
  if (closed_) return;
  closed_ = true;
  Finalize(/*with_stats=*/true);
}

uint64_t ExecutionCursor::peak_buffered_batches() const {
  return cursor_ != nullptr ? cursor_->peak_buffered_batches()
                            : peak_buffered_batches_;
}

uint64_t ExecutionCursor::peak_buffered_bytes() const {
  return cursor_ != nullptr ? cursor_->peak_buffered_bytes()
                            : peak_buffered_bytes_;
}

Result<std::unique_ptr<ExecutionCursor>> Executor::OpenCursor(
    const PlanNode& plan, ExecutionReport* report, QueryContext* qctx,
    size_t window_batches) {
  size_t threads = options_.query_threads;
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, common::ThreadPool::kMaxThreads);

  // Memory governance: the per-query budget chains to the process-wide
  // budget so a global cap across concurrent queries also holds. An
  // admitted query brings its context (scheduler-carved budget, spill
  // manager labelled with the ticket id); standalone callers get one built
  // here from the options (else the LAZYETL_MEMORY_BUDGET environment
  // variable). Either way the spill directory lives exactly as long as
  // the cursor — released at Close on success, abandon, and error alike.
  std::unique_ptr<ExecutionCursor> cursor(new ExecutionCursor());
  if (qctx == nullptr) {
    cursor->local_ctx_ = std::make_unique<QueryContext>(
        common::ResolvePerQueryBudgetBytes(options_.memory_budget_bytes),
        options_.spill_dir);
    qctx = cursor->local_ctx_.get();
  }
  cursor->qctx_ = qctx;
  cursor->report_ = report;

  size_t batch_rows = ResolveMorselRows(options_.batch_rows);
  cursor->exec_ctx_ = std::make_unique<ExecContext>(
      ExecContext{catalog_, provider_, report, batch_rows, threads,
                  qctx->budget(), qctx->spill()});
  LAZYETL_ASSIGN_OR_RETURN(
      cursor->root_, BuildOperatorTree(plan, cursor->exec_ctx_.get()));
  LAZYETL_RETURN_NOT_OK(cursor->root_->Open());

  // Admission-derived report fields are known now; set them at open so
  // even an abandoned cursor reports them (the materializing path set
  // them after the drain, error or not — same observable result).
  if (report != nullptr) {
    report->query_threads = threads;
    report->morsel_rows = batch_rows == SIZE_MAX ? 0 : batch_rows;
    report->memory_budget_bytes = qctx->admitted_budget_bytes();
    report->ticket_id = qctx->ticket_id();
    report->queue_wait_seconds = qctx->queue_wait_seconds();
    report->admitted_budget_bytes = qctx->admitted_budget_bytes();
    report->priority =
        common::QueryPriorityToString(qctx->admission().priority);
    report->client_id = qctx->admission().client_id;
    report->estimated_footprint_bytes = qctx->admission().estimated_bytes;
  }

  cursor->cursor_ = std::make_unique<BatchCursor>(
      cursor->root_.get(), BatchCursor::Options{threads, window_batches});
  return cursor;
}

Result<Table> Executor::Execute(const PlanNode& plan, ExecutionReport* report,
                                QueryContext* qctx) {
  // The materializing path is a drain loop over the streaming cursor with
  // an unbounded window: when the root pipeline is parallel-safe,
  // `threads` workers pull morsels concurrently and the result table is
  // reassembled in seq order — byte-identical to the serial drain.
  LAZYETL_ASSIGN_OR_RETURN(std::unique_ptr<ExecutionCursor> cursor,
                           OpenCursor(plan, report, qctx,
                                      /*window_batches=*/0));
  Table result;
  bool first = true;
  Batch batch;
  while (true) {
    LAZYETL_ASSIGN_OR_RETURN(bool more, cursor->Next(&batch));
    if (!more) break;
    if (first) {
      result = batch.view.Materialize();
      first = false;
    } else {
      LAZYETL_RETURN_NOT_OK(result.AppendSlice(batch.view));
    }
    batch = Batch();
  }
  cursor->Close();
  return result;
}

}  // namespace lazyetl::engine
