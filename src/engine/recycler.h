// Recycler: the intermediate-result cache implementing the paper's lazy
// loading (§3.3).
//
// "Materialization of the extracted and transformed data is simply caching
// the result of a view definition" — here at record granularity: the unit
// of caching is one decoded, transformed mSEED record (its sample_time and
// sample_value vectors). An LRU policy bounds the cache to a byte budget.
// Each entry remembers the source file's modification time at admission;
// lazy refresh compares it against the file's current mtime and re-extracts
// when outdated.
//
// Concurrency: both caches are shared by every in-flight query of a
// Warehouse. The structures are mutex-guarded and lookups hand out
// shared_ptr handles, so a hit stays valid even if the entry is evicted by
// a concurrent admission. Hit/miss/eviction counters are atomics —
// observable (Warehouse::Stats) without taking the cache lock and race-free
// under any interleaving.
//
// Memory governance: a Recycler can additionally charge its resident bytes
// to a shared `pool` (common::MemoryPool — itself chained to the
// process-global budget), so every cache tier competes in one governed
// pool. Resident cache bytes are bounded to half of a finite global cap —
// evictions only run at admission time, so a larger share could pin bytes
// queries have no way to reclaim — and under pressure admission evicts LRU
// entries (cache contents only ever affect timings, never results),
// bounded per admission so a transient spike cannot wipe the working set;
// what cannot be admitted is counted in `rejected`. The recycler also
// registers a pool yielder, so admissions of the other tiers can reclaim
// its least-recently-used entries.
//
// A second, optional layer (ResultRecycler) caches whole query results —
// "usually the end result of a view is saved in the cache" — with
// conservative invalidation: a cached result lists the (file, mtime) pairs
// it depends on and is only served while all of them are unchanged.

#ifndef LAZYETL_ENGINE_RECYCLER_H_
#define LAZYETL_ENGINE_RECYCLER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/memory_pool.h"
#include "common/time.h"
#include "storage/table.h"

namespace lazyetl::engine {

// Identity of one record in the repository.
struct RecordKey {
  int64_t file_id = 0;
  int64_t seq_no = 0;

  bool operator==(const RecordKey& other) const {
    return file_id == other.file_id && seq_no == other.seq_no;
  }
};

struct RecordKeyHash {
  size_t operator()(const RecordKey& k) const {
    uint64_t h = static_cast<uint64_t>(k.file_id) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<uint64_t>(k.seq_no) + 0x9E3779B97F4A7C15ULL +
         (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

// One cached record: already extracted *and* transformed.
struct CachedRecord {
  std::vector<int64_t> sample_times;   // nanosecond timestamps
  std::vector<int32_t> sample_values;  // raw counts
  NanoTime file_mtime = 0;             // source file mtime at admission
  NanoTime admitted_at = 0;
  uint64_t bytes = 0;                  // accounted against the budget
};

// Eviction-safe handle to a cache entry.
using CachedRecordPtr = std::shared_ptr<const CachedRecord>;

// Value snapshot of the cache counters (the live counters are atomics).
struct RecyclerStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t stale = 0;
  uint64_t admissions = 0;
  uint64_t evictions = 0;
  uint64_t rejected = 0;     // admissions refused under global pressure
  uint64_t current_bytes = 0;
  uint64_t budget_bytes = 0;
  uint64_t entries = 0;
};

class Recycler {
 public:
  // `budget_bytes` caps the summed CachedRecord::bytes; admission evicts
  // LRU entries until the new entry fits. Entries larger than the whole
  // budget are not admitted. `pool` (may be null) is additionally charged
  // for every resident byte — under pool or global pressure admission
  // evicts, and gives up rather than exceed the cap. The pool must
  // outlive the recycler, and the recycler must be destroyed only while
  // no other tier is admitting (its registered yielder runs lock-step
  // with their admissions).
  explicit Recycler(uint64_t budget_bytes,
                    common::MemoryPool* pool = nullptr);
  ~Recycler();

  Recycler(const Recycler&) = delete;
  Recycler& operator=(const Recycler&) = delete;

  // Returns the entry (bumped to most-recently-used) or null. The handle
  // stays valid after eviction. `current_file_mtime` triggers the
  // staleness check: an entry whose admission mtime differs is erased and
  // counted as stale. When `stale` is non-null it is set to whether the
  // miss was due to staleness. Thread-safe.
  CachedRecordPtr Lookup(const RecordKey& key, NanoTime current_file_mtime,
                         bool* stale = nullptr);

  // Inserts or replaces; computes entry.bytes if zero. Thread-safe.
  void Admit(const RecordKey& key, CachedRecord record);

  // Drops all entries of a file (used when a file disappears).
  void InvalidateFile(int64_t file_id);

  void Clear();

  // Race-free counter snapshot (no cache lock taken for the counters).
  RecyclerStats stats() const;
  void ResetCounters();

  // Snapshot of cached keys in LRU order (least recent first) — lets the
  // repo browser show "the contents of the cache" (demo point 7).
  std::vector<RecordKey> Keys() const;

 private:
  struct Node {
    CachedRecordPtr record;
    std::list<RecordKey>::iterator lru_it;
  };

  // Both require mu_ held. EvictOneLocked returns the victim's bytes.
  uint64_t EvictOneLocked();
  void EraseLocked(const RecordKey& key);

  const uint64_t budget_bytes_;
  common::MemoryPool* const pool_;
  common::MemoryPool::YielderId yielder_id_ = -1;

  mutable std::mutex mu_;  // guards map_, lru_
  std::unordered_map<RecordKey, Node, RecordKeyHash> map_;
  std::list<RecordKey> lru_;  // front = least recently used

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> stale_{0};
  std::atomic<uint64_t> admissions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> current_bytes_{0};
  std::atomic<uint64_t> entries_{0};
};

// Dependencies of a cached query result.
struct ResultDependency {
  int64_t file_id = 0;
  std::string path;
  NanoTime mtime = 0;
};

struct CachedResult {
  storage::Table table;
  std::vector<ResultDependency> deps;
  NanoTime admitted_at = 0;
};

using CachedResultPtr = std::shared_ptr<const CachedResult>;

// Whole-query result cache keyed by SQL text. Validation is the caller's
// job (it knows how to stat files); ValidateAndGet takes a callback that
// returns the current mtime for a dependency or a negative value when the
// file is gone. Thread-safe; the dependency stats run outside the cache
// lock so slow filesystems never serialise concurrent queries here.
class ResultRecycler {
 public:
  explicit ResultRecycler(size_t max_entries = 64) : max_entries_(max_entries) {}

  ResultRecycler(const ResultRecycler&) = delete;
  ResultRecycler& operator=(const ResultRecycler&) = delete;

  template <typename MtimeFn>
  CachedResultPtr ValidateAndGet(const std::string& sql, MtimeFn mtime_fn) {
    CachedResultPtr entry;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = map_.find(sql);
      if (it != map_.end()) entry = it->second;
    }
    if (entry == nullptr) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    for (const auto& dep : entry->deps) {
      NanoTime current = mtime_fn(dep);
      if (current != dep.mtime) {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(sql);
        // Only drop the entry we validated; a concurrent re-admission
        // under the same SQL may already be fresher.
        if (it != map_.end() && it->second == entry) map_.erase(it);
        invalidations_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
      }
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return entry;
  }

  void Admit(const std::string& sql, CachedResult result);
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }
  size_t entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  const size_t max_entries_;
  mutable std::mutex mu_;  // guards map_
  std::unordered_map<std::string, CachedResultPtr> map_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_RECYCLER_H_
