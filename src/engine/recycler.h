// Recycler: the intermediate-result cache implementing the paper's lazy
// loading (§3.3).
//
// "Materialization of the extracted and transformed data is simply caching
// the result of a view definition" — here at record granularity: the unit
// of caching is one decoded, transformed mSEED record (its sample_time and
// sample_value vectors). An LRU policy bounds the cache to a byte budget.
// Each entry remembers the source file's modification time at admission;
// lazy refresh compares it against the file's current mtime and re-extracts
// when outdated.
//
// A second, optional layer (ResultRecycler) caches whole query results —
// "usually the end result of a view is saved in the cache" — with
// conservative invalidation: a cached result lists the (file, mtime) pairs
// it depends on and is only served while all of them are unchanged.

#ifndef LAZYETL_ENGINE_RECYCLER_H_
#define LAZYETL_ENGINE_RECYCLER_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "storage/table.h"

namespace lazyetl::engine {

// Identity of one record in the repository.
struct RecordKey {
  int64_t file_id = 0;
  int64_t seq_no = 0;

  bool operator==(const RecordKey& other) const {
    return file_id == other.file_id && seq_no == other.seq_no;
  }
};

struct RecordKeyHash {
  size_t operator()(const RecordKey& k) const {
    uint64_t h = static_cast<uint64_t>(k.file_id) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<uint64_t>(k.seq_no) + 0x9E3779B97F4A7C15ULL +
         (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

// One cached record: already extracted *and* transformed.
struct CachedRecord {
  std::vector<int64_t> sample_times;   // nanosecond timestamps
  std::vector<int32_t> sample_values;  // raw counts
  NanoTime file_mtime = 0;             // source file mtime at admission
  NanoTime admitted_at = 0;
  uint64_t bytes = 0;                  // accounted against the budget
};

struct RecyclerStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t stale = 0;
  uint64_t admissions = 0;
  uint64_t evictions = 0;
  uint64_t current_bytes = 0;
  uint64_t budget_bytes = 0;
  uint64_t entries = 0;
};

class Recycler {
 public:
  // `budget_bytes` caps the summed CachedRecord::bytes; admission evicts
  // LRU entries until the new entry fits. Entries larger than the whole
  // budget are not admitted.
  explicit Recycler(uint64_t budget_bytes);

  Recycler(const Recycler&) = delete;
  Recycler& operator=(const Recycler&) = delete;

  // Returns the entry and bumps it to most-recently-used, or nullptr.
  // `current_file_mtime` triggers the staleness check: an entry whose
  // admission mtime differs is erased and counted as stale. When `stale`
  // is non-null it is set to whether the miss was due to staleness.
  const CachedRecord* Lookup(const RecordKey& key, NanoTime current_file_mtime,
                             bool* stale = nullptr);

  // Inserts or replaces; computes entry.bytes if zero.
  void Admit(const RecordKey& key, CachedRecord record);

  // Drops all entries of a file (used when a file disappears).
  void InvalidateFile(int64_t file_id);

  void Clear();

  const RecyclerStats& stats() const { return stats_; }
  void ResetCounters();

  // Snapshot of cached keys in LRU order (least recent first) — lets the
  // repo browser show "the contents of the cache" (demo point 7).
  std::vector<RecordKey> Keys() const;

 private:
  struct Node {
    CachedRecord record;
    std::list<RecordKey>::iterator lru_it;
  };

  void EvictOne();
  void Erase(const RecordKey& key);

  uint64_t budget_bytes_;
  std::unordered_map<RecordKey, Node, RecordKeyHash> map_;
  std::list<RecordKey> lru_;  // front = least recently used
  RecyclerStats stats_;
};

// Dependencies of a cached query result.
struct ResultDependency {
  int64_t file_id = 0;
  std::string path;
  NanoTime mtime = 0;
};

struct CachedResult {
  storage::Table table;
  std::vector<ResultDependency> deps;
  NanoTime admitted_at = 0;
};

// Whole-query result cache keyed by SQL text. Validation is the caller's
// job (it knows how to stat files); ValidateAndGet takes a callback that
// returns the current mtime for a dependency or a negative value when the
// file is gone.
class ResultRecycler {
 public:
  explicit ResultRecycler(size_t max_entries = 64) : max_entries_(max_entries) {}

  ResultRecycler(const ResultRecycler&) = delete;
  ResultRecycler& operator=(const ResultRecycler&) = delete;

  template <typename MtimeFn>
  const CachedResult* ValidateAndGet(const std::string& sql, MtimeFn mtime_fn) {
    auto it = map_.find(sql);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    for (const auto& dep : it->second.deps) {
      NanoTime current = mtime_fn(dep);
      if (current != dep.mtime) {
        map_.erase(it);
        ++invalidations_;
        return nullptr;
      }
    }
    ++hits_;
    return &it->second;
  }

  void Admit(const std::string& sql, CachedResult result);
  void Clear() { map_.clear(); }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t invalidations() const { return invalidations_; }
  size_t entries() const { return map_.size(); }

 private:
  size_t max_entries_;
  std::unordered_map<std::string, CachedResult> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_RECYCLER_H_
