#include "engine/expr_eval.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>

#include "common/macros.h"
#include "engine/kernels.h"
#include "engine/pruning.h"

namespace lazyetl::engine {

using sql::BinaryOp;
using sql::BoundExpr;
using sql::ExprKind;
using sql::UnaryOp;
using storage::Column;
using storage::ColumnSlice;
using storage::DataType;
using storage::SelectionVector;
using storage::Table;
using storage::TableSlice;
using storage::Value;

namespace {

// Evaluation source: either a whole table or a batch slice. Column refs
// resolve to batch-local columns — for a slice, only the viewed rows are
// materialised, keeping per-expression memory bounded by the batch size.
struct EvalInput {
  size_t num_rows = 0;
  const Table* table = nullptr;
  const TableSlice* slice = nullptr;

  // Dictionary-encoded string columns are decoded here, so everything the
  // evaluator computes on is plain — encoded predicates take the code-space
  // fast path in EvaluatePredicate instead and never reach this copy.
  Result<Column> Resolve(const std::string& name) const {
    if (table != nullptr) {
      auto c = table->ColumnByName(name);
      if (!c.ok()) return c.status();
      return (*c)->dict_encoded() ? (*c)->Decoded() : **c;
    }
    auto cs = slice->ColumnByName(name);
    if (!cs.ok()) return cs.status();
    Column col = cs->Materialize();
    if (col.dict_encoded()) col.DecodeInPlace();
    return col;
  }

  // Whether `name` resolves to a column (precomputed-expression probe).
  bool Has(const std::string& name) const {
    if (table != nullptr) return table->ColumnIndex(name).ok();
    return slice->ColumnIndex(name).ok();
  }

  // Raw (possibly encoded) column and the base offset of the viewed rows —
  // the zero-copy access path for the vectorized predicate kernels.
  const Column* Raw(const std::string& name, size_t* base_offset) const {
    if (table != nullptr) {
      auto c = table->ColumnByName(name);
      if (!c.ok()) return nullptr;
      *base_offset = 0;
      return *c;
    }
    auto i = slice->ColumnIndex(name);
    if (!i.ok()) return nullptr;
    *base_offset = slice->offset();
    return &slice->column(*i);
  }
};

EvalInput FromTable(const Table& t) { return {t.num_rows(), &t, nullptr}; }
EvalInput FromSlice(const TableSlice& s) { return {s.num_rows(), nullptr, &s}; }

// Physically integer-valued types. Comparing them through double would
// corrupt nanosecond timestamps (2^63 > 2^53), so the evaluator keeps an
// exact int64 path.
bool IsIntLike(DataType t) {
  return t == DataType::kBool || t == DataType::kInt32 ||
         t == DataType::kInt64 || t == DataType::kTimestamp;
}

std::vector<int64_t> ToInt64Vector(const Column& c) {
  std::vector<int64_t> out(c.size());
  switch (c.type()) {
    case DataType::kBool: {
      const auto& v = c.bool_data();
      for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] ? 1 : 0;
      break;
    }
    case DataType::kInt32: {
      const auto& v = c.int32_data();
      for (size_t i = 0; i < v.size(); ++i) out[i] = v[i];
      break;
    }
    case DataType::kInt64:
    case DataType::kTimestamp:
      out = c.int64_data();
      break;
    case DataType::kDouble: {
      const auto& v = c.double_data();
      for (size_t i = 0; i < v.size(); ++i) {
        out[i] = static_cast<int64_t>(v[i]);
      }
      break;
    }
    case DataType::kString:
      break;  // callers exclude strings
  }
  return out;
}

std::vector<double> ToDoubleVector(const Column& c) {
  std::vector<double> out(c.size());
  for (size_t i = 0; i < c.size(); ++i) out[i] = c.NumericAt(i);
  return out;
}

// Constant column of `n` copies of `v`.
Result<Column> BroadcastLiteral(const Value& v, size_t n) {
  switch (v.type()) {
    case DataType::kBool:
      return Column::FromBool(std::vector<uint8_t>(n, v.bool_value() ? 1 : 0));
    case DataType::kInt32:
      return Column::FromInt32(std::vector<int32_t>(n, v.int32_value()));
    case DataType::kInt64:
      return Column::FromInt64(std::vector<int64_t>(n, v.int64_value()));
    case DataType::kDouble:
      return Column::FromDouble(std::vector<double>(n, v.double_value()));
    case DataType::kString:
      return Column::FromString(std::vector<std::string>(n, v.string_value()));
    case DataType::kTimestamp:
      return Column::FromTimestamp(
          std::vector<int64_t>(n, v.timestamp_value()));
  }
  return Status::Internal("unhandled literal type");
}

template <typename T, typename Cmp>
std::vector<uint8_t> CompareVectors(const std::vector<T>& a,
                                    const std::vector<T>& b, Cmp cmp) {
  std::vector<uint8_t> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = cmp(a[i], b[i]) ? 1 : 0;
  return out;
}

template <typename T>
Result<Column> ApplyComparison(BinaryOp op, const std::vector<T>& a,
                               const std::vector<T>& b) {
  switch (op) {
    case BinaryOp::kEq:
      return Column::FromBool(CompareVectors(a, b, std::equal_to<T>()));
    case BinaryOp::kNe:
      return Column::FromBool(CompareVectors(a, b, std::not_equal_to<T>()));
    case BinaryOp::kLt:
      return Column::FromBool(CompareVectors(a, b, std::less<T>()));
    case BinaryOp::kLe:
      return Column::FromBool(CompareVectors(a, b, std::less_equal<T>()));
    case BinaryOp::kGt:
      return Column::FromBool(CompareVectors(a, b, std::greater<T>()));
    case BinaryOp::kGe:
      return Column::FromBool(CompareVectors(a, b, std::greater_equal<T>()));
    default:
      return Status::Internal("not a comparison operator");
  }
}

Result<Column> EvaluateComparison(BinaryOp op, const Column& lhs,
                                  const Column& rhs) {
  if (lhs.type() == DataType::kString || rhs.type() == DataType::kString) {
    if (lhs.type() != rhs.type()) {
      return Status::ExecutionError("comparing string with non-string");
    }
    return ApplyComparison(op, lhs.string_data(), rhs.string_data());
  }
  if (IsIntLike(lhs.type()) && IsIntLike(rhs.type())) {
    return ApplyComparison(op, ToInt64Vector(lhs), ToInt64Vector(rhs));
  }
  return ApplyComparison(op, ToDoubleVector(lhs), ToDoubleVector(rhs));
}

// SQL LIKE: '%' matches any run (including empty), '_' one character.
// Classic two-pointer algorithm with backtracking to the last '%'.
bool LikeMatch(const std::string& text, const std::string& pattern) {
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Column> EvaluateLike(const Column& lhs, const Column& rhs) {
  if (lhs.type() != DataType::kString || rhs.type() != DataType::kString) {
    return Status::ExecutionError("LIKE requires string operands");
  }
  const auto& text = lhs.string_data();
  const auto& pattern = rhs.string_data();
  std::vector<uint8_t> out(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    out[i] = LikeMatch(text[i], pattern[i]) ? 1 : 0;
  }
  return Column::FromBool(std::move(out));
}

Result<Column> EvaluateLogical(BinaryOp op, const Column& lhs,
                               const Column& rhs) {
  if (lhs.type() != DataType::kBool || rhs.type() != DataType::kBool) {
    return Status::ExecutionError("logical operator requires booleans");
  }
  const auto& a = lhs.bool_data();
  const auto& b = rhs.bool_data();
  std::vector<uint8_t> out(a.size());
  if (op == BinaryOp::kAnd) {
    for (size_t i = 0; i < a.size(); ++i) out[i] = (a[i] && b[i]) ? 1 : 0;
  } else {
    for (size_t i = 0; i < a.size(); ++i) out[i] = (a[i] || b[i]) ? 1 : 0;
  }
  return Column::FromBool(std::move(out));
}

Result<Column> EvaluateArithmetic(BinaryOp op, DataType result_type,
                                  const Column& lhs, const Column& rhs) {
  if (lhs.type() == DataType::kString || rhs.type() == DataType::kString) {
    return Status::ExecutionError("arithmetic on strings");
  }
  // Division always computes in double (SQL-style true division here).
  bool use_double = result_type == DataType::kDouble ||
                    !IsIntLike(lhs.type()) || !IsIntLike(rhs.type());
  if (op == BinaryOp::kDiv) use_double = true;

  if (use_double) {
    std::vector<double> a = ToDoubleVector(lhs);
    std::vector<double> b = ToDoubleVector(rhs);
    std::vector<double> out(a.size());
    switch (op) {
      case BinaryOp::kAdd:
        for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
        break;
      case BinaryOp::kSub:
        for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
        break;
      case BinaryOp::kMul:
        for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
        break;
      case BinaryOp::kDiv:
        for (size_t i = 0; i < a.size(); ++i) {
          if (b[i] == 0.0) {
            return Status::ExecutionError("division by zero");
          }
          out[i] = a[i] / b[i];
        }
        break;
      case BinaryOp::kMod:
        for (size_t i = 0; i < a.size(); ++i) {
          if (b[i] == 0.0) {
            return Status::ExecutionError("modulo by zero");
          }
          out[i] = std::fmod(a[i], b[i]);
        }
        break;
      default:
        return Status::Internal("not an arithmetic operator");
    }
    return Column::FromDouble(std::move(out));
  }

  std::vector<int64_t> a = ToInt64Vector(lhs);
  std::vector<int64_t> b = ToInt64Vector(rhs);
  std::vector<int64_t> out(a.size());
  switch (op) {
    case BinaryOp::kAdd:
      for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
      break;
    case BinaryOp::kSub:
      for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
      break;
    case BinaryOp::kMul:
      for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
      break;
    case BinaryOp::kMod:
      for (size_t i = 0; i < a.size(); ++i) {
        if (b[i] == 0) return Status::ExecutionError("modulo by zero");
        out[i] = a[i] % b[i];
      }
      break;
    default:
      return Status::Internal("not an int arithmetic operator");
  }
  if (result_type == DataType::kTimestamp) {
    return Column::FromTimestamp(std::move(out));
  }
  return Column::FromInt64(std::move(out));
}

Result<Column> EvaluateExprImpl(const BoundExpr& expr, const EvalInput& input) {
  // Aggregate results and pre-computed expressions (grouping columns) are
  // fetched from the input by name.
  if (expr.is_aggregate) {
    return input.Resolve("#agg" + std::to_string(expr.agg_index));
  }
  if (expr.kind != ExprKind::kColumnRef && expr.kind != ExprKind::kLiteral) {
    auto precomputed = input.Resolve(expr.ToString());
    if (precomputed.ok()) return precomputed;
  }

  switch (expr.kind) {
    case ExprKind::kColumnRef:
      return input.Resolve(expr.display);
    case ExprKind::kLiteral:
      return BroadcastLiteral(expr.literal, input.num_rows);
    case ExprKind::kUnary: {
      LAZYETL_ASSIGN_OR_RETURN(Column operand,
                               EvaluateExprImpl(*expr.children[0], input));
      if (expr.un_op == UnaryOp::kNot) {
        if (operand.type() != DataType::kBool) {
          return Status::ExecutionError("NOT requires a boolean");
        }
        std::vector<uint8_t> out = operand.bool_data();
        for (auto& v : out) v = v ? 0 : 1;
        return Column::FromBool(std::move(out));
      }
      if (operand.type() == DataType::kDouble) {
        std::vector<double> out = operand.double_data();
        for (auto& v : out) v = -v;
        return Column::FromDouble(std::move(out));
      }
      std::vector<int64_t> out = ToInt64Vector(operand);
      for (auto& v : out) v = -v;
      return Column::FromInt64(std::move(out));
    }
    case ExprKind::kBinary: {
      LAZYETL_ASSIGN_OR_RETURN(Column lhs,
                               EvaluateExprImpl(*expr.children[0], input));
      LAZYETL_ASSIGN_OR_RETURN(Column rhs,
                               EvaluateExprImpl(*expr.children[1], input));
      if (lhs.size() != rhs.size()) {
        return Status::Internal("operand cardinality mismatch");
      }
      switch (expr.bin_op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          return EvaluateLogical(expr.bin_op, lhs, rhs);
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return EvaluateComparison(expr.bin_op, lhs, rhs);
        case BinaryOp::kLike:
          return EvaluateLike(lhs, rhs);
        default:
          return EvaluateArithmetic(expr.bin_op, expr.type, lhs, rhs);
      }
    }
    case ExprKind::kCall: {
      const std::string& fn = expr.function;
      if (fn == "ABS") {
        LAZYETL_ASSIGN_OR_RETURN(Column arg,
                                 EvaluateExprImpl(*expr.children[0], input));
        if (arg.type() == DataType::kDouble) {
          std::vector<double> out = arg.double_data();
          for (auto& v : out) v = std::fabs(v);
          return Column::FromDouble(std::move(out));
        }
        std::vector<int64_t> out = ToInt64Vector(arg);
        for (auto& v : out) v = v < 0 ? -v : v;
        return Column::FromInt64(std::move(out));
      }
      if (fn == "SQRT") {
        LAZYETL_ASSIGN_OR_RETURN(Column arg,
                                 EvaluateExprImpl(*expr.children[0], input));
        std::vector<double> out = ToDoubleVector(arg);
        for (auto& v : out) {
          if (v < 0) return Status::ExecutionError("SQRT of negative value");
          v = std::sqrt(v);
        }
        return Column::FromDouble(std::move(out));
      }
      if (fn == "ROUND" || fn == "FLOOR" || fn == "CEIL") {
        LAZYETL_ASSIGN_OR_RETURN(Column arg,
                                 EvaluateExprImpl(*expr.children[0], input));
        std::vector<double> vals = ToDoubleVector(arg);
        std::vector<int64_t> out(vals.size());
        for (size_t i = 0; i < vals.size(); ++i) {
          double v = fn == "ROUND" ? std::round(vals[i])
                     : fn == "FLOOR" ? std::floor(vals[i])
                                     : std::ceil(vals[i]);
          out[i] = static_cast<int64_t>(v);
        }
        return Column::FromInt64(std::move(out));
      }
      if (fn == "UPPER" || fn == "LOWER") {
        LAZYETL_ASSIGN_OR_RETURN(Column arg,
                                 EvaluateExprImpl(*expr.children[0], input));
        if (arg.type() != DataType::kString) {
          return Status::ExecutionError(fn + " requires strings");
        }
        std::vector<std::string> out = arg.string_data();
        for (auto& s : out) {
          for (char& c : s) {
            c = fn == "UPPER"
                    ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                    : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
          }
        }
        return Column::FromString(std::move(out));
      }
      if (fn == "LENGTH") {
        LAZYETL_ASSIGN_OR_RETURN(Column arg,
                                 EvaluateExprImpl(*expr.children[0], input));
        if (arg.type() != DataType::kString) {
          return Status::ExecutionError("LENGTH requires strings");
        }
        std::vector<int64_t> out(arg.size());
        for (size_t i = 0; i < arg.size(); ++i) {
          out[i] = static_cast<int64_t>(arg.string_data()[i].size());
        }
        return Column::FromInt64(std::move(out));
      }
      if (fn == "TIME_BUCKET") {
        // Width is a bound-time-validated positive literal.
        double width_seconds = expr.children[0]->literal.AsDouble();
        int64_t width = static_cast<int64_t>(width_seconds * 1e9);
        LAZYETL_ASSIGN_OR_RETURN(Column ts,
                                 EvaluateExprImpl(*expr.children[1], input));
        if (ts.type() != DataType::kTimestamp) {
          return Status::ExecutionError("TIME_BUCKET requires a timestamp");
        }
        std::vector<int64_t> out = ts.int64_data();
        for (auto& v : out) {
          int64_t bucket = v / width;
          if (v < 0 && v % width != 0) --bucket;  // floor for negatives
          v = bucket * width;
        }
        return Column::FromTimestamp(std::move(out));
      }
      return Status::ExecutionError("cannot evaluate function " + fn +
                                    " outside an Aggregate");
    }
    case ExprKind::kStar:
      return Status::ExecutionError("cannot evaluate '*'");
  }
  return Status::Internal("unhandled expression kind");
}

Result<SelectionVector> MaskToSelection(const Column& mask) {
  if (mask.type() != DataType::kBool) {
    return Status::ExecutionError("predicate did not evaluate to boolean");
  }
  const auto& bits = mask.bool_data();
  SelectionVector sel;
  sel.reserve(bits.size() / 4);
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) sel.push_back(static_cast<uint32_t>(i));
  }
  return sel;
}

// --- Vectorized fast path for conjunctive comparison predicates ------------
//
// A predicate shaped as AND-tree of {column <cmp> literal} leaves is
// evaluated through engine/kernels without Value boxing or full-width
// intermediate vectors: the first conjunct builds the selection, each later
// conjunct refines it in place. Rows are visited in ascending order and the
// comparisons use the same arithmetic conversions as EvaluateComparison's
// promoted paths, so the result is byte-identical to the generic
// mask-and-AND evaluation. Anything else — LIKE, column-vs-column,
// mismatched string/non-string operands, aggregate refs, precomputed
// expression columns — falls back to the generic evaluator (preserving its
// error behaviour too).

using kernels::CmpOp;

void IdentitySelection(size_t n, SelectionVector* sel) {
  sel->resize(n);
  for (size_t i = 0; i < n; ++i) (*sel)[i] = static_cast<uint32_t>(i);
}

// Select (first == true) or refine on data[base + i] `op` constant, where
// selection indices are batch-relative [0, n).
template <typename T, typename V>
void RunKernel(const T* data, size_t base, size_t n, CmpOp op, V constant,
               bool first, SelectionVector* sel) {
  if (first) {
    kernels::CompareConstSelect(data + base, n, op, constant, sel);
  } else {
    kernels::CompareConstRefine(data + base, op, constant, sel);
  }
}

template <typename V>
bool RunNumericKernel(const Column& col, size_t base, size_t n, CmpOp op,
                      V constant, bool first, SelectionVector* sel) {
  switch (col.type()) {
    case DataType::kBool:
      RunKernel(col.bool_data().data(), base, n, op, constant, first, sel);
      return true;
    case DataType::kInt32:
      RunKernel(col.int32_data().data(), base, n, op, constant, first, sel);
      return true;
    case DataType::kInt64:
    case DataType::kTimestamp:
      RunKernel(col.int64_data().data(), base, n, op, constant, first, sel);
      return true;
    case DataType::kDouble:
      RunKernel(col.double_data().data(), base, n, op, constant, first, sel);
      return true;
    case DataType::kString:
      return false;
  }
  return false;
}

// Dictionary-encoded string comparison in code space: the dictionary is
// sorted and duplicate-free, so codes are order-isomorphic to strings and
// every comparison reduces to a code-threshold compare (equality against an
// absent value matches nothing; inequality against it matches everything).
void RunDictKernel(const Column& col, size_t base, size_t n, CmpOp op,
                   const std::string& lit, bool first, SelectionVector* sel) {
  const auto& dict = *col.dictionary();
  auto it = std::lower_bound(dict.begin(), dict.end(), lit);
  uint32_t idx = static_cast<uint32_t>(it - dict.begin());
  bool found = it != dict.end() && *it == lit;
  const uint32_t* codes = col.dict_codes().data();

  if (op == CmpOp::kEq && !found) {
    sel->clear();
    return;
  }
  if (op == CmpOp::kNe && !found) {
    if (first) IdentitySelection(n, sel);
    return;  // refine: everything already selected still passes
  }
  CmpOp code_op = op;
  switch (op) {
    case CmpOp::kLe: code_op = found ? CmpOp::kLe : CmpOp::kLt; break;
    case CmpOp::kGt: code_op = found ? CmpOp::kGt : CmpOp::kGe; break;
    default: break;  // kEq/kNe (found), kLt, kGe use idx as-is
  }
  RunKernel(codes, base, n, code_op, idx, first, sel);
}

// One conjunct against the raw (possibly encoded) column. `first` builds
// the selection, otherwise refines it. Returns false when this conjunct
// needs the generic path (unresolvable column, string/non-string mix).
bool TryFastConjunct(const ColumnComparison& fc, const EvalInput& input,
                     bool first, SelectionVector* sel) {
  size_t base = 0;
  const Column* col = input.Raw(fc.column->display, &base);
  if (col == nullptr) return false;
  size_t n = input.num_rows;
  if (col->type() == DataType::kString) {
    if (fc.literal->type() != DataType::kString) return false;
    const std::string& lit = fc.literal->string_value();
    if (col->dict_encoded()) {
      RunDictKernel(*col, base, n, fc.op, lit, first, sel);
    } else {
      RunKernel(col->string_data().data(), base, n, fc.op, lit, first, sel);
    }
    return true;
  }
  if (fc.literal->type() == DataType::kString) return false;
  if (IsIntLike(col->type()) && IsIntLike(fc.literal->type())) {
    return RunNumericKernel(*col, base, n, fc.op, fc.literal->AsInt64(),
                            first, sel);
  }
  return RunNumericKernel(*col, base, n, fc.op, fc.literal->AsDouble(), first,
                          sel);
}

// Whether every conjunct can run through the kernels (columns resolve and
// operand types are compatible) — checked before evaluating anything so a
// type error in a later conjunct still surfaces through the generic path
// even when an earlier conjunct would have emptied the selection.
bool CanRunFast(const std::vector<ColumnComparison>& conjuncts,
                const EvalInput& input) {
  for (const auto& fc : conjuncts) {
    size_t base = 0;
    const Column* col = input.Raw(fc.column->display, &base);
    if (col == nullptr) return false;
    bool col_str = col->type() == DataType::kString;
    bool lit_str = fc.literal->type() == DataType::kString;
    if (col_str != lit_str) return false;
  }
  return true;
}

Result<SelectionVector> EvaluatePredicateImpl(const BoundExpr& expr,
                                              const EvalInput& input) {
  std::vector<ColumnComparison> conjuncts;
  auto shadowed = [&input](const std::string& name) {
    return input.Has(name);
  };
  if (CollectConjunctComparisons(expr, shadowed, &conjuncts) &&
      !conjuncts.empty() && CanRunFast(conjuncts, input)) {
    SelectionVector sel;
    bool ok = true;
    bool first = true;
    for (const auto& fc : conjuncts) {
      if (!TryFastConjunct(fc, input, first, &sel)) {
        ok = false;
        break;
      }
      first = false;
      if (sel.empty()) break;  // later conjuncts were pre-validated
    }
    if (ok) return sel;
  }
  LAZYETL_ASSIGN_OR_RETURN(Column mask, EvaluateExprImpl(expr, input));
  return MaskToSelection(mask);
}

}  // namespace

Result<Column> EvaluateExpr(const BoundExpr& expr, const Table& input) {
  return EvaluateExprImpl(expr, FromTable(input));
}

Result<Column> EvaluateExpr(const BoundExpr& expr, const TableSlice& input) {
  return EvaluateExprImpl(expr, FromSlice(input));
}

Result<SelectionVector> EvaluatePredicate(const BoundExpr& expr,
                                          const Table& input) {
  return EvaluatePredicateImpl(expr, FromTable(input));
}

Result<SelectionVector> EvaluatePredicate(const BoundExpr& expr,
                                          const TableSlice& input) {
  return EvaluatePredicateImpl(expr, FromSlice(input));
}

}  // namespace lazyetl::engine
