#include "engine/expr_eval.h"

#include <cctype>
#include <cmath>
#include <cstdint>

#include "common/macros.h"

namespace lazyetl::engine {

using sql::BinaryOp;
using sql::BoundExpr;
using sql::ExprKind;
using sql::UnaryOp;
using storage::Column;
using storage::ColumnSlice;
using storage::DataType;
using storage::SelectionVector;
using storage::Table;
using storage::TableSlice;
using storage::Value;

namespace {

// Evaluation source: either a whole table or a batch slice. Column refs
// resolve to batch-local columns — for a slice, only the viewed rows are
// materialised, keeping per-expression memory bounded by the batch size.
struct EvalInput {
  size_t num_rows = 0;
  const Table* table = nullptr;
  const TableSlice* slice = nullptr;

  Result<Column> Resolve(const std::string& name) const {
    if (table != nullptr) {
      auto c = table->ColumnByName(name);
      if (!c.ok()) return c.status();
      return **c;
    }
    auto cs = slice->ColumnByName(name);
    if (!cs.ok()) return cs.status();
    return cs->Materialize();
  }
};

EvalInput FromTable(const Table& t) { return {t.num_rows(), &t, nullptr}; }
EvalInput FromSlice(const TableSlice& s) { return {s.num_rows(), nullptr, &s}; }

// Physically integer-valued types. Comparing them through double would
// corrupt nanosecond timestamps (2^63 > 2^53), so the evaluator keeps an
// exact int64 path.
bool IsIntLike(DataType t) {
  return t == DataType::kBool || t == DataType::kInt32 ||
         t == DataType::kInt64 || t == DataType::kTimestamp;
}

std::vector<int64_t> ToInt64Vector(const Column& c) {
  std::vector<int64_t> out(c.size());
  switch (c.type()) {
    case DataType::kBool: {
      const auto& v = c.bool_data();
      for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] ? 1 : 0;
      break;
    }
    case DataType::kInt32: {
      const auto& v = c.int32_data();
      for (size_t i = 0; i < v.size(); ++i) out[i] = v[i];
      break;
    }
    case DataType::kInt64:
    case DataType::kTimestamp:
      out = c.int64_data();
      break;
    case DataType::kDouble: {
      const auto& v = c.double_data();
      for (size_t i = 0; i < v.size(); ++i) {
        out[i] = static_cast<int64_t>(v[i]);
      }
      break;
    }
    case DataType::kString:
      break;  // callers exclude strings
  }
  return out;
}

std::vector<double> ToDoubleVector(const Column& c) {
  std::vector<double> out(c.size());
  for (size_t i = 0; i < c.size(); ++i) out[i] = c.NumericAt(i);
  return out;
}

// Constant column of `n` copies of `v`.
Result<Column> BroadcastLiteral(const Value& v, size_t n) {
  switch (v.type()) {
    case DataType::kBool:
      return Column::FromBool(std::vector<uint8_t>(n, v.bool_value() ? 1 : 0));
    case DataType::kInt32:
      return Column::FromInt32(std::vector<int32_t>(n, v.int32_value()));
    case DataType::kInt64:
      return Column::FromInt64(std::vector<int64_t>(n, v.int64_value()));
    case DataType::kDouble:
      return Column::FromDouble(std::vector<double>(n, v.double_value()));
    case DataType::kString:
      return Column::FromString(std::vector<std::string>(n, v.string_value()));
    case DataType::kTimestamp:
      return Column::FromTimestamp(
          std::vector<int64_t>(n, v.timestamp_value()));
  }
  return Status::Internal("unhandled literal type");
}

template <typename T, typename Cmp>
std::vector<uint8_t> CompareVectors(const std::vector<T>& a,
                                    const std::vector<T>& b, Cmp cmp) {
  std::vector<uint8_t> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = cmp(a[i], b[i]) ? 1 : 0;
  return out;
}

template <typename T>
Result<Column> ApplyComparison(BinaryOp op, const std::vector<T>& a,
                               const std::vector<T>& b) {
  switch (op) {
    case BinaryOp::kEq:
      return Column::FromBool(CompareVectors(a, b, std::equal_to<T>()));
    case BinaryOp::kNe:
      return Column::FromBool(CompareVectors(a, b, std::not_equal_to<T>()));
    case BinaryOp::kLt:
      return Column::FromBool(CompareVectors(a, b, std::less<T>()));
    case BinaryOp::kLe:
      return Column::FromBool(CompareVectors(a, b, std::less_equal<T>()));
    case BinaryOp::kGt:
      return Column::FromBool(CompareVectors(a, b, std::greater<T>()));
    case BinaryOp::kGe:
      return Column::FromBool(CompareVectors(a, b, std::greater_equal<T>()));
    default:
      return Status::Internal("not a comparison operator");
  }
}

Result<Column> EvaluateComparison(BinaryOp op, const Column& lhs,
                                  const Column& rhs) {
  if (lhs.type() == DataType::kString || rhs.type() == DataType::kString) {
    if (lhs.type() != rhs.type()) {
      return Status::ExecutionError("comparing string with non-string");
    }
    return ApplyComparison(op, lhs.string_data(), rhs.string_data());
  }
  if (IsIntLike(lhs.type()) && IsIntLike(rhs.type())) {
    return ApplyComparison(op, ToInt64Vector(lhs), ToInt64Vector(rhs));
  }
  return ApplyComparison(op, ToDoubleVector(lhs), ToDoubleVector(rhs));
}

// SQL LIKE: '%' matches any run (including empty), '_' one character.
// Classic two-pointer algorithm with backtracking to the last '%'.
bool LikeMatch(const std::string& text, const std::string& pattern) {
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Column> EvaluateLike(const Column& lhs, const Column& rhs) {
  if (lhs.type() != DataType::kString || rhs.type() != DataType::kString) {
    return Status::ExecutionError("LIKE requires string operands");
  }
  const auto& text = lhs.string_data();
  const auto& pattern = rhs.string_data();
  std::vector<uint8_t> out(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    out[i] = LikeMatch(text[i], pattern[i]) ? 1 : 0;
  }
  return Column::FromBool(std::move(out));
}

Result<Column> EvaluateLogical(BinaryOp op, const Column& lhs,
                               const Column& rhs) {
  if (lhs.type() != DataType::kBool || rhs.type() != DataType::kBool) {
    return Status::ExecutionError("logical operator requires booleans");
  }
  const auto& a = lhs.bool_data();
  const auto& b = rhs.bool_data();
  std::vector<uint8_t> out(a.size());
  if (op == BinaryOp::kAnd) {
    for (size_t i = 0; i < a.size(); ++i) out[i] = (a[i] && b[i]) ? 1 : 0;
  } else {
    for (size_t i = 0; i < a.size(); ++i) out[i] = (a[i] || b[i]) ? 1 : 0;
  }
  return Column::FromBool(std::move(out));
}

Result<Column> EvaluateArithmetic(BinaryOp op, DataType result_type,
                                  const Column& lhs, const Column& rhs) {
  if (lhs.type() == DataType::kString || rhs.type() == DataType::kString) {
    return Status::ExecutionError("arithmetic on strings");
  }
  // Division always computes in double (SQL-style true division here).
  bool use_double = result_type == DataType::kDouble ||
                    !IsIntLike(lhs.type()) || !IsIntLike(rhs.type());
  if (op == BinaryOp::kDiv) use_double = true;

  if (use_double) {
    std::vector<double> a = ToDoubleVector(lhs);
    std::vector<double> b = ToDoubleVector(rhs);
    std::vector<double> out(a.size());
    switch (op) {
      case BinaryOp::kAdd:
        for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
        break;
      case BinaryOp::kSub:
        for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
        break;
      case BinaryOp::kMul:
        for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
        break;
      case BinaryOp::kDiv:
        for (size_t i = 0; i < a.size(); ++i) {
          if (b[i] == 0.0) {
            return Status::ExecutionError("division by zero");
          }
          out[i] = a[i] / b[i];
        }
        break;
      case BinaryOp::kMod:
        for (size_t i = 0; i < a.size(); ++i) {
          if (b[i] == 0.0) {
            return Status::ExecutionError("modulo by zero");
          }
          out[i] = std::fmod(a[i], b[i]);
        }
        break;
      default:
        return Status::Internal("not an arithmetic operator");
    }
    return Column::FromDouble(std::move(out));
  }

  std::vector<int64_t> a = ToInt64Vector(lhs);
  std::vector<int64_t> b = ToInt64Vector(rhs);
  std::vector<int64_t> out(a.size());
  switch (op) {
    case BinaryOp::kAdd:
      for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
      break;
    case BinaryOp::kSub:
      for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
      break;
    case BinaryOp::kMul:
      for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
      break;
    case BinaryOp::kMod:
      for (size_t i = 0; i < a.size(); ++i) {
        if (b[i] == 0) return Status::ExecutionError("modulo by zero");
        out[i] = a[i] % b[i];
      }
      break;
    default:
      return Status::Internal("not an int arithmetic operator");
  }
  if (result_type == DataType::kTimestamp) {
    return Column::FromTimestamp(std::move(out));
  }
  return Column::FromInt64(std::move(out));
}

Result<Column> EvaluateExprImpl(const BoundExpr& expr, const EvalInput& input) {
  // Aggregate results and pre-computed expressions (grouping columns) are
  // fetched from the input by name.
  if (expr.is_aggregate) {
    return input.Resolve("#agg" + std::to_string(expr.agg_index));
  }
  if (expr.kind != ExprKind::kColumnRef && expr.kind != ExprKind::kLiteral) {
    auto precomputed = input.Resolve(expr.ToString());
    if (precomputed.ok()) return precomputed;
  }

  switch (expr.kind) {
    case ExprKind::kColumnRef:
      return input.Resolve(expr.display);
    case ExprKind::kLiteral:
      return BroadcastLiteral(expr.literal, input.num_rows);
    case ExprKind::kUnary: {
      LAZYETL_ASSIGN_OR_RETURN(Column operand,
                               EvaluateExprImpl(*expr.children[0], input));
      if (expr.un_op == UnaryOp::kNot) {
        if (operand.type() != DataType::kBool) {
          return Status::ExecutionError("NOT requires a boolean");
        }
        std::vector<uint8_t> out = operand.bool_data();
        for (auto& v : out) v = v ? 0 : 1;
        return Column::FromBool(std::move(out));
      }
      if (operand.type() == DataType::kDouble) {
        std::vector<double> out = operand.double_data();
        for (auto& v : out) v = -v;
        return Column::FromDouble(std::move(out));
      }
      std::vector<int64_t> out = ToInt64Vector(operand);
      for (auto& v : out) v = -v;
      return Column::FromInt64(std::move(out));
    }
    case ExprKind::kBinary: {
      LAZYETL_ASSIGN_OR_RETURN(Column lhs,
                               EvaluateExprImpl(*expr.children[0], input));
      LAZYETL_ASSIGN_OR_RETURN(Column rhs,
                               EvaluateExprImpl(*expr.children[1], input));
      if (lhs.size() != rhs.size()) {
        return Status::Internal("operand cardinality mismatch");
      }
      switch (expr.bin_op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          return EvaluateLogical(expr.bin_op, lhs, rhs);
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return EvaluateComparison(expr.bin_op, lhs, rhs);
        case BinaryOp::kLike:
          return EvaluateLike(lhs, rhs);
        default:
          return EvaluateArithmetic(expr.bin_op, expr.type, lhs, rhs);
      }
    }
    case ExprKind::kCall: {
      const std::string& fn = expr.function;
      if (fn == "ABS") {
        LAZYETL_ASSIGN_OR_RETURN(Column arg,
                                 EvaluateExprImpl(*expr.children[0], input));
        if (arg.type() == DataType::kDouble) {
          std::vector<double> out = arg.double_data();
          for (auto& v : out) v = std::fabs(v);
          return Column::FromDouble(std::move(out));
        }
        std::vector<int64_t> out = ToInt64Vector(arg);
        for (auto& v : out) v = v < 0 ? -v : v;
        return Column::FromInt64(std::move(out));
      }
      if (fn == "SQRT") {
        LAZYETL_ASSIGN_OR_RETURN(Column arg,
                                 EvaluateExprImpl(*expr.children[0], input));
        std::vector<double> out = ToDoubleVector(arg);
        for (auto& v : out) {
          if (v < 0) return Status::ExecutionError("SQRT of negative value");
          v = std::sqrt(v);
        }
        return Column::FromDouble(std::move(out));
      }
      if (fn == "ROUND" || fn == "FLOOR" || fn == "CEIL") {
        LAZYETL_ASSIGN_OR_RETURN(Column arg,
                                 EvaluateExprImpl(*expr.children[0], input));
        std::vector<double> vals = ToDoubleVector(arg);
        std::vector<int64_t> out(vals.size());
        for (size_t i = 0; i < vals.size(); ++i) {
          double v = fn == "ROUND" ? std::round(vals[i])
                     : fn == "FLOOR" ? std::floor(vals[i])
                                     : std::ceil(vals[i]);
          out[i] = static_cast<int64_t>(v);
        }
        return Column::FromInt64(std::move(out));
      }
      if (fn == "UPPER" || fn == "LOWER") {
        LAZYETL_ASSIGN_OR_RETURN(Column arg,
                                 EvaluateExprImpl(*expr.children[0], input));
        if (arg.type() != DataType::kString) {
          return Status::ExecutionError(fn + " requires strings");
        }
        std::vector<std::string> out = arg.string_data();
        for (auto& s : out) {
          for (char& c : s) {
            c = fn == "UPPER"
                    ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                    : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
          }
        }
        return Column::FromString(std::move(out));
      }
      if (fn == "LENGTH") {
        LAZYETL_ASSIGN_OR_RETURN(Column arg,
                                 EvaluateExprImpl(*expr.children[0], input));
        if (arg.type() != DataType::kString) {
          return Status::ExecutionError("LENGTH requires strings");
        }
        std::vector<int64_t> out(arg.size());
        for (size_t i = 0; i < arg.size(); ++i) {
          out[i] = static_cast<int64_t>(arg.string_data()[i].size());
        }
        return Column::FromInt64(std::move(out));
      }
      if (fn == "TIME_BUCKET") {
        // Width is a bound-time-validated positive literal.
        double width_seconds = expr.children[0]->literal.AsDouble();
        int64_t width = static_cast<int64_t>(width_seconds * 1e9);
        LAZYETL_ASSIGN_OR_RETURN(Column ts,
                                 EvaluateExprImpl(*expr.children[1], input));
        if (ts.type() != DataType::kTimestamp) {
          return Status::ExecutionError("TIME_BUCKET requires a timestamp");
        }
        std::vector<int64_t> out = ts.int64_data();
        for (auto& v : out) {
          int64_t bucket = v / width;
          if (v < 0 && v % width != 0) --bucket;  // floor for negatives
          v = bucket * width;
        }
        return Column::FromTimestamp(std::move(out));
      }
      return Status::ExecutionError("cannot evaluate function " + fn +
                                    " outside an Aggregate");
    }
    case ExprKind::kStar:
      return Status::ExecutionError("cannot evaluate '*'");
  }
  return Status::Internal("unhandled expression kind");
}

Result<SelectionVector> MaskToSelection(const Column& mask) {
  if (mask.type() != DataType::kBool) {
    return Status::ExecutionError("predicate did not evaluate to boolean");
  }
  const auto& bits = mask.bool_data();
  SelectionVector sel;
  sel.reserve(bits.size() / 4);
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) sel.push_back(static_cast<uint32_t>(i));
  }
  return sel;
}

}  // namespace

Result<Column> EvaluateExpr(const BoundExpr& expr, const Table& input) {
  return EvaluateExprImpl(expr, FromTable(input));
}

Result<Column> EvaluateExpr(const BoundExpr& expr, const TableSlice& input) {
  return EvaluateExprImpl(expr, FromSlice(input));
}

Result<SelectionVector> EvaluatePredicate(const BoundExpr& expr,
                                          const Table& input) {
  LAZYETL_ASSIGN_OR_RETURN(Column mask,
                           EvaluateExprImpl(expr, FromTable(input)));
  return MaskToSelection(mask);
}

Result<SelectionVector> EvaluatePredicate(const BoundExpr& expr,
                                          const TableSlice& input) {
  LAZYETL_ASSIGN_OR_RETURN(Column mask,
                           EvaluateExprImpl(expr, FromSlice(input)));
  return MaskToSelection(mask);
}

}  // namespace lazyetl::engine
