#include "engine/recycler.h"

namespace lazyetl::engine {

Recycler::Recycler(uint64_t budget_bytes, common::MemoryPool* pool)
    : budget_bytes_(budget_bytes), pool_(pool) {
  if (pool_ != nullptr) {
    // Let other tiers reclaim this cache's LRU entries under pressure.
    // The yielder takes only mu_ (pool locking protocol); EvictOneLocked
    // releases the pool charge, which never re-enters any yielder.
    yielder_id_ = pool_->RegisterYielder([this](uint64_t want) {
      std::lock_guard<std::mutex> lock(mu_);
      uint64_t freed = 0;
      while (freed < want && !lru_.empty()) freed += EvictOneLocked();
      return freed;
    });
  }
}

Recycler::~Recycler() {
  // Return the resident bytes to the pool (and through it, the global
  // budget).
  if (pool_ != nullptr) {
    pool_->UnregisterYielder(yielder_id_);
    pool_->Release(current_bytes_.load(std::memory_order_relaxed));
  }
}

CachedRecordPtr Recycler::Lookup(const RecordKey& key,
                                 NanoTime current_file_mtime, bool* stale) {
  if (stale != nullptr) *stale = false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (it->second.record->file_mtime != current_file_mtime) {
    // Outdated: the source file changed after this entry was admitted.
    stale_.fetch_add(1, std::memory_order_relaxed);
    if (stale != nullptr) *stale = true;
    EraseLocked(key);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  // Bump to most-recently-used.
  lru_.erase(it->second.lru_it);
  lru_.push_back(key);
  it->second.lru_it = std::prev(lru_.end());
  return it->second.record;
}

void Recycler::Admit(const RecordKey& key, CachedRecord record) {
  if (record.bytes == 0) {
    record.bytes = record.sample_times.size() * sizeof(int64_t) +
                   record.sample_values.size() * sizeof(int32_t) +
                   sizeof(CachedRecord);
  }
  if (record.bytes > budget_bytes_) {
    return;  // larger than the whole cache; not admissible
  }
  uint64_t bytes = record.bytes;

  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) EraseLocked(key);

  while (current_bytes_.load(std::memory_order_relaxed) + bytes >
             budget_bytes_ &&
         !lru_.empty()) {
    EvictOneLocked();
  }

  // Global pressure: the cache yields its least-recently-used entries to
  // queries rather than push the process over the global cap; once empty,
  // the record simply is not cached (a future query re-extracts it).
  if (pool_ != nullptr) {
    // The cache's resident bytes are capped at half of a finite global
    // budget. Evictions only happen at admission time, so without this
    // share bound a fully warmed cache could pin the whole global cap
    // with no path for queries to reclaim it — every breaker and window
    // reservation would fail forever while reclaimable records sit idle.
    uint64_t global_limit = pool_->governed_limit();
    if (global_limit != 0) {
      uint64_t share = global_limit / 2;
      if (bytes > share) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      while (current_bytes_.load(std::memory_order_relaxed) + bytes >
                 share &&
             !lru_.empty()) {
        EvictOneLocked();
      }
    }
    // Under contention the bytes an eviction frees can be raced away by
    // concurrent query reservations; bound the yield per admission so one
    // transient pressure spike cannot wipe the whole working set.
    uint64_t evicted = 0;
    const uint64_t max_evict = bytes * 4;
    // TryCharge (not ChargeWithYield): mu_ is held here, and the other
    // tiers' yielders are not allowed to run under a tier lock.
    while (!pool_->TryCharge(bytes)) {
      if (lru_.empty() || evicted >= max_evict) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      evicted += EvictOneLocked();
    }
  }

  lru_.push_back(key);
  Node node;
  node.lru_it = std::prev(lru_.end());
  current_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  node.record = std::make_shared<const CachedRecord>(std::move(record));
  map_.emplace(key, std::move(node));
  admissions_.fetch_add(1, std::memory_order_relaxed);
  entries_.store(map_.size(), std::memory_order_relaxed);
}

uint64_t Recycler::EvictOneLocked() {
  const RecordKey& victim = lru_.front();
  auto it = map_.find(victim);
  uint64_t bytes = it->second.record->bytes;
  current_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  if (pool_ != nullptr) pool_->Release(bytes);
  map_.erase(it);
  lru_.pop_front();
  evictions_.fetch_add(1, std::memory_order_relaxed);
  entries_.store(map_.size(), std::memory_order_relaxed);
  return bytes;
}

void Recycler::EraseLocked(const RecordKey& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  uint64_t bytes = it->second.record->bytes;
  current_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  if (pool_ != nullptr) pool_->Release(bytes);
  lru_.erase(it->second.lru_it);
  map_.erase(it);
  entries_.store(map_.size(), std::memory_order_relaxed);
}

void Recycler::InvalidateFile(int64_t file_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.file_id == file_id) {
      uint64_t bytes = it->second.record->bytes;
      current_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
      if (pool_ != nullptr) pool_->Release(bytes);
      lru_.erase(it->second.lru_it);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
  entries_.store(map_.size(), std::memory_order_relaxed);
}

void Recycler::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  if (pool_ != nullptr) {
    pool_->Release(current_bytes_.load(std::memory_order_relaxed));
  }
  current_bytes_.store(0, std::memory_order_relaxed);
  entries_.store(0, std::memory_order_relaxed);
}

RecyclerStats Recycler::stats() const {
  RecyclerStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stale = stale_.load(std::memory_order_relaxed);
  s.admissions = admissions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.current_bytes = current_bytes_.load(std::memory_order_relaxed);
  s.budget_bytes = budget_bytes_;
  s.entries = entries_.load(std::memory_order_relaxed);
  return s;
}

void Recycler::ResetCounters() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  stale_.store(0, std::memory_order_relaxed);
  admissions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
}

std::vector<RecordKey> Recycler::Keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {lru_.begin(), lru_.end()};
}

void ResultRecycler::Admit(const std::string& sql, CachedResult result) {
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.size() >= max_entries_ && !map_.count(sql)) {
    // Simple bound: drop an arbitrary entry (result cache is a small,
    // best-effort layer; record-level recycling does the heavy lifting).
    map_.erase(map_.begin());
  }
  map_[sql] = std::make_shared<const CachedResult>(std::move(result));
}

}  // namespace lazyetl::engine
