#include "engine/recycler.h"

namespace lazyetl::engine {

Recycler::Recycler(uint64_t budget_bytes) : budget_bytes_(budget_bytes) {
  stats_.budget_bytes = budget_bytes;
}

const CachedRecord* Recycler::Lookup(const RecordKey& key,
                                     NanoTime current_file_mtime,
                                     bool* stale) {
  if (stale != nullptr) *stale = false;
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second.record.file_mtime != current_file_mtime) {
    // Outdated: the source file changed after this entry was admitted.
    ++stats_.stale;
    if (stale != nullptr) *stale = true;
    Erase(key);
    return nullptr;
  }
  ++stats_.hits;
  // Bump to most-recently-used.
  lru_.erase(it->second.lru_it);
  lru_.push_back(key);
  it->second.lru_it = std::prev(lru_.end());
  return &it->second.record;
}

void Recycler::Admit(const RecordKey& key, CachedRecord record) {
  if (record.bytes == 0) {
    record.bytes = record.sample_times.size() * sizeof(int64_t) +
                   record.sample_values.size() * sizeof(int32_t) +
                   sizeof(CachedRecord);
  }
  if (record.bytes > budget_bytes_) {
    return;  // larger than the whole cache; not admissible
  }
  auto it = map_.find(key);
  if (it != map_.end()) Erase(key);

  while (stats_.current_bytes + record.bytes > budget_bytes_ && !lru_.empty()) {
    EvictOne();
  }

  lru_.push_back(key);
  Node node;
  node.lru_it = std::prev(lru_.end());
  stats_.current_bytes += record.bytes;
  node.record = std::move(record);
  map_.emplace(key, std::move(node));
  ++stats_.admissions;
  stats_.entries = map_.size();
}

void Recycler::EvictOne() {
  const RecordKey& victim = lru_.front();
  auto it = map_.find(victim);
  stats_.current_bytes -= it->second.record.bytes;
  map_.erase(it);
  lru_.pop_front();
  ++stats_.evictions;
  stats_.entries = map_.size();
}

void Recycler::Erase(const RecordKey& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  stats_.current_bytes -= it->second.record.bytes;
  lru_.erase(it->second.lru_it);
  map_.erase(it);
  stats_.entries = map_.size();
}

void Recycler::InvalidateFile(int64_t file_id) {
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.file_id == file_id) {
      stats_.current_bytes -= it->second.record.bytes;
      lru_.erase(it->second.lru_it);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
  stats_.entries = map_.size();
}

void Recycler::Clear() {
  map_.clear();
  lru_.clear();
  stats_.current_bytes = 0;
  stats_.entries = 0;
}

void Recycler::ResetCounters() {
  uint64_t bytes = stats_.current_bytes;
  uint64_t entries = stats_.entries;
  stats_ = RecyclerStats{};
  stats_.budget_bytes = budget_bytes_;
  stats_.current_bytes = bytes;
  stats_.entries = entries;
}

std::vector<RecordKey> Recycler::Keys() const {
  return {lru_.begin(), lru_.end()};
}

void ResultRecycler::Admit(const std::string& sql, CachedResult result) {
  if (map_.size() >= max_entries_ && !map_.count(sql)) {
    // Simple bound: drop an arbitrary entry (result cache is a small,
    // best-effort layer; record-level recycling does the heavy lifting).
    map_.erase(map_.begin());
  }
  map_[sql] = std::move(result);
}

}  // namespace lazyetl::engine
