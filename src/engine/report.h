// ExecutionReport: the introspection artifact of a query.
//
// The demo lets the audience observe (4) query plans and the changes made
// to them during lazy extraction, (5) which files were touched, (6) plans
// generated on the fly for lazy transformation, and (7) cache contents and
// updates. The engine and the lazy-ETL layer record all of that here.

#ifndef LAZYETL_ENGINE_REPORT_H_
#define LAZYETL_ENGINE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lazyetl::engine {

// Per-operator pipeline counters, one entry per operator instance in the
// executed batch pipeline (pre-order: parents before children). Counters
// are aggregated thread-safely, so batch/row totals are exact at any
// query_threads setting; `seconds` sums the time of every worker inside
// Next() (inclusive of children), which under parallel execution can
// exceed wall-clock time.
struct OperatorStats {
  std::string op;            // e.g. "Filter", "Scan(mseed.files)"
  uint64_t batches = 0;      // batches emitted
  uint64_t rows = 0;         // rows emitted
  uint64_t peak_batch_bytes = 0;  // largest single emitted batch
  uint64_t state_bytes = 0;  // materialised state (pipeline breakers)
  // Memory governance: bytes spilled to disk when the operator's state
  // exceeded the memory budget, the number of spill files written, and the
  // number of Grace partitions processed (0 on the in-memory path).
  uint64_t spilled_bytes = 0;
  uint64_t spill_files = 0;
  uint64_t partitions = 0;
  // Spill I/O detail: physical bytes after per-column compression
  // (spilled_bytes stays the logical, uncompressed-equivalent volume) and
  // the time the operator was blocked on spill writes (0 when the async
  // writer fully overlapped them with the consume phase).
  uint64_t spill_compressed_bytes = 0;
  double spill_write_wait_seconds = 0;
  // Grouped-aggregation vectorization: rows whose group ids were resolved
  // by the columnar (batch-at-a-time) kernel path.
  uint64_t groups_vectorized = 0;
  // Zone-map pruning (scan stage of a fused FilterScan): morsels skipped
  // because chunk statistics proved no row could satisfy the predicate,
  // and the rows those morsels covered (never touched).
  uint64_t morsels_pruned = 0;
  uint64_t rows_pruned = 0;
  // Hash-join vectorization: vectorized build-side indexes constructed by
  // this operator (the in-memory path builds one; the Grace path builds
  // one per joined partition), and the time spent building them vs.
  // probing them (approximate: probe time is the batched lookup itself,
  // excluding the gather of matched rows).
  uint64_t joins_vectorized = 0;
  double join_build_seconds = 0;
  double join_probe_seconds = 0;
  // Bloom semi-join pushdown (probe-side scan): rows dropped before they
  // ever reached the join because their key hash was provably absent from
  // the build side.
  uint64_t rows_bloom_filtered = 0;
  double seconds = 0;        // aggregate worker time inside Next()
};

struct ExecutionReport {
  std::string sql;

  // Compile-time plans: as naively derived from the query, and after the
  // optimizer reorganised it so metadata predicates apply first (§3.1).
  std::string plan_before;
  std::string plan_after;
  // Run-time plan: after the rewriting operator replaced the LazyDataScan
  // placeholder with cache-access / file-extraction operators.
  std::string plan_runtime;

  // Lazy extraction counters.
  uint64_t records_requested = 0;   // distinct (file, record) pairs needed
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_stale = 0;         // cached but outdated (file modified)
  uint64_t files_opened = 0;
  std::vector<std::string> files_touched;  // paths read during extraction
  uint64_t records_extracted = 0;
  uint64_t samples_extracted = 0;
  uint64_t bytes_read = 0;

  // Deferred metadata (filename-only initial loading).
  uint64_t files_hydrated = 0;

  // Whole-result recycling.
  bool result_cache_hit = false;

  // Multi-tier caching: decoded-column tier (per extraction window
  // lookups this query issued) and sub-plan tier (whether this query's
  // breaker subtree was served from a cached materialization).
  uint64_t column_cache_hits = 0;
  uint64_t column_cache_misses = 0;
  bool plan_cache_hit = false;

  uint64_t result_rows = 0;

  // Batch pipeline introspection: one entry per operator, and an upper
  // bound on the intermediate bytes live at any point of the execution
  // (sum over operators of materialised state + largest emitted batch).
  std::vector<OperatorStats> operator_stats;
  uint64_t peak_intermediate_bytes = 0;
  // Resolved worker count of the morsel-driven drive loop (1 = serial).
  uint64_t query_threads = 1;
  // Memory governance: the resolved per-query budget (0 = unlimited) and
  // spill totals summed over the pipeline's operators.
  uint64_t memory_budget_bytes = 0;
  uint64_t spilled_bytes = 0;
  uint64_t spill_files = 0;
  // Spill I/O totals: physical bytes on disk after compression and
  // producer time blocked on spill writes (see OperatorStats).
  uint64_t spill_compressed_bytes = 0;
  double spill_write_wait_seconds = 0;
  // Rows resolved through the vectorized grouped-aggregation path.
  uint64_t groups_vectorized = 0;
  // Resolved rows-per-morsel of the drive loop (batch_rows after the
  // LAZYETL_MORSEL_ROWS override).
  uint64_t morsel_rows = 0;
  // Zone-map pruning totals summed over the pipeline's scans.
  uint64_t morsels_pruned = 0;
  uint64_t rows_pruned = 0;
  // Vectorized hash join: build indexes constructed through the batched
  // path, probe rows skipped by the Bloom semi-join pushdown, and the
  // summed build/probe phase timings of every join in the pipeline.
  uint64_t joins_vectorized = 0;
  uint64_t probe_rows_bloom_filtered = 0;
  double join_build_seconds = 0;
  double join_probe_seconds = 0;

  // Concurrent serving: the scheduler admission ticket (0 when no
  // scheduler was involved), how long the query waited in the admission
  // queue (monotonic clock; includes time blocked on footprint headroom,
  // not just the slot wait), and the per-query budget the scheduler
  // carved from the global cap (0 = unlimited).
  uint64_t ticket_id = 0;
  double queue_wait_seconds = 0;
  uint64_t admitted_budget_bytes = 0;
  // Workload-aware admission: the query's priority class, its fair-share
  // client id ("" = the anonymous tenant), and the plan-derived footprint
  // estimate admission was gated on (0 = estimation off).
  std::string priority = "normal";
  std::string client_id;
  uint64_t estimated_footprint_bytes = 0;

  // Phase timings in seconds.
  double parse_seconds = 0;
  double bind_seconds = 0;
  double plan_seconds = 0;
  double execute_seconds = 0;
  double extract_seconds = 0;  // part of execute spent in lazy extraction
  double total_seconds = 0;

  std::string ToString() const;
};

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_REPORT_H_
