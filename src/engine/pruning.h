// Zone-map scan pruning: turns a conjunctive comparison predicate into
// per-column range constraints checked against a table's per-chunk min/max
// statistics (storage::ColumnZoneMap), so the scan operators skip whole
// morsels that provably contain no qualifying row — without touching data.
//
// Also home of the predicate-shape helpers shared with the vectorized
// predicate path in expr_eval: both need the same "AND-tree of
// {column <cmp> literal} leaves" recognition, and agreeing on the shape is
// what keeps pruned ≡ unpruned byte-identical (a morsel is only pruned
// when the kernel evaluation would have dropped every row of it).

#ifndef LAZYETL_ENGINE_PRUNING_H_
#define LAZYETL_ENGINE_PRUNING_H_

#include <functional>
#include <string>
#include <vector>

#include "engine/kernels.h"
#include "sql/binder.h"
#include "storage/slice.h"
#include "storage/table.h"

namespace lazyetl::engine {

// --- Predicate shape -------------------------------------------------------

// One {column <cmp> literal} comparison, normalized column-on-the-left.
struct ColumnComparison {
  const sql::BoundExpr* column = nullptr;   // kColumnRef child
  const storage::Value* literal = nullptr;  // kLiteral child's value
  kernels::CmpOp op = kernels::CmpOp::kEq;
};

// Maps a comparison operator to its kernel op; false for non-comparisons.
bool ComparisonOp(sql::BinaryOp op, kernels::CmpOp* out);

// Mirrors the comparison for literal-on-the-left normalization.
kernels::CmpOp FlipComparison(kernels::CmpOp op);

// Matches `e` as {column <cmp> literal} or {literal <cmp> column}.
bool MatchColumnComparison(const sql::BoundExpr& e, ColumnComparison* out);

// Flattens an AND-tree whose leaves are all column-literal comparisons.
// Returns false — disqualifying the whole predicate — on any other leaf,
// on aggregate refs, or when `shadowed(node.ToString())` reports that a
// node would resolve as a precomputed expression column (the evaluator's
// first resolution rule).
bool CollectConjunctComparisons(
    const sql::BoundExpr& e,
    const std::function<bool(const std::string&)>& shadowed,
    std::vector<ColumnComparison>* out);

// --- Zone-map constraints --------------------------------------------------

// Whether zone-map pruning is active (LAZYETL_DISABLE_PRUNING unset/0/"").
bool PruningEnabled();

// One comparison constraint bound to a base-table column's zone map. The
// comparison domain mirrors the evaluator's promotion rules: exact int64
// when both sides are integer-like, string for string/string, double
// otherwise.
struct ScanConstraint {
  const storage::ColumnZoneMap* zone_map = nullptr;
  kernels::CmpOp op = kernels::CmpOp::kEq;
  enum class Domain { kInt, kDouble, kString } domain = Domain::kInt;
  int64_t ival = 0;
  double dval = 0.0;
  std::string sval;
};

// Extracts constraints for `predicate` over `base` (the scan's renamed,
// possibly projected view of catalog table `table`). Returns an empty list
// — disabling pruning — whenever the predicate shape, operand types, or
// missing statistics make pruning unsound (including predicates the
// generic evaluator would reject: a pruned morsel must be indistinguishable
// from an all-drop morsel, errors included).
std::vector<ScanConstraint> ExtractScanConstraints(
    const sql::BoundExpr& predicate, const storage::TableSlice& base,
    const storage::Table& table);

// Whether rows [start, start + length) of the base table could contain a
// row satisfying every constraint. Conservative: true when in doubt; an
// empty constraint list always matches.
bool RangeCanMatch(const std::vector<ScanConstraint>& constraints,
                   size_t start, size_t length);

// Zone-map-sharpened footprint estimate for a filtered scan: the summed
// bytes of the scanned columns over only the chunks that can match the
// predicate. Falls back to the scanned columns' full bytes when statistics
// or a prunable predicate shape are unavailable.
uint64_t EstimateFilteredScanBytes(const storage::Table& table,
                                   const storage::TableSlice& base,
                                   const sql::BoundExpr& predicate);

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_PRUNING_H_
