#include "engine/planner.h"

#include <algorithm>
#include <limits>
#include <map>

#include "common/macros.h"
#include "engine/pruning.h"

namespace lazyetl::engine {

using sql::BinaryOp;
using sql::BoundAggregate;
using sql::BoundExpr;
using sql::BoundExprPtr;
using sql::BoundQuery;
using sql::ExprKind;
using storage::ViewDefinition;

std::vector<BoundExprPtr> SplitConjuncts(const BoundExpr& expr) {
  std::vector<BoundExprPtr> out;
  if (expr.kind == ExprKind::kBinary && expr.bin_op == BinaryOp::kAnd) {
    for (const auto& child : expr.children) {
      auto sub = SplitConjuncts(*child);
      for (auto& s : sub) out.push_back(std::move(s));
    }
    return out;
  }
  out.push_back(expr.Clone());
  return out;
}

BoundExprPtr CombineConjuncts(std::vector<BoundExprPtr> conjuncts) {
  BoundExprPtr result;
  for (auto& c : conjuncts) {
    if (!result) {
      result = std::move(c);
      continue;
    }
    auto conj = std::make_unique<BoundExpr>();
    conj->kind = ExprKind::kBinary;
    conj->bin_op = BinaryOp::kAnd;
    conj->type = storage::DataType::kBool;
    conj->children.push_back(std::move(result));
    conj->children.push_back(std::move(c));
    result = std::move(conj);
  }
  return result;
}

namespace {

// Collects (base_table, base_column, display) triples referenced below
// `expr` into `needed` (display names, deduplicated).
void CollectColumns(const BoundExpr& expr,
                    std::map<std::string, std::vector<ScanColumn>>* needed) {
  if (expr.kind == ExprKind::kColumnRef && !expr.base_table.empty()) {
    auto& cols = (*needed)[expr.base_table];
    bool present = false;
    for (const auto& sc : cols) {
      if (sc.output_name == expr.display) {
        present = true;
        break;
      }
    }
    if (!present) cols.push_back({expr.base_column, expr.display});
  }
  for (const auto& c : expr.children) CollectColumns(*c, needed);
}

// All expressions of a query that reference stored columns.
void CollectQueryColumns(const BoundQuery& query,
                         std::map<std::string, std::vector<ScanColumn>>* needed) {
  for (const auto& item : query.select_list) CollectColumns(*item.expr, needed);
  if (query.where) CollectColumns(*query.where, needed);
  for (const auto& g : query.group_by) CollectColumns(*g, needed);
  if (query.having) CollectColumns(*query.having, needed);
  for (const auto& o : query.order_by) CollectColumns(*o.expr, needed);
  for (const auto& a : query.aggregates) {
    if (a.arg) CollectColumns(*a.arg, needed);
  }
}

// Display name a view exports for base_table.base_column.
Result<std::string> ViewDisplayName(const ViewDefinition& view,
                                    const std::string& base_table,
                                    const std::string& base_column) {
  for (const auto& vc : view.columns) {
    if (vc.base_table == base_table && vc.base_column == base_column) {
      return vc.qualifier + "." + vc.name;
    }
  }
  return Status::Internal("view " + view.name + " does not export " +
                          base_table + "." + base_column +
                          " (needed as a join key)");
}

void AddScanColumn(std::vector<ScanColumn>* cols, const std::string& base,
                   const std::string& display) {
  for (const auto& sc : *cols) {
    if (sc.output_name == display) return;
  }
  cols->push_back({base, display});
}

// Clones a BoundAggregate (args deep-copied).
BoundAggregate CloneAggregate(const BoundAggregate& a) {
  BoundAggregate out;
  out.function = a.function;
  out.arg = a.arg ? a.arg->Clone() : nullptr;
  out.display = a.display;
  out.type = a.type;
  return out;
}

}  // namespace

Result<PlanNodePtr> Planner::FinishPlan(const BoundQuery& query,
                                        PlanNodePtr input, bool fuse) {
  PlanNodePtr node = std::move(input);

  // Sort + Limit fusion: a LIMIT above an ORDER BY (the Project between
  // them is 1:1) keeps only the top k rows, so the sort never needs to
  // materialise its whole input. DISTINCT changes cardinality above the
  // sort and disables the fusion.
  const bool fuse_top_k =
      fuse && query.limit >= 0 && !query.order_by.empty() && !query.distinct;

  if (query.has_aggregates() || !query.group_by.empty()) {
    auto agg = std::make_unique<PlanNode>();
    agg->type = PlanNodeType::kAggregate;
    for (const auto& g : query.group_by) agg->group_exprs.push_back(g->Clone());
    for (const auto& a : query.aggregates) {
      agg->aggregates.push_back(CloneAggregate(a));
    }
    agg->children.push_back(std::move(node));
    node = std::move(agg);

    if (query.having) {
      node = MakeFilter(std::move(node), query.having->Clone());
    }
  }

  if (!query.order_by.empty()) {
    auto sort = std::make_unique<PlanNode>();
    sort->type = fuse_top_k ? PlanNodeType::kTopK : PlanNodeType::kSort;
    if (fuse_top_k) sort->limit = query.limit;
    for (const auto& o : query.order_by) {
      sql::BoundOrderItem item;
      item.expr = o.expr->Clone();
      item.ascending = o.ascending;
      sort->order_items.push_back(std::move(item));
    }
    sort->children.push_back(std::move(node));
    node = std::move(sort);
  }

  auto project = std::make_unique<PlanNode>();
  project->type = PlanNodeType::kProject;
  for (const auto& item : query.select_list) {
    project->project_exprs.push_back(item.expr->Clone());
    project->project_names.push_back(item.name);
  }
  project->children.push_back(std::move(node));
  node = std::move(project);

  if (query.distinct) {
    auto distinct = std::make_unique<PlanNode>();
    distinct->type = PlanNodeType::kDistinct;
    distinct->children.push_back(std::move(node));
    node = std::move(distinct);
  }

  if (query.limit >= 0 && !fuse_top_k) {
    auto limit = std::make_unique<PlanNode>();
    limit->type = PlanNodeType::kLimit;
    limit->limit = query.limit;
    limit->children.push_back(std::move(node));
    node = std::move(limit);
  }
  return node;
}

Result<PlannedQuery> Planner::PlanBaseTableQuery(const BoundQuery& query) {
  std::map<std::string, std::vector<ScanColumn>> needed;
  CollectQueryColumns(query, &needed);

  // Scan + filter (identical shape in the naive and optimized plans for
  // base tables; only the top-k fusion differs between the two).
  auto build_input = [&]() -> PlanNodePtr {
    PlanNodePtr scan;
    if (IsLazy(query.base_table)) {
      // Direct query on the unmaterialised data table: the worst case of
      // §3.1 — extraction of the entire repository.
      scan = std::make_unique<PlanNode>();
      scan->type = PlanNodeType::kLazyDataScan;
      scan->table = query.base_table;
      scan->scan_columns = needed[query.base_table];
    } else {
      scan = MakeScan(query.base_table, needed[query.base_table]);
    }
    if (query.where) {
      scan = MakeFilter(std::move(scan), query.where->Clone());
    }
    return scan;
  };

  LAZYETL_ASSIGN_OR_RETURN(
      PlanNodePtr naive, FinishPlan(query, build_input(), /*fuse=*/false));
  LAZYETL_ASSIGN_OR_RETURN(PlanNodePtr node,
                           FinishPlan(query, build_input()));

  PlannedQuery out;
  out.naive_plan = naive->ToString();
  out.plan = std::move(node);
  return out;
}

Result<PlannedQuery> Planner::PlanViewQuery(const BoundQuery& query) {
  const ViewDefinition& view = *query.view;

  // 1. Which base tables does the query reference?
  std::map<std::string, std::vector<ScanColumn>> needed;
  CollectQueryColumns(query, &needed);

  // 2. The view's full join path is always planned: dropping an
  //    unreferenced table would change result multiplicity (each file row
  //    fans out per record, each record per sample), so even
  //    SELECT COUNT(*) FROM mseed.dataview must expand all three tables.
  //    Metadata browsing that must not touch actual data queries the base
  //    tables mseed.files / mseed.records directly.
  const size_t last_needed_step = view.joins.size();

  // 3. Ensure join keys are scanned.
  auto ensure_key_columns = [&](const std::string& table,
                                const std::string& base_column) -> Status {
    LAZYETL_ASSIGN_OR_RETURN(std::string display,
                             ViewDisplayName(view, table, base_column));
    AddScanColumn(&needed[table], base_column, display);
    return Status::OK();
  };
  for (size_t i = 0; i < last_needed_step; ++i) {
    const storage::ViewJoinStep& step = view.joins[i];
    for (const auto& [left, right] : step.keys) {
      // Left side: "table.column" of an earlier table.
      size_t dot = left.rfind('.');
      if (dot == std::string::npos) {
        return Status::Internal("malformed view join key '" + left + "'");
      }
      LAZYETL_RETURN_NOT_OK(
          ensure_key_columns(left.substr(0, dot), left.substr(dot + 1)));
      LAZYETL_RETURN_NOT_OK(ensure_key_columns(step.table, right));
    }
  }

  // 4. Split WHERE into per-table and multi-table conjuncts.
  std::map<std::string, std::vector<BoundExprPtr>> table_preds;
  std::vector<std::pair<std::vector<std::string>, BoundExprPtr>> multi_preds;
  if (query.where) {
    for (auto& conjunct : SplitConjuncts(*query.where)) {
      std::vector<std::string> tables;
      conjunct->CollectTables(&tables);
      if (tables.size() == 1) {
        table_preds[tables[0]].push_back(std::move(conjunct));
      } else {
        // Constant predicates (no column refs) are applied at the root.
        if (tables.empty()) tables.push_back(view.root_table);
        multi_preds.emplace_back(std::move(tables), std::move(conjunct));
      }
    }
  }

  // 4b. Metadata-predicate inference (the paper's "metadata is used to
  //     identify the actual data required by a query"): from each
  //     comparison of a contained data column against a literal, derive a
  //     predicate on the containing range columns so whole records/files
  //     are pruned before extraction. Sound because a record whose
  //     [start, end] interval cannot satisfy the conjunct for any sample
  //     cannot contribute any qualifying row.
  auto make_range_ref = [&](const std::string& table,
                            const std::string& column)
      -> Result<BoundExprPtr> {
    LAZYETL_ASSIGN_OR_RETURN(std::string display,
                             ViewDisplayName(view, table, column));
    auto ref = std::make_unique<BoundExpr>();
    ref->kind = ExprKind::kColumnRef;
    ref->type = storage::DataType::kTimestamp;
    ref->display = display;
    ref->base_table = table;
    ref->base_column = column;
    AddScanColumn(&needed[table], column, display);
    return ref;
  };
  auto make_comparison = [](BinaryOp op, BoundExprPtr lhs,
                            const BoundExpr& literal) {
    auto cmp = std::make_unique<BoundExpr>();
    cmp->kind = ExprKind::kBinary;
    cmp->bin_op = op;
    cmp->type = storage::DataType::kBool;
    cmp->children.push_back(std::move(lhs));
    cmp->children.push_back(literal.Clone());
    return cmp;
  };
  for (const auto& rule : view.containment_rules) {
    if (!infer_metadata_predicates_) break;
    auto preds_it = table_preds.find(rule.data_table);
    if (preds_it == table_preds.end()) continue;
    size_t existing = preds_it->second.size();  // don't recurse on inferred
    for (size_t p = 0; p < existing; ++p) {
      const BoundExpr& conjunct = *preds_it->second[p];
      if (conjunct.kind != ExprKind::kBinary) continue;
      BinaryOp op = conjunct.bin_op;
      if (op != BinaryOp::kLt && op != BinaryOp::kLe && op != BinaryOp::kGt &&
          op != BinaryOp::kGe && op != BinaryOp::kEq) {
        continue;
      }
      const BoundExpr* col = conjunct.children[0].get();
      const BoundExpr* lit = conjunct.children[1].get();
      if (col->kind == ExprKind::kLiteral &&
          lit->kind == ExprKind::kColumnRef) {
        std::swap(col, lit);
        // Flip the comparison when the literal was on the left.
        switch (op) {
          case BinaryOp::kLt:
            op = BinaryOp::kGt;
            break;
          case BinaryOp::kLe:
            op = BinaryOp::kGe;
            break;
          case BinaryOp::kGt:
            op = BinaryOp::kLt;
            break;
          case BinaryOp::kGe:
            op = BinaryOp::kLe;
            break;
          default:
            break;
        }
      }
      if (col->kind != ExprKind::kColumnRef ||
          lit->kind != ExprKind::kLiteral ||
          col->base_table != rule.data_table ||
          col->base_column != rule.data_column) {
        continue;
      }
      // D.t < c  => range.start <  c   (some sample before c exists only
      // D.t <= c => range.start <= c    if the interval starts before c)
      // D.t > c  => range.end   >  c
      // D.t >= c => range.end   >= c
      // D.t = c  => range.start <= c AND range.end >= c
      auto& out = table_preds[rule.range_table];
      if (op == BinaryOp::kLt || op == BinaryOp::kLe) {
        LAZYETL_ASSIGN_OR_RETURN(
            BoundExprPtr start_ref,
            make_range_ref(rule.range_table, rule.start_column));
        out.push_back(make_comparison(op, std::move(start_ref), *lit));
      } else if (op == BinaryOp::kGt || op == BinaryOp::kGe) {
        LAZYETL_ASSIGN_OR_RETURN(
            BoundExprPtr end_ref,
            make_range_ref(rule.range_table, rule.end_column));
        out.push_back(make_comparison(op, std::move(end_ref), *lit));
      } else {  // kEq
        LAZYETL_ASSIGN_OR_RETURN(
            BoundExprPtr start_ref,
            make_range_ref(rule.range_table, rule.start_column));
        LAZYETL_ASSIGN_OR_RETURN(
            BoundExprPtr end_ref,
            make_range_ref(rule.range_table, rule.end_column));
        out.push_back(
            make_comparison(BinaryOp::kLe, std::move(start_ref), *lit));
        out.push_back(
            make_comparison(BinaryOp::kGe, std::move(end_ref), *lit));
      }
    }
  }

  // Tables available so far along the join path; used to place multi-table
  // predicates as early as possible.
  std::vector<std::string> available = {view.root_table};
  auto apply_available_multi_preds = [&](PlanNodePtr node) -> PlanNodePtr {
    std::vector<BoundExprPtr> ready;
    for (auto& [tables, pred] : multi_preds) {
      if (!pred) continue;
      bool all_in = std::all_of(
          tables.begin(), tables.end(), [&](const std::string& t) {
            return std::find(available.begin(), available.end(), t) !=
                   available.end();
          });
      if (all_in) ready.push_back(std::move(pred));
    }
    if (BoundExprPtr combined = CombineConjuncts(std::move(ready))) {
      node = MakeFilter(std::move(node), std::move(combined));
    }
    return node;
  };

  // 5. Build the optimized plan bottom-up: every table's own predicates run
  //    directly above its scan — metadata predicates therefore execute
  //    before any join and before any data extraction.
  auto scan_with_filter = [&](const std::string& table) -> PlanNodePtr {
    PlanNodePtr scan = MakeScan(table, needed[table]);
    auto preds = std::move(table_preds[table]);
    if (BoundExprPtr combined = CombineConjuncts(std::move(preds))) {
      return MakeFilter(std::move(scan), std::move(combined));
    }
    return scan;
  };

  // Also assemble the naive ("before reorganisation") plan for the report:
  // all scans joined first, the whole WHERE applied on top.
  PlanNodePtr naive = MakeScan(view.root_table, needed[view.root_table]);

  PlanNodePtr node = scan_with_filter(view.root_table);
  node = apply_available_multi_preds(std::move(node));

  for (size_t i = 0; i < last_needed_step; ++i) {
    const storage::ViewJoinStep& step = view.joins[i];
    std::vector<std::string> left_keys;
    std::vector<std::string> right_keys;
    for (const auto& [left, right] : step.keys) {
      size_t dot = left.rfind('.');
      LAZYETL_ASSIGN_OR_RETURN(
          std::string ldisp,
          ViewDisplayName(view, left.substr(0, dot), left.substr(dot + 1)));
      LAZYETL_ASSIGN_OR_RETURN(std::string rdisp,
                               ViewDisplayName(view, step.table, right));
      left_keys.push_back(ldisp);
      right_keys.push_back(rdisp);
    }

    bool lazy_step =
        IsLazy(step.table) ||
        (!view.lazy_table.empty() && step.table == view.lazy_table);

    if (lazy_step) {
      // The data table is not materialised: a LazyDataScan consumes the
      // metadata side and performs fetch + join at run time.
      auto lazy = std::make_unique<PlanNode>();
      lazy->type = PlanNodeType::kLazyDataScan;
      lazy->table = step.table;
      lazy->scan_columns = needed[step.table];
      // Probe keys: (file_id, seq_no) equivalents on the metadata side.
      if (left_keys.size() != 2) {
        return Status::NotImplemented(
            "lazy data table must join on exactly (file_id, seq_no)");
      }
      lazy->probe_file_id_column = left_keys[0];
      lazy->probe_seq_no_column = left_keys[1];
      lazy->left_keys = left_keys;
      lazy->right_keys = right_keys;
      lazy->children.push_back(std::move(node));
      node = std::move(lazy);
      // Data-table predicates apply right after extraction.
      auto preds = std::move(table_preds[step.table]);
      if (BoundExprPtr combined = CombineConjuncts(std::move(preds))) {
        node = MakeFilter(std::move(node), std::move(combined));
      }
    } else {
      node = MakeHashJoin(std::move(node), scan_with_filter(step.table),
                          left_keys, right_keys);
    }

    // Naive plan mirrors the same join tree without any pushdown.
    naive = MakeHashJoin(std::move(naive), MakeScan(step.table, needed[step.table]),
                         left_keys, right_keys);

    available.push_back(step.table);
    node = apply_available_multi_preds(std::move(node));
  }

  // Any leftover multi-table predicates reference tables outside the join
  // prefix — that would be a planner bug.
  for (auto& [tables, pred] : multi_preds) {
    if (pred) {
      return Status::Internal("predicate " + pred->ToString() +
                              " references tables outside the join path");
    }
  }

  if (query.where) {
    naive = MakeFilter(std::move(naive), query.where->Clone());
  }
  LAZYETL_ASSIGN_OR_RETURN(naive,
                           FinishPlan(query, std::move(naive), /*fuse=*/false));

  LAZYETL_ASSIGN_OR_RETURN(node, FinishPlan(query, std::move(node)));

  PlannedQuery out;
  out.naive_plan = naive->ToString();
  out.plan = std::move(node);
  return out;
}

Result<PlannedQuery> Planner::Plan(const BoundQuery& query) {
  if (query.view != nullptr) return PlanViewQuery(query);
  return PlanBaseTableQuery(query);
}

namespace {

// Zone-map-sharpened bound for a Filter directly over a Scan: only the
// chunks whose statistics admit the predicate count toward the scan's
// output. Falls back to `fallback` (the full scan size) when the table,
// its statistics, or a usable conjunct is unavailable.
uint64_t EstimateFilterOverScan(const PlanNode& filter, const PlanNode& scan,
                                const storage::Catalog& catalog,
                                uint64_t fallback) {
  if (filter.predicate == nullptr) return fallback;
  auto table = catalog.GetTable(scan.table);
  if (!table.ok()) return fallback;
  storage::TableSlice base;
  if (scan.scan_columns.empty()) {
    base = storage::TableSlice::FromTable(**table, 0, 0);
  } else {
    for (const auto& sc : scan.scan_columns) {
      auto c = (*table)->ColumnByName(sc.base_column);
      if (!c.ok()) return fallback;
      base.AddColumn(sc.output_name, *c);
    }
  }
  uint64_t sharp =
      EstimateFilteredScanBytes(**table, base, *filter.predicate);
  return std::min(sharp, fallback);
}

// Cardinality hint for one grouping column resolved to its base-table
// storage: exact for dictionary-encoded strings (the dictionary size), a
// [min, max] value-span bound for integer-like columns with zone maps,
// the domain size for bools. 0 = unknown (expressions, plain strings,
// doubles, missing statistics).
uint64_t ColumnCardinalityHintFor(const storage::Catalog& catalog,
                                  const std::string& base_table,
                                  const std::string& base_column) {
  auto table = catalog.GetTable(base_table);
  if (!table.ok()) return 0;
  auto idx = (*table)->ColumnIndex(base_column);
  if (!idx.ok()) return 0;
  const storage::Column& col = (*table)->column(*idx);
  switch (col.type()) {
    case storage::DataType::kString:
      if (col.dict_encoded() && col.dictionary() != nullptr) {
        return static_cast<uint64_t>(col.dictionary()->size());
      }
      return 0;
    case storage::DataType::kBool:
      return 2;
    case storage::DataType::kDouble:
      return 0;
    default: {  // int32 / int64 / timestamp
      const storage::ColumnZoneMap* zm = (*table)->zone_map(*idx);
      if (zm == nullptr || zm->chunks.empty()) return 0;
      int64_t lo = std::numeric_limits<int64_t>::max();
      int64_t hi = std::numeric_limits<int64_t>::min();
      bool any = false;
      for (const auto& ch : zm->chunks) {
        if (!ch.has_bounds) continue;
        lo = std::min(lo, ch.imin);
        hi = std::max(hi, ch.imax);
        any = true;
      }
      if (!any || hi < lo) return 0;
      uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
      // A span wider than this can't sharpen anything downstream.
      if (span >= (1ull << 32)) return 0;
      return span + 1;
    }
  }
}

uint64_t ColumnCardinalityHint(const storage::Catalog& catalog,
                               const BoundExpr& expr) {
  if (expr.kind != ExprKind::kColumnRef || expr.base_table.empty()) return 0;
  return ColumnCardinalityHintFor(catalog, expr.base_table, expr.base_column);
}

// Resolves a join-key display name (e.g. "B.k") through the build
// subtree's scans to its base-table storage and returns that column's
// cardinality hint. 0 = key not found or cardinality unknown.
uint64_t FindScanColumnCardinality(const PlanNode& node,
                                   const storage::Catalog& catalog,
                                   const std::string& key) {
  if (node.type == PlanNodeType::kScan) {
    if (node.scan_columns.empty()) {
      return ColumnCardinalityHintFor(catalog, node.table, key);
    }
    for (const auto& sc : node.scan_columns) {
      if (sc.output_name == key) {
        return ColumnCardinalityHintFor(catalog, node.table, sc.base_column);
      }
    }
    return 0;
  }
  for (const auto& child : node.children) {
    uint64_t card = FindScanColumnCardinality(*child, catalog, key);
    if (card != 0) return card;
  }
  return 0;
}

// Distinct-key bound for a join's build side: the product of the build
// keys' cardinality hints (0 when any key is unknown — one unbounded key
// makes the product meaningless).
uint64_t JoinBuildKeyCardinality(const PlanNode& join,
                                 const storage::Catalog& catalog) {
  if (join.children.empty()) return 0;
  uint64_t cards = join.left_keys.empty() ? 0 : 1;
  for (const auto& key : join.left_keys) {
    uint64_t card =
        FindScanColumnCardinality(*join.children[0], catalog, key);
    if (card == 0) return 0;
    if (cards > (1ull << 40) / card) return 0;  // overflow / uninformative
    cards *= card;
  }
  return cards;
}

// Distinct-group bound for a grouping column set: the product of the
// per-column cardinality hints. 0 when any column's cardinality is
// unknown (one unbounded column makes the product meaningless).
uint64_t GroupCardinalityHint(const storage::Catalog& catalog,
                              const std::vector<BoundExprPtr>& exprs) {
  uint64_t groups = exprs.empty() ? 0 : 1;
  for (const auto& e : exprs) {
    uint64_t card = ColumnCardinalityHint(catalog, *e);
    if (card == 0) return 0;
    if (groups > (1ull << 40) / card) return 0;  // overflow / uninformative
    groups *= card;
  }
  return groups;
}

// Walks the plan bottom-up carrying an output-size estimate per node and
// accumulating breaker state into *state_bytes. Returns the node's
// estimated output bytes.
uint64_t EstimateNodeOutput(const PlanNode& node,
                            const storage::Catalog& catalog,
                            uint64_t lazy_scan_bytes, uint64_t* state_bytes) {
  std::vector<uint64_t> child_out;
  child_out.reserve(node.children.size());
  uint64_t child_sum = 0;
  for (const auto& child : node.children) {
    child_out.push_back(
        EstimateNodeOutput(*child, catalog, lazy_scan_bytes, state_bytes));
    child_sum += child_out.back();
  }
  switch (node.type) {
    case PlanNodeType::kScan: {
      auto table = catalog.GetTable(node.table);
      return table.ok() ? (*table)->MemoryBytes() : 0;
    }
    case PlanNodeType::kLazyDataScan:
      // The metadata side streams through; the dominant cost is the
      // extracted actual data joined against it.
      return lazy_scan_bytes + child_sum;
    case PlanNodeType::kCachedScan:
      // The table is already resident in the sub-plan cache (charged to
      // the cache pool, not this query) — streaming it costs no state,
      // only the result bytes it emits.
      return node.cached_table != nullptr ? node.cached_table->MemoryBytes()
                                          : 0;
    case PlanNodeType::kFilter:
      // Streaming; no state. When the filter sits directly on a base-table
      // scan, zone maps bound how many chunks can survive the predicate —
      // the same statistics the scan uses to skip morsels at run time.
      if (node.children.size() == 1 &&
          node.children[0]->type == PlanNodeType::kScan) {
        return EstimateFilterOverScan(node, *node.children[0], catalog,
                                      child_sum);
      }
      return child_sum;
    case PlanNodeType::kProject:
    case PlanNodeType::kLimit:
      // Streaming operators: no state; selectivity unknown, so the upper
      // bound passes the input through.
      return child_sum;
    case PlanNodeType::kHashJoin: {
      // The build side (children[0]) is materialised as the hash table,
      // plus its key index. The index defaults to ~build/4 (slots, cached
      // hashes and match lists over uint32 rows); when every build key
      // resolves to base storage with a known cardinality, distinct keys
      // bound it instead (~64 B per distinct key), so footprint-aware
      // admission stops over-reserving for low-cardinality key joins.
      uint64_t build = child_out.empty() ? 0 : child_out[0];
      uint64_t index = build / 4;
      uint64_t cards = JoinBuildKeyCardinality(node, catalog);
      if (cards > 0) index = std::min(index, cards * 64);
      *state_bytes += build + index;
      return child_sum;
    }
    case PlanNodeType::kSort:
      *state_bytes += child_sum;
      return child_sum;
    case PlanNodeType::kAggregate:
    case PlanNodeType::kDistinct: {
      // Grouped output and state are O(groups), not O(input). When every
      // grouping column resolves to base storage with a known cardinality
      // (dictionary size, zone-map value span, bool domain), size both by
      // the group-count bound; the old byte heuristic (state = input,
      // output = input / 4) stays as the cap, so estimates only sharpen.
      const std::vector<BoundExprPtr>* exprs = nullptr;
      uint64_t groups = 0;
      size_t width = 1;
      if (node.type == PlanNodeType::kAggregate) {
        exprs = &node.group_exprs;
        width = node.group_exprs.size() + node.aggregates.size() + 1;
        // A grand aggregate has exactly one output row.
        if (node.group_exprs.empty()) groups = 1;
      } else if (node.children.size() == 1 &&
                 node.children[0]->type == PlanNodeType::kProject) {
        // Distinct dedups its child's full output row; sharpen when that
        // row is a plain projection of base columns.
        exprs = &node.children[0]->project_exprs;
        width = exprs->size() + 1;
      }
      if (groups == 0 && exprs != nullptr) {
        groups = GroupCardinalityHint(catalog, *exprs);
      }
      if (groups == 0) {
        *state_bytes += child_sum;
        return child_sum / 4;
      }
      uint64_t per_group = 48 * static_cast<uint64_t>(width);
      *state_bytes += std::min<uint64_t>(child_sum, groups * per_group);
      return std::min<uint64_t>(child_sum / 4, groups * per_group);
    }
    case PlanNodeType::kTopK: {
      // O(k) candidates per worker; a coarse per-row constant suffices.
      uint64_t k = node.limit > 0 ? static_cast<uint64_t>(node.limit) : 1;
      *state_bytes += k * 64;
      return k * 64;
    }
  }
  return child_sum;
}

}  // namespace

uint64_t EstimatePlanFootprint(const PlanNode& plan,
                               const storage::Catalog& catalog,
                               uint64_t lazy_scan_bytes) {
  uint64_t state_bytes = 0;
  uint64_t result_bytes =
      EstimateNodeOutput(plan, catalog, lazy_scan_bytes, &state_bytes);
  // Breaker state + the materialised result; never zero, so an enabled
  // estimate is always visible to the admission gate.
  return std::max<uint64_t>(1, state_bytes + result_bytes);
}

}  // namespace lazyetl::engine
