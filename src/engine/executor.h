// Executor: runs plans bottom-up with materialised intermediates.
//
// The LazyDataScan node realises the paper's run-time plan modification
// (§3.1): after the metadata side of the plan has executed, the executor's
// rewriting step inspects the qualifying (file_id, seq_no) pairs and asks
// the LazyDataProvider for exactly those records; the provider serves them
// from the recycler cache or extracts them from the source files. The
// "plan after rewrite" — which records came from cache, which files were
// opened — is recorded in the ExecutionReport.

#ifndef LAZYETL_ENGINE_EXECUTOR_H_
#define LAZYETL_ENGINE_EXECUTOR_H_

#include <vector>

#include "common/result.h"
#include "engine/plan.h"
#include "engine/recycler.h"
#include "engine/report.h"
#include "storage/catalog.h"

namespace lazyetl::engine {

// Supplies actual data at query time (implemented by the lazy ETL layer).
class LazyDataProvider {
 public:
  virtual ~LazyDataProvider() = default;

  // Produces a table holding `columns` (named by output_name) for exactly
  // the requested records. Expected columns are a subset of the data
  // table's schema (file_id, seq_no, sample_time, sample_value).
  virtual Result<storage::Table> FetchRecords(
      const std::vector<RecordKey>& keys,
      const std::vector<ScanColumn>& columns, ExecutionReport* report) = 0;

  // The §3.1 worst case: every record of the repository.
  virtual Result<storage::Table> FetchAllRecords(
      const std::vector<ScanColumn>& columns, ExecutionReport* report) = 0;
};

class Executor {
 public:
  // `provider` may be null (pure eager warehouse); executing a
  // LazyDataScan without a provider is an execution error.
  Executor(const storage::Catalog* catalog, LazyDataProvider* provider)
      : catalog_(catalog), provider_(provider) {}

  Result<storage::Table> Execute(const PlanNode& plan,
                                 ExecutionReport* report);

 private:
  Result<storage::Table> ExecuteScan(const PlanNode& node);
  Result<storage::Table> ExecuteLazyDataScan(const PlanNode& node,
                                             ExecutionReport* report);
  Result<storage::Table> ExecuteFilter(const PlanNode& node,
                                       ExecutionReport* report);
  Result<storage::Table> ExecuteHashJoin(const PlanNode& node,
                                         ExecutionReport* report);
  Result<storage::Table> ExecuteAggregate(const PlanNode& node,
                                          ExecutionReport* report);
  Result<storage::Table> ExecuteProject(const PlanNode& node,
                                        ExecutionReport* report);
  Result<storage::Table> ExecuteDistinct(const PlanNode& node,
                                         ExecutionReport* report);
  Result<storage::Table> ExecuteSort(const PlanNode& node,
                                     ExecutionReport* report);
  Result<storage::Table> ExecuteLimit(const PlanNode& node,
                                      ExecutionReport* report);

  const storage::Catalog* catalog_;
  LazyDataProvider* provider_;
};

// Joins two materialised tables on equal key columns (hash join; build on
// left). Exposed for reuse by the LazyDataScan implementation and tests.
Result<storage::Table> HashJoinTables(const storage::Table& left,
                                      const storage::Table& right,
                                      const std::vector<std::string>& left_keys,
                                      const std::vector<std::string>& right_keys);

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_EXECUTOR_H_
