// Executor: a thin driver over the streaming batch pipeline.
//
// Plans execute as a pull-based tree of BatchOperators (engine/operators/)
// exchanging fixed-size batches, so peak intermediate memory of pipelined
// plans is bounded by O(batch size × pipeline depth) instead of the full
// qualifying set. The LazyDataScan operator realises the paper's run-time
// plan modification (§3.1): after the metadata side of the plan has
// executed, the rewriting step inspects the qualifying (file_id, seq_no)
// pairs and asks the LazyDataProvider for exactly those records; the
// provider serves them from the recycler cache or extracts them from the
// source files — file by file, feeding the pipeline as a stream. The
// "plan after rewrite" — which records came from cache, which files were
// opened — is recorded in the ExecutionReport, along with per-operator
// batch/row/time counters.

#ifndef LAZYETL_ENGINE_EXECUTOR_H_
#define LAZYETL_ENGINE_EXECUTOR_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "engine/plan.h"
#include "engine/recycler.h"
#include "engine/report.h"
#include "storage/catalog.h"

namespace lazyetl::engine {

// Rows per pipeline batch (the vectorized execution sweet spot: large
// enough to amortise per-batch overhead, small enough to stay cache- and
// memory-friendly).
inline constexpr size_t kDefaultBatchRows = 4096;

// A pull stream of record chunks produced by lazy extraction. Chunks
// arrive file-by-file, each at most the requested batch size, so the
// engine never holds more than a bounded window of extracted data.
// Streams emit at least one (possibly empty) chunk before end-of-stream
// so the schema always reaches the consumer.
class RecordStream {
 public:
  virtual ~RecordStream() = default;

  // Fills *out with the next chunk; returns false at end of stream.
  virtual Result<bool> Next(storage::Table* out) = 0;
};

// Supplies actual data at query time (implemented by the lazy ETL layer).
class LazyDataProvider {
 public:
  virtual ~LazyDataProvider() = default;

  // Produces a table holding `columns` (named by output_name) for exactly
  // the requested records. Expected columns are a subset of the data
  // table's schema (file_id, seq_no, sample_time, sample_value).
  virtual Result<storage::Table> FetchRecords(
      const std::vector<RecordKey>& keys,
      const std::vector<ScanColumn>& columns, ExecutionReport* report) = 0;

  // The §3.1 worst case: every record of the repository.
  virtual Result<storage::Table> FetchAllRecords(
      const std::vector<ScanColumn>& columns, ExecutionReport* report) = 0;

  // Streaming fetch: the same records as FetchRecords, emitted file-by-file
  // in chunks of at most `batch_rows` rows. The default adapts
  // FetchRecords into a single-chunk stream; providers that can extract
  // incrementally should override it to bound peak memory.
  virtual Result<std::unique_ptr<RecordStream>> StreamRecords(
      const std::vector<RecordKey>& keys,
      const std::vector<ScanColumn>& columns, size_t batch_rows,
      ExecutionReport* report);

  // Streaming variant of FetchAllRecords.
  virtual Result<std::unique_ptr<RecordStream>> StreamAllRecords(
      const std::vector<ScanColumn>& columns, size_t batch_rows,
      ExecutionReport* report);
};

struct ExecutorOptions {
  // Rows per pipeline batch. SIZE_MAX reproduces whole-table intermediates
  // (the materialize-everything baseline, useful for comparison).
  size_t batch_rows = kDefaultBatchRows;
  // Worker threads driving the batch pipeline (morsel-driven parallelism:
  // sources hand out disjoint batch-sized morsels, pipeline breakers merge
  // per-batch partial states deterministically). 0 = hardware_concurrency;
  // 1 = the serial execution path. Results are deterministic at any
  // setting; floating-point SUM/AVG combine per-batch partials in batch
  // order under parallelism, which can differ from the serial row-order
  // sum in the last few ulps.
  size_t query_threads = 0;
  // Memory governance: per-query cap on resident pipeline-breaker state
  // (Sort / Aggregate / Distinct / HashJoin build). 0 = unlimited (the
  // in-memory fast paths; the LAZYETL_MEMORY_BUDGET environment variable,
  // if set, supplies the cap instead). With a finite budget, breakers
  // spill state to temp files under `spill_dir` and stream it back —
  // results stay byte-identical to the unbudgeted run at any thread
  // count.
  uint64_t memory_budget_bytes = 0;
  // Directory for spill files; "" = LAZYETL_SPILL_DIR, else the system
  // temp directory. Each query gets its own subdirectory, removed when
  // the query finishes (crash-orphaned directories are swept by the next
  // spilling query).
  std::string spill_dir;
};

class QueryContext;
class BatchCursor;
class BatchOperator;
struct Batch;
struct ExecContext;

// A suspended query execution: the operator tree stays open while the
// consumer pulls in-order batches through Next(). Produced by
// Executor::OpenCursor; Execute() is now a drain loop over one of these.
//
// Close() (implied by the destructor, idempotent) cancels the drive loop,
// closes the operator tree, finalizes the per-operator stats in the
// report exactly once, and — on the standalone path — releases the local
// QueryContext (budget + spill dir). Admitted queries release their
// QueryContext in the owner (core::QueryCursor). Single consumer: Next
// and Close are called from one thread at a time. The plan passed to
// OpenCursor must outlive the cursor (operators hold pointers into it).
class ExecutionCursor {
 public:
  ~ExecutionCursor();
  ExecutionCursor(const ExecutionCursor&) = delete;
  ExecutionCursor& operator=(const ExecutionCursor&) = delete;

  // Fills *out with the next in-order batch; returns false at end of
  // stream (after finalizing the report). The first batch always carries
  // the schema. Errors finalize the report (without per-operator stats,
  // matching Execute) and are sticky.
  Result<bool> Next(Batch* out);

  // Tears down the pipeline: cancel + join the drive loop, close the
  // operator tree, finalize the report, release standalone context state.
  // Exactly-once and safe mid-stream (client disconnect).
  void Close();

  // Peak result batches/bytes buffered between producers and the
  // consumer; see BatchCursor. Stable after Close()/exhaustion.
  uint64_t peak_buffered_batches() const;
  uint64_t peak_buffered_bytes() const;

 private:
  friend class Executor;
  ExecutionCursor();
  void Finalize(bool with_stats);

  std::unique_ptr<QueryContext> local_ctx_;  // standalone path only
  QueryContext* qctx_ = nullptr;
  ExecutionReport* report_ = nullptr;
  std::unique_ptr<ExecContext> exec_ctx_;
  std::unique_ptr<BatchOperator> root_;
  std::unique_ptr<BatchCursor> cursor_;
  uint64_t peak_buffered_batches_ = 0;
  uint64_t peak_buffered_bytes_ = 0;
  bool finalized_ = false;
  bool closed_ = false;
  bool finished_ = false;
};

class Executor {
 public:
  // `provider` may be null (pure eager warehouse); executing a
  // LazyDataScan without a provider is an execution error.
  Executor(const storage::Catalog* catalog, LazyDataProvider* provider,
           ExecutorOptions options = {})
      : catalog_(catalog), provider_(provider), options_(options) {}

  // Builds the batch-operator tree for `plan`, drains it, and assembles
  // the result table. Per-operator counters land in `report`. `qctx`
  // supplies the per-query budget/spill state (admission-controlled
  // serving, see engine/query_context.h); when null, a standalone context
  // is constructed from the options (budget from
  // memory_budget_bytes, else the LAZYETL_MEMORY_BUDGET environment
  // variable, chained to the process-global budget).
  Result<storage::Table> Execute(const PlanNode& plan,
                                 ExecutionReport* report,
                                 QueryContext* qctx = nullptr);

  // Streaming form of Execute: builds and opens the operator tree, then
  // returns a cursor yielding in-order batches. `window_batches` bounds
  // the batches buffered ahead of the consumer (backpressure; 0 =
  // unbounded). `plan` (and `report`/`qctx`, when given) must outlive the
  // cursor.
  Result<std::unique_ptr<ExecutionCursor>> OpenCursor(
      const PlanNode& plan, ExecutionReport* report,
      QueryContext* qctx = nullptr, size_t window_batches = 0);

 private:
  const storage::Catalog* catalog_;
  LazyDataProvider* provider_;
  ExecutorOptions options_;
};

// Joins two materialised tables on equal key columns (hash join; build on
// left). Exposed for reuse by the LazyDataScan implementation and tests.
Result<storage::Table> HashJoinTables(const storage::Table& left,
                                      const storage::Table& right,
                                      const std::vector<std::string>& left_keys,
                                      const std::vector<std::string>& right_keys);

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_EXECUTOR_H_
