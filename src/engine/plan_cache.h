// PlanCache: the semantic sub-plan tier of the multi-tier cache.
//
// "Materialization ... is simply caching the result of a view definition"
// — a pipeline-breaker subtree (Aggregate/Distinct/Sort/TopK over its
// inputs) *is* a view definition, so its materialized output can be
// cached and substituted. The Warehouse fingerprints the topmost breaker
// subtree of a plan (canonical serialization of node types, tables,
// projections and expression text — not SQL text, so differently-written
// but identically-planned queries share entries), and:
//
//   * on a hit, replaces the subtree with a kCachedScan over the cached
//     table before execution — the repeated dashboard aggregate never
//     touches the repository;
//   * on a miss, executes the subtree first, admits its output together
//     with the (file, mtime) dependency set the execution recorded, then
//     runs the remainder of the plan over the cached table.
//
// Validation is conservative and identical to the ResultRecycler's: an
// entry is served only while every dependency's mtime is unchanged; the
// Warehouse additionally clears the tier wherever the catalog is
// republished (attach/hydrate/refresh), because republishing can add
// files an old dependency list knows nothing about.
//
// Admission epoch: an entry is planned, executed and admitted without
// holding the cache lock, so a Clear() can race the admission (the entry
// was computed against a catalog that no longer exists). Admit() takes
// the epoch observed at planning time and drops the entry when Clear()
// has bumped it since.
//
// Memory: entries charge the shared cache MemoryPool via ChargeWithYield
// with mu_ NOT held (pool locking protocol); the tier's own yielder
// evicts from the LRU front under mu_ only.

#ifndef LAZYETL_ENGINE_PLAN_CACHE_H_
#define LAZYETL_ENGINE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/memory_pool.h"
#include "common/time.h"
#include "engine/plan.h"
#include "engine/recycler.h"  // ResultDependency
#include "storage/table.h"

namespace lazyetl::engine {

// Canonical fingerprint of a plan subtree: node types, table names,
// projections, and expression text, recursively with explicit
// delimiters. Returns an empty string when the subtree contains a node
// that cannot be canonically serialized (e.g. an already-substituted
// kCachedScan).
std::string PlanFingerprint(const PlanNode& node);

// Walks the plan spine (root, then through Filter/Project/Limit single
// children) to the topmost pipeline breaker (Aggregate/Distinct/Sort/
// TopK) and returns the slot holding it, or nullptr when no breaker is
// reachable (plain scans, joins above the breaker). The slot lets the
// caller detach and substitute the subtree in place.
PlanNodePtr* FindCacheableSubPlan(PlanNodePtr* root);

// One cached breaker output.
struct CachedSubPlan {
  storage::TablePtr table;
  std::vector<ResultDependency> deps;
  NanoTime admitted_at = 0;
  uint64_t bytes = 0;  // pool charge; computed by Admit when zero
};

using CachedSubPlanPtr = std::shared_ptr<const CachedSubPlan>;

// Value snapshot of the tier counters (the live counters are atomics).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;  // entries dropped by dependency staleness
  uint64_t admissions = 0;
  uint64_t evictions = 0;
  uint64_t rejected = 0;  // refused under pool pressure or epoch races
  uint64_t current_bytes = 0;
  uint64_t budget_bytes = 0;
  uint64_t entries = 0;
};

class PlanCache {
 public:
  // Same lifetime rules as the other tiers: `pool` must outlive the
  // cache; destroy only while no other tier is admitting.
  explicit PlanCache(uint64_t budget_bytes,
                     common::MemoryPool* pool = nullptr);
  ~PlanCache();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // The current admission epoch; observe it before planning and pass it
  // to Admit.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Returns the entry (bumped to MRU) iff every dependency still has its
  // admitted mtime; `mtime_fn(dep)` returns the current mtime (negative =
  // file gone). The dependency stats run outside the cache lock so slow
  // filesystems never serialise concurrent queries here. A failed
  // validation erases the entry (if still the same one) and counts an
  // invalidation.
  template <typename MtimeFn>
  CachedSubPlanPtr ValidateAndGet(const std::string& fingerprint,
                                  MtimeFn mtime_fn) {
    CachedSubPlanPtr entry;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = map_.find(fingerprint);
      if (it != map_.end()) {
        entry = it->second.entry;
        lru_.erase(it->second.lru_it);
        lru_.push_back(fingerprint);
        it->second.lru_it = std::prev(lru_.end());
      }
    }
    if (entry == nullptr) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    for (const auto& dep : entry->deps) {
      NanoTime current = mtime_fn(dep);
      if (current != dep.mtime) {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(fingerprint);
        // Only drop the entry we validated; a concurrent re-admission
        // under the same fingerprint may already be fresher.
        if (it != map_.end() && it->second.entry == entry) {
          EraseLocked(it);
        }
        invalidations_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
      }
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return entry;
  }

  // Inserts or replaces; drops the entry (counted in `rejected`) when the
  // bytes cannot be charged even after cross-tier yield, or when Clear()
  // bumped the epoch after `epoch_at_plan` was observed (the entry was
  // computed against a republished catalog).
  void Admit(const std::string& fingerprint, CachedSubPlan entry,
             uint64_t epoch_at_plan);

  // Drops every entry depending on `file_id`.
  void InvalidateFile(int64_t file_id);

  // Drops everything and bumps the admission epoch.
  void Clear();

  uint64_t ResidentBytes() const {
    return current_bytes_.load(std::memory_order_relaxed);
  }

  PlanCacheStats stats() const;
  void ResetCounters();

 private:
  struct Node {
    CachedSubPlanPtr entry;
    std::list<std::string>::iterator lru_it;
  };
  using Map = std::unordered_map<std::string, Node>;

  // Both require mu_ held; both release the pool charge.
  uint64_t EvictOneLocked();
  void EraseLocked(Map::iterator it);

  const uint64_t budget_bytes_;
  common::MemoryPool* const pool_;
  common::MemoryPool::YielderId yielder_id_ = -1;

  mutable std::mutex mu_;  // guards map_, lru_
  Map map_;
  std::list<std::string> lru_;  // front = least recently used

  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> admissions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> current_bytes_{0};
  std::atomic<uint64_t> entries_{0};
};

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_PLAN_CACHE_H_
