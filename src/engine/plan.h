// Query plan representation.
//
// Plans are operator trees executed bottom-up with fully materialised
// intermediates (column-at-a-time, MonetDB-style). The LazyDataScan node is
// the lazy-ETL hook: at run time, the executor's rewriting step replaces it
// with cache accesses and file extractions for exactly the records its
// metadata-side child selected.

#ifndef LAZYETL_ENGINE_PLAN_H_
#define LAZYETL_ENGINE_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "sql/binder.h"
#include "storage/table.h"

namespace lazyetl::engine {

enum class PlanNodeType {
  kScan,          // read a catalog table (optionally qualified/projected)
  kLazyDataScan,  // lazy extraction + join against metadata-side child
  kCachedScan,    // read a table pinned in the node (sub-plan cache hit)
  kFilter,
  kHashJoin,
  kAggregate,
  kProject,
  kDistinct,  // drop duplicate rows, keeping first occurrences
  kSort,
  kTopK,  // fused Sort + Limit: bounded top-k heap breaker
  kLimit,
};

const char* PlanNodeTypeToString(PlanNodeType t);

struct PlanNode;
using PlanNodePtr = std::unique_ptr<PlanNode>;

// A scan output column: base column renamed to its qualified display name.
struct ScanColumn {
  std::string base_column;  // name in the stored table
  std::string output_name;  // name in the intermediate ("F.station")
};

struct PlanNode {
  PlanNodeType type = PlanNodeType::kScan;
  std::vector<PlanNodePtr> children;

  // kScan / kLazyDataScan
  std::string table;               // catalog table name
  std::vector<ScanColumn> scan_columns;

  // kCachedScan: the materialized table itself — the sub-plan cache
  // substitutes the cached breaker output for the subtree it replaces.
  // `table` carries a display label ("subplan:<fingerprint prefix>").
  storage::TablePtr cached_table;

  // kLazyDataScan: display names (in the child's output) of the columns
  // holding the record keys to fetch. Empty child => fetch everything
  // (the paper's worst case: the whole repository).
  std::string probe_file_id_column;  // e.g. "R.file_id"
  std::string probe_seq_no_column;   // e.g. "R.seq_no"

  // kFilter
  sql::BoundExprPtr predicate;

  // kHashJoin (children[0] = build/left, children[1] = probe/right)
  std::vector<std::string> left_keys;
  std::vector<std::string> right_keys;

  // kAggregate
  std::vector<sql::BoundExprPtr> group_exprs;  // named by their ToString()
  std::vector<sql::BoundAggregate> aggregates;

  // kProject
  std::vector<sql::BoundExprPtr> project_exprs;
  std::vector<std::string> project_names;

  // kSort / kTopK
  std::vector<sql::BoundOrderItem> order_items;

  // kLimit / kTopK (the k)
  int64_t limit = -1;

  // Pretty-printed plan tree (one node per line, indented).
  std::string ToString() const;
};

// Helper constructors.
PlanNodePtr MakeScan(std::string table, std::vector<ScanColumn> columns);
PlanNodePtr MakeFilter(PlanNodePtr child, sql::BoundExprPtr predicate);
PlanNodePtr MakeHashJoin(PlanNodePtr left, PlanNodePtr right,
                         std::vector<std::string> left_keys,
                         std::vector<std::string> right_keys);
PlanNodePtr MakeCachedScan(storage::TablePtr table, std::string label);

}  // namespace lazyetl::engine

#endif  // LAZYETL_ENGINE_PLAN_H_
