#include "engine/plan.h"

#include <sstream>

namespace lazyetl::engine {

const char* PlanNodeTypeToString(PlanNodeType t) {
  switch (t) {
    case PlanNodeType::kScan:
      return "Scan";
    case PlanNodeType::kLazyDataScan:
      return "LazyDataScan";
    case PlanNodeType::kCachedScan:
      return "CachedScan";
    case PlanNodeType::kFilter:
      return "Filter";
    case PlanNodeType::kHashJoin:
      return "HashJoin";
    case PlanNodeType::kAggregate:
      return "Aggregate";
    case PlanNodeType::kProject:
      return "Project";
    case PlanNodeType::kDistinct:
      return "Distinct";
    case PlanNodeType::kSort:
      return "Sort";
    case PlanNodeType::kTopK:
      return "TopK";
    case PlanNodeType::kLimit:
      return "Limit";
  }
  return "?";
}

namespace {

void PrintNode(const PlanNode& node, int depth, std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  *os << PlanNodeTypeToString(node.type);
  switch (node.type) {
    case PlanNodeType::kScan: {
      *os << "(" << node.table;
      if (!node.scan_columns.empty()) {
        *os << " -> ";
        for (size_t i = 0; i < node.scan_columns.size(); ++i) {
          if (i) *os << ", ";
          *os << node.scan_columns[i].output_name;
        }
      }
      *os << ")";
      break;
    }
    case PlanNodeType::kLazyDataScan: {
      *os << "(" << node.table << " keyed by ";
      if (node.children.empty()) {
        *os << "<entire repository>";
      } else {
        *os << node.probe_file_id_column << ", " << node.probe_seq_no_column;
      }
      *os << ")";
      break;
    }
    case PlanNodeType::kCachedScan:
      *os << "(" << node.table << ")";
      break;
    case PlanNodeType::kFilter:
      *os << "(" << node.predicate->ToString() << ")";
      break;
    case PlanNodeType::kHashJoin: {
      *os << "(";
      for (size_t i = 0; i < node.left_keys.size(); ++i) {
        if (i) *os << " AND ";
        *os << node.left_keys[i] << " = " << node.right_keys[i];
      }
      *os << ")";
      break;
    }
    case PlanNodeType::kAggregate: {
      *os << "(groups: ";
      if (node.group_exprs.empty()) *os << "<all>";
      for (size_t i = 0; i < node.group_exprs.size(); ++i) {
        if (i) *os << ", ";
        *os << node.group_exprs[i]->ToString();
      }
      *os << "; aggs: ";
      for (size_t i = 0; i < node.aggregates.size(); ++i) {
        if (i) *os << ", ";
        *os << node.aggregates[i].function << "("
            << (node.aggregates[i].arg ? node.aggregates[i].arg->ToString()
                                       : "*")
            << ")";
      }
      *os << ")";
      break;
    }
    case PlanNodeType::kProject: {
      *os << "(";
      for (size_t i = 0; i < node.project_names.size(); ++i) {
        if (i) *os << ", ";
        *os << node.project_names[i];
      }
      *os << ")";
      break;
    }
    case PlanNodeType::kDistinct:
      break;
    case PlanNodeType::kSort:
    case PlanNodeType::kTopK: {
      *os << "(";
      if (node.type == PlanNodeType::kTopK) *os << "k=" << node.limit << "; ";
      for (size_t i = 0; i < node.order_items.size(); ++i) {
        if (i) *os << ", ";
        *os << node.order_items[i].expr->ToString()
            << (node.order_items[i].ascending ? " ASC" : " DESC");
      }
      *os << ")";
      break;
    }
    case PlanNodeType::kLimit:
      *os << "(" << node.limit << ")";
      break;
  }
  *os << "\n";
  for (const auto& child : node.children) {
    PrintNode(*child, depth + 1, os);
  }
}

}  // namespace

std::string PlanNode::ToString() const {
  std::ostringstream os;
  PrintNode(*this, 0, &os);
  return os.str();
}

PlanNodePtr MakeScan(std::string table, std::vector<ScanColumn> columns) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kScan;
  node->table = std::move(table);
  node->scan_columns = std::move(columns);
  return node;
}

PlanNodePtr MakeFilter(PlanNodePtr child, sql::BoundExprPtr predicate) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kFilter;
  node->children.push_back(std::move(child));
  node->predicate = std::move(predicate);
  return node;
}

PlanNodePtr MakeHashJoin(PlanNodePtr left, PlanNodePtr right,
                         std::vector<std::string> left_keys,
                         std::vector<std::string> right_keys) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kHashJoin;
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  node->left_keys = std::move(left_keys);
  node->right_keys = std::move(right_keys);
  return node;
}

PlanNodePtr MakeCachedScan(storage::TablePtr table, std::string label) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kCachedScan;
  node->cached_table = std::move(table);
  node->table = std::move(label);
  return node;
}

}  // namespace lazyetl::engine
