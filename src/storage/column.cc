#include "storage/column.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace lazyetl::storage {
namespace {

// Physical storage bucket for a logical type.
template <typename T>
std::vector<T>& Vec(std::variant<std::vector<uint8_t>, std::vector<int32_t>,
                                 std::vector<int64_t>, std::vector<double>,
                                 std::vector<std::string>>& v) {
  return std::get<std::vector<T>>(v);
}

}  // namespace

Column::Column(DataType type) : type_(type) {
  switch (type) {
    case DataType::kBool:
      data_ = std::vector<uint8_t>{};
      break;
    case DataType::kInt32:
      data_ = std::vector<int32_t>{};
      break;
    case DataType::kInt64:
    case DataType::kTimestamp:
      data_ = std::vector<int64_t>{};
      break;
    case DataType::kDouble:
      data_ = std::vector<double>{};
      break;
    case DataType::kString:
      data_ = std::vector<std::string>{};
      break;
  }
}

Column Column::FromInt32(std::vector<int32_t> data) {
  Column c(DataType::kInt32);
  c.data_ = std::move(data);
  return c;
}
Column Column::FromInt64(std::vector<int64_t> data) {
  Column c(DataType::kInt64);
  c.data_ = std::move(data);
  return c;
}
Column Column::FromDouble(std::vector<double> data) {
  Column c(DataType::kDouble);
  c.data_ = std::move(data);
  return c;
}
Column Column::FromString(std::vector<std::string> data) {
  Column c(DataType::kString);
  c.data_ = std::move(data);
  return c;
}
Column Column::FromTimestamp(std::vector<int64_t> data) {
  Column c(DataType::kTimestamp);
  c.data_ = std::move(data);
  return c;
}
Column Column::FromBool(std::vector<uint8_t> data) {
  Column c(DataType::kBool);
  c.data_ = std::move(data);
  return c;
}

Column Column::FromDictionary(
    std::shared_ptr<const std::vector<std::string>> dict,
    std::vector<uint32_t> codes) {
  Column c(DataType::kString);
  c.dict_ = std::move(dict);
  c.codes_ = std::move(codes);
  return c;
}

Column Column::Decoded() const {
  if (!dict_) return *this;
  std::vector<std::string> out;
  out.reserve(codes_.size());
  for (uint32_t code : codes_) out.push_back((*dict_)[code]);
  return FromString(std::move(out));
}

void Column::DecodeInPlace() {
  if (!dict_) return;
  std::vector<std::string> out;
  out.reserve(codes_.size());
  for (uint32_t code : codes_) out.push_back((*dict_)[code]);
  data_ = std::move(out);
  dict_.reset();
  codes_.clear();
  codes_.shrink_to_fit();
}

bool Column::TryDictEncode(size_t max_cardinality) {
  if (type_ != DataType::kString) return false;
  if (dict_) return true;
  const auto& src = string_data();
  std::vector<std::string> sorted;
  {
    // Early abort: stop collecting the moment the cap is exceeded, so a
    // high-cardinality column (URIs) costs one pass, not a full sort.
    std::unordered_set<std::string> distinct;
    for (const auto& s : src) {
      if (distinct.insert(s).second && distinct.size() > max_cardinality) {
        return false;
      }
    }
    sorted.assign(distinct.begin(), distinct.end());
  }
  std::sort(sorted.begin(), sorted.end());
  std::unordered_map<std::string, uint32_t> code_of;
  code_of.reserve(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    code_of.emplace(sorted[i], static_cast<uint32_t>(i));
  }
  std::vector<uint32_t> codes;
  codes.reserve(src.size());
  for (const auto& s : src) codes.push_back(code_of.find(s)->second);
  dict_ = std::make_shared<const std::vector<std::string>>(std::move(sorted));
  codes_ = std::move(codes);
  data_ = std::vector<std::string>{};  // drop the plain storage
  return true;
}

size_t Column::size() const {
  if (dict_) return codes_.size();
  return std::visit([](const auto& v) { return v.size(); }, data_);
}

Value Column::GetValue(size_t row) const {
  switch (type_) {
    case DataType::kBool:
      return Value::Bool(bool_data()[row] != 0);
    case DataType::kInt32:
      return Value::Int32(int32_data()[row]);
    case DataType::kInt64:
      return Value::Int64(int64_data()[row]);
    case DataType::kDouble:
      return Value::Double(double_data()[row]);
    case DataType::kString:
      return Value::String(StringAt(row));
    case DataType::kTimestamp:
      return Value::Timestamp(int64_data()[row]);
  }
  return Value();
}

Status Column::AppendValue(const Value& v) {
  switch (type_) {
    case DataType::kBool:
      if (v.type() != DataType::kBool) break;
      bool_data().push_back(v.bool_value() ? 1 : 0);
      return Status::OK();
    case DataType::kInt32:
      if (v.type() != DataType::kInt32) break;
      int32_data().push_back(v.int32_value());
      return Status::OK();
    case DataType::kInt64:
    case DataType::kTimestamp:
      if (v.type() != DataType::kInt64 && v.type() != DataType::kTimestamp &&
          v.type() != DataType::kInt32) {
        break;
      }
      int64_data().push_back(v.AsInt64());
      return Status::OK();
    case DataType::kDouble:
      if (!IsNumeric(v.type())) break;
      double_data().push_back(v.AsDouble());
      return Status::OK();
    case DataType::kString:
      if (v.type() != DataType::kString) break;
      if (dict_) {
        // Known values append as a code; an unknown value falls back to
        // plain storage (re-encoded at the next catalog publish).
        auto it = std::lower_bound(dict_->begin(), dict_->end(),
                                   v.string_value());
        if (it != dict_->end() && *it == v.string_value()) {
          codes_.push_back(static_cast<uint32_t>(it - dict_->begin()));
        } else {
          DecodeInPlace();
          string_data().push_back(v.string_value());
        }
        return Status::OK();
      }
      string_data().push_back(v.string_value());
      return Status::OK();
  }
  return Status::InvalidArgument(
      std::string("cannot append ") + DataTypeToString(v.type()) +
      " value to " + DataTypeToString(type_) + " column");
}

void Column::Reserve(size_t n) {
  if (dict_) {
    codes_.reserve(n);
    return;
  }
  std::visit([n](auto& v) { v.reserve(n); }, data_);
}

Status Column::AppendColumn(const Column& other) {
  if (dict_ || other.dict_) {
    return AppendRange(other, 0, other.size());
  }
  if (other.type_ != type_ &&
      !(type_ == DataType::kInt64 && other.type_ == DataType::kTimestamp) &&
      !(type_ == DataType::kTimestamp && other.type_ == DataType::kInt64)) {
    return Status::InvalidArgument(
        std::string("cannot append ") + DataTypeToString(other.type_) +
        " column to " + DataTypeToString(type_) + " column");
  }
  std::visit(
      [this](const auto& src) {
        using VecT = std::decay_t<decltype(src)>;
        auto& dst = std::get<VecT>(data_);
        dst.insert(dst.end(), src.begin(), src.end());
      },
      other.data_);
  return Status::OK();
}

Status Column::AppendRange(const Column& other, size_t offset, size_t length) {
  if (other.type_ != type_ &&
      !(type_ == DataType::kInt64 && other.type_ == DataType::kTimestamp) &&
      !(type_ == DataType::kTimestamp && other.type_ == DataType::kInt64)) {
    return Status::InvalidArgument(
        std::string("cannot append ") + DataTypeToString(other.type_) +
        " range to " + DataTypeToString(type_) + " column");
  }
  if (dict_ || other.dict_) {
    if (dict_ && dict_ == other.dict_) {
      // Shared dictionary: the append moves only codes.
      codes_.insert(codes_.end(), other.codes_.begin() + offset,
                    other.codes_.begin() + offset + length);
      return Status::OK();
    }
    // Mixed encodings (or distinct dictionaries): fall back to plain.
    DecodeInPlace();
    auto& dst = string_data();
    dst.reserve(dst.size() + length);
    for (size_t i = 0; i < length; ++i) dst.push_back(other.StringAt(offset + i));
    return Status::OK();
  }
  std::visit(
      [this, offset, length](const auto& src) {
        using VecT = std::decay_t<decltype(src)>;
        auto& dst = std::get<VecT>(data_);
        dst.insert(dst.end(), src.begin() + offset,
                   src.begin() + offset + length);
      },
      other.data_);
  return Status::OK();
}

Column Column::Gather(const SelectionVector& sel) const {
  if (dict_) {
    std::vector<uint32_t> codes;
    codes.reserve(sel.size());
    for (uint32_t row : sel) codes.push_back(codes_[row]);
    return FromDictionary(dict_, std::move(codes));
  }
  Column out(type_);
  std::visit(
      [&](const auto& src) {
        using VecT = std::decay_t<decltype(src)>;
        auto& dst = std::get<VecT>(out.data_);
        dst.reserve(sel.size());
        for (uint32_t row : sel) dst.push_back(src[row]);
      },
      data_);
  return out;
}

Column Column::GatherFrom(const SelectionVector& sel,
                          size_t base_offset) const {
  if (dict_) {
    std::vector<uint32_t> codes;
    codes.reserve(sel.size());
    for (uint32_t row : sel) codes.push_back(codes_[base_offset + row]);
    return FromDictionary(dict_, std::move(codes));
  }
  Column out(type_);
  std::visit(
      [&](const auto& src) {
        using VecT = std::decay_t<decltype(src)>;
        auto& dst = std::get<VecT>(out.data_);
        dst.reserve(sel.size());
        for (uint32_t row : sel) dst.push_back(src[base_offset + row]);
      },
      data_);
  return out;
}

Column Column::CopyRange(size_t offset, size_t length) const {
  if (dict_) {
    return FromDictionary(
        dict_, std::vector<uint32_t>(codes_.begin() + offset,
                                     codes_.begin() + offset + length));
  }
  Column out(type_);
  std::visit(
      [&](const auto& src) {
        using VecT = std::decay_t<decltype(src)>;
        auto& dst = std::get<VecT>(out.data_);
        dst.assign(src.begin() + offset, src.begin() + offset + length);
      },
      data_);
  return out;
}

double Column::NumericAt(size_t row) const {
  switch (type_) {
    case DataType::kBool:
      return bool_data()[row] ? 1.0 : 0.0;
    case DataType::kInt32:
      return static_cast<double>(int32_data()[row]);
    case DataType::kInt64:
    case DataType::kTimestamp:
      return static_cast<double>(int64_data()[row]);
    case DataType::kDouble:
      return double_data()[row];
    case DataType::kString:
      return 0.0;
  }
  return 0.0;
}

uint64_t Column::MemoryBytes() const {
  if (dict_) {
    uint64_t bytes = codes_.capacity() * sizeof(uint32_t) +
                     dict_->capacity() * sizeof(std::string);
    for (const auto& s : *dict_) bytes += s.capacity();
    return bytes;
  }
  return std::visit(
      [](const auto& v) -> uint64_t {
        using VecT = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<VecT, std::vector<std::string>>) {
          uint64_t bytes = v.capacity() * sizeof(std::string);
          for (const auto& s : v) bytes += s.capacity();
          return bytes;
        } else {
          return v.capacity() * sizeof(typename VecT::value_type);
        }
      },
      data_);
}

uint64_t Column::RangeBytes(size_t offset, size_t length) const {
  if (dict_) {
    // Codes plus the viewed rows' amortised share of the shared
    // dictionary, so batch accounting stays proportional to coverage.
    uint64_t dict_bytes = 0;
    for (const auto& s : *dict_) dict_bytes += sizeof(std::string) + s.capacity();
    size_t rows = codes_.size();
    return length * sizeof(uint32_t) +
           (rows == 0 ? 0 : dict_bytes * length / rows);
  }
  return std::visit(
      [offset, length](const auto& v) -> uint64_t {
        using VecT = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<VecT, std::vector<std::string>>) {
          uint64_t bytes = length * sizeof(std::string);
          for (size_t i = offset; i < offset + length; ++i) {
            bytes += v[i].capacity();
          }
          return bytes;
        } else {
          (void)v;
          return length * sizeof(typename VecT::value_type);
        }
      },
      data_);
}

}  // namespace lazyetl::storage
