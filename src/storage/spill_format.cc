#include "storage/spill_format.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/macros.h"

namespace lazyetl::storage {

namespace {

constexpr uint32_t kMagicV1 = 0x4C53504Cu;  // "LSPL"
constexpr uint32_t kMagicV2 = 0x3253504Cu;  // "LSP2"

// On-disk size of one header zone-map slot: u8 has + 8B min + 8B max.
constexpr size_t kBoundsSlotBytes = 17;

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendI64(std::string* out, int64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendDouble(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
void AppendRaw(std::string* out, const T* data, size_t count) {
  out->append(reinterpret_cast<const char*>(data), count * sizeof(T));
}

void AppendVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Status ReadExact(const char* data, size_t size, size_t* offset, void* dst,
                 size_t bytes, const char* what) {
  if (*offset + bytes > size) {
    return Status::CorruptData(std::string("spill frame truncated in ") +
                               what);
  }
  std::memcpy(dst, data + *offset, bytes);
  *offset += bytes;
  return Status::OK();
}

Status ReadVarint(const char* data, size_t size, size_t* offset,
                  uint64_t* out) {
  uint64_t v = 0;
  uint32_t shift = 0;
  while (true) {
    if (*offset >= size || shift > 63) {
      return Status::CorruptData("spill frame truncated in varint");
    }
    uint8_t b = static_cast<uint8_t>(data[(*offset)++]);
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  *out = v;
  return Status::OK();
}

uint32_t BitsNeeded(uint64_t v) {
  return v == 0 ? 0 : 64u - static_cast<uint32_t>(__builtin_clzll(v));
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

uint64_t LowMask(uint32_t bits) {
  return bits >= 64 ? ~0ull : ((1ull << bits) - 1);
}

bool IsIntLikeType(DataType t) {
  return t == DataType::kBool || t == DataType::kInt32 ||
         t == DataType::kInt64 || t == DataType::kTimestamp;
}

bool IsNumericType(DataType t) {
  return IsIntLikeType(t) || t == DataType::kDouble;
}

// --- bit packing ------------------------------------------------------------

class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  void Put(uint64_t v, uint32_t width) {
    v &= LowMask(width);
    while (width > 0) {
      uint32_t take = std::min(width, 56u);
      acc_ |= (v & LowMask(take)) << accbits_;
      accbits_ += take;
      v >>= take;
      width -= take;
      while (accbits_ >= 8) {
        out_->push_back(static_cast<char>(acc_ & 0xFF));
        acc_ >>= 8;
        accbits_ -= 8;
      }
    }
  }

  void Flush() {
    if (accbits_ > 0) {
      out_->push_back(static_cast<char>(acc_ & 0xFF));
      acc_ = 0;
      accbits_ = 0;
    }
  }

 private:
  std::string* out_;
  uint64_t acc_ = 0;
  uint32_t accbits_ = 0;  // < 8 between Put calls
};

class BitReader {
 public:
  BitReader(const char* data, size_t size)
      : p_(reinterpret_cast<const uint8_t*>(data)), end_(p_ + size) {}

  bool Get(uint32_t width, uint64_t* out) {
    uint64_t v = 0;
    uint32_t got = 0;
    while (got < width) {
      if (accbits_ == 0) {
        if (p_ == end_) return false;
        acc_ = *p_++;
        accbits_ = 8;
      }
      uint32_t take = std::min(width - got, accbits_);
      v |= (acc_ & LowMask(take)) << got;
      acc_ >>= take;
      accbits_ -= take;
      got += take;
    }
    *out = v;
    return true;
  }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
  uint64_t acc_ = 0;
  uint32_t accbits_ = 0;
};

// --- int-like codecs --------------------------------------------------------

// One analysis pass feeding codec choice and zone-map bounds.
struct IntStats {
  int64_t vmin = 0;
  int64_t vmax = 0;
  size_t runs = 0;
  uint64_t max_zig = 0;  // max zigzag(wrapping delta) between neighbours
};

IntStats AnalyzeInts(const std::vector<int64_t>& v) {
  IntStats s;
  if (v.empty()) return s;
  s.vmin = s.vmax = v[0];
  s.runs = 1;
  for (size_t i = 1; i < v.size(); ++i) {
    s.vmin = std::min(s.vmin, v[i]);
    s.vmax = std::max(s.vmax, v[i]);
    if (v[i] != v[i - 1]) ++s.runs;
    uint64_t d = static_cast<uint64_t>(v[i]) - static_cast<uint64_t>(v[i - 1]);
    s.max_zig = std::max(s.max_zig, ZigZag(static_cast<int64_t>(d)));
  }
  return s;
}

void EncodeBitPack(const std::vector<int64_t>& v, int64_t base,
                   uint32_t width, std::string* out) {
  AppendI64(out, base);
  out->push_back(static_cast<char>(width));
  BitWriter bw(out);
  for (int64_t x : v) {
    bw.Put(static_cast<uint64_t>(x) - static_cast<uint64_t>(base), width);
  }
  bw.Flush();
}

Status DecodeBitPack(const char* data, size_t size, size_t rows,
                     std::vector<int64_t>* out) {
  size_t off = 0;
  int64_t base = 0;
  uint8_t width = 0;
  LAZYETL_RETURN_NOT_OK(ReadExact(data, size, &off, &base, 8, "bitpack base"));
  LAZYETL_RETURN_NOT_OK(
      ReadExact(data, size, &off, &width, 1, "bitpack width"));
  if (width > 64) return Status::CorruptData("bad bitpack width");
  BitReader br(data + off, size - off);
  out->resize(rows);
  for (size_t i = 0; i < rows; ++i) {
    uint64_t u = 0;
    if (!br.Get(width, &u)) {
      return Status::CorruptData("truncated bitpack payload");
    }
    (*out)[i] =
        static_cast<int64_t>(u + static_cast<uint64_t>(base));
  }
  return Status::OK();
}

void EncodeRle(const std::vector<int64_t>& v, std::string* out) {
  size_t i = 0;
  while (i < v.size()) {
    size_t j = i + 1;
    while (j < v.size() && v[j] == v[i]) ++j;
    AppendU32(out, static_cast<uint32_t>(j - i));
    AppendI64(out, v[i]);
    i = j;
  }
}

Status DecodeRle(const char* data, size_t size, size_t rows,
                 std::vector<int64_t>* out) {
  size_t off = 0;
  out->clear();
  out->reserve(rows);
  while (out->size() < rows) {
    uint32_t len = 0;
    int64_t val = 0;
    LAZYETL_RETURN_NOT_OK(ReadExact(data, size, &off, &len, 4, "rle length"));
    LAZYETL_RETURN_NOT_OK(ReadExact(data, size, &off, &val, 8, "rle value"));
    if (len == 0 || out->size() + len > rows) {
      return Status::CorruptData("bad rle run length");
    }
    out->insert(out->end(), len, val);
  }
  return Status::OK();
}

void EncodeDeltaPack(const std::vector<int64_t>& v, uint32_t width,
                     std::string* out) {
  AppendI64(out, v.empty() ? 0 : v[0]);
  out->push_back(static_cast<char>(width));
  BitWriter bw(out);
  for (size_t i = 1; i < v.size(); ++i) {
    uint64_t d = static_cast<uint64_t>(v[i]) - static_cast<uint64_t>(v[i - 1]);
    bw.Put(ZigZag(static_cast<int64_t>(d)), width);
  }
  bw.Flush();
}

Status DecodeDeltaPack(const char* data, size_t size, size_t rows,
                       std::vector<int64_t>* out) {
  size_t off = 0;
  int64_t first = 0;
  uint8_t width = 0;
  LAZYETL_RETURN_NOT_OK(ReadExact(data, size, &off, &first, 8, "delta first"));
  LAZYETL_RETURN_NOT_OK(ReadExact(data, size, &off, &width, 1, "delta width"));
  if (width > 64) return Status::CorruptData("bad delta width");
  out->resize(rows);
  if (rows == 0) return Status::OK();
  (*out)[0] = first;
  BitReader br(data + off, size - off);
  for (size_t i = 1; i < rows; ++i) {
    uint64_t z = 0;
    if (!br.Get(width, &z)) {
      return Status::CorruptData("truncated delta payload");
    }
    (*out)[i] = static_cast<int64_t>(static_cast<uint64_t>((*out)[i - 1]) +
                                     static_cast<uint64_t>(UnZigZag(z)));
  }
  return Status::OK();
}

// --- double codec (Steim-style XOR delta framing) ---------------------------
//
// First value raw; each successor stores XOR with its predecessor as a
// 0..8-byte little-endian remnant, with the byte count in a control
// nibble (two per byte). Repeated and slowly-varying doubles collapse to
// near-zero bytes; bit patterns round-trip exactly (incl. NaN payloads).

void EncodeDoubleXor(const double* v, size_t n, std::string* out) {
  if (n == 0) return;
  uint64_t prev = 0;
  std::memcpy(&prev, &v[0], 8);
  AppendRaw(out, &v[0], 1);
  std::string ctrl((n - 1 + 1) / 2, '\0');
  std::string payload;
  for (size_t i = 1; i < n; ++i) {
    uint64_t cur = 0;
    std::memcpy(&cur, &v[i], 8);
    uint64_t x = cur ^ prev;
    prev = cur;
    uint32_t k = (BitsNeeded(x) + 7) / 8;
    ctrl[(i - 1) / 2] |= static_cast<char>(k << (((i - 1) % 2) * 4));
    for (uint32_t b = 0; b < k; ++b) {
      payload.push_back(static_cast<char>((x >> (8 * b)) & 0xFF));
    }
  }
  out->append(ctrl);
  out->append(payload);
}

Status DecodeDoubleXor(const char* data, size_t size, size_t rows,
                       std::vector<double>* out) {
  out->resize(rows);
  if (rows == 0) return Status::OK();
  size_t off = 0;
  uint64_t prev = 0;
  LAZYETL_RETURN_NOT_OK(ReadExact(data, size, &off, &prev, 8, "xor first"));
  std::memcpy(&(*out)[0], &prev, 8);
  const size_t ctrl_bytes = (rows - 1 + 1) / 2;
  if (off + ctrl_bytes > size) {
    return Status::CorruptData("truncated xor control block");
  }
  const uint8_t* ctrl = reinterpret_cast<const uint8_t*>(data + off);
  off += ctrl_bytes;
  for (size_t i = 1; i < rows; ++i) {
    uint32_t k = (ctrl[(i - 1) / 2] >> (((i - 1) % 2) * 4)) & 0x0F;
    if (k > 8 || off + k > size) {
      return Status::CorruptData("truncated xor payload");
    }
    uint64_t x = 0;
    for (uint32_t b = 0; b < k; ++b) {
      x |= static_cast<uint64_t>(static_cast<uint8_t>(data[off + b]))
           << (8 * b);
    }
    off += k;
    prev ^= x;
    std::memcpy(&(*out)[i], &prev, 8);
  }
  return Status::OK();
}

// --- string codecs ----------------------------------------------------------

void EncodeStrRaw(const Column& col, size_t offset, size_t rows,
                  std::string* out) {
  for (size_t r = 0; r < rows; ++r) {
    const std::string& s = col.StringAt(offset + r);
    AppendU32(out, static_cast<uint32_t>(s.size()));
    out->append(s);
  }
}

// Shared-prefix + varint-length packing: the frame's longest common
// prefix is stored once, each row stores only its suffix.
void EncodeStrPack(const Column& col, size_t offset, size_t rows,
                   std::string* out) {
  size_t lcp = rows > 0 ? col.StringAt(offset).size() : 0;
  for (size_t r = 1; r < rows && lcp > 0; ++r) {
    const std::string& s = col.StringAt(offset + r);
    const std::string& first = col.StringAt(offset);
    size_t m = std::min(lcp, s.size());
    size_t i = 0;
    while (i < m && s[i] == first[i]) ++i;
    lcp = i;
  }
  AppendVarint(out, lcp);
  if (rows > 0) out->append(col.StringAt(offset).data(), lcp);
  for (size_t r = 0; r < rows; ++r) {
    const std::string& s = col.StringAt(offset + r);
    AppendVarint(out, s.size() - lcp);
    out->append(s.data() + lcp, s.size() - lcp);
  }
}

Status DecodeStrPack(const char* data, size_t size, size_t rows,
                     std::vector<std::string>* out) {
  size_t off = 0;
  uint64_t lcp = 0;
  LAZYETL_RETURN_NOT_OK(ReadVarint(data, size, &off, &lcp));
  if (off + lcp > size) return Status::CorruptData("truncated string prefix");
  std::string prefix(data + off, lcp);
  off += lcp;
  out->clear();
  out->reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    uint64_t len = 0;
    LAZYETL_RETURN_NOT_OK(ReadVarint(data, size, &off, &len));
    if (off + len > size) return Status::CorruptData("truncated string data");
    std::string s = prefix;
    s.append(data + off, len);
    off += len;
    out->push_back(std::move(s));
  }
  return Status::OK();
}

// Per-frame dictionary over the codes actually used, bit-packed codes.
// Only applies to columns that are already dictionary-encoded in memory.
void EncodeStrDict(const Column& col, size_t offset, size_t rows,
                   std::string* out) {
  const auto& dict = *col.dictionary();
  const auto& codes = col.dict_codes();
  std::vector<uint32_t> remap(dict.size(), UINT32_MAX);
  std::vector<uint32_t> used;
  for (size_t r = 0; r < rows; ++r) {
    uint32_t code = codes[offset + r];
    if (remap[code] == UINT32_MAX) {
      remap[code] = static_cast<uint32_t>(used.size());
      used.push_back(code);
    }
  }
  AppendU32(out, static_cast<uint32_t>(used.size()));
  for (uint32_t code : used) {
    AppendVarint(out, dict[code].size());
    out->append(dict[code]);
  }
  uint32_t width =
      used.empty() ? 0 : BitsNeeded(static_cast<uint64_t>(used.size() - 1));
  out->push_back(static_cast<char>(width));
  BitWriter bw(out);
  for (size_t r = 0; r < rows; ++r) bw.Put(remap[codes[offset + r]], width);
  bw.Flush();
}

Status DecodeStrDict(const char* data, size_t size, size_t rows,
                     std::vector<std::string>* out) {
  size_t off = 0;
  uint32_t dict_n = 0;
  LAZYETL_RETURN_NOT_OK(ReadExact(data, size, &off, &dict_n, 4, "dict size"));
  std::vector<std::string> entries;
  entries.reserve(dict_n);
  for (uint32_t i = 0; i < dict_n; ++i) {
    uint64_t len = 0;
    LAZYETL_RETURN_NOT_OK(ReadVarint(data, size, &off, &len));
    if (off + len > size) return Status::CorruptData("truncated dict entry");
    entries.emplace_back(data + off, len);
    off += len;
  }
  uint8_t width = 0;
  LAZYETL_RETURN_NOT_OK(ReadExact(data, size, &off, &width, 1, "dict width"));
  if (width > 32) return Status::CorruptData("bad dict code width");
  BitReader br(data + off, size - off);
  out->clear();
  out->reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    uint64_t code = 0;
    if (!br.Get(width, &code)) {
      return Status::CorruptData("truncated dict codes");
    }
    if (code >= entries.size()) return Status::CorruptData("bad dict code");
    out->push_back(entries[code]);
  }
  return Status::OK();
}

// --- per-column frame encoding ----------------------------------------------

// v1-equivalent (uncompressed) byte size of the column range — the
// engine's logical spill volume.
uint64_t RawColumnBytes(const Column& col, size_t offset, size_t rows) {
  switch (col.type()) {
    case DataType::kBool:
      return rows;
    case DataType::kInt32:
      return rows * 4;
    case DataType::kInt64:
    case DataType::kTimestamp:
    case DataType::kDouble:
      return rows * 8;
    case DataType::kString: {
      uint64_t total = 0;
      for (size_t r = 0; r < rows; ++r) {
        total += 4 + col.StringAt(offset + r).size();
      }
      return total;
    }
  }
  return 0;
}

void GatherInt64(const Column& col, size_t offset, size_t rows,
                 std::vector<int64_t>* out) {
  out->resize(rows);
  switch (col.type()) {
    case DataType::kBool: {
      const auto& v = col.bool_data();
      for (size_t r = 0; r < rows; ++r) (*out)[r] = v[offset + r];
      break;
    }
    case DataType::kInt32: {
      const auto& v = col.int32_data();
      for (size_t r = 0; r < rows; ++r) (*out)[r] = v[offset + r];
      break;
    }
    default: {
      const auto& v = col.int64_data();
      for (size_t r = 0; r < rows; ++r) (*out)[r] = v[offset + r];
      break;
    }
  }
}

void EncodeIntColumn(const Column& col, size_t offset, size_t rows,
                     SpillCompression mode, SpillCodec* codec,
                     std::string* payload, SpillColumnBounds* bounds) {
  std::vector<int64_t> vals;
  GatherInt64(col, offset, rows, &vals);
  IntStats st = AnalyzeInts(vals);
  if (rows > 0) {
    bounds->has_bounds = true;
    bounds->imin = st.vmin;
    bounds->imax = st.vmax;
  }
  const uint64_t elem = col.type() == DataType::kBool     ? 1
                        : col.type() == DataType::kInt32 ? 4
                                                         : 8;
  const uint64_t raw_cost = rows * elem;
  const uint32_t w_bp = BitsNeeded(static_cast<uint64_t>(st.vmax) -
                                   static_cast<uint64_t>(st.vmin));
  const uint64_t bp_cost = 9 + (rows * w_bp + 7) / 8;
  const uint64_t rle_cost = st.runs * 12;
  const uint32_t w_dp = BitsNeeded(st.max_zig);
  const uint64_t dp_cost =
      9 + ((rows > 0 ? rows - 1 : 0) * w_dp + 7) / 8;

  SpillCodec best = SpillCodec::kBitPack;
  uint64_t best_cost = bp_cost;
  if (rows > 0 && rle_cost < best_cost) {
    best = SpillCodec::kRle;
    best_cost = rle_cost;
  }
  if (rows > 0 && dp_cost < best_cost) {
    best = SpillCodec::kDeltaPack;
    best_cost = dp_cost;
  }
  if (mode == SpillCompression::kAuto && raw_cost <= best_cost) {
    best = SpillCodec::kRaw;
  }
  *codec = best;
  switch (best) {
    case SpillCodec::kRaw:
      switch (col.type()) {
        case DataType::kBool:
          AppendRaw(payload, col.bool_data().data() + offset, rows);
          break;
        case DataType::kInt32:
          AppendRaw(payload, col.int32_data().data() + offset, rows);
          break;
        default:
          AppendRaw(payload, col.int64_data().data() + offset, rows);
          break;
      }
      break;
    case SpillCodec::kRle:
      EncodeRle(vals, payload);
      break;
    case SpillCodec::kDeltaPack:
      EncodeDeltaPack(vals, w_dp, payload);
      break;
    default:
      EncodeBitPack(vals, st.vmin, w_bp, payload);
      break;
  }
}

void EncodeDoubleColumn(const Column& col, size_t offset, size_t rows,
                        SpillCompression mode, SpillCodec* codec,
                        std::string* payload, SpillColumnBounds* bounds) {
  const double* v = col.double_data().data() + offset;
  bool any_nan = false;
  double dmin = 0, dmax = 0;
  for (size_t r = 0; r < rows; ++r) {
    if (std::isnan(v[r])) {
      any_nan = true;
      break;
    }
    if (r == 0 || v[r] < dmin) dmin = v[r];
    if (r == 0 || v[r] > dmax) dmax = v[r];
  }
  if (rows > 0 && !any_nan) {
    bounds->has_bounds = true;
    bounds->dmin = dmin;
    bounds->dmax = dmax;
  }
  std::string xored;
  EncodeDoubleXor(v, rows, &xored);
  if (rows > 0 &&
      (mode == SpillCompression::kForce || xored.size() < rows * 8)) {
    *codec = SpillCodec::kDoubleXor;
    payload->append(xored);
  } else {
    *codec = SpillCodec::kRaw;
    AppendRaw(payload, v, rows);
  }
}

void EncodeStringColumn(const Column& col, size_t offset, size_t rows,
                        SpillCompression mode, SpillCodec* codec,
                        std::string* payload) {
  std::string packed;
  EncodeStrPack(col, offset, rows, &packed);
  std::string dicted;
  if (col.dict_encoded()) EncodeStrDict(col, offset, rows, &dicted);

  uint64_t raw_cost = RawColumnBytes(col, offset, rows);
  SpillCodec best = SpillCodec::kStrPack;
  const std::string* best_payload = &packed;
  if (col.dict_encoded() && dicted.size() < packed.size()) {
    best = SpillCodec::kStrDict;
    best_payload = &dicted;
  }
  if (mode == SpillCompression::kAuto && raw_cost <= best_payload->size()) {
    *codec = SpillCodec::kRaw;
    EncodeStrRaw(col, offset, rows, payload);
    return;
  }
  *codec = best;
  payload->append(*best_payload);
}

// Encodes one v2 frame of `slice` onto `out`; fills per-column bounds and
// adds the v1-equivalent size to *logical_bytes.
void EncodeFrameV2(const TableSlice& slice, SpillCompression mode,
                   std::string* out,
                   std::vector<SpillColumnBounds>* bounds_out,
                   uint64_t* logical_bytes) {
  const size_t rows = slice.num_rows();
  const size_t offset = slice.offset();
  const size_t ncols = slice.num_columns();
  bounds_out->assign(ncols, SpillColumnBounds{});
  std::vector<SpillCodec> codecs(ncols, SpillCodec::kRaw);
  std::vector<std::string> payloads(ncols);
  *logical_bytes += 4;  // v1 row-count word

  for (size_t c = 0; c < ncols; ++c) {
    const Column& col = slice.column(c);
    *logical_bytes += RawColumnBytes(col, offset, rows);
    if (IsIntLikeType(col.type())) {
      EncodeIntColumn(col, offset, rows, mode, &codecs[c], &payloads[c],
                      &(*bounds_out)[c]);
    } else if (col.type() == DataType::kDouble) {
      EncodeDoubleColumn(col, offset, rows, mode, &codecs[c], &payloads[c],
                         &(*bounds_out)[c]);
    } else {
      EncodeStringColumn(col, offset, rows, mode, &codecs[c], &payloads[c]);
    }
  }

  // Duplicate columns (identical type + encoding) collapse to a 4-byte
  // back-reference — aggregate state tables often carry byte-identical
  // counters (e.g. COUNT(*) next to SUM's count).
  for (size_t c = 1; c < ncols; ++c) {
    for (size_t p = 0; p < c; ++p) {
      if (codecs[p] == SpillCodec::kDupCol) continue;
      if (slice.column(p).type() != slice.column(c).type()) continue;
      if (codecs[p] != codecs[c] || payloads[p] != payloads[c]) continue;
      codecs[c] = SpillCodec::kDupCol;
      payloads[c].clear();
      AppendU32(&payloads[c], static_cast<uint32_t>(p));
      break;
    }
  }

  std::string body;
  for (size_t c = 0; c < ncols; ++c) {
    body.push_back(static_cast<char>(codecs[c]));
    DataType t = slice.column(c).type();
    if (IsNumericType(t)) {
      const SpillColumnBounds& b = (*bounds_out)[c];
      body.push_back(b.has_bounds ? '\1' : '\0');
      if (t == DataType::kDouble) {
        AppendDouble(&body, b.dmin);
        AppendDouble(&body, b.dmax);
      } else {
        AppendI64(&body, b.imin);
        AppendI64(&body, b.imax);
      }
    }
    AppendU32(&body, static_cast<uint32_t>(payloads[c].size()));
    body.append(payloads[c]);
  }
  AppendU32(out, static_cast<uint32_t>(rows));
  AppendU32(out, static_cast<uint32_t>(body.size()));
  out->append(body);
}

Status DecodeIntPayload(const char* data, size_t size, SpillCodec codec,
                        size_t rows, DataType type, Column* out) {
  if (codec == SpillCodec::kRaw) {
    size_t off = 0;
    switch (type) {
      case DataType::kBool: {
        std::vector<uint8_t> v(rows);
        LAZYETL_RETURN_NOT_OK(
            ReadExact(data, size, &off, v.data(), rows, "bool column"));
        *out = Column::FromBool(std::move(v));
        return Status::OK();
      }
      case DataType::kInt32: {
        std::vector<int32_t> v(rows);
        LAZYETL_RETURN_NOT_OK(ReadExact(data, size, &off, v.data(), rows * 4,
                                        "int32 column"));
        *out = Column::FromInt32(std::move(v));
        return Status::OK();
      }
      default: {
        std::vector<int64_t> v(rows);
        LAZYETL_RETURN_NOT_OK(ReadExact(data, size, &off, v.data(), rows * 8,
                                        "int64 column"));
        *out = type == DataType::kTimestamp
                   ? Column::FromTimestamp(std::move(v))
                   : Column::FromInt64(std::move(v));
        return Status::OK();
      }
    }
  }
  std::vector<int64_t> vals;
  switch (codec) {
    case SpillCodec::kRle:
      LAZYETL_RETURN_NOT_OK(DecodeRle(data, size, rows, &vals));
      break;
    case SpillCodec::kBitPack:
      LAZYETL_RETURN_NOT_OK(DecodeBitPack(data, size, rows, &vals));
      break;
    case SpillCodec::kDeltaPack:
      LAZYETL_RETURN_NOT_OK(DecodeDeltaPack(data, size, rows, &vals));
      break;
    default:
      return Status::CorruptData("bad int column codec");
  }
  switch (type) {
    case DataType::kBool: {
      std::vector<uint8_t> v(rows);
      for (size_t i = 0; i < rows; ++i) v[i] = static_cast<uint8_t>(vals[i]);
      *out = Column::FromBool(std::move(v));
      break;
    }
    case DataType::kInt32: {
      std::vector<int32_t> v(rows);
      for (size_t i = 0; i < rows; ++i) v[i] = static_cast<int32_t>(vals[i]);
      *out = Column::FromInt32(std::move(v));
      break;
    }
    default:
      *out = type == DataType::kTimestamp
                 ? Column::FromTimestamp(std::move(vals))
                 : Column::FromInt64(std::move(vals));
      break;
  }
  return Status::OK();
}

Status DecodeColumnV2(const char* data, size_t size, SpillCodec codec,
                      size_t rows, DataType type, Column* out) {
  switch (type) {
    case DataType::kDouble: {
      if (codec == SpillCodec::kRaw) {
        std::vector<double> v(rows);
        size_t off = 0;
        LAZYETL_RETURN_NOT_OK(ReadExact(data, size, &off, v.data(), rows * 8,
                                        "double column"));
        *out = Column::FromDouble(std::move(v));
        return Status::OK();
      }
      if (codec != SpillCodec::kDoubleXor) {
        return Status::CorruptData("bad double column codec");
      }
      std::vector<double> v;
      LAZYETL_RETURN_NOT_OK(DecodeDoubleXor(data, size, rows, &v));
      *out = Column::FromDouble(std::move(v));
      return Status::OK();
    }
    case DataType::kString: {
      std::vector<std::string> v;
      if (codec == SpillCodec::kRaw) {
        size_t off = 0;
        v.reserve(rows);
        for (size_t r = 0; r < rows; ++r) {
          uint32_t len = 0;
          LAZYETL_RETURN_NOT_OK(
              ReadExact(data, size, &off, &len, 4, "string length"));
          if (off + len > size) {
            return Status::CorruptData("spill frame truncated in string");
          }
          v.emplace_back(data + off, len);
          off += len;
        }
      } else if (codec == SpillCodec::kStrPack) {
        LAZYETL_RETURN_NOT_OK(DecodeStrPack(data, size, rows, &v));
      } else if (codec == SpillCodec::kStrDict) {
        LAZYETL_RETURN_NOT_OK(DecodeStrDict(data, size, rows, &v));
      } else {
        return Status::CorruptData("bad string column codec");
      }
      *out = Column::FromString(std::move(v));
      return Status::OK();
    }
    default:
      return DecodeIntPayload(data, size, codec, rows, type, out);
  }
}

// Decodes the body of one v2 frame (after the rows/body-size words).
Status DecodeFrameV2(const char* data, size_t size, uint32_t rows,
                     const SpillRunHeader& header, Table* out,
                     std::vector<SpillColumnBounds>* frame_bounds) {
  size_t off = 0;
  Table result;
  std::vector<Column> decoded;
  frame_bounds->assign(header.types.size(), SpillColumnBounds{});
  for (size_t c = 0; c < header.types.size(); ++c) {
    uint8_t codec_byte = 0;
    LAZYETL_RETURN_NOT_OK(
        ReadExact(data, size, &off, &codec_byte, 1, "column codec"));
    SpillCodec codec = static_cast<SpillCodec>(codec_byte);
    DataType type = header.types[c];
    if (IsNumericType(type)) {
      uint8_t has = 0;
      LAZYETL_RETURN_NOT_OK(
          ReadExact(data, size, &off, &has, 1, "bounds flag"));
      SpillColumnBounds& b = (*frame_bounds)[c];
      b.has_bounds = has != 0;
      if (type == DataType::kDouble) {
        LAZYETL_RETURN_NOT_OK(
            ReadExact(data, size, &off, &b.dmin, 8, "bounds min"));
        LAZYETL_RETURN_NOT_OK(
            ReadExact(data, size, &off, &b.dmax, 8, "bounds max"));
      } else {
        LAZYETL_RETURN_NOT_OK(
            ReadExact(data, size, &off, &b.imin, 8, "bounds min"));
        LAZYETL_RETURN_NOT_OK(
            ReadExact(data, size, &off, &b.imax, 8, "bounds max"));
      }
    }
    uint32_t psize = 0;
    LAZYETL_RETURN_NOT_OK(
        ReadExact(data, size, &off, &psize, 4, "payload size"));
    if (off + psize > size) {
      return Status::CorruptData("spill frame truncated in payload");
    }
    Column col(type);
    if (codec == SpillCodec::kDupCol) {
      uint32_t src = 0;
      size_t poff = off;
      LAZYETL_RETURN_NOT_OK(
          ReadExact(data, size, &poff, &src, 4, "dup column index"));
      if (src >= decoded.size()) {
        return Status::CorruptData("bad dup column reference");
      }
      col = decoded[src];
    } else {
      LAZYETL_RETURN_NOT_OK(
          DecodeColumnV2(data + off, psize, codec, rows, type, &col));
    }
    off += psize;
    decoded.push_back(col);
    LAZYETL_RETURN_NOT_OK(result.AddColumn(header.names[c], std::move(col)));
  }
  *out = std::move(result);
  return Status::OK();
}

// --- header parsing ---------------------------------------------------------

Status ParseHeader(std::istream& in, const std::string& path,
                   SpillRunHeader* out) {
  uint32_t magic = 0;
  uint32_t cols = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!in.good() || (magic != kMagicV1 && magic != kMagicV2)) {
    return Status::CorruptData("bad spill file header in " + path);
  }
  out->version = magic == kMagicV2 ? 2 : 1;
  out->schema.clear();
  out->types.clear();
  out->names.clear();
  out->bounds.clear();
  for (uint32_t c = 0; c < cols; ++c) {
    uint32_t len = 0;
    in.read(reinterpret_cast<char*>(&len), sizeof(len));
    std::string name(len, '\0');
    in.read(name.data(), len);
    char type = 0;
    in.read(&type, 1);
    if (!in.good()) {
      return Status::CorruptData("truncated spill schema in " + path);
    }
    out->schema.push_back({name, static_cast<DataType>(type)});
    out->types.push_back(static_cast<DataType>(type));
    out->names.push_back(std::move(name));
  }
  if (out->version == 2) {
    for (uint32_t c = 0; c < cols; ++c) {
      uint8_t has = 0;
      char raw[16];
      in.read(reinterpret_cast<char*>(&has), 1);
      in.read(raw, 16);
      if (!in.good()) {
        return Status::CorruptData("truncated spill zone map in " + path);
      }
      SpillColumnBounds b;
      b.has_bounds = has != 0;
      if (out->types[c] == DataType::kDouble) {
        std::memcpy(&b.dmin, raw, 8);
        std::memcpy(&b.dmax, raw + 8, 8);
      } else {
        std::memcpy(&b.imin, raw, 8);
        std::memcpy(&b.imax, raw + 8, 8);
      }
      out->bounds.push_back(b);
    }
  }
  out->data_offset = static_cast<uint64_t>(in.tellg());
  return Status::OK();
}

}  // namespace

SpillCompression ResolveSpillCompression() {
  const char* env = std::getenv("LAZYETL_SPILL_COMPRESSION");
  if (env == nullptr) return SpillCompression::kAuto;
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0) {
    return SpillCompression::kOff;
  }
  if (std::strcmp(env, "force") == 0) return SpillCompression::kForce;
  return SpillCompression::kAuto;
}

Status ReadSpillHeader(const std::string& path, SpillRunHeader* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open spill file " + path);
  }
  return ParseHeader(in, path, out);
}

void SerializeSlice(const TableSlice& slice, std::string* out) {
  const size_t rows = slice.num_rows();
  const size_t offset = slice.offset();
  AppendU32(out, static_cast<uint32_t>(rows));
  for (size_t c = 0; c < slice.num_columns(); ++c) {
    const Column& col = slice.column(c);
    switch (col.type()) {
      case DataType::kBool:
        AppendRaw(out, col.bool_data().data() + offset, rows);
        break;
      case DataType::kInt32:
        AppendRaw(out, col.int32_data().data() + offset, rows);
        break;
      case DataType::kInt64:
      case DataType::kTimestamp:
        AppendRaw(out, col.int64_data().data() + offset, rows);
        break;
      case DataType::kDouble:
        AppendRaw(out, col.double_data().data() + offset, rows);
        break;
      case DataType::kString: {
        EncodeStrRaw(col, offset, rows, out);
        break;
      }
    }
  }
}

Status DeserializeBatch(const char* data, size_t size, size_t* offset,
                        const std::vector<DataType>& types,
                        const std::vector<std::string>& names, Table* out) {
  uint32_t rows = 0;
  LAZYETL_RETURN_NOT_OK(
      ReadExact(data, size, offset, &rows, sizeof(rows), "row count"));
  Table result;
  for (size_t c = 0; c < types.size(); ++c) {
    Column col(types[c]);
    switch (types[c]) {
      case DataType::kBool: {
        std::vector<uint8_t> v(rows);
        LAZYETL_RETURN_NOT_OK(
            ReadExact(data, size, offset, v.data(), rows, "bool column"));
        col = Column::FromBool(std::move(v));
        break;
      }
      case DataType::kInt32: {
        std::vector<int32_t> v(rows);
        LAZYETL_RETURN_NOT_OK(ReadExact(data, size, offset, v.data(),
                                        rows * sizeof(int32_t),
                                        "int32 column"));
        col = Column::FromInt32(std::move(v));
        break;
      }
      case DataType::kInt64:
      case DataType::kTimestamp: {
        std::vector<int64_t> v(rows);
        LAZYETL_RETURN_NOT_OK(ReadExact(data, size, offset, v.data(),
                                        rows * sizeof(int64_t),
                                        "int64 column"));
        col = types[c] == DataType::kInt64
                  ? Column::FromInt64(std::move(v))
                  : Column::FromTimestamp(std::move(v));
        break;
      }
      case DataType::kDouble: {
        std::vector<double> v(rows);
        LAZYETL_RETURN_NOT_OK(ReadExact(data, size, offset, v.data(),
                                        rows * sizeof(double),
                                        "double column"));
        col = Column::FromDouble(std::move(v));
        break;
      }
      case DataType::kString: {
        std::vector<std::string> v;
        v.reserve(rows);
        for (uint32_t r = 0; r < rows; ++r) {
          uint32_t len = 0;
          LAZYETL_RETURN_NOT_OK(ReadExact(data, size, offset, &len,
                                          sizeof(len), "string length"));
          if (*offset + len > size) {
            return Status::CorruptData("spill frame truncated in string");
          }
          v.emplace_back(data + *offset, len);
          *offset += len;
        }
        col = Column::FromString(std::move(v));
        break;
      }
    }
    LAZYETL_RETURN_NOT_OK(result.AddColumn(names[c], std::move(col)));
  }
  *out = std::move(result);
  return Status::OK();
}

// --- SpillWriter ------------------------------------------------------------

Status SpillWriter::Open(const std::string& path, const TableSchema& schema) {
  path_ = path;
  bytes_written_ = 0;
  logical_bytes_ = 0;
  rows_written_ = 0;
  any_frames_ = false;
  mode_ = ResolveSpillCompression();
  types_.clear();
  for (const ColumnSchema& col : schema) types_.push_back(col.type);
  run_bounds_.assign(schema.size(), SpillColumnBounds{});
  bounds_valid_.assign(schema.size(), 1);
  async_.reset();
  if (out_.is_open()) out_.close();
  out_.clear();

  if (common::AsyncRunWriter::Enabled()) {
    async_ = std::make_unique<common::AsyncRunWriter>();
    LAZYETL_RETURN_NOT_OK(async_->Open(path));
  } else {
    out_.open(path, std::ios::binary | std::ios::trunc);
    if (!out_.is_open()) {
      return Status::IOError("cannot open spill file " + path +
                             " for writing");
    }
  }

  pending_.clear();
  AppendU32(&pending_,
            mode_ == SpillCompression::kOff ? kMagicV1 : kMagicV2);
  AppendU32(&pending_, static_cast<uint32_t>(schema.size()));
  for (const ColumnSchema& col : schema) {
    AppendU32(&pending_, static_cast<uint32_t>(col.name.size()));
    pending_.append(col.name);
    pending_.push_back(static_cast<char>(col.type));
  }
  bounds_offset_ = pending_.size();
  if (mode_ != SpillCompression::kOff) {
    // Zone-map slots, zero now, backpatched with run bounds at Finish.
    pending_.append(schema.size() * kBoundsSlotBytes, '\0');
  }
  return Status::OK();
}

Status SpillWriter::FlushPending() {
  if (pending_.empty()) return Status::OK();
  if (async_ != nullptr) {
    LAZYETL_RETURN_NOT_OK(async_->Write(std::move(pending_)));
    pending_ = std::string();
    return Status::OK();
  }
  out_.write(pending_.data(), static_cast<std::streamsize>(pending_.size()));
  if (!out_.good()) return Status::IOError("failed writing to " + path_);
  pending_.clear();
  return Status::OK();
}

Status SpillWriter::Append(const TableSlice& slice) {
  size_t before = pending_.size();
  if (mode_ == SpillCompression::kOff) {
    SerializeSlice(slice, &pending_);
    logical_bytes_ += pending_.size() - before;
  } else {
    std::vector<SpillColumnBounds> frame_bounds;
    EncodeFrameV2(slice, mode_, &pending_, &frame_bounds, &logical_bytes_);
    if (slice.num_rows() > 0) {
      for (size_t c = 0; c < frame_bounds.size(); ++c) {
        if (!bounds_valid_[c]) continue;
        if (!IsNumericType(types_[c])) continue;
        const SpillColumnBounds& fb = frame_bounds[c];
        if (!fb.has_bounds) {
          bounds_valid_[c] = 0;
          run_bounds_[c].has_bounds = false;
          continue;
        }
        SpillColumnBounds& rb = run_bounds_[c];
        if (!rb.has_bounds) {
          rb = fb;
        } else if (types_[c] == DataType::kDouble) {
          rb.dmin = std::min(rb.dmin, fb.dmin);
          rb.dmax = std::max(rb.dmax, fb.dmax);
        } else {
          rb.imin = std::min(rb.imin, fb.imin);
          rb.imax = std::max(rb.imax, fb.imax);
        }
      }
      any_frames_ = true;
    }
  }
  bytes_written_ += pending_.size() - before;
  rows_written_ += slice.num_rows();
  if (pending_.size() >= kWriteChunkBytes) return FlushPending();
  return Status::OK();
}

Status SpillWriter::BackpatchBounds() {
  bool any = false;
  for (const SpillColumnBounds& b : run_bounds_) any = any || b.has_bounds;
  if (!any) return Status::OK();
  std::string block;
  for (size_t c = 0; c < run_bounds_.size(); ++c) {
    const SpillColumnBounds& b = run_bounds_[c];
    block.push_back(b.has_bounds ? '\1' : '\0');
    if (types_[c] == DataType::kDouble) {
      AppendDouble(&block, b.dmin);
      AppendDouble(&block, b.dmax);
    } else {
      AppendI64(&block, b.imin);
      AppendI64(&block, b.imax);
    }
  }
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  if (!f.is_open()) {
    return Status::IOError("cannot reopen spill file " + path_ +
                           " for zone-map backpatch");
  }
  f.seekp(static_cast<std::streamoff>(bounds_offset_));
  f.write(block.data(), static_cast<std::streamsize>(block.size()));
  f.flush();
  bool ok = f.good();
  f.close();
  if (!ok) return Status::IOError("failed backpatching " + path_);
  return Status::OK();
}

Status SpillWriter::Finish() {
  if (async_ == nullptr && !out_.is_open()) return Status::OK();
  LAZYETL_RETURN_NOT_OK(FlushPending());
  if (async_ != nullptr) {
    Status st = async_->Finish();
    if (!st.ok()) return st;
  } else {
    out_.flush();
    bool ok = out_.good();
    out_.close();
    if (!ok) return Status::IOError("failed flushing spill file " + path_);
  }
  if (mode_ != SpillCompression::kOff && any_frames_) {
    LAZYETL_RETURN_NOT_OK(BackpatchBounds());
  }
  return Status::OK();
}

double SpillWriter::write_wait_seconds() const {
  return async_ != nullptr ? async_->write_wait_seconds() : 0.0;
}

// --- SpillReader ------------------------------------------------------------

Status SpillReader::Open(const std::string& path,
                         const SpillRunHeader* cached) {
  path_ = path;
  read_buf_.resize(64 * 1024);
  in_.rdbuf()->pubsetbuf(read_buf_.data(),
                         static_cast<std::streamsize>(read_buf_.size()));
  in_.open(path, std::ios::binary);
  if (!in_.is_open()) {
    return Status::IOError("cannot open spill file " + path);
  }
  frame_bounds_.clear();
  if (cached != nullptr) {
    header_ = *cached;
    in_.seekg(static_cast<std::streamoff>(header_.data_offset));
    if (!in_.good()) {
      return Status::CorruptData("bad cached header offset for " + path);
    }
    return Status::OK();
  }
  return ParseHeader(in_, path, &header_);
}

Result<bool> SpillReader::Next(Table* out) {
  return header_.version == 2 ? NextV2(out) : NextV1(out);
}

Result<bool> SpillReader::NextV1(Table* out) {
  uint32_t rows = 0;
  in_.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  if (in_.eof() && in_.gcount() == 0) return false;  // clean end of run
  if (in_.gcount() != sizeof(rows)) {
    return Status::CorruptData("truncated frame header in " + path_);
  }

  // Decode the frame through the shared parser: re-assemble the frame
  // bytes (row count + payload) in the reusable buffer. The payload size
  // of fixed-width columns is known; strings are read incrementally.
  buffer_.clear();
  AppendU32(&buffer_, rows);
  for (DataType type : header_.types) {
    size_t fixed = 0;
    switch (type) {
      case DataType::kBool:
        fixed = rows;
        break;
      case DataType::kInt32:
        fixed = rows * sizeof(int32_t);
        break;
      case DataType::kInt64:
      case DataType::kTimestamp:
        fixed = rows * sizeof(int64_t);
        break;
      case DataType::kDouble:
        fixed = rows * sizeof(double);
        break;
      case DataType::kString: {
        for (uint32_t r = 0; r < rows; ++r) {
          uint32_t len = 0;
          in_.read(reinterpret_cast<char*>(&len), sizeof(len));
          if (in_.gcount() != sizeof(len)) {
            return Status::CorruptData("truncated string length in " + path_);
          }
          size_t at = buffer_.size();
          buffer_.resize(at + sizeof(len) + len);
          std::memcpy(buffer_.data() + at, &len, sizeof(len));
          in_.read(buffer_.data() + at + sizeof(len), len);
          if (in_.gcount() != static_cast<std::streamsize>(len)) {
            return Status::CorruptData("truncated string data in " + path_);
          }
        }
        continue;
      }
    }
    size_t at = buffer_.size();
    buffer_.resize(at + fixed);
    in_.read(buffer_.data() + at, static_cast<std::streamsize>(fixed));
    if (in_.gcount() != static_cast<std::streamsize>(fixed)) {
      return Status::CorruptData("truncated column data in " + path_);
    }
  }

  size_t offset = 0;
  LAZYETL_RETURN_NOT_OK(DeserializeBatch(buffer_.data(), buffer_.size(),
                                         &offset, header_.types,
                                         header_.names, out));
  return true;
}

Result<bool> SpillReader::NextV2(Table* out) {
  uint32_t rows = 0;
  in_.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  if (in_.eof() && in_.gcount() == 0) return false;  // clean end of run
  if (in_.gcount() != sizeof(rows)) {
    return Status::CorruptData("truncated frame header in " + path_);
  }
  uint32_t body = 0;
  in_.read(reinterpret_cast<char*>(&body), sizeof(body));
  if (in_.gcount() != sizeof(body)) {
    return Status::CorruptData("truncated frame body size in " + path_);
  }
  buffer_.resize(body);
  in_.read(buffer_.data(), static_cast<std::streamsize>(body));
  if (in_.gcount() != static_cast<std::streamsize>(body)) {
    return Status::CorruptData("truncated frame body in " + path_);
  }
  LAZYETL_RETURN_NOT_OK(
      DecodeFrameV2(buffer_.data(), body, rows, header_, out,
                    &frame_bounds_));
  return true;
}

}  // namespace lazyetl::storage
