#include "storage/spill_format.h"

#include <cstring>

#include "common/macros.h"

namespace lazyetl::storage {

namespace {

constexpr uint32_t kMagic = 0x4C53504Cu;  // "LSPL"

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
void AppendRaw(std::string* out, const T* data, size_t count) {
  out->append(reinterpret_cast<const char*>(data), count * sizeof(T));
}

Status ReadExact(const char* data, size_t size, size_t* offset, void* dst,
                 size_t bytes, const char* what) {
  if (*offset + bytes > size) {
    return Status::CorruptData(std::string("spill frame truncated in ") +
                               what);
  }
  std::memcpy(dst, data + *offset, bytes);
  *offset += bytes;
  return Status::OK();
}

}  // namespace

void SerializeSlice(const TableSlice& slice, std::string* out) {
  const size_t rows = slice.num_rows();
  const size_t offset = slice.offset();
  AppendU32(out, static_cast<uint32_t>(rows));
  for (size_t c = 0; c < slice.num_columns(); ++c) {
    const Column& col = slice.column(c);
    switch (col.type()) {
      case DataType::kBool:
        AppendRaw(out, col.bool_data().data() + offset, rows);
        break;
      case DataType::kInt32:
        AppendRaw(out, col.int32_data().data() + offset, rows);
        break;
      case DataType::kInt64:
      case DataType::kTimestamp:
        AppendRaw(out, col.int64_data().data() + offset, rows);
        break;
      case DataType::kDouble:
        AppendRaw(out, col.double_data().data() + offset, rows);
        break;
      case DataType::kString: {
        for (size_t r = 0; r < rows; ++r) {
          const std::string& s = col.StringAt(offset + r);
          AppendU32(out, static_cast<uint32_t>(s.size()));
          out->append(s);
        }
        break;
      }
    }
  }
}

Status DeserializeBatch(const char* data, size_t size, size_t* offset,
                        const std::vector<DataType>& types,
                        const std::vector<std::string>& names, Table* out) {
  uint32_t rows = 0;
  LAZYETL_RETURN_NOT_OK(
      ReadExact(data, size, offset, &rows, sizeof(rows), "row count"));
  Table result;
  for (size_t c = 0; c < types.size(); ++c) {
    Column col(types[c]);
    switch (types[c]) {
      case DataType::kBool: {
        std::vector<uint8_t> v(rows);
        LAZYETL_RETURN_NOT_OK(
            ReadExact(data, size, offset, v.data(), rows, "bool column"));
        col = Column::FromBool(std::move(v));
        break;
      }
      case DataType::kInt32: {
        std::vector<int32_t> v(rows);
        LAZYETL_RETURN_NOT_OK(ReadExact(data, size, offset, v.data(),
                                        rows * sizeof(int32_t),
                                        "int32 column"));
        col = Column::FromInt32(std::move(v));
        break;
      }
      case DataType::kInt64:
      case DataType::kTimestamp: {
        std::vector<int64_t> v(rows);
        LAZYETL_RETURN_NOT_OK(ReadExact(data, size, offset, v.data(),
                                        rows * sizeof(int64_t),
                                        "int64 column"));
        col = types[c] == DataType::kInt64
                  ? Column::FromInt64(std::move(v))
                  : Column::FromTimestamp(std::move(v));
        break;
      }
      case DataType::kDouble: {
        std::vector<double> v(rows);
        LAZYETL_RETURN_NOT_OK(ReadExact(data, size, offset, v.data(),
                                        rows * sizeof(double),
                                        "double column"));
        col = Column::FromDouble(std::move(v));
        break;
      }
      case DataType::kString: {
        std::vector<std::string> v;
        v.reserve(rows);
        for (uint32_t r = 0; r < rows; ++r) {
          uint32_t len = 0;
          LAZYETL_RETURN_NOT_OK(ReadExact(data, size, offset, &len,
                                          sizeof(len), "string length"));
          if (*offset + len > size) {
            return Status::CorruptData("spill frame truncated in string");
          }
          v.emplace_back(data + *offset, len);
          *offset += len;
        }
        col = Column::FromString(std::move(v));
        break;
      }
    }
    LAZYETL_RETURN_NOT_OK(result.AddColumn(names[c], std::move(col)));
  }
  *out = std::move(result);
  return Status::OK();
}

Status SpillWriter::Open(const std::string& path, const TableSchema& schema) {
  path_ = path;
  bytes_written_ = 0;
  rows_written_ = 0;
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_.is_open()) {
    return Status::IOError("cannot open spill file " + path + " for writing");
  }
  pending_.clear();
  AppendU32(&pending_, kMagic);
  AppendU32(&pending_, static_cast<uint32_t>(schema.size()));
  for (const ColumnSchema& col : schema) {
    AppendU32(&pending_, static_cast<uint32_t>(col.name.size()));
    pending_.append(col.name);
    pending_.push_back(static_cast<char>(col.type));
  }
  return Status::OK();
}

Status SpillWriter::FlushPending() {
  if (pending_.empty()) return Status::OK();
  out_.write(pending_.data(), static_cast<std::streamsize>(pending_.size()));
  if (!out_.good()) return Status::IOError("failed writing to " + path_);
  pending_.clear();
  return Status::OK();
}

Status SpillWriter::Append(const TableSlice& slice) {
  size_t before = pending_.size();
  SerializeSlice(slice, &pending_);
  bytes_written_ += pending_.size() - before;
  rows_written_ += slice.num_rows();
  if (pending_.size() >= kWriteChunkBytes) return FlushPending();
  return Status::OK();
}

Status SpillWriter::Finish() {
  if (!out_.is_open()) return Status::OK();
  LAZYETL_RETURN_NOT_OK(FlushPending());
  out_.flush();
  bool ok = out_.good();
  out_.close();
  if (!ok) return Status::IOError("failed flushing spill file " + path_);
  return Status::OK();
}

Status SpillReader::Open(const std::string& path) {
  path_ = path;
  read_buf_.resize(64 * 1024);
  in_.rdbuf()->pubsetbuf(read_buf_.data(),
                         static_cast<std::streamsize>(read_buf_.size()));
  in_.open(path, std::ios::binary);
  if (!in_.is_open()) {
    return Status::IOError("cannot open spill file " + path);
  }
  uint32_t magic = 0;
  uint32_t cols = 0;
  in_.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in_.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!in_.good() || magic != kMagic) {
    return Status::CorruptData("bad spill file header in " + path);
  }
  schema_.clear();
  types_.clear();
  names_.clear();
  for (uint32_t c = 0; c < cols; ++c) {
    uint32_t len = 0;
    in_.read(reinterpret_cast<char*>(&len), sizeof(len));
    std::string name(len, '\0');
    in_.read(name.data(), len);
    char type = 0;
    in_.read(&type, 1);
    if (!in_.good()) {
      return Status::CorruptData("truncated spill schema in " + path);
    }
    schema_.push_back({name, static_cast<DataType>(type)});
    types_.push_back(static_cast<DataType>(type));
    names_.push_back(std::move(name));
  }
  return Status::OK();
}

Result<bool> SpillReader::Next(Table* out) {
  uint32_t rows = 0;
  in_.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  if (in_.eof() && in_.gcount() == 0) return false;  // clean end of run
  if (in_.gcount() != sizeof(rows)) {
    return Status::CorruptData("truncated frame header in " + path_);
  }

  // Decode the frame through the shared parser: re-assemble the frame
  // bytes (row count + payload) in the reusable buffer. The payload size
  // of fixed-width columns is known; strings are read incrementally.
  buffer_.clear();
  AppendU32(&buffer_, rows);
  for (DataType type : types_) {
    size_t fixed = 0;
    switch (type) {
      case DataType::kBool:
        fixed = rows;
        break;
      case DataType::kInt32:
        fixed = rows * sizeof(int32_t);
        break;
      case DataType::kInt64:
      case DataType::kTimestamp:
        fixed = rows * sizeof(int64_t);
        break;
      case DataType::kDouble:
        fixed = rows * sizeof(double);
        break;
      case DataType::kString: {
        for (uint32_t r = 0; r < rows; ++r) {
          uint32_t len = 0;
          in_.read(reinterpret_cast<char*>(&len), sizeof(len));
          if (in_.gcount() != sizeof(len)) {
            return Status::CorruptData("truncated string length in " + path_);
          }
          size_t at = buffer_.size();
          buffer_.resize(at + sizeof(len) + len);
          std::memcpy(buffer_.data() + at, &len, sizeof(len));
          in_.read(buffer_.data() + at + sizeof(len), len);
          if (in_.gcount() != static_cast<std::streamsize>(len)) {
            return Status::CorruptData("truncated string data in " + path_);
          }
        }
        continue;
      }
    }
    size_t at = buffer_.size();
    buffer_.resize(at + fixed);
    in_.read(buffer_.data() + at, static_cast<std::streamsize>(fixed));
    if (in_.gcount() != static_cast<std::streamsize>(fixed)) {
      return Status::CorruptData("truncated column data in " + path_);
    }
  }

  size_t offset = 0;
  LAZYETL_RETURN_NOT_OK(DeserializeBatch(buffer_.data(), buffer_.size(),
                                         &offset, types_, names_, out));
  return true;
}

}  // namespace lazyetl::storage
