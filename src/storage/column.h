// Column: a typed, densely-packed vector of values — the BAT-tail analog of
// the MonetDB substrate. Engine operators work on whole columns plus
// selection vectors (row-id lists), the column-at-a-time execution model.

#ifndef LAZYETL_STORAGE_COLUMN_H_
#define LAZYETL_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/types.h"

namespace lazyetl::storage {

// Row-id list produced by selections and joins.
using SelectionVector = std::vector<uint32_t>;

class Column {
 public:
  explicit Column(DataType type);

  Column(const Column&) = default;
  Column& operator=(const Column&) = default;
  Column(Column&&) = default;
  Column& operator=(Column&&) = default;

  // Typed factories taking ownership of existing vectors.
  static Column FromInt32(std::vector<int32_t> data);
  static Column FromInt64(std::vector<int64_t> data);
  static Column FromDouble(std::vector<double> data);
  static Column FromString(std::vector<std::string> data);
  static Column FromTimestamp(std::vector<int64_t> data);
  static Column FromBool(std::vector<uint8_t> data);

  // Dictionary-encoded string column: a shared, sorted, duplicate-free
  // dictionary plus one uint32 code per row. Because the dictionary is
  // sorted, codes are order-isomorphic to their strings, so comparison
  // predicates evaluate on the codes alone (see engine/expr_eval).
  static Column FromDictionary(
      std::shared_ptr<const std::vector<std::string>> dict,
      std::vector<uint32_t> codes);

  DataType type() const { return type_; }
  size_t size() const;
  bool empty() const { return size() == 0; }

  // --- Dictionary encoding (kString columns only) -------------------------

  bool dict_encoded() const { return dict_ != nullptr; }
  // Precondition for both: dict_encoded().
  const std::vector<uint32_t>& dict_codes() const { return codes_; }
  const std::shared_ptr<const std::vector<std::string>>& dictionary() const {
    return dict_;
  }

  // Row `row` as a string, transparent to the encoding. Precondition:
  // type() == kString. The reference stays valid while the column (or its
  // shared dictionary) lives.
  const std::string& StringAt(size_t row) const {
    return dict_ ? (*dict_)[codes_[row]] : string_data()[row];
  }

  // Plain (unencoded) copy; returns *this unchanged when already plain.
  Column Decoded() const;

  // Replaces the encoded representation with plain strings in place.
  void DecodeInPlace();

  // Encodes a plain kString column in place when its distinct-value count
  // is at most `max_cardinality`. Returns whether the column is encoded
  // afterwards (already-encoded columns report true; over-cardinality and
  // non-string columns are left untouched and report false).
  bool TryDictEncode(size_t max_cardinality);

  // --- Direct typed access ------------------------------------------------
  // Precondition: matching physical type, and for kString additionally
  // !dict_encoded() (use StringAt for encoding-transparent reads).
  // (kInt64 and kTimestamp share int64 storage; kBool uses uint8.)
  std::vector<int32_t>& int32_data() { return std::get<std::vector<int32_t>>(data_); }
  const std::vector<int32_t>& int32_data() const { return std::get<std::vector<int32_t>>(data_); }
  std::vector<int64_t>& int64_data() { return std::get<std::vector<int64_t>>(data_); }
  const std::vector<int64_t>& int64_data() const { return std::get<std::vector<int64_t>>(data_); }
  std::vector<double>& double_data() { return std::get<std::vector<double>>(data_); }
  const std::vector<double>& double_data() const { return std::get<std::vector<double>>(data_); }
  std::vector<std::string>& string_data() { return std::get<std::vector<std::string>>(data_); }
  const std::vector<std::string>& string_data() const { return std::get<std::vector<std::string>>(data_); }
  std::vector<uint8_t>& bool_data() { return std::get<std::vector<uint8_t>>(data_); }
  const std::vector<uint8_t>& bool_data() const { return std::get<std::vector<uint8_t>>(data_); }

  // Scalar access (slow path; bulk operators use the typed vectors).
  Value GetValue(size_t row) const;
  Status AppendValue(const Value& v);
  void Reserve(size_t n);

  // Appends all rows of `other` (same type) to this column.
  Status AppendColumn(const Column& other);

  // Appends rows [offset, offset + length) of `other` (same type) — the
  // batch-aware append path used when draining slices into a table.
  Status AppendRange(const Column& other, size_t offset, size_t length);

  // New column containing rows picked by `sel`, in order.
  Column Gather(const SelectionVector& sel) const;

  // Gather with a base offset: rows picked are `base_offset + sel[i]`.
  // Used by slices, whose selection vectors are slice-relative.
  Column GatherFrom(const SelectionVector& sel, size_t base_offset) const;

  // New column holding a copy of rows [offset, offset + length).
  Column CopyRange(size_t offset, size_t length) const;

  // Numeric view of row `row` as double (0.0 for strings).
  double NumericAt(size_t row) const;

  // Approximate heap footprint in bytes (used for cache accounting and the
  // storage-footprint experiment).
  uint64_t MemoryBytes() const;

  // Approximate heap bytes of rows [offset, offset + length) only (batch
  // accounting for slices).
  uint64_t RangeBytes(size_t offset, size_t length) const;

 private:
  DataType type_;
  std::variant<std::vector<uint8_t>,      // bool
               std::vector<int32_t>,      // int32
               std::vector<int64_t>,      // int64 / timestamp
               std::vector<double>,       // double
               std::vector<std::string>>  // string
      data_;
  // Dictionary encoding lives beside the variant: when dict_ is set the
  // column is an encoded kString column, codes_ holds one code per row and
  // the variant's string vector stays empty. Gathers, slices and appends
  // between columns sharing a dictionary move only the codes.
  std::shared_ptr<const std::vector<std::string>> dict_;
  std::vector<uint32_t> codes_;
};

}  // namespace lazyetl::storage

#endif  // LAZYETL_STORAGE_COLUMN_H_
