// Compact on-disk run format for spilled intermediates.
//
// Pipeline breakers that exceed their memory budget spool TableSlice runs
// to temp files and stream them back batch-at-a-time. Two container
// versions share one reader:
//
//   v1 (LAZYETL_SPILL_COMPRESSION=off):
//     header:  u32 magic "LSPL" | u32 #columns | per column: u32 name-len,
//              name bytes, u8 type
//     frame:   u32 #rows | per column: raw fixed-width array (bool/i32/
//              i64/timestamp/double) or, for strings, u32 length + bytes
//
//   v2 (the default):
//     header:  u32 magic "LSP2" | u32 #columns | per column: u32 name-len,
//              name bytes, u8 type | per column: zone-map slot
//              (u8 has-bounds, 8B min, 8B max) — zero at Open, backpatched
//              with run-level bounds at Finish
//     frame:   u32 #rows | u32 body-bytes | per column: u8 codec |
//              [numeric: 8B frame-min, 8B frame-max] | u32 payload-size |
//              payload
//
// v2 columns are lightweight-compressed per frame (codec chosen by size:
// RLE / frame-of-reference bit-packing / zigzag delta packing for int-like
// columns, Steim-style XOR delta framing for doubles, shared-prefix varint
// packing and per-frame dictionaries for strings, plus a duplicate-column
// reference). Every codec is lossless down to the bit pattern, so spill
// round-trips stay byte-exact and the determinism parity suites hold. The
// run-level min/max bounds let Grace re-partitioning and the k-way merge
// skip or defer whole runs (see engine/operators/spill_run.h).
//
// Values are written in host byte order — spill files are process-local
// scratch, never interchange (persist.cc owns durable storage). A reader
// returns one Table per frame, so replay memory is bounded by the largest
// spilled batch regardless of run length.

#ifndef LAZYETL_STORAGE_SPILL_FORMAT_H_
#define LAZYETL_STORAGE_SPILL_FORMAT_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/spill.h"
#include "common/status.h"
#include "storage/slice.h"
#include "storage/table.h"

namespace lazyetl::storage {

// Per-column codec tag inside a v2 frame.
enum class SpillCodec : uint8_t {
  kRaw = 0,        // v1 bytes (strings: u32 length + bytes)
  kRle = 1,        // int-like: (u32 run-length, i64 value)*
  kBitPack = 2,    // int-like: i64 base, u8 width, LSB-first packed offsets
  kDeltaPack = 3,  // int-like: i64 first, u8 width, packed zigzag deltas
  kDoubleXor = 4,  // doubles: Steim-style XOR-prev, nibble byte counts
  kStrPack = 5,    // strings: shared prefix + varint suffix-length + bytes
  kStrDict = 6,    // strings: per-frame dictionary + bit-packed codes
  kDupCol = 7,     // u32 index of an identically-encoded earlier column
};

// How aggressively the writer compresses (LAZYETL_SPILL_COMPRESSION).
//   off   — v1 container, byte-identical to the legacy format
//   auto  — v2, per column the smallest encoding (raw when nothing wins)
//   force — v2, always a non-raw codec when one applies (test coverage)
enum class SpillCompression { kOff, kAuto, kForce };
SpillCompression ResolveSpillCompression();

// Min/max of one column over a frame or a whole run. Int-like columns
// (bool/int32/int64/timestamp) use imin/imax; doubles use dmin/dmax
// (invalid when any value is NaN); strings never carry bounds.
struct SpillColumnBounds {
  bool has_bounds = false;
  int64_t imin = 0;
  int64_t imax = 0;
  double dmin = 0.0;
  double dmax = 0.0;
};

// Parsed run header: schema plus (v2) run-level zone map and the offset of
// the first frame. Callers that open the same run more than once (e.g. the
// multi-pass RunMerger) read the header once and pass it back to
// SpillReader::Open to skip re-parsing.
struct SpillRunHeader {
  uint32_t version = 1;  // 1 = legacy raw, 2 = compressed + zone maps
  TableSchema schema;
  std::vector<DataType> types;
  std::vector<std::string> names;
  std::vector<SpillColumnBounds> bounds;  // empty for v1 runs
  uint64_t data_offset = 0;
};

// Reads and parses the header of `path` without holding the file open.
Status ReadSpillHeader(const std::string& path, SpillRunHeader* out);

// Appends one v1 frame encoding the viewed rows of `slice` to `out`.
void SerializeSlice(const TableSlice& slice, std::string* out);

// Parses the v1 frame starting at `data + *offset` (schema known from the
// header) into `*out` and advances *offset past it. `types` gives the
// column type per frame column.
Status DeserializeBatch(const char* data, size_t size, size_t* offset,
                        const std::vector<DataType>& types,
                        const std::vector<std::string>& names, Table* out);

// Streaming writer for one run file. Append order is preserved exactly on
// read-back. Unless LAZYETL_SPILL_ASYNC=0, encoded chunks are handed to a
// common::AsyncRunWriter so disk writes overlap the producer.
class SpillWriter {
 public:
  // Opens (truncates) `path` and writes the schema header.
  Status Open(const std::string& path, const TableSchema& schema);

  // Appends the viewed rows of `slice` as one frame. The slice must match
  // the opened schema (arity and types).
  Status Append(const TableSlice& slice);

  // Flushes and closes; no further Append. Backpatches the run-level
  // zone map into the v2 header. Safe to call twice.
  Status Finish();

  // Physical (encoded) bytes on disk, excluding the header.
  uint64_t bytes_written() const { return bytes_written_; }
  // Uncompressed v1-equivalent bytes of the same frames — the engine's
  // logical spill volume; bytes_written()/logical_bytes() is the ratio.
  uint64_t logical_bytes() const { return logical_bytes_; }
  uint64_t rows_written() const { return rows_written_; }
  // Producer time blocked on disk I/O (0 when fully overlapped).
  double write_wait_seconds() const;
  const std::string& path() const { return path_; }

 private:
  // Encoded frames accumulate here and hit the file in large chunks:
  // spill workloads write many small frames across several partition
  // files at once, and per-frame write() calls are brutally slow on some
  // filesystems (journaled ext4 queues writeback per syscall).
  static constexpr size_t kWriteChunkBytes = 64 * 1024;

  Status FlushPending();
  Status BackpatchBounds();

  std::ofstream out_;                              // sync path
  std::unique_ptr<common::AsyncRunWriter> async_;  // overlapped path
  std::string path_;
  std::string pending_;  // encoded-but-unwritten frames
  SpillCompression mode_ = SpillCompression::kAuto;
  std::vector<DataType> types_;
  std::vector<SpillColumnBounds> run_bounds_;
  std::vector<uint8_t> bounds_valid_;  // per column: all frames had bounds
  uint64_t bounds_offset_ = 0;         // header slot to backpatch (v2)
  uint64_t bytes_written_ = 0;
  uint64_t logical_bytes_ = 0;
  uint64_t rows_written_ = 0;
  bool any_frames_ = false;
};

// Streaming reader over a run file written by SpillWriter: one Table per
// Next call, frames in append order. Handles both container versions;
// string columns always decode to plain (unencoded) columns, exactly as
// the legacy reader produced them.
class SpillReader {
 public:
  // Parses the header. When `cached` is given (from ReadSpillHeader or a
  // previous open), parsing is skipped and the reader seeks straight to
  // the first frame.
  Status Open(const std::string& path,
              const SpillRunHeader* cached = nullptr);

  const TableSchema& schema() const { return header_.schema; }
  const SpillRunHeader& header() const { return header_; }

  // Fills *out with the next frame; returns false at clean end-of-file.
  Result<bool> Next(Table* out);

  // Per-column bounds of the frame most recently returned by Next (empty
  // for v1 runs).
  const std::vector<SpillColumnBounds>& frame_bounds() const {
    return frame_bounds_;
  }

 private:
  Result<bool> NextV1(Table* out);
  Result<bool> NextV2(Table* out);

  std::ifstream in_;
  std::string path_;
  SpillRunHeader header_;
  std::vector<SpillColumnBounds> frame_bounds_;
  std::string buffer_;           // reused frame decoding scratch
  std::vector<char> read_buf_;   // large stream buffer (fewer syscalls)
};

}  // namespace lazyetl::storage

#endif  // LAZYETL_STORAGE_SPILL_FORMAT_H_
