// Compact on-disk run format for spilled intermediates.
//
// Pipeline breakers that exceed their memory budget spool TableSlice runs
// to temp files and stream them back batch-at-a-time. The format is a
// sequence of self-delimiting frames after a one-off schema header:
//
//   header:  u32 magic | u32 #columns | per column: u32 name-len, name
//            bytes, u8 type
//   frame:   u32 #rows | per column: raw fixed-width array (bool/i32/i64/
//            timestamp/double) or, for strings, u32 length + bytes per row
//
// Values are written in host byte order — spill files are process-local
// scratch, never interchange (persist.cc owns durable storage). A reader
// returns one Table per frame, so replay memory is bounded by the largest
// spilled batch regardless of run length.

#ifndef LAZYETL_STORAGE_SPILL_FORMAT_H_
#define LAZYETL_STORAGE_SPILL_FORMAT_H_

#include <cstdint>
#include <fstream>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/slice.h"
#include "storage/table.h"

namespace lazyetl::storage {

// Appends one frame encoding the viewed rows of `slice` to `out`.
void SerializeSlice(const TableSlice& slice, std::string* out);

// Parses the frame starting at `data + *offset` (schema known from the
// header) into `*out` and advances *offset past it. `types` gives the
// column type per frame column.
Status DeserializeBatch(const char* data, size_t size, size_t* offset,
                        const std::vector<DataType>& types,
                        const std::vector<std::string>& names, Table* out);

// Streaming writer for one run file. Append order is preserved exactly on
// read-back.
class SpillWriter {
 public:
  // Opens (truncates) `path` and writes the schema header.
  Status Open(const std::string& path, const TableSchema& schema);

  // Appends the viewed rows of `slice` as one frame. The slice must match
  // the opened schema (arity and types).
  Status Append(const TableSlice& slice);

  // Flushes and closes; no further Append. Safe to call twice.
  Status Finish();

  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t rows_written() const { return rows_written_; }
  const std::string& path() const { return path_; }

 private:
  // Encoded frames accumulate here and hit the file in large chunks:
  // spill workloads write many small frames across several partition
  // files at once, and per-frame write() calls are brutally slow on some
  // filesystems (journaled ext4 queues writeback per syscall).
  static constexpr size_t kWriteChunkBytes = 64 * 1024;

  Status FlushPending();

  std::ofstream out_;
  std::string path_;
  std::string pending_;  // encoded-but-unwritten frames
  uint64_t bytes_written_ = 0;
  uint64_t rows_written_ = 0;
};

// Streaming reader over a run file written by SpillWriter: one Table per
// Next call, frames in append order.
class SpillReader {
 public:
  Status Open(const std::string& path);

  const TableSchema& schema() const { return schema_; }

  // Fills *out with the next frame; returns false at clean end-of-file.
  Result<bool> Next(Table* out);

 private:
  std::ifstream in_;
  std::string path_;
  TableSchema schema_;
  std::vector<DataType> types_;
  std::vector<std::string> names_;
  std::string buffer_;           // reused frame decoding scratch
  std::vector<char> read_buf_;   // large stream buffer (fewer syscalls)
};

}  // namespace lazyetl::storage

#endif  // LAZYETL_STORAGE_SPILL_FORMAT_H_
