#include "storage/catalog.h"

#include <cstdlib>
#include <mutex>
#include <shared_mutex>

namespace lazyetl::storage {

namespace {

// Dictionary-encoding policy for tables entering the catalog, controlled by
// LAZYETL_DICT_ENCODING (off | auto | force, default auto) and
// LAZYETL_DICT_MAX_CARDINALITY (default 256). "auto" encodes string columns
// whose cardinality is at most the cap; "force" lifts the cap so every
// string column encodes (parity testing); "off" leaves columns plain.
size_t DictCardinalityCap() {
  size_t cap = 256;
  if (const char* env = std::getenv("LAZYETL_DICT_MAX_CARDINALITY")) {
    cap = static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  if (const char* env = std::getenv("LAZYETL_DICT_ENCODING")) {
    std::string mode(env);
    if (mode == "off") return 0;
    if (mode == "force") return static_cast<size_t>(-1);
  }
  return cap;
}

// Publish-time preparation: encode low-cardinality string columns and
// rebuild zone maps. Runs before the registry lock is taken — the caller
// still exclusively owns the table at this point (published tables are
// immutable by contract).
void PrepareForPublish(const TablePtr& table) {
  if (!table) return;
  if (size_t cap = DictCardinalityCap(); cap > 0) {
    table->DictEncodeStrings(cap);
  }
  if (!table->has_stats()) table->RefreshStats();
}

}  // namespace

Result<const ViewColumn*> ViewDefinition::Resolve(const std::string& qualifier,
                                                  const std::string& col) const {
  const ViewColumn* found = nullptr;
  for (const auto& vc : columns) {
    if (!qualifier.empty() && vc.qualifier != qualifier) continue;
    if (vc.name != col) continue;
    if (found != nullptr) {
      return Status::BindError("ambiguous column '" + col + "' in view " +
                               name);
    }
    found = &vc;
  }
  if (found == nullptr) {
    return Status::BindError("view " + name + " has no column '" +
                             (qualifier.empty() ? col : qualifier + "." + col) +
                             "'");
  }
  return found;
}

Status Catalog::RegisterTable(const std::string& name, TablePtr table) {
  PrepareForPublish(table);
  std::unique_lock lock(mu_);
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' already registered");
  }
  tables_[name] = std::move(table);
  return Status::OK();
}

void Catalog::PutTable(const std::string& name, TablePtr table) {
  PrepareForPublish(table);
  std::unique_lock lock(mu_);
  tables_[name] = std::move(table);
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  std::shared_lock lock(mu_);
  return tables_.count(name) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

Status Catalog::RegisterView(ViewDefinition view) {
  std::unique_lock lock(mu_);
  if (views_.count(view.name)) {
    return Status::AlreadyExists("view '" + view.name + "' already registered");
  }
  std::string name = view.name;
  views_[name] = std::move(view);
  return Status::OK();
}

Result<const ViewDefinition*> Catalog::GetView(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("no view named '" + name + "'");
  }
  // Safe to return without the lock: views are write-once (warehouse
  // construction) and std::map nodes are address-stable.
  return &it->second;
}

bool Catalog::HasView(const std::string& name) const {
  std::shared_lock lock(mu_);
  return views_.count(name) > 0;
}

std::vector<std::string> Catalog::ViewNames() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [name, _] : views_) names.push_back(name);
  return names;
}

uint64_t Catalog::MemoryBytes() const {
  // Snapshot the table pointers under the lock; summing MemoryBytes of
  // the (immutable once published) tables happens outside it.
  std::vector<TablePtr> tables;
  {
    std::shared_lock lock(mu_);
    tables.reserve(tables_.size());
    for (const auto& [_, table] : tables_) tables.push_back(table);
  }
  uint64_t total = 0;
  for (const auto& table : tables) {
    if (table) total += table->MemoryBytes();
  }
  return total;
}

}  // namespace lazyetl::storage
