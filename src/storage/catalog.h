// Catalog: the warehouse's registry of base tables and non-materialised
// views.
//
// The paper's lazy transformation (§3.2) represents transformations as
// non-materialised views ("view definitions are simply expanded into the
// query"). The Catalog stores view definitions declaratively — a join tree
// over base tables plus exported, qualifier-tagged columns — and the SQL
// binder expands them.

#ifndef LAZYETL_STORAGE_CATALOG_H_
#define LAZYETL_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/table.h"

namespace lazyetl::storage {

// A column exported by a view: `qualifier.name` in queries maps to
// `base_table.base_column`.
struct ViewColumn {
  std::string qualifier;    // "F", "R", "D"
  std::string name;         // "station"
  std::string base_table;   // "mseed.files"
  std::string base_column;  // "station"
};

// One step of the view's left-deep join tree: joins `table` to the result
// of everything before it, on equal values of the listed key pairs
// (left side expressed as base_table.column of an earlier table).
struct ViewJoinStep {
  std::string table;
  // Pairs of (earlier table column as "table.column", this table's column).
  std::vector<std::pair<std::string, std::string>> keys;
};

// Declares that every value of `data_table.data_column` within a join
// group lies inside [`range_table.start_column`, `range_table.end_column`]
// of the joined row (inclusive). The planner uses this to infer metadata
// predicates from actual-data predicates — the heart of the paper's
// "metadata is used to identify the actual data required by a query":
// a predicate D.sample_time < c implies R.start_time < c (and F.start_time
// < c), so whole records/files are pruned before any extraction.
struct TimeContainmentRule {
  std::string data_table;
  std::string data_column;
  std::string range_table;
  std::string start_column;
  std::string end_column;
};

struct ViewDefinition {
  std::string name;        // "mseed.dataview"
  std::string root_table;  // first table of the join tree
  std::vector<ViewJoinStep> joins;
  std::vector<ViewColumn> columns;
  std::vector<TimeContainmentRule> containment_rules;

  // Name of the base table whose contents are *not* materialised in the
  // warehouse and must be produced at query time by lazy extraction
  // ("mseed.data" in lazy mode). Empty in eager mode. The planner replaces
  // the join against this table with a LazyDataScan operator.
  std::string lazy_table;

  // Finds the exported column for `qualifier.name` (qualifier may be empty
  // to search across all, erroring on ambiguity).
  Result<const ViewColumn*> Resolve(const std::string& qualifier,
                                    const std::string& name) const;
};

// Concurrency contract: the registry maps are internally locked, so
// GetTable/PutTable may race freely across query threads. A published
// TablePtr is treated as immutable — writers that need to change a table
// build a modified copy and PutTable it (copy-on-write), so readers keep
// scanning their snapshot safely while a new version is published. Views
// are registered once at warehouse construction and immutable after, so
// the ViewDefinition pointers GetView hands out stay valid without a
// sustained lock.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Both publish paths prepare the table before it becomes visible:
  // low-cardinality string columns are dictionary-encoded (see
  // LAZYETL_DICT_ENCODING / LAZYETL_DICT_MAX_CARDINALITY) and zone maps are
  // refreshed, so scans can prune against up-to-date statistics.
  Status RegisterTable(const std::string& name, TablePtr table);
  // Replaces the table if it already exists (the copy-on-write publish).
  void PutTable(const std::string& name, TablePtr table);
  Result<TablePtr> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  Status RegisterView(ViewDefinition view);
  Result<const ViewDefinition*> GetView(const std::string& name) const;
  bool HasView(const std::string& name) const;
  std::vector<std::string> ViewNames() const;

  // Total in-memory footprint of all base tables.
  uint64_t MemoryBytes() const;

 private:
  mutable std::shared_mutex mu_;  // guards the maps (not table contents)
  std::map<std::string, TablePtr> tables_;
  std::map<std::string, ViewDefinition> views_;
};

}  // namespace lazyetl::storage

#endif  // LAZYETL_STORAGE_CATALOG_H_
