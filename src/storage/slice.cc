#include "storage/slice.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace lazyetl::storage {

TableSlice TableSlice::FromTable(const Table& table, size_t offset,
                                 size_t length) {
  TableSlice slice;
  for (size_t i = 0; i < table.num_columns(); ++i) {
    slice.AddColumn(table.column_name(i), &table.column(i));
  }
  slice.SetRange(offset, length);
  return slice;
}

void TableSlice::AddColumn(std::string name, const Column* column) {
  names_.push_back(std::move(name));
  columns_.push_back(column);
}

Result<size_t> TableSlice::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  size_t found = names_.size();
  int matches = 0;
  for (size_t i = 0; i < names_.size(); ++i) {
    if (EndsWith(names_[i], "." + name)) {
      found = i;
      ++matches;
    }
  }
  if (matches == 1) return found;
  if (matches > 1) {
    return Status::BindError("ambiguous column name '" + name + "'");
  }
  return Status::NotFound("no column named '" + name + "'");
}

Result<ColumnSlice> TableSlice::ColumnByName(const std::string& name) const {
  LAZYETL_ASSIGN_OR_RETURN(size_t i, ColumnIndex(name));
  return column_slice(i);
}

TableSlice TableSlice::Prefix(size_t n) const {
  TableSlice out = *this;
  out.length_ = n < length_ ? n : length_;
  return out;
}

TableSlice TableSlice::Subslice(size_t start, size_t n) const {
  TableSlice out = *this;
  out.offset_ = offset_ + (start < length_ ? start : length_);
  size_t avail = length_ - (out.offset_ - offset_);
  out.length_ = n < avail ? n : avail;
  return out;
}

Table TableSlice::Materialize() const {
  Table out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    (void)out.AddColumn(names_[i], column_slice(i).Materialize());
  }
  return out;
}

Table TableSlice::Gather(const SelectionVector& sel) const {
  Table out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    (void)out.AddColumn(names_[i], column_slice(i).Gather(sel));
  }
  return out;
}

uint64_t TableSlice::ViewedBytes() const {
  uint64_t total = 0;
  for (size_t i = 0; i < columns_.size(); ++i) {
    total += column_slice(i).ViewedBytes();
  }
  return total;
}

}  // namespace lazyetl::storage
