#include "storage/csv.h"

#include <fstream>
#include <sstream>

namespace lazyetl::storage {

namespace {

// Quotes a field when it contains a separator, quote, or newline.
void AppendField(std::ostringstream* os, const std::string& field) {
  bool needs_quoting = field.find_first_of(",\"\r\n") != std::string::npos;
  if (!needs_quoting) {
    *os << field;
    return;
  }
  *os << '"';
  for (char c : field) {
    if (c == '"') *os << '"';
    *os << c;
  }
  *os << '"';
}

}  // namespace

std::string ToCsv(const Table& table) {
  std::ostringstream os;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c) os << ',';
    AppendField(&os, table.column_name(c));
  }
  os << '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c) os << ',';
      AppendField(&os, table.GetValue(r, c).ToString());
    }
    os << '\n';
  }
  return os.str();
}

Status WriteCsv(const std::string& path, const Table& table) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  out << ToCsv(table);
  out.flush();
  if (!out.good()) return Status::IOError("failed writing " + path);
  return Status::OK();
}

}  // namespace lazyetl::storage
