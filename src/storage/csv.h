// CSV export of query results (RFC-4180-style quoting).

#ifndef LAZYETL_STORAGE_CSV_H_
#define LAZYETL_STORAGE_CSV_H_

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace lazyetl::storage {

// Renders `table` as CSV: a header row of column names followed by one row
// per tuple. Fields containing commas, quotes, or newlines are quoted with
// embedded quotes doubled; timestamps render in ISO-8601.
std::string ToCsv(const Table& table);

// Writes ToCsv(table) to `path` (truncating).
Status WriteCsv(const std::string& path, const Table& table);

}  // namespace lazyetl::storage

#endif  // LAZYETL_STORAGE_CSV_H_
