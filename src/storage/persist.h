// Disk persistence of tables: one directory per table containing a small
// text schema file plus one binary file per column.
//
// This is the "loading" target of eager ETL — it lets the storage-blow-up
// experiment (paper §4: "a SEED repository requires up to 10 times the
// original storage size when loaded into a database") measure real on-disk
// warehouse bytes, and lets an eagerly-built warehouse be reopened without
// re-running ETL.
//
// Layout:
//   <dir>/schema          "column-name<TAB>type" per line, then row count
//   <dir>/<i>.col         raw little-endian array (fixed-size types) or
//                         u32-length-prefixed bytes (strings)

#ifndef LAZYETL_STORAGE_PERSIST_H_
#define LAZYETL_STORAGE_PERSIST_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/table.h"

namespace lazyetl::storage {

// Writes `table` under directory `dir` (created if missing, truncating any
// previous contents of the column files).
Status WriteTable(const std::string& dir, const Table& table);

// Reads a table previously written by WriteTable.
Result<Table> ReadTable(const std::string& dir);

// Total bytes of all regular files under `dir` (recursive).
Result<uint64_t> DirectoryBytes(const std::string& dir);

}  // namespace lazyetl::storage

#endif  // LAZYETL_STORAGE_PERSIST_H_
