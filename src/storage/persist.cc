#include "storage/persist.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace lazyetl::storage {

namespace fs = std::filesystem;

namespace {

Status WriteColumnFile(const std::string& path, const Column& col) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  switch (col.type()) {
    case DataType::kBool: {
      const auto& v = col.bool_data();
      out.write(reinterpret_cast<const char*>(v.data()),
                static_cast<std::streamsize>(v.size()));
      break;
    }
    case DataType::kInt32: {
      const auto& v = col.int32_data();
      out.write(reinterpret_cast<const char*>(v.data()),
                static_cast<std::streamsize>(v.size() * sizeof(int32_t)));
      break;
    }
    case DataType::kInt64:
    case DataType::kTimestamp: {
      const auto& v = col.int64_data();
      out.write(reinterpret_cast<const char*>(v.data()),
                static_cast<std::streamsize>(v.size() * sizeof(int64_t)));
      break;
    }
    case DataType::kDouble: {
      const auto& v = col.double_data();
      out.write(reinterpret_cast<const char*>(v.data()),
                static_cast<std::streamsize>(v.size() * sizeof(double)));
      break;
    }
    case DataType::kString: {
      for (size_t r = 0; r < col.size(); ++r) {
        const std::string& s = col.StringAt(r);
        uint32_t len = static_cast<uint32_t>(s.size());
        out.write(reinterpret_cast<const char*>(&len), sizeof(len));
        out.write(s.data(), static_cast<std::streamsize>(s.size()));
      }
      break;
    }
  }
  out.flush();
  if (!out.good()) return Status::IOError("failed writing " + path);
  return Status::OK();
}

Result<Column> ReadColumnFile(const std::string& path, DataType type,
                              size_t rows) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open " + path);
  }
  auto read_exact = [&](void* dst, size_t bytes) -> Status {
    in.read(static_cast<char*>(dst), static_cast<std::streamsize>(bytes));
    if (in.gcount() != static_cast<std::streamsize>(bytes)) {
      return Status::CorruptData("short read in column file " + path);
    }
    return Status::OK();
  };
  switch (type) {
    case DataType::kBool: {
      std::vector<uint8_t> v(rows);
      LAZYETL_RETURN_NOT_OK(read_exact(v.data(), rows));
      return Column::FromBool(std::move(v));
    }
    case DataType::kInt32: {
      std::vector<int32_t> v(rows);
      LAZYETL_RETURN_NOT_OK(read_exact(v.data(), rows * sizeof(int32_t)));
      return Column::FromInt32(std::move(v));
    }
    case DataType::kInt64:
    case DataType::kTimestamp: {
      std::vector<int64_t> v(rows);
      LAZYETL_RETURN_NOT_OK(read_exact(v.data(), rows * sizeof(int64_t)));
      return type == DataType::kInt64 ? Column::FromInt64(std::move(v))
                                      : Column::FromTimestamp(std::move(v));
    }
    case DataType::kDouble: {
      std::vector<double> v(rows);
      LAZYETL_RETURN_NOT_OK(read_exact(v.data(), rows * sizeof(double)));
      return Column::FromDouble(std::move(v));
    }
    case DataType::kString: {
      std::vector<std::string> v;
      v.reserve(rows);
      for (size_t i = 0; i < rows; ++i) {
        uint32_t len = 0;
        LAZYETL_RETURN_NOT_OK(read_exact(&len, sizeof(len)));
        std::string s(len, '\0');
        LAZYETL_RETURN_NOT_OK(read_exact(s.data(), len));
        v.push_back(std::move(s));
      }
      return Column::FromString(std::move(v));
    }
  }
  return Status::Internal("unhandled column type");
}

}  // namespace

Status WriteTable(const std::string& dir, const Table& table) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create " + dir + ": " + ec.message());
  }
  std::ofstream schema(fs::path(dir) / "schema", std::ios::trunc);
  if (!schema.is_open()) {
    return Status::IOError("cannot write schema in " + dir);
  }
  schema << table.num_rows() << "\n";
  for (size_t i = 0; i < table.num_columns(); ++i) {
    schema << table.column_name(i) << "\t"
           << DataTypeToString(table.schema()[i].type) << "\n";
  }
  schema.flush();
  if (!schema.good()) return Status::IOError("failed writing schema in " + dir);

  for (size_t i = 0; i < table.num_columns(); ++i) {
    std::string path = (fs::path(dir) / (std::to_string(i) + ".col")).string();
    LAZYETL_RETURN_NOT_OK(WriteColumnFile(path, table.column(i)));
  }
  return Status::OK();
}

Result<Table> ReadTable(const std::string& dir) {
  std::ifstream schema(fs::path(dir) / "schema");
  if (!schema.is_open()) {
    return Status::NotFound("no schema file in " + dir);
  }
  size_t rows = 0;
  schema >> rows;
  schema.ignore();  // trailing newline
  std::vector<std::string> names;
  std::vector<Column> columns;
  std::string line;
  while (std::getline(schema, line)) {
    if (Trim(line).empty()) continue;
    auto parts = Split(line, '\t');
    if (parts.size() != 2) {
      return Status::CorruptData("bad schema line '" + line + "' in " + dir);
    }
    LAZYETL_ASSIGN_OR_RETURN(DataType type, DataTypeFromString(parts[1]));
    std::string path =
        (fs::path(dir) / (std::to_string(names.size()) + ".col")).string();
    LAZYETL_ASSIGN_OR_RETURN(Column col, ReadColumnFile(path, type, rows));
    names.push_back(parts[0]);
    columns.push_back(std::move(col));
  }
  return Table::FromColumns(std::move(names), std::move(columns));
}

Result<uint64_t> DirectoryBytes(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec) {
    return Status::NotFound(dir + " is not a directory");
  }
  uint64_t total = 0;
  for (auto it = fs::recursive_directory_iterator(dir, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) return Status::IOError("error walking " + dir + ": " + ec.message());
    if (it->is_regular_file(ec) && !ec) {
      total += it->file_size(ec);
    }
  }
  return total;
}

}  // namespace lazyetl::storage
