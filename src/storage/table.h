// Table: an ordered set of named, equal-length columns. Used both for base
// tables registered in the Catalog and for intermediate results flowing
// between engine operators.

#ifndef LAZYETL_STORAGE_TABLE_H_
#define LAZYETL_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/column.h"

namespace lazyetl::storage {

class TableSlice;

struct ColumnSchema {
  std::string name;  // possibly qualified, e.g. "F.station"
  DataType type = DataType::kInt64;
};

using TableSchema = std::vector<ColumnSchema>;

// Zone maps: per-chunk min/max statistics over a column, computed at
// catalog-publish time (Table::RefreshStats) and consulted by the scan
// operators to skip whole morsels whose value range cannot satisfy a
// conjunctive comparison predicate (engine/pruning).
inline constexpr size_t kZoneMapChunkRows = 4096;

struct ZoneMapEntry {
  uint64_t rows = 0;
  uint64_t bytes = 0;  // approximate heap bytes of the chunk's values
  // Bounds in the column's comparison domain; which pair is meaningful
  // depends on the column type. `has_bounds` is false when no orderable
  // value exists in the chunk (an all-NaN double chunk) — no comparison
  // predicate can match such rows.
  int64_t imin = 0, imax = 0;      // bool / int32 / int64 / timestamp
  double dmin = 0.0, dmax = 0.0;   // double
  std::string smin, smax;          // string (encoding-transparent)
  bool has_bounds = false;
};

struct ColumnZoneMap {
  DataType type = DataType::kInt64;
  std::vector<ZoneMapEntry> chunks;  // kZoneMapChunkRows rows per chunk
};

class Table {
 public:
  Table() = default;
  explicit Table(TableSchema schema);

  // Builds a table from parallel (name, column) pairs; all columns must
  // have equal length.
  static Result<Table> FromColumns(std::vector<std::string> names,
                                   std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }

  const TableSchema& schema() const { return schema_; }

  // Index of column `name`; tries exact match first, then an unqualified
  // suffix match ("station" matches "F.station" if unambiguous).
  Result<size_t> ColumnIndex(const std::string& name) const;

  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }
  const std::string& column_name(size_t i) const { return schema_[i].name; }

  Result<const Column*> ColumnByName(const std::string& name) const;

  // Appends one row given values in schema order.
  Status AppendRow(const std::vector<Value>& values);

  // Appends all rows of `other`, which must have an identical schema.
  Status AppendTable(const Table& other);

  // Appends the viewed rows of `slice` (same arity, compatible column
  // types) — the batch-aware append path used when draining a pipeline.
  Status AppendSlice(const TableSlice& slice);

  // Zero-copy view of rows [offset, offset + length); the caller must keep
  // this table alive while the slice is in use.
  TableSlice Slice(size_t offset, size_t length) const;

  // Adds a column to the right side; size must match num_rows() (or the
  // table must be empty of columns).
  Status AddColumn(std::string name, Column column);

  // New table with only the rows in `sel`.
  Table Gather(const SelectionVector& sel) const;

  // New table with only the named columns (in the given order).
  Result<Table> Project(const std::vector<std::string>& names) const;

  Value GetValue(size_t row, size_t col) const { return columns_[col].GetValue(row); }

  uint64_t MemoryBytes() const;

  // --- Statistics & encodings ----------------------------------------------
  // Zone maps are rebuilt explicitly (the catalog does this when a table is
  // published) and invalidated by any row-adding mutator above. Readers of a
  // published (immutable) table may call zone_map() concurrently.

  // Recomputes per-chunk zone maps for every column. Idempotent.
  void RefreshStats();

  // Whether zone maps are present and consistent with the current row count.
  bool has_stats() const {
    return stats_rows_ == num_rows() && zone_maps_.size() == columns_.size();
  }

  // Zone map for column `i`, or nullptr when statistics are stale/absent.
  const ColumnZoneMap* zone_map(size_t i) const {
    return has_stats() ? &zone_maps_[i] : nullptr;
  }

  // Dictionary-encodes every plain string column whose cardinality is at
  // most `max_cardinality`; returns how many columns were encoded.
  size_t DictEncodeStrings(size_t max_cardinality);

  // Pretty-prints up to `max_rows` rows (for examples and the browser).
  std::string ToString(size_t max_rows = 20) const;

 private:
  static constexpr size_t kStatsStale = static_cast<size_t>(-1);

  void InvalidateStats() { stats_rows_ = kStatsStale; }

  TableSchema schema_;
  std::vector<Column> columns_;
  std::vector<ColumnZoneMap> zone_maps_;
  size_t stats_rows_ = kStatsStale;  // row count the zone maps describe
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace lazyetl::storage

#endif  // LAZYETL_STORAGE_TABLE_H_
