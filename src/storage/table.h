// Table: an ordered set of named, equal-length columns. Used both for base
// tables registered in the Catalog and for intermediate results flowing
// between engine operators.

#ifndef LAZYETL_STORAGE_TABLE_H_
#define LAZYETL_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/column.h"

namespace lazyetl::storage {

class TableSlice;

struct ColumnSchema {
  std::string name;  // possibly qualified, e.g. "F.station"
  DataType type = DataType::kInt64;
};

using TableSchema = std::vector<ColumnSchema>;

class Table {
 public:
  Table() = default;
  explicit Table(TableSchema schema);

  // Builds a table from parallel (name, column) pairs; all columns must
  // have equal length.
  static Result<Table> FromColumns(std::vector<std::string> names,
                                   std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }

  const TableSchema& schema() const { return schema_; }

  // Index of column `name`; tries exact match first, then an unqualified
  // suffix match ("station" matches "F.station" if unambiguous).
  Result<size_t> ColumnIndex(const std::string& name) const;

  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }
  const std::string& column_name(size_t i) const { return schema_[i].name; }

  Result<const Column*> ColumnByName(const std::string& name) const;

  // Appends one row given values in schema order.
  Status AppendRow(const std::vector<Value>& values);

  // Appends all rows of `other`, which must have an identical schema.
  Status AppendTable(const Table& other);

  // Appends the viewed rows of `slice` (same arity, compatible column
  // types) — the batch-aware append path used when draining a pipeline.
  Status AppendSlice(const TableSlice& slice);

  // Zero-copy view of rows [offset, offset + length); the caller must keep
  // this table alive while the slice is in use.
  TableSlice Slice(size_t offset, size_t length) const;

  // Adds a column to the right side; size must match num_rows() (or the
  // table must be empty of columns).
  Status AddColumn(std::string name, Column column);

  // New table with only the rows in `sel`.
  Table Gather(const SelectionVector& sel) const;

  // New table with only the named columns (in the given order).
  Result<Table> Project(const std::vector<std::string>& names) const;

  Value GetValue(size_t row, size_t col) const { return columns_[col].GetValue(row); }

  uint64_t MemoryBytes() const;

  // Pretty-prints up to `max_rows` rows (for examples and the browser).
  std::string ToString(size_t max_rows = 20) const;

 private:
  TableSchema schema_;
  std::vector<Column> columns_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace lazyetl::storage

#endif  // LAZYETL_STORAGE_TABLE_H_
