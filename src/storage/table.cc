#include "storage/table.h"

#include <algorithm>
#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"
#include "storage/slice.h"

namespace lazyetl::storage {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.size());
  for (const auto& cs : schema_) columns_.emplace_back(cs.type);
}

Result<Table> Table::FromColumns(std::vector<std::string> names,
                                 std::vector<Column> columns) {
  if (names.size() != columns.size()) {
    return Status::InvalidArgument("names/columns size mismatch");
  }
  Table t;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0 && columns[i].size() != t.columns_[0].size()) {
      return Status::InvalidArgument("column length mismatch at '" +
                                     names[i] + "'");
    }
    t.schema_.push_back({names[i], columns[i].type()});
    t.columns_.push_back(std::move(columns[i]));
  }
  return t;
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name == name) return i;
  }
  // Unqualified suffix match: "station" ~ "F.station".
  size_t found = schema_.size();
  int matches = 0;
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (EndsWith(schema_[i].name, "." + name)) {
      found = i;
      ++matches;
    }
  }
  if (matches == 1) return found;
  if (matches > 1) {
    return Status::BindError("ambiguous column name '" + name + "'");
  }
  return Status::NotFound("no column named '" + name + "'");
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  LAZYETL_ASSIGN_OR_RETURN(size_t i, ColumnIndex(name));
  return &columns_[i];
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch: expected " +
                                   std::to_string(columns_.size()) + ", got " +
                                   std::to_string(values.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    LAZYETL_RETURN_NOT_OK(columns_[i].AppendValue(values[i]).WithContext(
        "column '" + schema_[i].name + "'"));
  }
  InvalidateStats();
  return Status::OK();
}

Status Table::AppendTable(const Table& other) {
  if (other.num_columns() != num_columns()) {
    return Status::InvalidArgument("appending table with different arity");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    LAZYETL_RETURN_NOT_OK(columns_[i].AppendColumn(other.columns_[i]));
  }
  InvalidateStats();
  return Status::OK();
}

Status Table::AppendSlice(const TableSlice& slice) {
  if (slice.num_columns() != num_columns()) {
    return Status::InvalidArgument("appending slice with different arity");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    LAZYETL_RETURN_NOT_OK(
        columns_[i]
            .AppendRange(slice.column(i), slice.offset(), slice.num_rows())
            .WithContext("column '" + schema_[i].name + "'"));
  }
  InvalidateStats();
  return Status::OK();
}

TableSlice Table::Slice(size_t offset, size_t length) const {
  return TableSlice::FromTable(*this, offset, length);
}

Status Table::AddColumn(std::string name, Column column) {
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument("column '" + name + "' has " +
                                   std::to_string(column.size()) +
                                   " rows, table has " +
                                   std::to_string(num_rows()));
  }
  schema_.push_back({std::move(name), column.type()});
  columns_.push_back(std::move(column));
  InvalidateStats();
  return Status::OK();
}

Table Table::Gather(const SelectionVector& sel) const {
  Table out;
  out.schema_ = schema_;
  out.columns_.reserve(columns_.size());
  for (const auto& c : columns_) out.columns_.push_back(c.Gather(sel));
  return out;
}

Result<Table> Table::Project(const std::vector<std::string>& names) const {
  Table out;
  for (const auto& name : names) {
    LAZYETL_ASSIGN_OR_RETURN(size_t i, ColumnIndex(name));
    out.schema_.push_back(schema_[i]);
    out.columns_.push_back(columns_[i]);
  }
  return out;
}

uint64_t Table::MemoryBytes() const {
  uint64_t total = 0;
  for (const auto& c : columns_) total += c.MemoryBytes();
  return total;
}

namespace {

// Bounds over [begin, end) of an int-backed vector (bool / int32 / int64 /
// timestamp), written into the zone-map entry's int64 domain.
template <typename T>
void IntBounds(const std::vector<T>& data, size_t begin, size_t end,
               ZoneMapEntry* e) {
  int64_t lo = static_cast<int64_t>(data[begin]);
  int64_t hi = lo;
  for (size_t r = begin + 1; r < end; ++r) {
    int64_t v = static_cast<int64_t>(data[r]);
    if (v < lo) lo = v;
    if (v > hi) hi = v;
  }
  e->imin = lo;
  e->imax = hi;
  e->has_bounds = true;
}

void ChunkBounds(const Column& col, size_t begin, size_t end,
                 ZoneMapEntry* e) {
  switch (col.type()) {
    case DataType::kBool:
      IntBounds(col.bool_data(), begin, end, e);
      break;
    case DataType::kInt32:
      IntBounds(col.int32_data(), begin, end, e);
      break;
    case DataType::kInt64:
    case DataType::kTimestamp:
      IntBounds(col.int64_data(), begin, end, e);
      break;
    case DataType::kDouble: {
      // NaN never satisfies a comparison, so NaNs are skipped; a chunk of
      // only NaNs gets no bounds and is prunable by every comparison.
      const auto& data = col.double_data();
      bool seen = false;
      double lo = 0.0, hi = 0.0;
      for (size_t r = begin; r < end; ++r) {
        double v = data[r];
        if (v != v) continue;
        if (!seen) {
          lo = hi = v;
          seen = true;
        } else {
          if (v < lo) lo = v;
          if (v > hi) hi = v;
        }
      }
      e->dmin = lo;
      e->dmax = hi;
      e->has_bounds = seen;
      break;
    }
    case DataType::kString: {
      const std::string* lo = &col.StringAt(begin);
      const std::string* hi = lo;
      for (size_t r = begin + 1; r < end; ++r) {
        const std::string& s = col.StringAt(r);
        if (s < *lo) lo = &s;
        if (s > *hi) hi = &s;
      }
      e->smin = *lo;
      e->smax = *hi;
      e->has_bounds = true;
      break;
    }
  }
}

}  // namespace

void Table::RefreshStats() {
  size_t rows = num_rows();
  zone_maps_.assign(columns_.size(), {});
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Column& col = columns_[c];
    ColumnZoneMap& zm = zone_maps_[c];
    zm.type = col.type();
    size_t num_chunks = (rows + kZoneMapChunkRows - 1) / kZoneMapChunkRows;
    zm.chunks.resize(num_chunks);
    for (size_t ch = 0; ch < num_chunks; ++ch) {
      size_t begin = ch * kZoneMapChunkRows;
      size_t end = std::min(begin + kZoneMapChunkRows, rows);
      ZoneMapEntry& e = zm.chunks[ch];
      e.rows = end - begin;
      e.bytes = col.RangeBytes(begin, end - begin);
      ChunkBounds(col, begin, end, &e);
    }
  }
  stats_rows_ = rows;
}

size_t Table::DictEncodeStrings(size_t max_cardinality) {
  size_t encoded = 0;
  for (auto& c : columns_) {
    if (c.type() == DataType::kString && !c.dict_encoded() &&
        c.TryDictEncode(max_cardinality)) {
      ++encoded;
    }
  }
  return encoded;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (i) os << " | ";
    os << schema_[i].name;
  }
  os << "\n";
  size_t n = std::min(num_rows(), max_rows);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c) os << " | ";
      os << columns_[c].GetValue(r).ToString();
    }
    os << "\n";
  }
  if (num_rows() > n) {
    os << "... (" << num_rows() - n << " more rows)\n";
  }
  return os.str();
}

}  // namespace lazyetl::storage
