#include "storage/table.h"

#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"
#include "storage/slice.h"

namespace lazyetl::storage {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.size());
  for (const auto& cs : schema_) columns_.emplace_back(cs.type);
}

Result<Table> Table::FromColumns(std::vector<std::string> names,
                                 std::vector<Column> columns) {
  if (names.size() != columns.size()) {
    return Status::InvalidArgument("names/columns size mismatch");
  }
  Table t;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0 && columns[i].size() != t.columns_[0].size()) {
      return Status::InvalidArgument("column length mismatch at '" +
                                     names[i] + "'");
    }
    t.schema_.push_back({names[i], columns[i].type()});
    t.columns_.push_back(std::move(columns[i]));
  }
  return t;
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name == name) return i;
  }
  // Unqualified suffix match: "station" ~ "F.station".
  size_t found = schema_.size();
  int matches = 0;
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (EndsWith(schema_[i].name, "." + name)) {
      found = i;
      ++matches;
    }
  }
  if (matches == 1) return found;
  if (matches > 1) {
    return Status::BindError("ambiguous column name '" + name + "'");
  }
  return Status::NotFound("no column named '" + name + "'");
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  LAZYETL_ASSIGN_OR_RETURN(size_t i, ColumnIndex(name));
  return &columns_[i];
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch: expected " +
                                   std::to_string(columns_.size()) + ", got " +
                                   std::to_string(values.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    LAZYETL_RETURN_NOT_OK(columns_[i].AppendValue(values[i]).WithContext(
        "column '" + schema_[i].name + "'"));
  }
  return Status::OK();
}

Status Table::AppendTable(const Table& other) {
  if (other.num_columns() != num_columns()) {
    return Status::InvalidArgument("appending table with different arity");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    LAZYETL_RETURN_NOT_OK(columns_[i].AppendColumn(other.columns_[i]));
  }
  return Status::OK();
}

Status Table::AppendSlice(const TableSlice& slice) {
  if (slice.num_columns() != num_columns()) {
    return Status::InvalidArgument("appending slice with different arity");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    LAZYETL_RETURN_NOT_OK(
        columns_[i]
            .AppendRange(slice.column(i), slice.offset(), slice.num_rows())
            .WithContext("column '" + schema_[i].name + "'"));
  }
  return Status::OK();
}

TableSlice Table::Slice(size_t offset, size_t length) const {
  return TableSlice::FromTable(*this, offset, length);
}

Status Table::AddColumn(std::string name, Column column) {
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument("column '" + name + "' has " +
                                   std::to_string(column.size()) +
                                   " rows, table has " +
                                   std::to_string(num_rows()));
  }
  schema_.push_back({std::move(name), column.type()});
  columns_.push_back(std::move(column));
  return Status::OK();
}

Table Table::Gather(const SelectionVector& sel) const {
  Table out;
  out.schema_ = schema_;
  out.columns_.reserve(columns_.size());
  for (const auto& c : columns_) out.columns_.push_back(c.Gather(sel));
  return out;
}

Result<Table> Table::Project(const std::vector<std::string>& names) const {
  Table out;
  for (const auto& name : names) {
    LAZYETL_ASSIGN_OR_RETURN(size_t i, ColumnIndex(name));
    out.schema_.push_back(schema_[i]);
    out.columns_.push_back(columns_[i]);
  }
  return out;
}

uint64_t Table::MemoryBytes() const {
  uint64_t total = 0;
  for (const auto& c : columns_) total += c.MemoryBytes();
  return total;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (i) os << " | ";
    os << schema_[i].name;
  }
  os << "\n";
  size_t n = std::min(num_rows(), max_rows);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c) os << " | ";
      os << columns_[c].GetValue(r).ToString();
    }
    os << "\n";
  }
  if (num_rows() > n) {
    os << "... (" << num_rows() - n << " more rows)\n";
  }
  return os.str();
}

}  // namespace lazyetl::storage
