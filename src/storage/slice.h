// Zero-copy row views over columns and tables.
//
// A TableSlice is the unit of data exchanged by the engine's batch
// operators: a window of at most one batch of rows over a set of named
// columns. The columns are borrowed, never copied — a slice over a base
// table costs O(#columns) regardless of how many rows it covers, so a scan
// feeding a selective filter never materialises the non-qualifying rows.
// Slices do not own storage; whoever hands one out must keep the backing
// columns alive (the engine's Batch pairs a slice with a shared_ptr owner).

#ifndef LAZYETL_STORAGE_SLICE_H_
#define LAZYETL_STORAGE_SLICE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/column.h"
#include "storage/table.h"

namespace lazyetl::storage {

// View of rows [offset, offset + length) of one borrowed column.
class ColumnSlice {
 public:
  ColumnSlice() = default;
  ColumnSlice(const Column* column, size_t offset, size_t length)
      : column_(column), offset_(offset), length_(length) {}

  DataType type() const { return column_->type(); }
  size_t size() const { return length_; }
  size_t offset() const { return offset_; }
  const Column& column() const { return *column_; }

  // Row indices are slice-relative throughout.
  Value GetValue(size_t row) const { return column_->GetValue(offset_ + row); }

  // Copies the viewed rows into an owning column.
  Column Materialize() const { return column_->CopyRange(offset_, length_); }

  // Owning column holding the slice-relative rows picked by `sel`.
  Column Gather(const SelectionVector& sel) const {
    return column_->GatherFrom(sel, offset_);
  }

  // Approximate heap bytes of the viewed rows (not the whole column).
  uint64_t ViewedBytes() const { return column_->RangeBytes(offset_, length_); }

 private:
  const Column* column_ = nullptr;
  size_t offset_ = 0;
  size_t length_ = 0;
};

// View of rows [offset, offset + length) over named, borrowed columns. The
// names may differ from the backing table's (scan renaming, e.g. "station"
// viewed as "F.station") and the column set may be a projection of it.
class TableSlice {
 public:
  TableSlice() = default;

  // Views all columns of `table` under their stored names.
  static TableSlice FromTable(const Table& table, size_t offset,
                              size_t length);

  // Adds a borrowed column (must have the same underlying size as the
  // other columns; the slice window applies to all of them).
  void AddColumn(std::string name, const Column* column);

  void SetRange(size_t offset, size_t length) {
    offset_ = offset;
    length_ = length;
  }

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return length_; }
  size_t offset() const { return offset_; }

  const std::string& column_name(size_t i) const { return names_[i]; }
  const Column& column(size_t i) const { return *columns_[i]; }
  ColumnSlice column_slice(size_t i) const {
    return ColumnSlice(columns_[i], offset_, length_);
  }

  // Same resolution rules as Table::ColumnIndex: exact match first, then
  // an unambiguous unqualified suffix match.
  Result<size_t> ColumnIndex(const std::string& name) const;
  Result<ColumnSlice> ColumnByName(const std::string& name) const;

  // A narrower window onto the same columns: the first `n` viewed rows.
  TableSlice Prefix(size_t n) const;
  // The viewed rows starting at slice-relative row `start`.
  TableSlice Subslice(size_t start, size_t n) const;

  // Copies the viewed rows into an owning table.
  Table Materialize() const;

  // Owning table holding the slice-relative rows picked by `sel`.
  Table Gather(const SelectionVector& sel) const;

  // Approximate heap bytes of the viewed rows.
  uint64_t ViewedBytes() const;

 private:
  std::vector<std::string> names_;
  std::vector<const Column*> columns_;
  size_t offset_ = 0;
  size_t length_ = 0;
};

}  // namespace lazyetl::storage

#endif  // LAZYETL_STORAGE_SLICE_H_
