// Logical data types and runtime values of the column store.

#ifndef LAZYETL_STORAGE_TYPES_H_
#define LAZYETL_STORAGE_TYPES_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/status.h"
#include "common/time.h"

namespace lazyetl::storage {

// Column data types. kTimestamp is physically an int64 (nanoseconds since
// epoch, see common/time.h) but kept distinct so literals in SQL queries
// can be coerced and printed correctly.
enum class DataType : uint8_t {
  kBool,
  kInt32,
  kInt64,
  kDouble,
  kString,
  kTimestamp,
};

const char* DataTypeToString(DataType t);
Result<DataType> DataTypeFromString(const std::string& s);

// True for types whose physical representation is numeric (comparable and
// usable in arithmetic): everything except kString.
bool IsNumeric(DataType t);

// A single runtime value (used for literals, row construction, and result
// inspection; the engine's bulk path works on whole columns).
class Value {
 public:
  Value() : type_(DataType::kInt64), repr_(int64_t{0}) {}

  static Value Bool(bool v) { return Value(DataType::kBool, v); }
  static Value Int32(int32_t v) { return Value(DataType::kInt32, v); }
  static Value Int64(int64_t v) { return Value(DataType::kInt64, v); }
  static Value Double(double v) { return Value(DataType::kDouble, v); }
  static Value String(std::string v) {
    return Value(DataType::kString, std::move(v));
  }
  static Value Timestamp(NanoTime v) {
    return Value(DataType::kTimestamp, int64_t{v});
  }

  DataType type() const { return type_; }

  bool bool_value() const { return std::get<bool>(repr_); }
  int32_t int32_value() const { return std::get<int32_t>(repr_); }
  int64_t int64_value() const { return std::get<int64_t>(repr_); }
  double double_value() const { return std::get<double>(repr_); }
  const std::string& string_value() const { return std::get<std::string>(repr_); }
  NanoTime timestamp_value() const { return std::get<int64_t>(repr_); }

  // Numeric widening view: any numeric value as double (bools as 0/1).
  // Precondition: IsNumeric(type()).
  double AsDouble() const;

  // Any integral/timestamp value as int64. Precondition: integral type.
  int64_t AsInt64() const;

  // Human-readable rendering (timestamps in ISO-8601).
  std::string ToString() const;

  // Total ordering within the same type; numeric types compare after
  // widening. Comparing a string with a numeric is a caller error and
  // returns false/equal-ish deterministically (callers type-check first).
  bool Equals(const Value& other) const;
  bool LessThan(const Value& other) const;

 private:
  template <typename T>
  Value(DataType type, T v) : type_(type), repr_(std::move(v)) {}

  DataType type_;
  std::variant<bool, int32_t, int64_t, double, std::string> repr_;
};

}  // namespace lazyetl::storage

#endif  // LAZYETL_STORAGE_TYPES_H_
