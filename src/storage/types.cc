#include "storage/types.h"

#include <cstdio>

#include "common/string_util.h"

namespace lazyetl::storage {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kBool:
      return "bool";
    case DataType::kInt32:
      return "int32";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kTimestamp:
      return "timestamp";
  }
  return "unknown";
}

Result<DataType> DataTypeFromString(const std::string& s) {
  if (s == "bool") return DataType::kBool;
  if (s == "int32") return DataType::kInt32;
  if (s == "int64") return DataType::kInt64;
  if (s == "double") return DataType::kDouble;
  if (s == "string") return DataType::kString;
  if (s == "timestamp") return DataType::kTimestamp;
  return Status::InvalidArgument("unknown data type name '" + s + "'");
}

bool IsNumeric(DataType t) { return t != DataType::kString; }

double Value::AsDouble() const {
  switch (type_) {
    case DataType::kBool:
      return bool_value() ? 1.0 : 0.0;
    case DataType::kInt32:
      return static_cast<double>(int32_value());
    case DataType::kInt64:
    case DataType::kTimestamp:
      return static_cast<double>(std::get<int64_t>(repr_));
    case DataType::kDouble:
      return double_value();
    case DataType::kString:
      return 0.0;  // callers type-check first
  }
  return 0.0;
}

int64_t Value::AsInt64() const {
  switch (type_) {
    case DataType::kBool:
      return bool_value() ? 1 : 0;
    case DataType::kInt32:
      return int32_value();
    case DataType::kInt64:
    case DataType::kTimestamp:
      return std::get<int64_t>(repr_);
    case DataType::kDouble:
      return static_cast<int64_t>(double_value());
    case DataType::kString:
      return 0;
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kBool:
      return bool_value() ? "true" : "false";
    case DataType::kInt32:
      return std::to_string(int32_value());
    case DataType::kInt64:
      return std::to_string(int64_value());
    case DataType::kDouble: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.6g", double_value());
      return buf;
    }
    case DataType::kString:
      return string_value();
    case DataType::kTimestamp:
      return FormatTimestamp(timestamp_value());
  }
  return "?";
}

bool Value::Equals(const Value& other) const {
  if (type_ == DataType::kString || other.type_ == DataType::kString) {
    if (type_ != DataType::kString || other.type_ != DataType::kString) {
      return false;
    }
    return string_value() == other.string_value();
  }
  return AsDouble() == other.AsDouble();
}

bool Value::LessThan(const Value& other) const {
  if (type_ == DataType::kString && other.type_ == DataType::kString) {
    return string_value() < other.string_value();
  }
  if (type_ == DataType::kString || other.type_ == DataType::kString) {
    return false;
  }
  return AsDouble() < other.AsDouble();
}

}  // namespace lazyetl::storage
