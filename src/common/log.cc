#include "common/log.h"

#include <cstdio>

namespace lazyetl {

const char* LogCategoryToString(LogCategory c) {
  switch (c) {
    case LogCategory::kGeneral:
      return "general";
    case LogCategory::kMetadataLoad:
      return "metadata-load";
    case LogCategory::kEagerLoad:
      return "eager-load";
    case LogCategory::kPlan:
      return "plan";
    case LogCategory::kRewrite:
      return "rewrite";
    case LogCategory::kExtract:
      return "extract";
    case LogCategory::kTransform:
      return "transform";
    case LogCategory::kCache:
      return "cache";
    case LogCategory::kQuery:
      return "query";
    case LogCategory::kRefresh:
      return "refresh";
  }
  return "unknown";
}

OperationLog& OperationLog::Global() {
  static OperationLog& instance = *new OperationLog();
  return instance;
}

void OperationLog::Append(LogCategory category, std::string message) {
  std::lock_guard<std::mutex> lock(mu_);
  LogEntry e;
  e.seq = next_seq_++;
  e.category = category;
  e.message = std::move(message);
  if (echo_) {
    std::fprintf(stderr, "[%s] %s\n", LogCategoryToString(e.category),
                 e.message.c_str());
  }
  entries_.push_back(std::move(e));
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::vector<LogEntry> OperationLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

std::vector<LogEntry> OperationLog::EntriesSince(int64_t after_seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogEntry> out;
  for (const auto& e : entries_) {
    if (e.seq > after_seq) out.push_back(e);
  }
  return out;
}

int64_t OperationLog::LastSeq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

void OperationLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

void LogOp(LogCategory category, std::string message) {
  OperationLog::Global().Append(category, std::move(message));
}

}  // namespace lazyetl
