// MemoryBudget: atomic memory reservations for budget-governed execution.
//
// Pipeline breakers (engine/operators) reserve bytes as they accumulate
// state; a failed reservation is the signal to spill the accumulated state
// to disk instead of growing further. Budgets chain: a per-query budget
// created by the Executor is parented to the process-wide budget, so both
// a per-query cap (WarehouseOptions::memory_budget_bytes) and a global cap
// across concurrent queries can be enforced at once. A limit of 0 means
// unlimited — reservations always succeed and the engine keeps its
// in-memory fast paths.

#ifndef LAZYETL_COMMON_MEMORY_BUDGET_H_
#define LAZYETL_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>

namespace lazyetl::common {

class MemoryBudget {
 public:
  // `limit_bytes` = 0 means unlimited. `parent` (may be null) is charged
  // for every successful reservation as well; a parent failure rolls the
  // local charge back, so `used()` never exceeds a finite limit.
  explicit MemoryBudget(uint64_t limit_bytes = 0,
                        MemoryBudget* parent = nullptr)
      : limit_(limit_bytes), parent_(parent) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  // Attempts to reserve `bytes`; returns false (and charges nothing) when
  // this budget or any ancestor would exceed its finite limit.
  bool TryReserve(uint64_t bytes);

  // Releases a previous successful reservation (here and in ancestors).
  void Release(uint64_t bytes);

  // True when neither this budget nor any ancestor has a finite limit —
  // the engine uses this to keep the unbudgeted fast paths untouched.
  bool unlimited() const {
    return limit_ == 0 && (parent_ == nullptr || parent_->unlimited());
  }

  uint64_t limit() const { return limit_; }
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  // The process-wide root budget (unlimited unless SetLimit is called; the
  // LAZYETL_GLOBAL_MEMORY_BUDGET environment variable, parsed on first
  // use, also sets it). Per-query budgets are parented to it.
  static MemoryBudget& Process();

  // Adjusts the limit (0 = unlimited). Not synchronised with in-flight
  // reservations beyond atomicity of the field itself; intended for
  // configuration at startup and for tests.
  void SetLimit(uint64_t limit_bytes) { limit_ = limit_bytes; }

 private:
  std::atomic<uint64_t> limit_;
  MemoryBudget* parent_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
};

// The per-query budget fallback chain, owned here so the warehouse and the
// standalone executor path cannot diverge: a non-zero configured value wins;
// otherwise the LAZYETL_MEMORY_BUDGET environment variable; otherwise 0
// (unlimited).
uint64_t ResolvePerQueryBudgetBytes(uint64_t configured_bytes);

// RAII charge against a budget: grows while state accumulates, releases on
// destruction (operator Close or query teardown). Never over-charges: a
// failed Grow leaves the held amount unchanged.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  explicit MemoryReservation(MemoryBudget* budget) : budget_(budget) {}
  ~MemoryReservation() { ReleaseAll(); }

  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;
  MemoryReservation(MemoryReservation&& other) noexcept
      : budget_(other.budget_), held_(other.held_) {
    other.budget_ = nullptr;
    other.held_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      ReleaseAll();
      budget_ = other.budget_;
      held_ = other.held_;
      other.budget_ = nullptr;
      other.held_ = 0;
    }
    return *this;
  }

  void Reset(MemoryBudget* budget) {
    ReleaseAll();
    budget_ = budget;
  }

  // Tries to grow the held reservation; false when the budget refuses.
  bool Grow(uint64_t bytes) {
    if (budget_ == nullptr) return true;
    if (!budget_->TryReserve(bytes)) return false;
    held_ += bytes;
    return true;
  }

  void ReleaseAll() {
    if (budget_ != nullptr && held_ > 0) budget_->Release(held_);
    held_ = 0;
  }

  uint64_t held() const { return held_; }

 private:
  MemoryBudget* budget_ = nullptr;
  uint64_t held_ = 0;
};

}  // namespace lazyetl::common

#endif  // LAZYETL_COMMON_MEMORY_BUDGET_H_
