// MemoryPool: one governed pool of bytes behind every cache tier.
//
// The record recycler, the decoded-column cache and the sub-plan cache all
// charge their resident bytes here instead of reserving against the global
// MemoryBudget independently. The pool adds two things over a raw budget:
//
//   * a shared limit across the tiers, so cache residency is bounded as a
//     whole (LAZYETL_CACHE_POOL_BUDGET / WarehouseOptions), and every
//     charge still chains to the process-global MemoryBudget — cache
//     bytes, extraction windows and pipeline-breaker state compete for
//     one cap;
//   * cross-tier LRU yield: each tier registers a yielder callback that
//     evicts its least-recently-used entries on demand. ChargeWithYield
//     asks the *other* tiers to shrink when a charge does not fit, so a
//     hot tier reclaims bytes pinned by a cold one instead of failing.
//
// Locking protocol (deadlock freedom): a yielder may take its own tier's
// lock, and only that lock; callers of ChargeWithYield must therefore hold
// no tier lock (tiers evict their own LRU under lock first, then charge
// outside it). TryCharge/Release never invoke yielders, so they are safe
// from any context, including under a tier lock.
//
// PoolArena is a chunked arena allocator drawing from a pool: allocations
// bump-point into pool-charged chunks and are released wholesale when the
// arena resets or dies — the cheap way for a cache entry to own odd-sized
// side arrays (key materials, seq lists) under the same governed cap.

#ifndef LAZYETL_COMMON_MEMORY_POOL_H_
#define LAZYETL_COMMON_MEMORY_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/memory_budget.h"

namespace lazyetl::common {

// Value snapshot of the pool counters (the live counters are atomics).
struct MemoryPoolStats {
  uint64_t limit_bytes = 0;  // 0 = no pool-local limit
  uint64_t used_bytes = 0;
  uint64_t peak_bytes = 0;
  uint64_t charges = 0;          // successful charges
  uint64_t charge_failures = 0;  // charges refused (after any yield)
  uint64_t yield_requests = 0;   // yielder invocations
  uint64_t yielded_bytes = 0;    // bytes reclaimed by yielders
};

class MemoryPool {
 public:
  // `limit_bytes` = 0 means no pool-local limit (the governor still
  // applies). `governor` (may be null) is charged for every resident byte
  // and refunded on release — normally &MemoryBudget::Process().
  explicit MemoryPool(uint64_t limit_bytes, MemoryBudget* governor = nullptr)
      : limit_(limit_bytes), governor_(governor) {}

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  // Attempts to charge `bytes` against the pool limit and the governor;
  // charges nothing on failure. Never invokes yielders — safe under any
  // tier lock.
  bool TryCharge(uint64_t bytes);

  // Refunds a previous successful charge (pool and governor).
  void Release(uint64_t bytes);

  // A yielder frees up to `want` reclaimable bytes (LRU eviction inside
  // its tier, which calls Release) and returns how many it freed.
  using Yielder = std::function<uint64_t(uint64_t want)>;
  using YielderId = int;

  YielderId RegisterYielder(Yielder yielder);
  void UnregisterYielder(YielderId id);

  // TryCharge, and on failure rotate through the registered yielders
  // (skipping `exclude`, normally the calling tier's own id) asking each
  // for the full deficit, bounded to 4x the requested bytes in total so a
  // single admission cannot wipe every tier. Callers must hold no tier
  // lock (see the locking protocol above).
  bool ChargeWithYield(uint64_t bytes, YielderId exclude = -1);

  // The governor's finite limit (0 = unlimited/no governor) — tiers use it
  // for their global-share bound, exactly as they did when charging the
  // global budget directly.
  uint64_t governed_limit() const {
    return governor_ != nullptr ? governor_->limit() : 0;
  }

  uint64_t limit() const { return limit_; }
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }

  MemoryPoolStats stats() const;

 private:
  const uint64_t limit_;
  MemoryBudget* const governor_;

  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> charges_{0};
  std::atomic<uint64_t> charge_failures_{0};
  std::atomic<uint64_t> yield_requests_{0};
  std::atomic<uint64_t> yielded_bytes_{0};

  mutable std::mutex yielders_mu_;  // guards yielders_ (registry only)
  std::vector<std::pair<YielderId, Yielder>> yielders_;
  YielderId next_yielder_id_ = 0;
};

// Chunked arena allocator over a MemoryPool. Allocate() bump-points into
// the current chunk, growing by pool-charged chunks on demand; individual
// allocations are never freed — Reset() or destruction returns every chunk
// (and its pool charge) at once. Returns nullptr when the pool refuses the
// chunk, so callers can decline admission instead of overshooting the cap.
class PoolArena {
 public:
  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

  explicit PoolArena(MemoryPool* pool,
                     size_t chunk_bytes = kDefaultChunkBytes)
      : pool_(pool), chunk_bytes_(chunk_bytes) {}
  ~PoolArena() { Reset(); }

  PoolArena(const PoolArena&) = delete;
  PoolArena& operator=(const PoolArena&) = delete;

  // Aligned bump allocation; nullptr when the pool refuses a new chunk.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  template <typename T>
  T* AllocateArray(size_t count) {
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  // Frees every chunk and refunds the pool charge.
  void Reset();

  uint64_t allocated_bytes() const { return allocated_; }  // live requests
  uint64_t chunk_bytes_total() const { return charged_; }  // pool charge

 private:
  struct Chunk {
    char* data = nullptr;
    size_t size = 0;
    size_t offset = 0;
  };

  MemoryPool* const pool_;
  const size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  uint64_t allocated_ = 0;
  uint64_t charged_ = 0;
};

}  // namespace lazyetl::common

#endif  // LAZYETL_COMMON_MEMORY_POOL_H_
