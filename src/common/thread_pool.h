// ThreadPool: the process-wide worker pool behind morsel-driven query
// execution and windowed lazy extraction.
//
// Tasks go into per-worker deques; an idle worker pops its own deque LIFO
// (cache-warm) and steals FIFO from a victim when empty (work stealing).
// ParallelFor is the main entry point: the *caller participates* — it
// claims and executes items alongside the pool — so a saturated or
// undersized pool degrades to serial execution instead of deadlocking,
// even when pool tasks themselves call ParallelFor (nested parallelism:
// a query worker driving lazy extraction).

#ifndef LAZYETL_COMMON_THREAD_POOL_H_
#define LAZYETL_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lazyetl::common {

class ThreadPool {
 public:
  // Hard ceiling on pool threads; requests beyond it are clamped. High
  // enough that tests can oversubscribe (query_threads=8 on a 1-core box)
  // and real machines are never capped in practice.
  static constexpr size_t kMaxThreads = 64;

  // The shared pool. Created on first use, sized to hardware_concurrency,
  // grown on demand (never shrunk), and intentionally leaked so tasks in
  // flight at process exit cannot race static destruction.
  static ThreadPool& Shared();

  // `threads` = 0 starts with hardware_concurrency workers.
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task for any worker (round-robin placement, stealable).
  void Submit(std::function<void()> task);

  // Runs fn(i) for every i in [0, items) using the caller plus up to
  // max_workers - 1 pool workers, and returns when every item completed.
  // fn must be safe to call concurrently with distinct arguments.
  void ParallelFor(size_t items, size_t max_workers,
                   const std::function<void(size_t)>& fn);

  // Grows the worker set to at least n threads (clamped to kMaxThreads).
  void EnsureWorkers(size_t n);

  size_t num_threads() const { return spawned_.load(std::memory_order_acquire); }

 private:
  struct Worker {
    std::deque<std::function<void()>> tasks;
    std::mutex mu;
    std::thread thread;
  };

  void WorkerLoop(size_t id);
  // Pops a task from worker `id`'s own deque, else steals one; returns an
  // empty function when nothing is runnable.
  std::function<void()> TakeTask(size_t id);

  std::mutex mu_;                         // guards spawning and sleeping
  std::condition_variable wake_;          // sleeping workers
  std::vector<std::unique_ptr<Worker>> workers_;  // kMaxThreads fixed slots
  std::atomic<size_t> spawned_{0};        // workers_[0..spawned_) are live
  std::atomic<size_t> next_worker_{0};    // round-robin submit target
  std::atomic<ptrdiff_t> pending_{0};     // queued-but-unclaimed tasks
  bool shutdown_ = false;
};

}  // namespace lazyetl::common

#endif  // LAZYETL_COMMON_THREAD_POOL_H_
