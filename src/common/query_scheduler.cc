#include "common/query_scheduler.h"

#include <algorithm>
#include <chrono>

namespace lazyetl::common {
namespace {

// Floor of the footprint-derived per-query budget carve: estimates are
// heuristic, and a carve below one pipeline batch would force pathological
// spilling on queries that misestimated small.
constexpr uint64_t kMinFootprintCarveBytes = 64ULL << 10;

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* QueryPriorityToString(QueryPriority p) {
  switch (p) {
    case QueryPriority::kLow:
      return "low";
    case QueryPriority::kNormal:
      return "normal";
    case QueryPriority::kHigh:
      return "high";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// AdmissionQueue
// ---------------------------------------------------------------------------

uint64_t AdmissionQueue::Enqueue(const AdmissionRequest& req,
                                 int64_t now_nanos) {
  const uint64_t id = next_id_++;
  Waiter w;
  w.req = req;
  w.req.client_weight = std::max<uint32_t>(1, req.client_weight);
  w.effective = req.priority;
  w.enqueue_nanos = now_nanos;
  if (req.queue_timeout_ms > 0) {
    w.deadline_nanos = now_nanos + req.queue_timeout_ms * 1000000LL;
  }
  waiters_.emplace(id, std::move(w));
  ++waiting_count_;

  ClassQueue& cq = class_queue(req.priority);
  auto [it, inserted] = cq.clients.try_emplace(req.client_id);
  if (inserted) cq.rotation.push_back(req.client_id);
  it->second.push_back(id);
  // Last write wins: a tenant's weight is whatever its newest request says.
  cq.weights[req.client_id] = std::max<uint32_t>(1, req.client_weight);
  return id;
}

bool AdmissionQueue::FootprintFits(uint64_t estimate) const {
  if (estimate == 0 || config_.footprint_limit_bytes == 0) return true;
  // A sole in-flight query always fits: an estimate above the whole
  // ceiling must still be runnable (budgets and spilling govern reality).
  if (footprint_in_use_ == 0) return true;
  return footprint_in_use_ + estimate <= config_.footprint_limit_bytes;
}

uint64_t AdmissionQueue::PickAdmissible(std::vector<uint64_t>* skipped) {
  skipped->clear();
  if (config_.max_concurrent > 0 && active_count_ >= config_.max_concurrent) {
    return 0;
  }
  // Strict class order: HIGH before NORMAL before LOW.
  for (int cls = kNumClasses - 1; cls >= 0; --cls) {
    ClassQueue& cq = classes_[cls];
    if (cq.rotation.empty()) continue;
    if (cq.cursor >= cq.rotation.size()) cq.cursor = 0;
    if (cq.credit == 0) cq.credit = cq.weights[cq.rotation[cq.cursor]];
    // Weighted fair share: clients are scanned in rotation order starting
    // at the cursor; within a client, FIFO. With one client this is plain
    // FIFO within the class.
    for (size_t i = 0; i < cq.rotation.size(); ++i) {
      const std::string& client =
          cq.rotation[(cq.cursor + i) % cq.rotation.size()];
      for (uint64_t id : cq.clients[client]) {
        Waiter& w = waiters_.at(id);
        if (FootprintFits(w.req.estimated_bytes)) return id;
        // Footprint-blocked: later, smaller waiters may overtake — but a
        // waiter bypassed to its bound pins the scan until it fits, so
        // large queries are never starved.
        if (w.bypassed >= config_.max_bypasses) {
          skipped->clear();
          return 0;
        }
        skipped->push_back(id);
      }
    }
  }
  return 0;
}

// Aging promotion: a waiter that has sat through N full aging intervals
// is queued N classes above its requested priority (capped at HIGH).
// Scanning waiters_ in ascending id = arrival order makes the upper
// class's queue order deterministic. Promotion is monotone — effective
// priority never goes back down — so under sustained HIGH arrivals a LOW
// waiter eventually competes inside the HIGH rotation and its wait is
// bounded by aging interval + (in-flight queries ahead of it).
void AdmissionQueue::PromoteAged(int64_t now_nanos) {
  if (config_.aging_nanos <= 0) return;
  for (auto& [id, w] : waiters_) {
    if (w.state != WaiterState::kWaiting) continue;
    const int64_t waited = now_nanos - w.enqueue_nanos;
    if (waited < config_.aging_nanos) continue;
    const int64_t levels = waited / config_.aging_nanos;
    const int target_raw = static_cast<int>(w.req.priority) +
                           static_cast<int>(
                               std::min<int64_t>(levels, kNumClasses - 1));
    const QueryPriority target = static_cast<QueryPriority>(
        std::min(target_raw, kNumClasses - 1));
    if (static_cast<int>(target) <= static_cast<int>(w.effective)) continue;
    total_aged_promotions_ += static_cast<uint64_t>(
        static_cast<int>(target) - static_cast<int>(w.effective));
    RemoveFromQueue(id);
    w.effective = target;
    ClassQueue& cq = class_queue(target);
    auto [it, inserted] = cq.clients.try_emplace(w.req.client_id);
    if (inserted) cq.rotation.push_back(w.req.client_id);
    it->second.push_back(id);
    cq.weights[w.req.client_id] =
        std::max<uint32_t>(1, w.req.client_weight);
  }
}

std::vector<uint64_t> AdmissionQueue::Dispatch(int64_t now_nanos) {
  if (now_nanos > 0) PromoteAged(now_nanos);
  std::vector<uint64_t> admitted;
  std::vector<uint64_t> skipped;
  while (true) {
    const uint64_t id = PickAdmissible(&skipped);
    if (id == 0) break;
    Waiter& w = waiters_.at(id);
    ClassQueue& cq = class_queue(w.effective);
    const std::string& client = w.req.client_id;
    const bool rotation_turn = !cq.rotation.empty() &&
                               cq.rotation[cq.cursor] == client &&
                               cq.clients[client].front() == id;

    auto& dq = cq.clients[client];
    dq.erase(std::find(dq.begin(), dq.end(), id));
    if (dq.empty()) {
      DropClient(&cq, client);
    } else if (rotation_turn) {
      // Consume one unit of this client's fair-share credit; an exhausted
      // credit hands the turn to the next client in rotation.
      if (cq.credit > 0) --cq.credit;
      if (cq.credit == 0 && cq.rotation.size() > 1) {
        cq.cursor = (cq.cursor + 1) % cq.rotation.size();
      }
    }

    w.state = WaiterState::kAdmitted;
    --waiting_count_;
    ++active_count_;
    ++total_admitted_;
    footprint_in_use_ += w.req.estimated_bytes;
    if (!skipped.empty()) {
      ++total_bypass_admissions_;
      for (uint64_t over : skipped) ++waiters_.at(over).bypassed;
    }
    admitted.push_back(id);
  }
  return admitted;
}

std::vector<uint64_t> AdmissionQueue::ExpireTimeouts(int64_t now_nanos) {
  std::vector<uint64_t> expired;
  for (auto& [id, w] : waiters_) {
    if (w.state != WaiterState::kWaiting) continue;
    if (w.deadline_nanos < 0 || w.deadline_nanos > now_nanos) continue;
    w.state = WaiterState::kTimedOut;
    RemoveFromQueue(id);
    --waiting_count_;
    ++total_timed_out_;
    expired.push_back(id);
  }
  return expired;
}

bool AdmissionQueue::ExpireNow(uint64_t id) {
  auto it = waiters_.find(id);
  if (it == waiters_.end() || it->second.state != WaiterState::kWaiting) {
    return false;
  }
  it->second.state = WaiterState::kTimedOut;
  RemoveFromQueue(id);
  --waiting_count_;
  ++total_timed_out_;
  return true;
}

bool AdmissionQueue::Cancel(uint64_t id) {
  auto it = waiters_.find(id);
  if (it == waiters_.end() || it->second.state != WaiterState::kWaiting) {
    return false;
  }
  it->second.state = WaiterState::kCancelled;
  RemoveFromQueue(id);
  --waiting_count_;
  return true;
}

void AdmissionQueue::Release(uint64_t id) {
  auto it = waiters_.find(id);
  if (it == waiters_.end() || it->second.state != WaiterState::kAdmitted) {
    return;
  }
  const uint64_t estimate = it->second.req.estimated_bytes;
  footprint_in_use_ -= std::min(footprint_in_use_, estimate);
  --active_count_;
  waiters_.erase(it);
}

void AdmissionQueue::Forget(uint64_t id) {
  auto it = waiters_.find(id);
  if (it == waiters_.end() || it->second.state == WaiterState::kWaiting ||
      it->second.state == WaiterState::kAdmitted) {
    return;
  }
  waiters_.erase(it);
}

int64_t AdmissionQueue::enqueue_nanos(uint64_t id) const {
  auto it = waiters_.find(id);
  return it == waiters_.end() ? 0 : it->second.enqueue_nanos;
}

AdmissionQueue::WaiterState AdmissionQueue::state(uint64_t id) const {
  auto it = waiters_.find(id);
  return it == waiters_.end() ? WaiterState::kUnknown : it->second.state;
}

QueryPriority AdmissionQueue::effective_priority(uint64_t id) const {
  auto it = waiters_.find(id);
  return it == waiters_.end() ? QueryPriority::kNormal : it->second.effective;
}

void AdmissionQueue::RemoveFromQueue(uint64_t id) {
  Waiter& w = waiters_.at(id);
  ClassQueue& cq = class_queue(w.effective);
  auto it = cq.clients.find(w.req.client_id);
  if (it == cq.clients.end()) return;
  auto pos = std::find(it->second.begin(), it->second.end(), id);
  if (pos == it->second.end()) return;
  it->second.erase(pos);
  if (it->second.empty()) DropClient(&cq, w.req.client_id);
}

void AdmissionQueue::DropClient(ClassQueue* cq, const std::string& client) {
  cq->clients.erase(client);
  cq->weights.erase(client);
  auto pos = std::find(cq->rotation.begin(), cq->rotation.end(), client);
  if (pos == cq->rotation.end()) return;
  const size_t idx = static_cast<size_t>(pos - cq->rotation.begin());
  cq->rotation.erase(pos);
  if (idx < cq->cursor) {
    --cq->cursor;
  } else if (idx == cq->cursor) {
    // The cursor's client left; its remaining credit dies with it.
    cq->credit = 0;
  }
  if (cq->cursor >= cq->rotation.size()) cq->cursor = 0;
}

// ---------------------------------------------------------------------------
// QueryScheduler
// ---------------------------------------------------------------------------

QueryScheduler::QueryScheduler(size_t max_concurrent,
                               uint64_t per_query_budget_bytes,
                               MemoryBudget* global_budget,
                               int64_t priority_aging_ms)
    : max_concurrent_(max_concurrent),
      per_query_budget_bytes_(per_query_budget_bytes),
      global_budget_(global_budget),
      queue_(AdmissionQueue::Config{
          max_concurrent,
          global_budget != nullptr ? global_budget->limit() : 0,
          kMaxAdmissionBypasses,
          priority_aging_ms > 0 ? priority_aging_ms * 1000000LL : 0}) {}

int64_t QueryScheduler::NowNanos() const {
  return clock_ ? clock_() : SteadyNowNanos();
}

void QueryScheduler::SetClockForTesting(std::function<int64_t()> clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = std::move(clock);
}

void QueryScheduler::DispatchLocked() {
  // The global limit is reconfigurable at run time; re-read it so the
  // footprint gate always reflects the current cap.
  queue_.set_footprint_limit(global_budget_ != nullptr ? global_budget_->limit()
                                                       : 0);
  if (!queue_.Dispatch(NowNanos()).empty()) admitted_cv_.notify_all();
}

Result<QueryTicket> QueryScheduler::Admit(const AdmissionRequest& req) {
  std::unique_lock<std::mutex> lock(mu_);
  const int64_t enqueued_at = NowNanos();
  const uint64_t id = queue_.Enqueue(req, enqueued_at);
  DispatchLocked();

  const bool has_deadline = req.queue_timeout_ms > 0;
  const auto steady_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(has_deadline ? req.queue_timeout_ms : 0);
  while (queue_.state(id) == AdmissionQueue::WaiterState::kWaiting) {
    if (!has_deadline) {
      admitted_cv_.wait(lock);
      continue;
    }
    if (admitted_cv_.wait_until(lock, steady_deadline) ==
        std::cv_status::timeout) {
      // The (injectable) scheduler clock is authoritative for expiry; the
      // real-time wakeup only says "go check". Under the default clock
      // they agree; with a lagging test clock the waiter is force-expired
      // so a blocking caller can never hang past its real deadline.
      queue_.ExpireTimeouts(NowNanos());
      if (queue_.state(id) == AdmissionQueue::WaiterState::kWaiting) {
        queue_.ExpireNow(id);
      }
    }
  }

  if (queue_.state(id) != AdmissionQueue::WaiterState::kAdmitted) {
    queue_.Forget(id);
    // The departed waiter may have been the footprint-blocked head pinning
    // the queue; whoever it unblocks gets admitted (and woken) now.
    DispatchLocked();
    return Status::DeadlineExceeded(
        "admission queue timeout after " +
        std::to_string(req.queue_timeout_ms) + " ms (priority " +
        std::string(QueryPriorityToString(req.priority)) + ", " +
        std::to_string(queue_.active()) + " active, " +
        std::to_string(queue_.waiting()) + " still waiting)");
  }

  QueryTicket ticket;
  ticket.id_ = id;
  ticket.scheduler_ = this;
  ticket.request_ = req;
  // Monotonic queue-wait accounting, enqueue to admission: covers the slot
  // wait and any time blocked on footprint headroom.
  ticket.queue_wait_seconds_ =
      static_cast<double>(NowNanos() - enqueued_at) / 1e9;

  // Resolve the per-query cap: the configured per-query budget wins; else
  // a finite global budget is carved by the footprint estimate when the
  // query brought one, else as an equal share across the slots.
  uint64_t limit = per_query_budget_bytes_;
  const uint64_t global_limit =
      global_budget_ != nullptr ? global_budget_->limit() : 0;
  if (limit == 0 && global_limit != 0) {
    if (req.estimated_bytes > 0) {
      limit = std::min(std::max(req.estimated_bytes, kMinFootprintCarveBytes),
                       global_limit);
    } else if (max_concurrent_ > 0) {
      limit = std::max<uint64_t>(1, global_limit / max_concurrent_);
    }
  }
  ticket.admitted_budget_bytes_ = limit;
  ticket.budget_ = std::make_unique<MemoryBudget>(limit, global_budget_);
  return ticket;
}

void QueryScheduler::ReleaseTicket(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.Release(id);
  DispatchLocked();
}

uint64_t QueryScheduler::total_admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.total_admitted();
}

uint64_t QueryScheduler::total_timed_out() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.total_timed_out();
}

uint64_t QueryScheduler::total_bypass_admissions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.total_bypass_admissions();
}

uint64_t QueryScheduler::total_aged_promotions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.total_aged_promotions();
}

size_t QueryScheduler::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.active();
}

size_t QueryScheduler::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.waiting();
}

void QueryTicket::Release() {
  if (scheduler_ == nullptr) return;
  // Only the slot (and footprint reservation) is released; the budget
  // stays valid until the ticket is destroyed (it chains to the leaked
  // process-global budget).
  scheduler_->ReleaseTicket(id_);
  scheduler_ = nullptr;
}

}  // namespace lazyetl::common
