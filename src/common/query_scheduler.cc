#include "common/query_scheduler.h"

#include "common/time.h"

namespace lazyetl::common {

QueryScheduler::QueryScheduler(size_t max_concurrent,
                               uint64_t per_query_budget_bytes,
                               MemoryBudget* global_budget)
    : max_concurrent_(max_concurrent),
      per_query_budget_bytes_(per_query_budget_bytes),
      global_budget_(global_budget) {}

QueryTicket QueryScheduler::Admit() {
  Stopwatch wait;
  QueryTicket ticket;
  {
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t my_turn = next_ticket_++;
    // Strict FIFO: wait both for a free slot and for every earlier arrival
    // to have been served, so a long queue cannot be overtaken by a lucky
    // late wakeup.
    slot_free_.wait(lock, [&] {
      return (max_concurrent_ == 0 || active_ < max_concurrent_) &&
             my_turn == next_serving_;
    });
    ++next_serving_;
    ++active_;
    ++total_admitted_;
    ticket.id_ = my_turn;
    ticket.scheduler_ = this;
    // Serving the next arrival may already be possible (slots > 1).
    slot_free_.notify_all();
  }
  ticket.queue_wait_seconds_ = wait.ElapsedSeconds();

  // Resolve the per-query cap: the configured per-query budget, or an
  // equal carve of a finite global budget across the concurrency slots.
  uint64_t limit = per_query_budget_bytes_;
  uint64_t global_limit =
      global_budget_ != nullptr ? global_budget_->limit() : 0;
  if (limit == 0 && global_limit != 0 && max_concurrent_ > 0) {
    limit = std::max<uint64_t>(1, global_limit / max_concurrent_);
  }
  ticket.admitted_budget_bytes_ = limit;
  ticket.budget_ = std::make_unique<MemoryBudget>(limit, global_budget_);
  return ticket;
}

void QueryScheduler::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
  }
  slot_free_.notify_all();
}

uint64_t QueryScheduler::total_admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_admitted_;
}

size_t QueryScheduler::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

size_t QueryScheduler::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<size_t>(next_ticket_ - next_serving_);
}

void QueryTicket::Release() {
  if (scheduler_ == nullptr) return;
  // Only the slot is released; the budget stays valid until the ticket is
  // destroyed (it chains to the leaked process-global budget).
  scheduler_->ReleaseSlot();
  scheduler_ = nullptr;
}

}  // namespace lazyetl::common
