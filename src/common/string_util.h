// Small string helpers shared across modules.

#ifndef LAZYETL_COMMON_STRING_UTIL_H_
#define LAZYETL_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace lazyetl {

// Uppercases ASCII in place-copy fashion.
std::string ToUpperAscii(const std::string& s);

// Lowercases ASCII.
std::string ToLowerAscii(const std::string& s);

// Strips leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);

// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

// Pads/truncates `s` to exactly `width` chars with trailing spaces — the
// convention for fixed-width ASCII fields in SEED headers.
std::string FixedWidth(const std::string& s, size_t width);

// Human-readable byte count, e.g. "1.5 MiB".
std::string HumanBytes(uint64_t bytes);

}  // namespace lazyetl

#endif  // LAZYETL_COMMON_STRING_UTIL_H_
