// Result<T>: value-or-Status, the return type of fallible producers.
//
// Mirrors arrow::Result. A Result is either a T (ok) or an error Status,
// never both and never neither. Use together with the macros in macros.h:
//
//   LAZYETL_ASSIGN_OR_RETURN(auto table, catalog.GetTable("files"));

#ifndef LAZYETL_COMMON_RESULT_H_
#define LAZYETL_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/status.h"

namespace lazyetl {

template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call sites
  // terse (`return 42;` / `return Status::NotFound(...)`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  // Status of this result; Status::OK() if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  // Precondition: ok(). Accessing the value of an error result is a
  // programming error; we keep these unchecked for speed in release builds
  // but the std::variant access will throw in debug scenarios.
  const T& ValueOrDie() const& { return std::get<T>(repr_); }
  T& ValueOrDie() & { return std::get<T>(repr_); }
  T&& ValueOrDie() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::get<T>(std::move(repr_)); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  // Moves the value out, leaving the Result in a valid but unspecified state.
  T MoveValueUnsafe() { return std::get<T>(std::move(repr_)); }

  template <typename U>
  T ValueOr(U&& fallback) const& {
    return ok() ? ValueOrDie() : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace lazyetl

#endif  // LAZYETL_COMMON_RESULT_H_
