// Status: lightweight error propagation for the lazyetl library.
//
// Modeled after the Arrow/RocksDB Status idiom: functions that can fail
// return a Status (or a Result<T>, see result.h) instead of throwing.
// A Status is cheap to copy when OK (no allocation) and carries an error
// code plus a human-readable message otherwise.

#ifndef LAZYETL_COMMON_STATUS_H_
#define LAZYETL_COMMON_STATUS_H_

#include <memory>
#include <sstream>
#include <string>
#include <utility>

namespace lazyetl {

// Error taxonomy for the whole library. Keep the list short and generic;
// module-specific context belongs in the message.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   // caller passed something malformed
  kNotFound = 2,          // file / table / column / cache entry missing
  kIOError = 3,           // filesystem or read/write failure
  kCorruptData = 4,       // malformed mSEED record, bad checksum, etc.
  kNotImplemented = 5,    // feature outside the supported subset
  kParseError = 6,        // SQL text could not be parsed
  kBindError = 7,         // SQL referenced unknown tables/columns
  kExecutionError = 8,    // runtime failure inside the engine
  kResourceExhausted = 9, // cache/memory budget exceeded hard limit
  kAlreadyExists = 10,    // duplicate table/view/file registration
  kInternal = 11,         // invariant violation (a bug in lazyetl)
  kDeadlineExceeded = 12, // admission-queue or operation timeout expired
};

// Returns a stable lowercase name for the code, e.g. "invalid-argument".
const char* StatusCodeToString(StatusCode code);

class Status {
 public:
  // An OK status: the default.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status CorruptData(std::string msg) {
    return Status(StatusCode::kCorruptData, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruptData() const { return code() == StatusCode::kCorruptData; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsBindError() const { return code() == StatusCode::kBindError; }
  bool IsExecutionError() const { return code() == StatusCode::kExecutionError; }
  bool IsResourceExhausted() const { return code() == StatusCode::kResourceExhausted; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const { return code() == StatusCode::kDeadlineExceeded; }

  // "OK" or "<code-name>: <message>".
  std::string ToString() const;

  // Returns a copy of this status with `context` prepended to the message.
  // No-op on OK statuses. Used when re-raising an error up a layer.
  Status WithContext(const std::string& context) const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Null when OK; shared so copies are cheap.
  std::shared_ptr<State> state_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

}  // namespace lazyetl

#endif  // LAZYETL_COMMON_STATUS_H_
