// Operation log.
//
// Demo point (8) of the paper lets the audience "look through the log to see
// what operations are performed and in which order". OperationLog is a
// process-wide, thread-safe, bounded in-memory log that the ETL/engine
// layers append structured entries to; examples and the repo browser dump
// it. It can additionally mirror entries to stderr when verbose mode is on.

#ifndef LAZYETL_COMMON_LOG_H_
#define LAZYETL_COMMON_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace lazyetl {

enum class LogCategory {
  kGeneral,
  kMetadataLoad,   // initial (lazy) metadata loading
  kEagerLoad,      // eager ETL pipeline
  kPlan,           // plan construction / compile-time reorganisation
  kRewrite,        // run-time plan rewriting (lazy extraction injection)
  kExtract,        // file reads / record decodes
  kTransform,      // view expansion / record-level transforms
  kCache,          // recycler admissions / hits / evictions / staleness
  kQuery,          // query lifecycle
  kRefresh,        // repository refresh handling
};

const char* LogCategoryToString(LogCategory c);

struct LogEntry {
  int64_t seq = 0;           // monotonically increasing per process
  LogCategory category = LogCategory::kGeneral;
  std::string message;
};

class OperationLog {
 public:
  // Process-wide singleton. (Static-local reference per Google style for
  // non-trivially-destructible statics.)
  static OperationLog& Global();

  explicit OperationLog(size_t capacity = 4096) : capacity_(capacity) {}

  OperationLog(const OperationLog&) = delete;
  OperationLog& operator=(const OperationLog&) = delete;

  void Append(LogCategory category, std::string message);

  // Snapshot of the retained entries, oldest first.
  std::vector<LogEntry> Entries() const;

  // Entries appended since `after_seq` (exclusive).
  std::vector<LogEntry> EntriesSince(int64_t after_seq) const;

  int64_t LastSeq() const;

  void Clear();

  // When true, entries are also written to stderr as they arrive.
  void set_echo_to_stderr(bool v) { echo_ = v; }
  bool echo_to_stderr() const { return echo_; }

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  int64_t next_seq_ = 1;
  std::deque<LogEntry> entries_;
  bool echo_ = false;
};

// Convenience: append to the global log.
void LogOp(LogCategory category, std::string message);

}  // namespace lazyetl

#endif  // LAZYETL_COMMON_LOG_H_
