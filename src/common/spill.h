// SpillManager: ownership and lifecycle of the temp files behind
// spill-to-disk execution.
//
// Each manager (one per query, owned by the Executor) lazily creates a
// unique directory under the configured spill root and hands out unique
// file paths inside it. The directory is removed wholesale when the
// manager is destroyed — on query success *and* on query error, since the
// Executor holds the manager by value (RAII). Cleanup is crash-safe: the
// directory name embeds the owning pid, and whenever a manager first
// touches the spill root it sweeps sibling directories whose pid no longer
// exists, so files orphaned by a killed process are reclaimed by the next
// spilling query.

#ifndef LAZYETL_COMMON_SPILL_H_
#define LAZYETL_COMMON_SPILL_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/result.h"

namespace lazyetl::common {

class SpillManager {
 public:
  // `root` = "" uses LAZYETL_SPILL_DIR if set, else <system temp>/
  // lazyetl-spill. `ticket_id` is the owning query's scheduler ticket
  // (0 for standalone executors); it is embedded in the directory name so
  // concurrent queries in one process are attributable and can never
  // collide. Nothing touches the filesystem until the first NewFilePath
  // call.
  explicit SpillManager(std::string root = "", uint64_t ticket_id = 0);
  ~SpillManager();

  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  // A fresh unique path inside this manager's directory (created on first
  // use). The file is not opened; callers write it with storage's
  // SpillWriter. Thread-safe.
  Result<std::string> NewFilePath();

  // Deletes one spill file early (e.g. a fully-consumed partition), so
  // peak disk usage tracks live state rather than query lifetime.
  void RemoveFile(const std::string& path);

  // Number of NewFilePath calls served.
  uint64_t files_created() const { return files_created_; }

  // The manager's directory ("" until the first NewFilePath).
  const std::string& dir() const { return dir_; }

 private:
  // Creates dir_ under the root and sweeps stale sibling directories left
  // by dead processes. Called once, under mu_.
  Status EnsureDir();

  std::string root_;
  uint64_t ticket_id_ = 0;
  std::string dir_;
  std::mutex mu_;
  uint64_t next_file_ = 0;
  uint64_t files_created_ = 0;
};

}  // namespace lazyetl::common

#endif  // LAZYETL_COMMON_SPILL_H_
