// SpillManager: ownership and lifecycle of the temp files behind
// spill-to-disk execution.
//
// Each manager (one per query, owned by the Executor) lazily creates a
// unique directory under the configured spill root and hands out unique
// file paths inside it. The directory is removed wholesale when the
// manager is destroyed — on query success *and* on query error, since the
// Executor holds the manager by value (RAII). Cleanup is crash-safe: the
// directory name embeds the owning pid, and whenever a manager first
// touches the spill root it sweeps sibling directories whose pid no longer
// exists, so files orphaned by a killed process are reclaimed by the next
// spilling query.

#ifndef LAZYETL_COMMON_SPILL_H_
#define LAZYETL_COMMON_SPILL_H_

#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"

namespace lazyetl::common {

class SpillManager {
 public:
  // `root` = "" uses LAZYETL_SPILL_DIR if set, else <system temp>/
  // lazyetl-spill. `ticket_id` is the owning query's scheduler ticket
  // (0 for standalone executors); it is embedded in the directory name so
  // concurrent queries in one process are attributable and can never
  // collide. Nothing touches the filesystem until the first NewFilePath
  // call.
  explicit SpillManager(std::string root = "", uint64_t ticket_id = 0);
  ~SpillManager();

  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  // A fresh unique path inside this manager's directory (created on first
  // use). The file is not opened; callers write it with storage's
  // SpillWriter. Thread-safe.
  Result<std::string> NewFilePath();

  // Deletes one spill file early (e.g. a fully-consumed partition), so
  // peak disk usage tracks live state rather than query lifetime.
  void RemoveFile(const std::string& path);

  // Number of NewFilePath calls served.
  uint64_t files_created() const { return files_created_; }

  // The manager's directory ("" until the first NewFilePath).
  const std::string& dir() const { return dir_; }

 private:
  // Creates dir_ under the root and sweeps stale sibling directories left
  // by dead processes. Called once, under mu_.
  Status EnsureDir();

  std::string root_;
  uint64_t ticket_id_ = 0;
  std::string dir_;
  std::mutex mu_;
  uint64_t next_file_ = 0;
  uint64_t files_created_ = 0;
};

// AsyncRunWriter: double-buffered background file writer for spill runs.
//
// Producers hand over encoded chunks with Write(); a drain task on the
// shared ThreadPool streams them to disk, so run writes overlap the
// consume phase instead of blocking it (breakers call Write while holding
// their state mutex). Up to kMaxQueuedChunks chunks may be in flight; a
// producer that outruns the disk *helps drain* instead of sleeping on a
// condition variable, so a saturated pool degrades to synchronous writes
// and can never deadlock (pool tasks themselves spill). Chunk order is
// preserved: only the io-lock holder pops the queue.
//
// Single producer; Write/Finish are not thread-safe against each other.
// write_wait_seconds() reports how long the producer was blocked helping
// or finishing — the non-overlapped remainder of the I/O time.
class AsyncRunWriter {
 public:
  // Whether background spill writes are enabled (LAZYETL_SPILL_ASYNC;
  // unset/"1"/"on" = yes, "0"/"off" = synchronous writes).
  static bool Enabled();

  AsyncRunWriter();
  ~AsyncRunWriter();

  AsyncRunWriter(const AsyncRunWriter&) = delete;
  AsyncRunWriter& operator=(const AsyncRunWriter&) = delete;

  // Opens (truncates) `path` for writing.
  Status Open(const std::string& path);

  // Queues one chunk; schedules a drain task when none is running. Blocks
  // (helping write) only while more than kMaxQueuedChunks are pending.
  Status Write(std::string&& chunk);

  // Drains the queue, flushes and closes the file. Safe to call twice.
  Status Finish();

  double write_wait_seconds() const { return wait_seconds_; }

 private:
  // Two chunks in flight: one being written while the next is queued.
  static constexpr size_t kMaxQueuedChunks = 2;

  // Shared with drain tasks, which may outlive the writer object.
  struct Core {
    std::mutex mu;       // guards queue and flags
    std::mutex io_mu;    // serializes file access; holder pops + writes
    std::deque<std::string> queue;
    std::ofstream out;
    std::string path;
    bool task_scheduled = false;
    bool closed = false;
    bool failed = false;
    std::string error;
  };

  // Writes queued chunks until at most `leave` remain (0 = drain fully).
  static void Drain(const std::shared_ptr<Core>& core, size_t leave);
  static void ScheduleDrain(const std::shared_ptr<Core>& core);

  std::shared_ptr<Core> core_;
  double wait_seconds_ = 0.0;
  bool finished_ = false;
};

}  // namespace lazyetl::common

#endif  // LAZYETL_COMMON_SPILL_H_
