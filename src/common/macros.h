// Error-propagation macros used throughout lazyetl.

#ifndef LAZYETL_COMMON_MACROS_H_
#define LAZYETL_COMMON_MACROS_H_

#include "common/result.h"
#include "common/status.h"

#define LAZYETL_CONCAT_IMPL(x, y) x##y
#define LAZYETL_CONCAT(x, y) LAZYETL_CONCAT_IMPL(x, y)

// Evaluates `expr` (a Status); returns it from the enclosing function if not OK.
#define LAZYETL_RETURN_NOT_OK(expr)                    \
  do {                                                 \
    ::lazyetl::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                         \
  } while (false)

// Evaluates `expr` (a Result<T>); on error returns its Status, otherwise
// assigns the value to `lhs` (which may include a declaration).
#define LAZYETL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)  \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).MoveValueUnsafe()

#define LAZYETL_ASSIGN_OR_RETURN(lhs, expr) \
  LAZYETL_ASSIGN_OR_RETURN_IMPL(LAZYETL_CONCAT(_res_, __LINE__), lhs, expr)

// Internal invariant check that produces Status::Internal instead of
// aborting; used for conditions that indicate a lazyetl bug.
#define LAZYETL_CHECK_INTERNAL(cond, msg)                          \
  do {                                                             \
    if (!(cond)) return ::lazyetl::Status::Internal(msg);          \
  } while (false)

#endif  // LAZYETL_COMMON_MACROS_H_
