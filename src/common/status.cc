#include "common/status.h"

namespace lazyetl {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kIOError:
      return "io-error";
    case StatusCode::kCorruptData:
      return "corrupt-data";
    case StatusCode::kNotImplemented:
      return "not-implemented";
    case StatusCode::kParseError:
      return "parse-error";
    case StatusCode::kBindError:
      return "bind-error";
    case StatusCode::kExecutionError:
      return "execution-error";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

}  // namespace lazyetl
