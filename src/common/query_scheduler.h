// QueryScheduler: admission control for concurrent query serving.
//
// A shared Warehouse may be driven by many Query() callers at once; the
// scheduler bounds how many execute simultaneously and hands each admitted
// query a memory budget carved from the process-global MemoryBudget, so
// pipeline-breaker state, recycler admissions and extraction windows of
// every in-flight query draw from one cap.
//
// Admission is strict FIFO: at most `max_concurrent` tickets are
// outstanding; callers beyond that block in arrival order. A QueryTicket
// is RAII — destroying it (query done, success or error) admits the next
// waiter. `max_concurrent` = 0 disables the bound (every caller is
// admitted immediately), which keeps single-client embedding free of any
// scheduling overhead beyond one uncontended mutex.

#ifndef LAZYETL_COMMON_QUERY_SCHEDULER_H_
#define LAZYETL_COMMON_QUERY_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/memory_budget.h"

namespace lazyetl::common {

class QueryScheduler;

// One admitted query's scheduling state: its ticket id (process-unique,
// also used to label spill directories), how long it waited in the FIFO
// queue, and the per-query MemoryBudget the scheduler carved for it
// (chained to the global budget). Move-only RAII: destruction releases
// the concurrency slot.
class QueryTicket {
 public:
  QueryTicket() = default;
  ~QueryTicket() { Release(); }

  QueryTicket(const QueryTicket&) = delete;
  QueryTicket& operator=(const QueryTicket&) = delete;
  QueryTicket(QueryTicket&& other) noexcept { *this = std::move(other); }
  QueryTicket& operator=(QueryTicket&& other) noexcept {
    if (this != &other) {
      Release();
      scheduler_ = other.scheduler_;
      id_ = other.id_;
      queue_wait_seconds_ = other.queue_wait_seconds_;
      admitted_budget_bytes_ = other.admitted_budget_bytes_;
      budget_ = std::move(other.budget_);
      other.scheduler_ = nullptr;
    }
    return *this;
  }

  // Releases the slot early (before destruction); idempotent.
  void Release();

  uint64_t id() const { return id_; }
  double queue_wait_seconds() const { return queue_wait_seconds_; }
  // The per-query cap the scheduler resolved (0 = unlimited).
  uint64_t admitted_budget_bytes() const { return admitted_budget_bytes_; }
  // The per-query budget, chained to the global budget. Null only on a
  // default-constructed (empty) ticket.
  MemoryBudget* budget() { return budget_.get(); }

 private:
  friend class QueryScheduler;

  QueryScheduler* scheduler_ = nullptr;
  uint64_t id_ = 0;
  double queue_wait_seconds_ = 0;
  uint64_t admitted_budget_bytes_ = 0;
  std::unique_ptr<MemoryBudget> budget_;
};

class QueryScheduler {
 public:
  // `max_concurrent` = 0 means unbounded. `per_query_budget_bytes` is the
  // configured per-query cap (0 = unlimited); when it is unlimited but the
  // global budget is finite and the scheduler is bounded, each admitted
  // query instead gets an equal share (global limit / max_concurrent) so
  // the global cap is never oversubscribed by design. Either way the
  // per-query budget chains to `global_budget`, so global pressure is
  // enforced even for mis-estimated shares.
  QueryScheduler(size_t max_concurrent, uint64_t per_query_budget_bytes,
                 MemoryBudget* global_budget);

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  // Blocks until a concurrency slot is free (strict arrival order) and
  // returns the admission ticket.
  QueryTicket Admit();

  size_t max_concurrent() const { return max_concurrent_; }

  // Observability: total admissions and the number of callers currently
  // inside / queued (racy snapshots, for reporting only).
  uint64_t total_admitted() const;
  size_t active() const;
  size_t waiting() const;

 private:
  friend class QueryTicket;

  void ReleaseSlot();

  const size_t max_concurrent_;
  const uint64_t per_query_budget_bytes_;
  MemoryBudget* const global_budget_;

  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  uint64_t next_ticket_ = 1;   // arrival order (and ticket ids)
  uint64_t next_serving_ = 1;  // the arrival allowed to take the next slot
  size_t active_ = 0;
  uint64_t total_admitted_ = 0;
};

}  // namespace lazyetl::common

#endif  // LAZYETL_COMMON_QUERY_SCHEDULER_H_
