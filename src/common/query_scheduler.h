// QueryScheduler: workload-aware admission control for concurrent query
// serving.
//
// A shared Warehouse may be driven by many Query() callers at once; the
// scheduler bounds how many execute simultaneously and hands each admitted
// query a memory budget carved from the process-global MemoryBudget, so
// pipeline-breaker state, recycler admissions and extraction windows of
// every in-flight query draw from one cap.
//
// Admission is policy-driven:
//
//   priority classes   strict ordering between classes (HIGH before NORMAL
//                      before LOW), FIFO within a class. A cold analytical
//                      scan queued at LOW can never delay an interactive
//                      HIGH lookup by more than the in-flight queries.
//   fair share         within a class, waiters of distinct client ids are
//                      admitted in weighted round-robin rotation over the
//                      clients, so no tenant monopolizes the slots. With a
//                      single client (the default anonymous tenant) the
//                      rotation degenerates to plain FIFO.
//   queue timeouts     a waiter whose queue_timeout_ms expires before
//                      admission fails with Status::DeadlineExceeded; its
//                      departure cannot leak a slot, a budget reservation
//                      or a spill directory (none were created yet).
//   footprint gating   a waiter carrying a non-zero estimated_bytes is
//                      admitted only when the global budget has headroom
//                      for the estimate; smaller queries may be admitted
//                      past a blocked large one (bounded by
//                      kMaxAdmissionBypasses, so the large query is never
//                      starved), and the per-query budget is carved from
//                      the estimate instead of the blind equal share.
//
// With every request at the same priority, no timeouts and no estimates
// (the defaults), admission order is byte-identical to the strict-FIFO
// scheduler this generalises: at most `max_concurrent` tickets are
// outstanding and callers beyond that block in arrival order. A
// QueryTicket is RAII — destroying it (query done, success or error)
// admits the next waiter. `max_concurrent` = 0 disables the slot bound.
//
// The policy itself lives in AdmissionQueue, a synchronous state machine
// with no threads, locks or clock of its own — every transition takes the
// current time as an argument, so tests drive it deterministically with a
// fake clock. QueryScheduler wraps it with the mutex/condvar blocking
// protocol and the budget carve.

#ifndef LAZYETL_COMMON_QUERY_SCHEDULER_H_
#define LAZYETL_COMMON_QUERY_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/memory_budget.h"
#include "common/result.h"

namespace lazyetl::common {

class QueryScheduler;

// Priority classes, ordered: higher value = served first.
enum class QueryPriority : int {
  kLow = 0,     // background / batch analytics
  kNormal = 1,  // the default
  kHigh = 2,    // interactive, latency-sensitive
};

const char* QueryPriorityToString(QueryPriority p);

// Everything a caller can tell the scheduler about a query before it runs.
struct AdmissionRequest {
  QueryPriority priority = QueryPriority::kNormal;
  // Fair-share tenant key; "" = the shared anonymous tenant.
  std::string client_id;
  // Consecutive admissions this client receives per fair-share rotation
  // turn (>= 1); a weight-2 client gets two slots for every one a
  // weight-1 client gets when both have waiters queued.
  uint32_t client_weight = 1;
  // > 0: fail admission with DeadlineExceeded after this many ms in the
  // queue. <= 0: wait forever.
  int64_t queue_timeout_ms = 0;
  // Estimated peak memory footprint of the query (0 = unknown/disabled).
  // Gates admission on global-budget headroom and replaces the equal-share
  // per-query budget carve.
  uint64_t estimated_bytes = 0;
};

// A waiter skipped over this many times by smaller queries stops being
// bypassable: admission stalls until it fits, bounding starvation of large
// queries under footprint-aware admission.
inline constexpr uint32_t kMaxAdmissionBypasses = 16;

// The admission policy core: priority classes, weighted fair-share
// rotation, deadline expiry and footprint gating over a set of waiters.
// Purely synchronous — no locks (callers synchronize) and no clock (time
// is always passed in), so unit tests drive every schedule
// deterministically. Ids are process-unique arrival numbers and double as
// scheduler ticket ids.
class AdmissionQueue {
 public:
  enum class WaiterState {
    kUnknown,   // id never seen or already forgotten
    kWaiting,   // queued, not yet admitted
    kAdmitted,  // holds a slot (and footprint) until Release
    kTimedOut,  // deadline expired before admission
    kCancelled, // withdrawn before admission
  };

  struct Config {
    size_t max_concurrent = 0;        // 0 = unbounded slots
    uint64_t footprint_limit_bytes = 0;  // 0 = no footprint gating
    uint32_t max_bypasses = kMaxAdmissionBypasses;
    // Priority aging: a waiter is promoted one priority class per this
    // many nanoseconds of queue wait (so sustained HIGH arrivals cannot
    // starve LOW indefinitely — the carried-over starvation gap). 0 (the
    // default) disables aging and preserves the strict class order
    // byte-identically.
    int64_t aging_nanos = 0;
  };

  explicit AdmissionQueue(Config config) : config_(config) {}

  // The footprint ceiling can change at run time (the global budget is
  // reconfigurable); takes effect at the next Dispatch.
  void set_footprint_limit(uint64_t bytes) {
    config_.footprint_limit_bytes = bytes;
  }

  // Adds a waiter; returns its id (arrival order). Does not dispatch.
  uint64_t Enqueue(const AdmissionRequest& req, int64_t now_nanos);

  // Admits every currently-admissible waiter in policy order and returns
  // their ids in admission order. Call after anything that could free
  // capacity or add waiters. With aging configured, pass the current time
  // so over-aged waiters are promoted first (now_nanos = 0 skips the
  // aging pass — the legacy call shape).
  std::vector<uint64_t> Dispatch(int64_t now_nanos = 0);

  // Expires every waiting id whose deadline is <= now; returns the newly
  // timed-out ids. An admitted id never expires.
  std::vector<uint64_t> ExpireTimeouts(int64_t now_nanos);

  // Force-expires a waiting id regardless of its deadline (false when it
  // is not waiting). Used by the blocking wrapper when the real-time
  // wakeup fires but an injected test clock lags the deadline.
  bool ExpireNow(uint64_t id);

  // Withdraws a waiting id (false when it is not waiting — e.g. it won
  // the race and was admitted first).
  bool Cancel(uint64_t id);

  // An admitted id finished: releases its slot and footprint and drops
  // its record.
  void Release(uint64_t id);

  // Drops the record of a terminal (timed-out / cancelled) id.
  void Forget(uint64_t id);

  WaiterState state(uint64_t id) const;
  // Enqueue timestamp of a live id (0 when unknown).
  int64_t enqueue_nanos(uint64_t id) const;

  size_t active() const { return active_count_; }
  size_t waiting() const { return waiting_count_; }
  uint64_t total_admitted() const { return total_admitted_; }
  uint64_t total_timed_out() const { return total_timed_out_; }
  // Admissions that overtook a footprint-blocked earlier waiter.
  uint64_t total_bypass_admissions() const { return total_bypass_admissions_; }
  // Aging promotions performed (a waiter climbing two classes counts 2).
  uint64_t total_aged_promotions() const { return total_aged_promotions_; }
  uint64_t footprint_in_use() const { return footprint_in_use_; }
  // The class a waiting id is currently queued in (aging may have raised
  // it above the requested priority); the request priority when unknown
  // or no longer waiting.
  QueryPriority effective_priority(uint64_t id) const;

 private:
  struct Waiter {
    AdmissionRequest req;
    int64_t enqueue_nanos = 0;
    int64_t deadline_nanos = -1;  // -1 = no deadline
    WaiterState state = WaiterState::kWaiting;
    uint32_t bypassed = 0;  // times a later waiter was admitted past this
    // The class this waiter is queued under: starts at req.priority,
    // raised by aging promotions.
    QueryPriority effective = QueryPriority::kNormal;
  };

  // One priority class: per-client FIFO queues plus the weighted
  // round-robin rotation state across clients.
  struct ClassQueue {
    std::map<std::string, std::deque<uint64_t>> clients;
    std::map<std::string, uint32_t> weights;
    std::vector<std::string> rotation;  // first-arrival order of clients
    size_t cursor = 0;    // rotation index currently being served
    uint32_t credit = 0;  // admissions left for rotation[cursor]
  };

  static constexpr int kNumClasses = 3;

  ClassQueue& class_queue(QueryPriority p) {
    return classes_[static_cast<int>(p)];
  }

  // True when `estimate` fits the footprint ceiling right now. A sole
  // query always fits (an estimate above the whole ceiling must still be
  // runnable — budgets and spilling govern its real usage).
  bool FootprintFits(uint64_t estimate) const;

  // Picks the next admissible waiter in policy order (0 = none). Waiters
  // skipped over because their footprint does not fit are returned in
  // `*skipped`; a skipped waiter at its bypass bound stops the scan.
  uint64_t PickAdmissible(std::vector<uint64_t>* skipped);

  // Promotes every waiting waiter whose age crossed one or more aging
  // intervals to the corresponding higher class (capped at kHigh),
  // scanning in arrival order so promoted waiters enter the upper class
  // deterministically. No-op unless aging is configured.
  void PromoteAged(int64_t now_nanos);

  // Removes `id` from its class/client queue (it must be queued).
  void RemoveFromQueue(uint64_t id);

  // Drops `client` from `cq`'s rotation, keeping cursor/credit coherent.
  void DropClient(ClassQueue* cq, const std::string& client);

  Config config_;
  std::map<uint64_t, Waiter> waiters_;
  ClassQueue classes_[kNumClasses];
  uint64_t next_id_ = 1;
  size_t active_count_ = 0;
  size_t waiting_count_ = 0;
  uint64_t footprint_in_use_ = 0;
  uint64_t total_admitted_ = 0;
  uint64_t total_timed_out_ = 0;
  uint64_t total_bypass_admissions_ = 0;
  uint64_t total_aged_promotions_ = 0;
};

// One admitted query's scheduling state: its ticket id (process-unique,
// also used to label spill directories), the request it was admitted
// under, how long it waited in the admission queue (monotonic clock,
// inclusive of time blocked on footprint headroom, not just the slot
// wait), and the per-query MemoryBudget the scheduler carved for it
// (chained to the global budget). Move-only RAII: destruction releases
// the concurrency slot and footprint reservation.
class QueryTicket {
 public:
  QueryTicket() = default;
  ~QueryTicket() { Release(); }

  QueryTicket(const QueryTicket&) = delete;
  QueryTicket& operator=(const QueryTicket&) = delete;
  QueryTicket(QueryTicket&& other) noexcept { *this = std::move(other); }
  QueryTicket& operator=(QueryTicket&& other) noexcept {
    if (this != &other) {
      Release();
      scheduler_ = other.scheduler_;
      id_ = other.id_;
      request_ = std::move(other.request_);
      queue_wait_seconds_ = other.queue_wait_seconds_;
      admitted_budget_bytes_ = other.admitted_budget_bytes_;
      budget_ = std::move(other.budget_);
      other.scheduler_ = nullptr;
    }
    return *this;
  }

  // Releases the slot early (before destruction); idempotent.
  void Release();

  uint64_t id() const { return id_; }
  const AdmissionRequest& request() const { return request_; }
  double queue_wait_seconds() const { return queue_wait_seconds_; }
  // The per-query cap the scheduler resolved (0 = unlimited).
  uint64_t admitted_budget_bytes() const { return admitted_budget_bytes_; }
  // The per-query budget, chained to the global budget. Null only on a
  // default-constructed (empty) ticket.
  MemoryBudget* budget() { return budget_.get(); }

 private:
  friend class QueryScheduler;

  QueryScheduler* scheduler_ = nullptr;
  uint64_t id_ = 0;
  AdmissionRequest request_;
  double queue_wait_seconds_ = 0;
  uint64_t admitted_budget_bytes_ = 0;
  std::unique_ptr<MemoryBudget> budget_;
};

class QueryScheduler {
 public:
  // `max_concurrent` = 0 means unbounded. `per_query_budget_bytes` is the
  // configured per-query cap (0 = unlimited); when it is unlimited but the
  // global budget is finite, each admitted query gets its footprint
  // estimate (clamped to the global limit) if it carries one, else — with
  // a bounded scheduler — an equal share (global limit / max_concurrent)
  // so the global cap is never oversubscribed by design. Either way the
  // per-query budget chains to `global_budget`, so global pressure is
  // enforced even for mis-estimated shares.
  // `priority_aging_ms` > 0 promotes queue waiters one priority class per
  // that many milliseconds of wait (starvation protection); 0 (default)
  // keeps strict class order.
  QueryScheduler(size_t max_concurrent, uint64_t per_query_budget_bytes,
                 MemoryBudget* global_budget, int64_t priority_aging_ms = 0);

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  // Blocks until the policy admits this request and returns the admission
  // ticket, or fails with Status::DeadlineExceeded when
  // `req.queue_timeout_ms` expires first. The default request reproduces
  // strict-FIFO admission.
  Result<QueryTicket> Admit(const AdmissionRequest& req = {});

  size_t max_concurrent() const { return max_concurrent_; }

  // Observability: totals and the number of callers currently inside /
  // queued (racy snapshots, for reporting only).
  uint64_t total_admitted() const;
  uint64_t total_timed_out() const;
  uint64_t total_bypass_admissions() const;
  uint64_t total_aged_promotions() const;
  size_t active() const;
  size_t waiting() const;

  // Test hook: replaces the monotonic clock (nanoseconds) behind queue
  // timestamps, deadline expiry and queue-wait accounting. Not for
  // production use.
  void SetClockForTesting(std::function<int64_t()> clock);

 private:
  friend class QueryTicket;

  void ReleaseTicket(uint64_t id);
  // Re-reads the global limit (it can change at run time) and admits
  // whatever the policy allows; wakes blocked waiters when anything
  // changed. Requires mu_.
  void DispatchLocked();
  int64_t NowNanos() const;

  const size_t max_concurrent_;
  const uint64_t per_query_budget_bytes_;
  MemoryBudget* const global_budget_;

  mutable std::mutex mu_;
  std::condition_variable admitted_cv_;
  AdmissionQueue queue_;
  std::function<int64_t()> clock_;  // null = steady_clock
};

}  // namespace lazyetl::common

#endif  // LAZYETL_COMMON_QUERY_SCHEDULER_H_
