#include "common/memory_budget.h"

#include <cstdlib>

namespace lazyetl::common {

bool MemoryBudget::TryReserve(uint64_t bytes) {
  uint64_t limit = limit_.load(std::memory_order_relaxed);
  if (limit != 0) {
    uint64_t used = used_.load(std::memory_order_relaxed);
    while (true) {
      if (used + bytes > limit) return false;
      if (used_.compare_exchange_weak(used, used + bytes,
                                      std::memory_order_relaxed)) {
        break;
      }
    }
  } else {
    used_.fetch_add(bytes, std::memory_order_relaxed);
  }
  if (parent_ != nullptr && !parent_->TryReserve(bytes)) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return false;
  }
  uint64_t now = used_.load(std::memory_order_relaxed);
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak && !peak_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  return true;
}

void MemoryBudget::Release(uint64_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
  if (parent_ != nullptr) parent_->Release(bytes);
}

uint64_t ResolvePerQueryBudgetBytes(uint64_t configured_bytes) {
  if (configured_bytes != 0) return configured_bytes;
  if (const char* env = std::getenv("LAZYETL_MEMORY_BUDGET")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0;
}

MemoryBudget& MemoryBudget::Process() {
  // Intentionally leaked, like ThreadPool::Shared(): queries in flight at
  // process exit must not race static destruction.
  static MemoryBudget* process = [] {
    uint64_t limit = 0;
    if (const char* env = std::getenv("LAZYETL_GLOBAL_MEMORY_BUDGET")) {
      limit = std::strtoull(env, nullptr, 10);
    }
    return new MemoryBudget(limit);
  }();
  return *process;
}

}  // namespace lazyetl::common
