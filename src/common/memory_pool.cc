#include "common/memory_pool.h"

#include <algorithm>
#include <cstdlib>

namespace lazyetl::common {

bool MemoryPool::TryCharge(uint64_t bytes) {
  if (limit_ != 0) {
    uint64_t used = used_.load(std::memory_order_relaxed);
    while (true) {
      if (used + bytes > limit_) {
        charge_failures_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (used_.compare_exchange_weak(used, used + bytes,
                                      std::memory_order_relaxed)) {
        break;
      }
    }
  } else {
    used_.fetch_add(bytes, std::memory_order_relaxed);
  }
  if (governor_ != nullptr && !governor_->TryReserve(bytes)) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    charge_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  charges_.fetch_add(1, std::memory_order_relaxed);
  uint64_t now = used_.load(std::memory_order_relaxed);
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak && !peak_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  return true;
}

void MemoryPool::Release(uint64_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
  if (governor_ != nullptr) governor_->Release(bytes);
}

MemoryPool::YielderId MemoryPool::RegisterYielder(Yielder yielder) {
  std::lock_guard<std::mutex> lock(yielders_mu_);
  YielderId id = next_yielder_id_++;
  yielders_.emplace_back(id, std::move(yielder));
  return id;
}

void MemoryPool::UnregisterYielder(YielderId id) {
  std::lock_guard<std::mutex> lock(yielders_mu_);
  yielders_.erase(
      std::remove_if(yielders_.begin(), yielders_.end(),
                     [id](const auto& p) { return p.first == id; }),
      yielders_.end());
}

bool MemoryPool::ChargeWithYield(uint64_t bytes, YielderId exclude) {
  if (TryCharge(bytes)) return true;

  // Snapshot the registry so yielders run outside the registry mutex (a
  // yielder takes its tier's lock; holding ours too would order-couple
  // every tier lock through the pool).
  std::vector<std::pair<YielderId, Yielder>> yielders;
  {
    std::lock_guard<std::mutex> lock(yielders_mu_);
    yielders = yielders_;
  }

  uint64_t yielded_total = 0;
  const uint64_t max_yield = bytes * 4;
  for (const auto& [id, yielder] : yielders) {
    if (id == exclude) continue;
    if (yielded_total >= max_yield) break;
    yield_requests_.fetch_add(1, std::memory_order_relaxed);
    uint64_t freed = yielder(bytes);
    yielded_bytes_.fetch_add(freed, std::memory_order_relaxed);
    yielded_total += freed;
    if (TryCharge(bytes)) return true;
  }
  return false;
}

MemoryPoolStats MemoryPool::stats() const {
  MemoryPoolStats s;
  s.limit_bytes = limit_;
  s.used_bytes = used_.load(std::memory_order_relaxed);
  s.peak_bytes = peak_.load(std::memory_order_relaxed);
  s.charges = charges_.load(std::memory_order_relaxed);
  s.charge_failures = charge_failures_.load(std::memory_order_relaxed);
  s.yield_requests = yield_requests_.load(std::memory_order_relaxed);
  s.yielded_bytes = yielded_bytes_.load(std::memory_order_relaxed);
  return s;
}

void* PoolArena::Allocate(size_t bytes, size_t align) {
  if (bytes == 0) bytes = 1;
  // Align the actual address, not the chunk offset: malloc only promises
  // max_align_t alignment for the chunk base.
  const uintptr_t mask = static_cast<uintptr_t>(align) - 1;
  Chunk* chunk = chunks_.empty() ? nullptr : &chunks_.back();
  uintptr_t out = 0;
  if (chunk != nullptr) {
    uintptr_t base = reinterpret_cast<uintptr_t>(chunk->data);
    out = (base + chunk->offset + mask) & ~mask;
    if (out + bytes > base + chunk->size) chunk = nullptr;
  }
  if (chunk == nullptr) {
    size_t size = std::max(bytes + align, chunk_bytes_);
    if (pool_ != nullptr && !pool_->TryCharge(size)) return nullptr;
    Chunk fresh;
    fresh.data = static_cast<char*>(std::malloc(size));
    if (fresh.data == nullptr) {
      if (pool_ != nullptr) pool_->Release(size);
      return nullptr;
    }
    fresh.size = size;
    charged_ += size;
    chunks_.push_back(fresh);
    chunk = &chunks_.back();
    out = (reinterpret_cast<uintptr_t>(chunk->data) + mask) & ~mask;
  }
  chunk->offset =
      (out - reinterpret_cast<uintptr_t>(chunk->data)) + bytes;
  allocated_ += bytes;
  return reinterpret_cast<void*>(out);
}

void PoolArena::Reset() {
  for (Chunk& chunk : chunks_) std::free(chunk.data);
  chunks_.clear();
  if (pool_ != nullptr && charged_ > 0) pool_->Release(charged_);
  charged_ = 0;
  allocated_ = 0;
}

}  // namespace lazyetl::common
