#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace lazyetl::common {

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: worker threads may outlive main() by a few
  // instructions, and static destruction order must not tear the pool
  // down under them.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

ThreadPool::ThreadPool(size_t threads) {
  workers_.resize(kMaxThreads);
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  EnsureWorkers(std::min(threads, kMaxThreads));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_.notify_all();
  size_t n = spawned_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    if (workers_[i]->thread.joinable()) workers_[i]->thread.join();
  }
}

void ThreadPool::EnsureWorkers(size_t n) {
  n = std::min(n, kMaxThreads);
  if (spawned_.load(std::memory_order_acquire) >= n) return;
  std::lock_guard<std::mutex> lock(mu_);
  size_t cur = spawned_.load(std::memory_order_relaxed);
  for (size_t i = cur; i < n; ++i) {
    workers_[i] = std::make_unique<Worker>();
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
    // Release so thieves that observe the new count see the slot filled.
    spawned_.store(i + 1, std::memory_order_release);
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  EnsureWorkers(1);
  size_t n = spawned_.load(std::memory_order_acquire);
  size_t target = next_worker_.fetch_add(1, std::memory_order_relaxed) % n;
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    // Lock so a worker between its failed scan and its wait cannot miss
    // the notification.
    std::lock_guard<std::mutex> lock(mu_);
  }
  wake_.notify_one();
}

std::function<void()> ThreadPool::TakeTask(size_t id) {
  std::function<void()> task;
  Worker& self = *workers_[id];
  {
    std::lock_guard<std::mutex> lock(self.mu);
    if (!self.tasks.empty()) {
      task = std::move(self.tasks.back());
      self.tasks.pop_back();
    }
  }
  if (!task) {
    size_t n = spawned_.load(std::memory_order_acquire);
    for (size_t k = 1; k < n && !task; ++k) {
      Worker& victim = *workers_[(id + k) % n];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
      }
    }
  }
  if (task) pending_.fetch_sub(1, std::memory_order_acq_rel);
  return task;
}

void ThreadPool::WorkerLoop(size_t id) {
  while (true) {
    std::function<void()> task = TakeTask(id);
    if (task) {
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return;
    wake_.wait(lock, [this] {
      return shutdown_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (shutdown_) return;
  }
}

void ThreadPool::ParallelFor(size_t items, size_t max_workers,
                             const std::function<void(size_t)>& fn) {
  if (items == 0) return;
  if (max_workers <= 1 || items == 1) {
    for (size_t i = 0; i < items; ++i) fn(i);
    return;
  }

  struct Shared {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t items = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto shared = std::make_shared<Shared>();
  shared->items = items;
  shared->fn = &fn;  // caller blocks until done == items, so this is safe

  auto work = [shared] {
    while (true) {
      size_t i = shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= shared->items) return;
      (*shared->fn)(i);
      if (shared->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          shared->items) {
        std::lock_guard<std::mutex> lock(shared->mu);
        shared->cv.notify_all();
      }
    }
  };

  size_t helpers = std::min(max_workers - 1, items - 1);
  EnsureWorkers(std::min(helpers, kMaxThreads));
  for (size_t h = 0; h < helpers; ++h) Submit(work);
  work();  // the caller claims items too — no idle wait, no deadlock

  std::unique_lock<std::mutex> lock(shared->mu);
  shared->cv.wait(lock, [&] {
    return shared->done.load(std::memory_order_acquire) == shared->items;
  });
}

}  // namespace lazyetl::common
