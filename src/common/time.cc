#include "common/time.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace lazyetl {
namespace {

// Days from 1970-01-01 to the first day of `year` (proleptic Gregorian).
// Uses the classic days-from-civil algorithm (Howard Hinnant).
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1; // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y_out, int* m_out, int* d_out) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);          // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                       // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                            // [1, 12]
  *y_out = static_cast<int>(y + (m <= 2));
  *m_out = static_cast<int>(m);
  *d_out = static_cast<int>(d);
}

}  // namespace

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

int DayOfYear(int year, int month, int day) {
  int doy = day;
  for (int m = 1; m < month; ++m) doy += DaysInMonth(year, m);
  return doy;
}

Status MonthDayFromDayOfYear(int year, int doy, int* month, int* day) {
  if (doy < 1 || doy > (IsLeapYear(year) ? 366 : 365)) {
    return Status::InvalidArgument("day-of-year out of range: " +
                                   std::to_string(doy));
  }
  int m = 1;
  while (doy > DaysInMonth(year, m)) {
    doy -= DaysInMonth(year, m);
    ++m;
  }
  *month = m;
  *day = doy;
  return Status::OK();
}

Result<NanoTime> CivilToNano(const CivilTime& ct) {
  if (ct.month < 1 || ct.month > 12) {
    return Status::InvalidArgument("month out of range");
  }
  if (ct.day < 1 || ct.day > DaysInMonth(ct.year, ct.month)) {
    return Status::InvalidArgument("day out of range");
  }
  if (ct.hour < 0 || ct.hour > 23 || ct.minute < 0 || ct.minute > 59 ||
      ct.second < 0 || ct.second > 59) {
    return Status::InvalidArgument("time-of-day out of range");
  }
  if (ct.nanos < 0 || ct.nanos >= kNanosPerSecond) {
    return Status::InvalidArgument("nanos out of range");
  }
  int64_t days = DaysFromCivil(ct.year, ct.month, ct.day);
  return days * kNanosPerDay + ct.hour * kNanosPerHour +
         ct.minute * kNanosPerMinute + ct.second * kNanosPerSecond + ct.nanos;
}

CivilTime NanoToCivil(NanoTime t) {
  int64_t days = t / kNanosPerDay;
  int64_t rem = t % kNanosPerDay;
  if (rem < 0) {
    rem += kNanosPerDay;
    --days;
  }
  CivilTime ct;
  CivilFromDays(days, &ct.year, &ct.month, &ct.day);
  ct.hour = static_cast<int>(rem / kNanosPerHour);
  rem %= kNanosPerHour;
  ct.minute = static_cast<int>(rem / kNanosPerMinute);
  rem %= kNanosPerMinute;
  ct.second = static_cast<int>(rem / kNanosPerSecond);
  ct.nanos = rem % kNanosPerSecond;
  return ct;
}

Result<NanoTime> ParseTimestamp(const std::string& text) {
  CivilTime ct;
  const char* p = text.c_str();
  char* end = nullptr;

  auto parse_int = [&](int width, int* out) -> bool {
    int v = 0;
    for (int i = 0; i < width; ++i) {
      if (p[i] < '0' || p[i] > '9') return false;
      v = v * 10 + (p[i] - '0');
    }
    *out = v;
    p += width;
    return true;
  };
  (void)end;

  if (!parse_int(4, &ct.year)) return Status::ParseError("bad year in '" + text + "'");
  if (*p != '-') return Status::ParseError("expected '-' after year in '" + text + "'");
  ++p;
  if (!parse_int(2, &ct.month)) return Status::ParseError("bad month in '" + text + "'");
  if (*p != '-') return Status::ParseError("expected '-' after month in '" + text + "'");
  ++p;
  if (!parse_int(2, &ct.day)) return Status::ParseError("bad day in '" + text + "'");

  if (*p == 'T' || *p == ' ') {
    ++p;
    if (!parse_int(2, &ct.hour)) return Status::ParseError("bad hour in '" + text + "'");
    if (*p != ':') return Status::ParseError("expected ':' in '" + text + "'");
    ++p;
    if (!parse_int(2, &ct.minute)) return Status::ParseError("bad minute in '" + text + "'");
    if (*p != ':') return Status::ParseError("expected ':' in '" + text + "'");
    ++p;
    if (!parse_int(2, &ct.second)) return Status::ParseError("bad second in '" + text + "'");
    if (*p == '.') {
      ++p;
      int64_t frac = 0;
      int digits = 0;
      while (*p >= '0' && *p <= '9' && digits < 9) {
        frac = frac * 10 + (*p - '0');
        ++digits;
        ++p;
      }
      if (digits == 0) return Status::ParseError("empty fraction in '" + text + "'");
      while (digits < 9) {
        frac *= 10;
        ++digits;
      }
      ct.nanos = frac;
    }
  }
  if (*p == 'Z') ++p;
  if (*p != '\0') {
    return Status::ParseError("trailing characters in timestamp '" + text + "'");
  }
  return CivilToNano(ct);
}

std::string FormatTimestamp(NanoTime t) {
  CivilTime ct = NanoToCivil(t);
  char buf[64];
  if (ct.nanos % kNanosPerMilli == 0) {
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03d",
                  ct.year, ct.month, ct.day, ct.hour, ct.minute, ct.second,
                  static_cast<int>(ct.nanos / kNanosPerMilli));
  } else {
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%09d",
                  ct.year, ct.month, ct.day, ct.hour, ct.minute, ct.second,
                  static_cast<int>(ct.nanos));
  }
  return buf;
}

NanoTime NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

Stopwatch::Stopwatch() { Restart(); }

void Stopwatch::Restart() {
  start_nanos_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now().time_since_epoch())
                     .count();
}

int64_t Stopwatch::ElapsedNanos() const {
  int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count();
  return now - start_nanos_;
}

double Stopwatch::ElapsedSeconds() const {
  return static_cast<double>(ElapsedNanos()) / 1e9;
}

}  // namespace lazyetl
