// Big-endian byte packing helpers.
//
// mSEED (SEED 2.4) records are big-endian on the wire (blockette 1000 can
// flag little-endian, but in practice and in this library records are
// written big-endian). These helpers read/write integers at arbitrary byte
// offsets without alignment requirements.

#ifndef LAZYETL_COMMON_BYTE_IO_H_
#define LAZYETL_COMMON_BYTE_IO_H_

#include <cstdint>
#include <cstring>

namespace lazyetl {

inline void WriteBE16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}

inline void WriteBE32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

inline uint16_t ReadBE16(const uint8_t* p) {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}

inline uint32_t ReadBE32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

inline void WriteBE16s(uint8_t* p, int16_t v) {
  WriteBE16(p, static_cast<uint16_t>(v));
}
inline void WriteBE32s(uint8_t* p, int32_t v) {
  WriteBE32(p, static_cast<uint32_t>(v));
}
inline int16_t ReadBE16s(const uint8_t* p) {
  return static_cast<int16_t>(ReadBE16(p));
}
inline int32_t ReadBE32s(const uint8_t* p) {
  return static_cast<int32_t>(ReadBE32(p));
}

}  // namespace lazyetl

#endif  // LAZYETL_COMMON_BYTE_IO_H_
