#include "common/string_util.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace lazyetl {

std::string ToUpperAscii(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLowerAscii(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string FixedWidth(const std::string& s, size_t width) {
  std::string out = s.substr(0, width);
  out.resize(width, ' ');
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

}  // namespace lazyetl
