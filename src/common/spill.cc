#include "common/spill.h"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <filesystem>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace lazyetl::common {

namespace fs = std::filesystem;

namespace {

// Directory-name prefix: "q<pid>-<n>". The pid makes stale directories
// attributable to their (possibly dead) owner.
constexpr char kDirPrefix = 'q';

bool ProcessAlive(long pid) {
#ifndef _WIN32
  if (pid <= 0) return false;
  return kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
#else
  (void)pid;
  return true;  // no cheap liveness probe; never sweep
#endif
}

// Parses "q<pid>-<n>"; returns false for names this library did not write.
bool ParseSpillDirName(const std::string& name, long* pid) {
  if (name.size() < 3 || name[0] != kDirPrefix) return false;
  char* end = nullptr;
  long parsed = std::strtol(name.c_str() + 1, &end, 10);
  if (end == name.c_str() + 1 || end == nullptr || *end != '-') return false;
  *pid = parsed;
  return true;
}

}  // namespace

SpillManager::SpillManager(std::string root, uint64_t ticket_id)
    : root_(std::move(root)), ticket_id_(ticket_id) {
  if (root_.empty()) {
    if (const char* env = std::getenv("LAZYETL_SPILL_DIR")) root_ = env;
  }
  if (root_.empty()) {
    std::error_code ec;
    fs::path tmp = fs::temp_directory_path(ec);
    root_ = (ec ? fs::path("/tmp") : tmp) / "lazyetl-spill";
  }
}

SpillManager::~SpillManager() {
  if (dir_.empty()) return;
  std::error_code ec;
  fs::remove_all(dir_, ec);  // best effort; stale sweep is the backstop
}

Status SpillManager::EnsureDir() {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    return Status::IOError("cannot create spill root " + root_ + ": " +
                           ec.message());
  }

  // Crash-safe cleanup: reclaim directories whose owning process is gone.
  long self = static_cast<long>(getpid());
  for (fs::directory_iterator it(root_, ec), end;
       !ec && it != end; it.increment(ec)) {
    long pid = 0;
    if (!ParseSpillDirName(it->path().filename().string(), &pid)) continue;
    if (pid == self || ProcessAlive(pid)) continue;
    std::error_code rm_ec;
    fs::remove_all(it->path(), rm_ec);
  }

  // The query ticket id plus a process-wide counter keep concurrent
  // queries (several managers in one process) in distinct, attributable
  // directories: "q<pid>-t<ticket>-<n>". The sweep above only parses the
  // pid, so old-format directories from earlier versions are reclaimed
  // too.
  static std::atomic<uint64_t> next_dir{0};
  std::string name = std::string(1, kDirPrefix) + std::to_string(self) +
                     "-t" + std::to_string(ticket_id_) + "-" +
                     std::to_string(next_dir.fetch_add(1));
  fs::path dir = fs::path(root_) / name;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create spill dir " + dir.string() + ": " +
                           ec.message());
  }
  dir_ = dir.string();
  return Status::OK();
}

Result<std::string> SpillManager::NewFilePath() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) {
    Status st = EnsureDir();
    if (!st.ok()) return st;
  }
  ++files_created_;
  return (fs::path(dir_) / (std::to_string(next_file_++) + ".run")).string();
}

void SpillManager::RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);  // best effort; the directory removal is the backstop
}

}  // namespace lazyetl::common
