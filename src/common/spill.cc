#include "common/spill.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/thread_pool.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace lazyetl::common {

namespace fs = std::filesystem;

namespace {

// Directory-name prefix: "q<pid>-<n>". The pid makes stale directories
// attributable to their (possibly dead) owner.
constexpr char kDirPrefix = 'q';

bool ProcessAlive(long pid) {
#ifndef _WIN32
  if (pid <= 0) return false;
  return kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
#else
  (void)pid;
  return true;  // no cheap liveness probe; never sweep
#endif
}

// Parses "q<pid>-<n>"; returns false for names this library did not write.
bool ParseSpillDirName(const std::string& name, long* pid) {
  if (name.size() < 3 || name[0] != kDirPrefix) return false;
  char* end = nullptr;
  long parsed = std::strtol(name.c_str() + 1, &end, 10);
  if (end == name.c_str() + 1 || end == nullptr || *end != '-') return false;
  *pid = parsed;
  return true;
}

}  // namespace

SpillManager::SpillManager(std::string root, uint64_t ticket_id)
    : root_(std::move(root)), ticket_id_(ticket_id) {
  if (root_.empty()) {
    if (const char* env = std::getenv("LAZYETL_SPILL_DIR")) root_ = env;
  }
  if (root_.empty()) {
    std::error_code ec;
    fs::path tmp = fs::temp_directory_path(ec);
    root_ = (ec ? fs::path("/tmp") : tmp) / "lazyetl-spill";
  }
}

SpillManager::~SpillManager() {
  if (dir_.empty()) return;
  std::error_code ec;
  fs::remove_all(dir_, ec);  // best effort; stale sweep is the backstop
}

Status SpillManager::EnsureDir() {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    return Status::IOError("cannot create spill root " + root_ + ": " +
                           ec.message());
  }

  // Crash-safe cleanup: reclaim directories whose owning process is gone.
  long self = static_cast<long>(getpid());
  for (fs::directory_iterator it(root_, ec), end;
       !ec && it != end; it.increment(ec)) {
    long pid = 0;
    if (!ParseSpillDirName(it->path().filename().string(), &pid)) continue;
    if (pid == self || ProcessAlive(pid)) continue;
    std::error_code rm_ec;
    fs::remove_all(it->path(), rm_ec);
  }

  // The query ticket id plus a process-wide counter keep concurrent
  // queries (several managers in one process) in distinct, attributable
  // directories: "q<pid>-t<ticket>-<n>". The sweep above only parses the
  // pid, so old-format directories from earlier versions are reclaimed
  // too.
  static std::atomic<uint64_t> next_dir{0};
  std::string name = std::string(1, kDirPrefix) + std::to_string(self) +
                     "-t" + std::to_string(ticket_id_) + "-" +
                     std::to_string(next_dir.fetch_add(1));
  fs::path dir = fs::path(root_) / name;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create spill dir " + dir.string() + ": " +
                           ec.message());
  }
  dir_ = dir.string();
  return Status::OK();
}

Result<std::string> SpillManager::NewFilePath() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) {
    Status st = EnsureDir();
    if (!st.ok()) return st;
  }
  ++files_created_;
  return (fs::path(dir_) / (std::to_string(next_file_++) + ".run")).string();
}

void SpillManager::RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);  // best effort; the directory removal is the backstop
}

// --- AsyncRunWriter ---------------------------------------------------------

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

bool AsyncRunWriter::Enabled() {
  const char* env = std::getenv("LAZYETL_SPILL_ASYNC");
  if (env == nullptr) return true;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0;
}

AsyncRunWriter::AsyncRunWriter() : core_(std::make_shared<Core>()) {}

AsyncRunWriter::~AsyncRunWriter() {
  Status st = Finish();  // drains pending tasks; Core outlives via shared_ptr
  (void)st;
}

Status AsyncRunWriter::Open(const std::string& path) {
  core_->path = path;
  core_->out.open(path, std::ios::binary | std::ios::trunc);
  if (!core_->out.is_open()) {
    return Status::IOError("cannot open spill file " + path + " for writing");
  }
  return Status::OK();
}

void AsyncRunWriter::Drain(const std::shared_ptr<Core>& core, size_t leave) {
  std::lock_guard<std::mutex> io(core->io_mu);
  while (true) {
    std::string chunk;
    {
      std::lock_guard<std::mutex> lock(core->mu);
      if (core->closed || core->queue.size() <= leave) break;
      chunk = std::move(core->queue.front());
      core->queue.pop_front();
      if (core->failed) continue;  // discard; error already latched
    }
    core->out.write(chunk.data(),
                    static_cast<std::streamsize>(chunk.size()));
    if (!core->out.good()) {
      std::lock_guard<std::mutex> lock(core->mu);
      core->failed = true;
      core->error = "failed writing to " + core->path;
    }
  }
}

void AsyncRunWriter::ScheduleDrain(const std::shared_ptr<Core>& core) {
  ThreadPool::Shared().Submit([core] {
    Drain(core, 0);
    std::lock_guard<std::mutex> lock(core->mu);
    core->task_scheduled = false;
    // A producer may have enqueued between our last pop and here without
    // scheduling (it saw task_scheduled). Re-arm so nothing waits for the
    // next Write/Finish to make progress.
    if (!core->queue.empty() && !core->closed) {
      core->task_scheduled = true;
      ScheduleDrain(core);
    }
  });
}

Status AsyncRunWriter::Write(std::string&& chunk) {
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(core_->mu);
    if (core_->failed) return Status::IOError(core_->error);
    core_->queue.push_back(std::move(chunk));
    depth = core_->queue.size();
    if (!core_->task_scheduled) {
      core_->task_scheduled = true;
      ScheduleDrain(core_);
    }
  }
  if (depth > kMaxQueuedChunks) {
    // Backpressure: the disk is behind — help write instead of queueing
    // unboundedly (or sleeping, which could deadlock a saturated pool).
    auto start = std::chrono::steady_clock::now();
    Drain(core_, kMaxQueuedChunks);
    wait_seconds_ += SecondsSince(start);
  }
  std::lock_guard<std::mutex> lock(core_->mu);
  if (core_->failed) return Status::IOError(core_->error);
  return Status::OK();
}

Status AsyncRunWriter::Finish() {
  if (finished_) {
    std::lock_guard<std::mutex> lock(core_->mu);
    if (core_->failed) return Status::IOError(core_->error);
    return Status::OK();
  }
  finished_ = true;
  auto start = std::chrono::steady_clock::now();
  Drain(core_, 0);  // waits for any in-flight task chunk, then writes the rest
  {
    std::lock_guard<std::mutex> io(core_->io_mu);
    std::lock_guard<std::mutex> lock(core_->mu);
    if (core_->out.is_open()) {
      core_->out.flush();
      if (!core_->out.good() && !core_->failed) {
        core_->failed = true;
        core_->error = "failed flushing spill file " + core_->path;
      }
      core_->out.close();
    }
    core_->closed = true;
    wait_seconds_ += SecondsSince(start);
    if (core_->failed) return Status::IOError(core_->error);
  }
  return Status::OK();
}

}  // namespace lazyetl::common
