// Time utilities: nanosecond-resolution UTC timestamps.
//
// All timestamps inside lazyetl are int64 nanoseconds since the Unix epoch
// (type alias NanoTime). mSEED "BTime" structures (year/day-of-year/...)
// convert to and from NanoTime in mseed/btime.h; SQL literals like
// '2010-01-12T22:15:00.000' parse here.

#ifndef LAZYETL_COMMON_TIME_H_
#define LAZYETL_COMMON_TIME_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace lazyetl {

// Nanoseconds since 1970-01-01T00:00:00 UTC.
using NanoTime = int64_t;

inline constexpr int64_t kNanosPerSecond = 1000000000LL;
inline constexpr int64_t kNanosPerMilli = 1000000LL;
inline constexpr int64_t kNanosPerMicro = 1000LL;
inline constexpr int64_t kNanosPerMinute = 60LL * kNanosPerSecond;
inline constexpr int64_t kNanosPerHour = 3600LL * kNanosPerSecond;
inline constexpr int64_t kNanosPerDay = 86400LL * kNanosPerSecond;

// Broken-down civil UTC time.
struct CivilTime {
  int year = 1970;      // e.g. 2010
  int month = 1;        // 1..12
  int day = 1;          // 1..31
  int hour = 0;         // 0..23
  int minute = 0;       // 0..59
  int second = 0;       // 0..59 (no leap seconds)
  int64_t nanos = 0;    // 0..999'999'999
};

// True iff `year` is a Gregorian leap year.
bool IsLeapYear(int year);

// Number of days in `month` (1..12) of `year`.
int DaysInMonth(int year, int month);

// Day-of-year (1..366) for a civil date.
int DayOfYear(int year, int month, int day);

// Inverse of DayOfYear: fills month/day for a given year and doy (1-based).
Status MonthDayFromDayOfYear(int year, int doy, int* month, int* day);

// Civil <-> NanoTime conversions. CivilToNano validates its input.
Result<NanoTime> CivilToNano(const CivilTime& ct);
CivilTime NanoToCivil(NanoTime t);

// Parses an ISO-8601-ish timestamp as used by the paper's queries:
//   YYYY-MM-DD
//   YYYY-MM-DDTHH:MM:SS
//   YYYY-MM-DDTHH:MM:SS.fff      (1..9 fractional digits)
// A space is accepted in place of 'T'. The timestamp is interpreted as UTC.
Result<NanoTime> ParseTimestamp(const std::string& text);

// Formats as "YYYY-MM-DDTHH:MM:SS.mmm" (millisecond precision, matching the
// paper's query literals) unless sub-millisecond detail is present, in which
// case nanosecond digits are emitted.
std::string FormatTimestamp(NanoTime t);

// Wall-clock "now" in NanoTime. Used for cache admission timestamps.
NanoTime NowNanos();

// Monotonic stopwatch for measuring phases (load, extract, ...).
class Stopwatch {
 public:
  Stopwatch();
  // Seconds since construction or last Restart().
  double ElapsedSeconds() const;
  int64_t ElapsedNanos() const;
  void Restart();

 private:
  int64_t start_nanos_;
};

}  // namespace lazyetl

#endif  // LAZYETL_COMMON_TIME_H_
