#include "core/quality.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "common/macros.h"
#include "common/string_util.h"

namespace lazyetl::core {

namespace {

struct RecordSpan {
  NanoTime start = 0;
  NanoTime end = 0;
  int64_t samples = 0;
};

}  // namespace

Result<std::vector<ChannelQuality>> AssessQuality(Warehouse* warehouse,
                                                  const QualityOptions& opt) {
  // 1. File inventory: identity per file_id.
  std::string files_sql =
      "SELECT file_id, network, station, location, channel, sample_rate "
      "FROM mseed.files";
  std::vector<std::string> filters;
  if (!opt.network.empty()) filters.push_back("network = '" + opt.network + "'");
  if (!opt.station.empty()) filters.push_back("station = '" + opt.station + "'");
  if (!opt.channel.empty()) filters.push_back("channel = '" + opt.channel + "'");
  if (!filters.empty()) files_sql += " WHERE " + Join(filters, " AND ");
  LAZYETL_ASSIGN_OR_RETURN(QueryResult files, warehouse->Query(files_sql));

  struct FileInfo {
    std::string key;     // NET.STA.LOC.CHAN
    double sample_rate;
  };
  std::map<int64_t, FileInfo> file_info;
  std::map<std::string, ChannelQuality> channels;
  for (size_t row = 0; row < files.table.num_rows(); ++row) {
    int64_t fid = files.table.GetValue(row, 0).int64_value();
    ChannelQuality q;
    q.network = files.table.GetValue(row, 1).string_value();
    q.station = files.table.GetValue(row, 2).string_value();
    q.location = files.table.GetValue(row, 3).string_value();
    q.channel = files.table.GetValue(row, 4).string_value();
    q.sample_rate = files.table.GetValue(row, 5).double_value();
    std::string key =
        q.network + "." + q.station + "." + q.location + "." + q.channel;
    file_info[fid] = {key, q.sample_rate};
    auto [it, inserted] = channels.emplace(key, std::move(q));
    it->second.num_files += 1;
  }

  // 2. Record extents (metadata only — never touches waveforms).
  //    A dataview query would force extraction; the records base table is
  //    exactly the R metadata.
  LAZYETL_ASSIGN_OR_RETURN(
      QueryResult records,
      warehouse->Query(
          "SELECT file_id, start_time, end_time, num_samples "
          "FROM mseed.records ORDER BY start_time, file_id"));

  std::map<std::string, std::vector<RecordSpan>> spans;
  for (size_t row = 0; row < records.table.num_rows(); ++row) {
    int64_t fid = records.table.GetValue(row, 0).int64_value();
    auto info = file_info.find(fid);
    if (info == file_info.end()) continue;  // filtered out
    RecordSpan span;
    span.start = records.table.GetValue(row, 1).timestamp_value();
    span.end = records.table.GetValue(row, 2).timestamp_value();
    span.samples = records.table.GetValue(row, 3).int64_value();
    spans[info->second.key].push_back(span);
  }

  // 3. Continuity per channel.
  std::vector<ChannelQuality> out;
  for (auto& [key, q] : channels) {
    auto& recs = spans[key];  // already time-ordered from the query
    q.num_records = recs.size();
    if (recs.empty()) {
      q.completeness = 0.0;
      out.push_back(q);
      continue;
    }
    const double rate = q.sample_rate > 0 ? q.sample_rate : 1.0;
    const auto interval = static_cast<NanoTime>(std::llround(1e9 / rate));
    q.start_time = recs.front().start;
    q.end_time = recs.front().end;
    q.total_samples = static_cast<uint64_t>(recs.front().samples);
    for (size_t i = 1; i < recs.size(); ++i) {
      q.total_samples += static_cast<uint64_t>(recs[i].samples);
      q.end_time = std::max(q.end_time, recs[i].end);
      // Expected next start: one sample interval after the previous end
      // (end_time is the time of the last sample).
      NanoTime expected = recs[i - 1].end + interval;
      NanoTime delta = recs[i].start - expected;
      if (delta > interval / 2) {
        ++q.gap_count;
        q.gap_total += delta;
      } else if (recs[i].start <= recs[i - 1].end) {
        ++q.overlap_count;
        q.overlap_total += recs[i - 1].end - recs[i].start + interval;
      }
    }
    NanoTime span_ns = q.end_time - q.start_time;
    double expected_samples =
        span_ns > 0 ? static_cast<double>(span_ns) / 1e9 * rate + 1.0
                    : static_cast<double>(q.total_samples);
    q.completeness =
        expected_samples > 0
            ? std::min(1.0, static_cast<double>(q.total_samples) /
                                expected_samples)
            : 1.0;
    out.push_back(q);
  }
  return out;
}

std::string QualityToString(const ChannelQuality& q) {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "%s.%s.%s.%s: %zu files, %zu records, %llu samples, %zu gaps "
      "(%.2f s), %zu overlaps (%.2f s), completeness %.1f%%",
      q.network.c_str(), q.station.c_str(), q.location.c_str(),
      q.channel.c_str(), q.num_files, q.num_records,
      static_cast<unsigned long long>(q.total_samples), q.gap_count,
      static_cast<double>(q.gap_total) / 1e9, q.overlap_count,
      static_cast<double>(q.overlap_total) / 1e9, q.completeness * 100.0);
  return buf;
}

}  // namespace lazyetl::core
