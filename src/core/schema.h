// The warehouse schema for mSEED repositories, as proposed in the BIRTE'12
// paper and used by the demo: two metadata tables F (per file) and R (per
// record), one actual-data table D (one row per sample), and the
// non-materialised view mseed.dataview joining all three.

#ifndef LAZYETL_CORE_SCHEMA_H_
#define LAZYETL_CORE_SCHEMA_H_

#include <string>

#include "storage/catalog.h"
#include "storage/table.h"

namespace lazyetl::core {

inline constexpr const char* kFilesTable = "mseed.files";
inline constexpr const char* kRecordsTable = "mseed.records";
inline constexpr const char* kDataTable = "mseed.data";
inline constexpr const char* kDataView = "mseed.dataview";
// Station inventory from dataless SEED control headers (when present).
inline constexpr const char* kStationsTable = "mseed.stations";
inline constexpr const char* kChannelsTable = "mseed.channels";

// Empty tables with the warehouse schema.
storage::TablePtr MakeFilesTable();
storage::TablePtr MakeRecordsTable();
storage::TablePtr MakeDataTable();
storage::TablePtr MakeStationsTable();
storage::TablePtr MakeChannelsTable();

// The dataview definition; `lazy` marks mseed.data as lazily extracted.
storage::ViewDefinition MakeDataView(bool lazy);

// Registers the three tables plus the view into `catalog`.
Status RegisterSchema(storage::Catalog* catalog, bool lazy);

}  // namespace lazyetl::core

#endif  // LAZYETL_CORE_SCHEMA_H_
