// Warehouse: the public API of the Lazy ETL system.
//
// A Warehouse wraps the column-store catalog, the SQL front-end, the query
// engine, and the ETL machinery. It can be bootstrapped from an mSEED
// repository three ways (§3, §4 demo point 1):
//
//   kEager            traditional ETL: extract, transform and load every
//                     sample before the first query.
//   kLazy             the paper's approach: initial loading reads only the
//                     file and record control headers; actual data is
//                     extracted/transformed/loaded on demand per query.
//   kLazyFilenameOnly even lazier: initial loading parses only the SDS
//                     filenames ("the file does not even need to be read");
//                     record metadata is hydrated at query time for
//                     candidate files.
//
// Concurrency: one Warehouse instance safely serves many concurrent
// Query() callers. Admission is controlled by a policy-driven
// QueryScheduler (`max_concurrent_queries`; priority classes, weighted
// per-client fair share, queue timeouts and footprint-aware admission via
// QueryOptions), each admitted query gets a MemoryBudget
// carved from the process-global cap, and all shared mutable state — the
// record/result recyclers, the catalog tables, the file registry with its
// hydration/lazy-refresh machinery — is synchronized internally:
// catalog tables are copy-on-write published (executing queries scan
// immutable snapshots), the registry sits behind a reader/writer lock, and
// the caches are lock-protected with atomic counters. A query's results
// under concurrent load are byte-identical to running it alone; cache
// evictions and scheduler queuing only ever change timings.
//
// Usage:
//   WarehouseOptions options;
//   options.strategy = LoadStrategy::kLazy;
//   auto wh = *Warehouse::Open(options);
//   wh->AttachRepository("/data/orfeus-pond");
//   auto result = wh->Query("SELECT AVG(D.sample_value) FROM mseed.dataview "
//                           "WHERE F.station = 'ISK' ...");
//   std::cout << result->table.ToString() << result->report.ToString();

#ifndef LAZYETL_CORE_WAREHOUSE_H_
#define LAZYETL_CORE_WAREHOUSE_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/memory_pool.h"
#include "common/query_scheduler.h"
#include "common/result.h"
#include "common/status.h"
#include "common/time.h"
#include "engine/column_cache.h"
#include "engine/executor.h"
#include "engine/plan_cache.h"
#include "engine/recycler.h"
#include "engine/report.h"
#include "mseed/reader.h"
#include "storage/catalog.h"

namespace lazyetl::core {

enum class LoadStrategy {
  kEager,
  kLazy,
  kLazyFilenameOnly,
};

const char* LoadStrategyToString(LoadStrategy s);

struct WarehouseOptions {
  LoadStrategy strategy = LoadStrategy::kLazy;
  // Recycler budget for cached record intermediates (§3.3: "not larger
  // than the size of system's main memory"; default 256 MiB).
  uint64_t cache_budget_bytes = 256ULL << 20;
  // Whole-query result recycling (end results of views, §3.3).
  bool enable_result_cache = true;
  // Record/file pruning inferred from D.sample_time predicates. On by
  // default; off reproduces a system without record-granularity metadata
  // exploitation (the E10 ablation).
  bool enable_metadata_pruning = true;
  // When non-empty and the strategy is eager, the loaded tables are also
  // persisted here (for the storage-footprint experiment and reopening).
  std::string persist_dir;
  // Worker threads for lazy extraction. Files are independent units of
  // work (open + decode + transform), so multi-file fetches parallelise
  // cleanly on the shared common::ThreadPool; cache admission and table
  // assembly stay single-threaded. 1 = fully serial. The streaming fetch
  // extracts in windows of this many files, bounding peak
  // extracted-but-unconsumed data.
  unsigned extraction_threads = 1;
  // Worker threads for query execution (morsel-driven parallelism in the
  // batch pipeline). 0 = hardware_concurrency; 1 = the serial path.
  size_t query_threads = 0;
  // Admission control: at most this many Query() calls execute
  // concurrently; further callers wait per the admission policy (strict
  // priority classes, weighted fair share across client ids, FIFO within
  // a class+client — plain FIFO when every query uses the defaults).
  // 0 = unbounded (the LAZYETL_MAX_CONCURRENT_QUERIES environment
  // variable supplies a default when unset). With a bounded scheduler and
  // a finite global budget, each admitted query's memory budget is carved
  // as an equal share of the global cap (or from its footprint estimate,
  // see footprint_aware_admission).
  size_t max_concurrent_queries = 0;
  // Default admission-queue timeout applied to queries that do not set
  // QueryOptions::queue_timeout_ms themselves. 0 = no timeout (the
  // LAZYETL_QUEUE_TIMEOUT_MS environment variable supplies a default when
  // unset). A query that times out before admission fails with
  // Status::DeadlineExceeded without having touched any state — no slot,
  // budget reservation or spill directory is leaked.
  int64_t queue_timeout_ms = 0;
  // Footprint-aware admission: estimate each query's peak memory need
  // from its plan (pipeline-breaker inputs + cold-extraction file bytes
  // from registry metadata), gate admission on global-budget headroom,
  // and carve its per-query budget from the estimate instead of the blind
  // equal share. Small queries may be admitted past a footprint-blocked
  // large one (bounded bypassing — common::kMaxAdmissionBypasses — so the
  // large query is never starved). Off by default (admission is then
  // byte-identical to strict FIFO); the LAZYETL_FOOTPRINT_ADMISSION
  // environment variable supplies a default when unset.
  bool footprint_aware_admission = false;
  // Memory governance: per-query cap on resident pipeline-breaker state
  // (Sort, Aggregate, Distinct, HashJoin build). 0 = unlimited; the
  // LAZYETL_MEMORY_BUDGET environment variable supplies a default when
  // unset. With a finite budget, breakers spill to disk and stream the
  // state back — results are byte-identical to the unbudgeted run.
  // Recycler admissions and extraction windows are charged to the same
  // budget chain, so lazy ETL and query execution share one cap.
  uint64_t memory_budget_bytes = 0;
  // Directory for spill files ("" = LAZYETL_SPILL_DIR, else system temp).
  std::string spill_dir;
  // Multi-tier caching. Tri-state knobs: -1 = resolve from the
  // environment (LAZYETL_COLUMN_CACHE / LAZYETL_PLAN_CACHE, values
  // 1/true/on/yes enable), 0 = off, 1 = on. Both tiers default OFF; off
  // reproduces the two-tier (record + whole-result) behavior
  // byte-identically.
  //
  // The decoded-column tier caches assembled, publish-encoded extraction
  // outputs per (file, column set, seq window), shared zero-copy across
  // queries; the sub-plan tier caches pipeline-breaker outputs keyed by a
  // canonical plan-subtree fingerprint and substitutes them before
  // execution. Caches only ever change timings, never results.
  int enable_column_cache = -1;
  int enable_plan_cache = -1;
  // Per-tier resident-byte shares (0 = resolve from LAZYETL_COLUMN_CACHE_
  // BUDGET / LAZYETL_PLAN_CACHE_BUDGET, default 64 MiB each; suffixes
  // k/m/g accepted).
  uint64_t column_cache_budget_bytes = 0;
  uint64_t plan_cache_budget_bytes = 0;
  // Shared cache-pool cap across every tier including the record
  // recycler (0 = resolve from LAZYETL_CACHE_POOL_BUDGET, default
  // unlimited — each tier then only honors its own share). The pool is
  // chained to the process-global MemoryBudget either way.
  uint64_t cache_pool_budget_bytes = 0;
  // Rows per engine pipeline batch. Intermediates of pipelined plans are
  // bounded by O(batch_rows × pipeline depth).
  size_t batch_rows = engine::kDefaultBatchRows;
  // Streaming cursors (OpenCursor): result batches buffered ahead of the
  // consumer before morsel dispatch suspends (the backpressure window —
  // a slow client stalls the drive loop instead of buffering the result).
  // 0 = resolve from LAZYETL_CURSOR_WINDOW_BATCHES, default 4.
  size_t cursor_window_batches = 0;
  // Priority aging for the admission queue: a waiter stuck behind
  // higher-priority arrivals is promoted one priority class per this many
  // milliseconds of queue wait, so sustained HIGH load cannot starve LOW
  // indefinitely. 0 = resolve from LAZYETL_PRIORITY_AGING_MS; < 0 = off.
  // Off (the default) preserves the strict class order byte-identically.
  int64_t priority_aging_ms = 0;
  // Mirror the operation log to stderr.
  bool echo_log = false;
};

struct LoadStats {
  size_t files = 0;
  size_t records = 0;
  uint64_t samples_loaded = 0;   // 0 for lazy strategies
  uint64_t bytes_read = 0;       // actual bytes read from the repository
  double seconds = 0;
};

struct RefreshStats {
  size_t new_files = 0;
  size_t modified_files = 0;
  size_t deleted_files = 0;
  uint64_t bytes_read = 0;
  double seconds = 0;
};

struct QueryResult {
  storage::Table table;
  engine::ExecutionReport report;
};

// Per-query scheduling knobs for workload-aware admission. The defaults
// reproduce strict-FIFO admission exactly.
struct QueryOptions {
  // Priority class: strict ordering between classes (HIGH admitted before
  // NORMAL before LOW), FIFO within a class+client.
  common::QueryPriority priority = common::QueryPriority::kNormal;
  // Fair-share tenant key: within a priority class, waiters of distinct
  // client ids are admitted in weighted round-robin rotation so no tenant
  // monopolizes the slots. "" = the shared anonymous tenant.
  std::string client_id;
  // Admissions this client receives per fair-share rotation turn (>= 1).
  uint32_t client_weight = 1;
  // Admission-queue timeout: > 0 = fail with Status::DeadlineExceeded
  // after this many ms in the queue; 0 = use the warehouse default
  // (WarehouseOptions::queue_timeout_ms / LAZYETL_QUEUE_TIMEOUT_MS);
  // < 0 = never time out, overriding the default.
  int64_t queue_timeout_ms = 0;
};

// A streaming query handle: the admitted execution pipeline stays
// suspended between Next() calls, yielding the result in batch-sized
// tables instead of materializing it whole. Produced by
// Warehouse::OpenCursor; the warehouse must outlive the cursor.
//
// Lifecycle: the cursor holds its admission ticket (scheduler slot), the
// budget carved for it, and its spill directory from OpenCursor until
// Close() — which is idempotent, implied by the destructor, and safe at
// any point mid-stream (client disconnect, LIMIT satisfied): the drive
// loop is cancelled and joined, and ticket/budget/spill state is
// released exactly once. Single consumer: Next/Close from one thread at
// a time; different cursors are independent and may run concurrently.
//
// Semantics match Query() batch-for-batch: batches arrive in serial seq
// order, so their concatenation is byte-identical to Query(sql).table;
// the first batch always carries the result schema (possibly with zero
// rows). A still-valid cached whole result is streamed in batch-sized
// chunks. Streamed results are not admitted to the whole-result cache
// (they are never materialized server-side); sub-plan cache hits are
// honored, misses execute the original plan without populating the tier.
class QueryCursor {
 public:
  ~QueryCursor();
  QueryCursor(const QueryCursor&) = delete;
  QueryCursor& operator=(const QueryCursor&) = delete;

  // Fills *out with the next result batch (an owned table, valid after
  // the cursor advances or closes); returns false at end of stream, after
  // finalizing report(). Errors (extraction I/O, mid-spill failures) are
  // sticky and release resources like Close.
  Result<bool> Next(storage::Table* out);

  // Tears down the pipeline and releases ticket/budget/spill exactly
  // once. After Close, Next returns end-of-stream.
  void Close();

  // The execution report; admission fields (ticket_id,
  // queue_wait_seconds, priority, client_id, admitted_budget_bytes) are
  // valid from OpenCursor on — identical to the materializing path —
  // and the remaining counters are final once the stream ends.
  const engine::ExecutionReport& report() const;

  // Rows delivered through Next so far.
  uint64_t rows_streamed() const;

  // Peak result bytes resident between the drive loop and the consumer —
  // O(window × batch) by construction, vs O(result) for Query().
  uint64_t peak_buffered_bytes() const;

 private:
  friend class Warehouse;
  QueryCursor();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

struct WarehouseStats {
  LoadStrategy strategy = LoadStrategy::kLazy;
  size_t num_files = 0;
  size_t num_hydrated_files = 0;
  uint64_t catalog_bytes = 0;         // in-memory table footprint
  uint64_t repository_bytes = 0;      // summed source file sizes
  engine::RecyclerStats cache;
  uint64_t result_cache_hits = 0;
  uint64_t result_cache_entries = 0;
  // Multi-tier caching: per-tier counters and the shared pool snapshot
  // (zeroed when the tier/pool is disabled).
  engine::ColumnCacheStats column_cache;
  engine::PlanCacheStats plan_cache;
  common::MemoryPoolStats cache_pool;
  // Scheduler observability: total admissions, queue timeouts and
  // footprint-bypass admissions, and the current number of executing /
  // queued queries (racy snapshots).
  uint64_t queries_admitted = 0;
  uint64_t queries_timed_out = 0;
  uint64_t queries_bypass_admitted = 0;
  size_t queries_active = 0;
  size_t queries_waiting = 0;
};

class Warehouse {
 public:
  static Result<std::unique_ptr<Warehouse>> Open(WarehouseOptions options);

  ~Warehouse();
  Warehouse(const Warehouse&) = delete;
  Warehouse& operator=(const Warehouse&) = delete;

  // Performs initial loading of the repository rooted at `root` according
  // to the configured strategy. May be called for multiple roots.
  Result<LoadStats> AttachRepository(const std::string& root);

  // Re-opens an eagerly-loaded warehouse previously persisted through
  // `options.persist_dir`, skipping ETL entirely. Only valid on a fresh
  // kEager warehouse; restores tables, the file registry, and the attached
  // repository roots (so Refresh() keeps working).
  Result<LoadStats> AttachPersisted(const std::string& persist_dir);

  // Parses, binds, plans, and executes `sql`. The report documents plan
  // reorganisation, run-time rewriting, extraction and cache activity —
  // plus, under concurrent serving, the admission ticket, queue wait,
  // priority class and carved budget. Safe to call from many threads at
  // once. The one-argument form runs with default QueryOptions (NORMAL
  // priority, anonymous tenant, warehouse-default timeout).
  Result<QueryResult> Query(const std::string& sql);
  Result<QueryResult> Query(const std::string& sql,
                            const QueryOptions& query_options);

  // Streaming form of Query(): admits through the same scheduler (same
  // priorities, fair share, queue timeouts — a timeout fails here with
  // Status::DeadlineExceeded before any state is touched), then returns a
  // cursor that yields the result batch-by-batch. See QueryCursor for
  // lifecycle and backpressure; WarehouseOptions::cursor_window_batches
  // bounds what a slow consumer can keep buffered.
  Result<std::unique_ptr<QueryCursor>> OpenCursor(const std::string& sql);
  Result<std::unique_ptr<QueryCursor>> OpenCursor(
      const std::string& sql, const QueryOptions& query_options);

  // Parses, binds, and plans `sql` without executing it: the report holds
  // the naive plan and the reorganised (metadata-first) plan. No data is
  // touched, no metadata is hydrated, and no admission ticket is needed.
  Result<engine::ExecutionReport> Explain(const std::string& sql);

  // Re-scans attached repositories: registers new files, refreshes the
  // metadata of modified ones (and drops deleted ones). Actual data held
  // in the cache is refreshed lazily at query time via mtime checks; with
  // the eager strategy modified files are re-loaded here. Safe to call
  // concurrently with queries (it serialises with hydration, and
  // executing queries keep scanning their catalog snapshots).
  Result<RefreshStats> Refresh();

  // Drops all cached intermediates and results (cold-cache measurements).
  void ClearCaches();

  // Zeroes the cache hit/miss/eviction counters while keeping the cached
  // contents (clean hot-cache measurements).
  void ResetCacheCounters();

  const storage::Catalog& catalog() const { return *catalog_; }
  WarehouseStats Stats() const;
  const WarehouseOptions& options() const { return options_; }

  // Paths of the attached repository roots (snapshot).
  std::vector<std::string> repositories() const;

 private:
  friend class WarehouseDataProvider;
  friend class WarehouseRecordStream;

  // Everything known about one source file. Field access is guarded by
  // meta_mu_; `metadata` is an immutable snapshot — re-hydration swaps in
  // a new one, so extraction jobs holding the old snapshot stay safe.
  struct FileEntry {
    int64_t file_id = 0;
    std::string path;
    NanoTime mtime = 0;      // as of the last metadata (re)load
    uint64_t size = 0;
    bool hydrated = false;   // record metadata present?
    std::shared_ptr<const mseed::FileMetadata> metadata;  // when hydrated
    std::map<int64_t, size_t> seq_to_record;  // seq_no -> records index
  };

  // Copy-on-write session over catalog tables: Mutable() clones a table
  // on first access, Publish() swaps the clones into the catalog so
  // concurrently executing queries keep their immutable snapshots. The
  // whole session must run under an exclusive meta_mu_ lock.
  class CatalogWriter;

  explicit Warehouse(WarehouseOptions options);

  // The *Locked helpers require meta_mu_ held exclusively and stage their
  // table changes in `writer` (published by the caller).
  Status AttachFileLocked(const std::string& path, CatalogWriter* writer,
                          LoadStats* stats);
  Status LoadFileEagerLocked(FileEntry* entry, CatalogWriter* writer,
                             LoadStats* stats);
  Status LoadFileMetadataLocked(FileEntry* entry, CatalogWriter* writer,
                                LoadStats* stats);
  Status LoadFileFromFilenameLocked(FileEntry* entry, CatalogWriter* writer);

  // Fills entry->metadata by scanning record headers; appends R rows.
  Status HydrateFileLocked(FileEntry* entry, CatalogWriter* writer,
                           uint64_t* bytes_read);

  // Loads a dataless SEED volume (ASCII control headers) into the
  // mseed.stations / mseed.channels inventory tables. Idempotent per path.
  Status LoadDatalessInventoryLocked(const std::string& path,
                                     CatalogWriter* writer, LoadStats* stats);

  // Drops a modified file's table rows and cache entries and re-loads its
  // metadata per the current strategy (shared by Refresh() and the lazy
  // query-time staleness pass).
  Status ReloadModifiedFileLocked(FileEntry* entry, CatalogWriter* writer,
                                  uint64_t* bytes_read);

  // File ids matching the query's file-level predicates (all files when
  // the query has none). Used to bound hydration and staleness checks.
  // Reads only an immutable catalog snapshot — no lock needed.
  Result<std::vector<int64_t>> CandidateFileIds(const sql::BoundQuery& query);

  // Footprint-aware admission: summed source-file bytes of the query's
  // candidate files, from registry metadata — the cold-extraction term of
  // the plan footprint estimate.
  Result<uint64_t> EstimateColdExtractionBytes(const sql::BoundQuery& query);

  // Resolves a query's effective admission-queue timeout from its options
  // and the warehouse default (see QueryOptions::queue_timeout_ms).
  int64_t ResolveQueueTimeoutMs(int64_t query_timeout_ms) const;

  // Lazy refresh (§3.3) at query time: stats the candidate files and
  // re-loads metadata of any whose mtime changed since it was read.
  // Takes meta_mu_ shared for the checks, exclusive only when a stale
  // file must actually be re-loaded.
  Status RefreshStaleCandidates(const sql::BoundQuery& query,
                                engine::ExecutionReport* report);

  // Filename-only strategy: hydrate record metadata of the files matching
  // the query's file-level predicates (called before planning when the
  // query needs R or D columns). Same locking shape as the lazy refresh.
  Status HydrateForQuery(const sql::BoundQuery& query,
                         engine::ExecutionReport* report);

  // Current mtime of a file, or -1 when it cannot be statted.
  NanoTime CurrentMtime(const std::string& path) const;

  Result<storage::TablePtr> FilesTable() const;
  Result<storage::TablePtr> RecordsTable() const;
  Result<storage::TablePtr> DataTable() const;

  bool IsLazyStrategy() const {
    return options_.strategy != LoadStrategy::kEager;
  }

  WarehouseOptions options_;
  std::unique_ptr<storage::Catalog> catalog_;
  // The shared cache pool must outlive every tier charging it (the tiers
  // release their resident bytes and unregister their yielders on
  // destruction), so it is declared first.
  std::unique_ptr<common::MemoryPool> cache_pool_;
  std::unique_ptr<engine::Recycler> recycler_;
  std::unique_ptr<engine::ColumnCache> column_cache_;  // null = tier off
  std::unique_ptr<engine::PlanCache> plan_cache_;      // null = tier off
  std::unique_ptr<engine::ResultRecycler> result_recycler_;
  std::unique_ptr<common::QueryScheduler> scheduler_;

  // Reader/writer lock over the file registry and every catalog-table
  // mutation (hydration, refresh, attach). Queries take it shared for
  // registry reads and exclusive only for the short metadata fix-up
  // sections; execution itself runs lock-free on catalog snapshots — no
  // global query lock.
  mutable std::shared_mutex meta_mu_;
  // Deque for address stability: attach only appends and refresh only
  // tombstones, so FileEntry pointers held briefly under the lock never
  // dangle from growth.
  std::deque<FileEntry> files_;                   // indexed by file_id - 1
  std::map<std::string, int64_t> path_to_file_id_;
  std::vector<std::string> roots_;
  std::set<std::string> dataless_paths_;  // inventories already loaded
  std::atomic<uint64_t> result_cache_hits_{0};
};

}  // namespace lazyetl::core

#endif  // LAZYETL_CORE_WAREHOUSE_H_
